# Empty dependencies file for decomposition_demo.
# This may be replaced when dependencies are built.
