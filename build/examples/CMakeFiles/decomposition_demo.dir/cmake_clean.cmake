file(REMOVE_RECURSE
  "CMakeFiles/decomposition_demo.dir/decomposition_demo.cpp.o"
  "CMakeFiles/decomposition_demo.dir/decomposition_demo.cpp.o.d"
  "decomposition_demo"
  "decomposition_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposition_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
