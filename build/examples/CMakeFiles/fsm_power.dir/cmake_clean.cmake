file(REMOVE_RECURSE
  "CMakeFiles/fsm_power.dir/fsm_power.cpp.o"
  "CMakeFiles/fsm_power.dir/fsm_power.cpp.o.d"
  "fsm_power"
  "fsm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
