# Empty dependencies file for fsm_power.
# This may be replaced when dependencies are built.
