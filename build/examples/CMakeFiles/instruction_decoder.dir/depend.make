# Empty dependencies file for instruction_decoder.
# This may be replaced when dependencies are built.
