file(REMOVE_RECURSE
  "CMakeFiles/instruction_decoder.dir/instruction_decoder.cpp.o"
  "CMakeFiles/instruction_decoder.dir/instruction_decoder.cpp.o.d"
  "instruction_decoder"
  "instruction_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instruction_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
