file(REMOVE_RECURSE
  "CMakeFiles/domino_flow.dir/domino_flow.cpp.o"
  "CMakeFiles/domino_flow.dir/domino_flow.cpp.o.d"
  "domino_flow"
  "domino_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
