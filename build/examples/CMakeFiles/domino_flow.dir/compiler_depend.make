# Empty compiler generated dependencies file for domino_flow.
# This may be replaced when dependencies are built.
