file(REMOVE_RECURSE
  "CMakeFiles/mp_netlist.dir/network.cpp.o"
  "CMakeFiles/mp_netlist.dir/network.cpp.o.d"
  "libmp_netlist.a"
  "libmp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
