file(REMOVE_RECURSE
  "CMakeFiles/mp_bdd.dir/bdd.cpp.o"
  "CMakeFiles/mp_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/mp_bdd.dir/isop.cpp.o"
  "CMakeFiles/mp_bdd.dir/isop.cpp.o.d"
  "libmp_bdd.a"
  "libmp_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
