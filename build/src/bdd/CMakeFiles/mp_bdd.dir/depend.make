# Empty dependencies file for mp_bdd.
# This may be replaced when dependencies are built.
