file(REMOVE_RECURSE
  "libmp_bdd.a"
)
