file(REMOVE_RECURSE
  "libmp_opt.a"
)
