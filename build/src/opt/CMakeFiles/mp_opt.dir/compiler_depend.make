# Empty compiler generated dependencies file for mp_opt.
# This may be replaced when dependencies are built.
