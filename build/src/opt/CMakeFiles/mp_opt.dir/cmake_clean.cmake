file(REMOVE_RECURSE
  "CMakeFiles/mp_opt.dir/optimize.cpp.o"
  "CMakeFiles/mp_opt.dir/optimize.cpp.o.d"
  "libmp_opt.a"
  "libmp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
