file(REMOVE_RECURSE
  "libmp_sop.a"
)
