
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sop/algebra.cpp" "src/sop/CMakeFiles/mp_sop.dir/algebra.cpp.o" "gcc" "src/sop/CMakeFiles/mp_sop.dir/algebra.cpp.o.d"
  "/root/repo/src/sop/cover.cpp" "src/sop/CMakeFiles/mp_sop.dir/cover.cpp.o" "gcc" "src/sop/CMakeFiles/mp_sop.dir/cover.cpp.o.d"
  "/root/repo/src/sop/factor.cpp" "src/sop/CMakeFiles/mp_sop.dir/factor.cpp.o" "gcc" "src/sop/CMakeFiles/mp_sop.dir/factor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
