# Empty dependencies file for mp_sop.
# This may be replaced when dependencies are built.
