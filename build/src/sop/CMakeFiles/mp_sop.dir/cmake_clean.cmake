file(REMOVE_RECURSE
  "CMakeFiles/mp_sop.dir/algebra.cpp.o"
  "CMakeFiles/mp_sop.dir/algebra.cpp.o.d"
  "CMakeFiles/mp_sop.dir/cover.cpp.o"
  "CMakeFiles/mp_sop.dir/cover.cpp.o.d"
  "CMakeFiles/mp_sop.dir/factor.cpp.o"
  "CMakeFiles/mp_sop.dir/factor.cpp.o.d"
  "libmp_sop.a"
  "libmp_sop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
