file(REMOVE_RECURSE
  "CMakeFiles/mp_flow.dir/flow.cpp.o"
  "CMakeFiles/mp_flow.dir/flow.cpp.o.d"
  "libmp_flow.a"
  "libmp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
