# Empty dependencies file for mp_flow.
# This may be replaced when dependencies are built.
