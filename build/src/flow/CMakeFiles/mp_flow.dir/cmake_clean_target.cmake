file(REMOVE_RECURSE
  "libmp_flow.a"
)
