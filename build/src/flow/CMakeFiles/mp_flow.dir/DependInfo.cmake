
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow.cpp" "src/flow/CMakeFiles/mp_flow.dir/flow.cpp.o" "gcc" "src/flow/CMakeFiles/mp_flow.dir/flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decomp/CMakeFiles/mp_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/mp_map.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/benchgen/CMakeFiles/mp_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/mp_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/mp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sop/CMakeFiles/mp_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/mp_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
