# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sop")
subdirs("netlist")
subdirs("io")
subdirs("bdd")
subdirs("prob")
subdirs("opt")
subdirs("decomp")
subdirs("library")
subdirs("map")
subdirs("power")
subdirs("benchgen")
subdirs("flow")
