file(REMOVE_RECURSE
  "libmp_map.a"
)
