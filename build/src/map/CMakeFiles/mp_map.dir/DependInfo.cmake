
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/map/curve.cpp" "src/map/CMakeFiles/mp_map.dir/curve.cpp.o" "gcc" "src/map/CMakeFiles/mp_map.dir/curve.cpp.o.d"
  "/root/repo/src/map/mapped.cpp" "src/map/CMakeFiles/mp_map.dir/mapped.cpp.o" "gcc" "src/map/CMakeFiles/mp_map.dir/mapped.cpp.o.d"
  "/root/repo/src/map/mapper.cpp" "src/map/CMakeFiles/mp_map.dir/mapper.cpp.o" "gcc" "src/map/CMakeFiles/mp_map.dir/mapper.cpp.o.d"
  "/root/repo/src/map/match.cpp" "src/map/CMakeFiles/mp_map.dir/match.cpp.o" "gcc" "src/map/CMakeFiles/mp_map.dir/match.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/mp_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/mp_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sop/CMakeFiles/mp_sop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
