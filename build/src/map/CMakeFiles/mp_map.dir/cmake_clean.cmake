file(REMOVE_RECURSE
  "CMakeFiles/mp_map.dir/curve.cpp.o"
  "CMakeFiles/mp_map.dir/curve.cpp.o.d"
  "CMakeFiles/mp_map.dir/mapped.cpp.o"
  "CMakeFiles/mp_map.dir/mapped.cpp.o.d"
  "CMakeFiles/mp_map.dir/mapper.cpp.o"
  "CMakeFiles/mp_map.dir/mapper.cpp.o.d"
  "CMakeFiles/mp_map.dir/match.cpp.o"
  "CMakeFiles/mp_map.dir/match.cpp.o.d"
  "libmp_map.a"
  "libmp_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
