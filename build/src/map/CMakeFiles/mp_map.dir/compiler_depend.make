# Empty compiler generated dependencies file for mp_map.
# This may be replaced when dependencies are built.
