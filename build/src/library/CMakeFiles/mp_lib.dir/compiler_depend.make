# Empty compiler generated dependencies file for mp_lib.
# This may be replaced when dependencies are built.
