file(REMOVE_RECURSE
  "libmp_lib.a"
)
