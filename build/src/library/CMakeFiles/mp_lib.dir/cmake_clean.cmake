file(REMOVE_RECURSE
  "CMakeFiles/mp_lib.dir/expr.cpp.o"
  "CMakeFiles/mp_lib.dir/expr.cpp.o.d"
  "CMakeFiles/mp_lib.dir/library.cpp.o"
  "CMakeFiles/mp_lib.dir/library.cpp.o.d"
  "CMakeFiles/mp_lib.dir/pattern.cpp.o"
  "CMakeFiles/mp_lib.dir/pattern.cpp.o.d"
  "libmp_lib.a"
  "libmp_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
