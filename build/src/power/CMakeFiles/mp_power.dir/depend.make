# Empty dependencies file for mp_power.
# This may be replaced when dependencies are built.
