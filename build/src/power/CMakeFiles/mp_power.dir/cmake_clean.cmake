file(REMOVE_RECURSE
  "CMakeFiles/mp_power.dir/report.cpp.o"
  "CMakeFiles/mp_power.dir/report.cpp.o.d"
  "CMakeFiles/mp_power.dir/resize.cpp.o"
  "CMakeFiles/mp_power.dir/resize.cpp.o.d"
  "CMakeFiles/mp_power.dir/simulate.cpp.o"
  "CMakeFiles/mp_power.dir/simulate.cpp.o.d"
  "libmp_power.a"
  "libmp_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
