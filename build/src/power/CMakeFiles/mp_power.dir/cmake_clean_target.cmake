file(REMOVE_RECURSE
  "libmp_power.a"
)
