file(REMOVE_RECURSE
  "CMakeFiles/mp_io.dir/blif.cpp.o"
  "CMakeFiles/mp_io.dir/blif.cpp.o.d"
  "CMakeFiles/mp_io.dir/mapped_blif.cpp.o"
  "CMakeFiles/mp_io.dir/mapped_blif.cpp.o.d"
  "libmp_io.a"
  "libmp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
