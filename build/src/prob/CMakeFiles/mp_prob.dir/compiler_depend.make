# Empty compiler generated dependencies file for mp_prob.
# This may be replaced when dependencies are built.
