file(REMOVE_RECURSE
  "libmp_prob.a"
)
