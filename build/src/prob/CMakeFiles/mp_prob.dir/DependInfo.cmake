
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/joint.cpp" "src/prob/CMakeFiles/mp_prob.dir/joint.cpp.o" "gcc" "src/prob/CMakeFiles/mp_prob.dir/joint.cpp.o.d"
  "/root/repo/src/prob/pattern_model.cpp" "src/prob/CMakeFiles/mp_prob.dir/pattern_model.cpp.o" "gcc" "src/prob/CMakeFiles/mp_prob.dir/pattern_model.cpp.o.d"
  "/root/repo/src/prob/probability.cpp" "src/prob/CMakeFiles/mp_prob.dir/probability.cpp.o" "gcc" "src/prob/CMakeFiles/mp_prob.dir/probability.cpp.o.d"
  "/root/repo/src/prob/sequential.cpp" "src/prob/CMakeFiles/mp_prob.dir/sequential.cpp.o" "gcc" "src/prob/CMakeFiles/mp_prob.dir/sequential.cpp.o.d"
  "/root/repo/src/prob/transition.cpp" "src/prob/CMakeFiles/mp_prob.dir/transition.cpp.o" "gcc" "src/prob/CMakeFiles/mp_prob.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sop/CMakeFiles/mp_sop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
