file(REMOVE_RECURSE
  "CMakeFiles/mp_prob.dir/joint.cpp.o"
  "CMakeFiles/mp_prob.dir/joint.cpp.o.d"
  "CMakeFiles/mp_prob.dir/pattern_model.cpp.o"
  "CMakeFiles/mp_prob.dir/pattern_model.cpp.o.d"
  "CMakeFiles/mp_prob.dir/probability.cpp.o"
  "CMakeFiles/mp_prob.dir/probability.cpp.o.d"
  "CMakeFiles/mp_prob.dir/sequential.cpp.o"
  "CMakeFiles/mp_prob.dir/sequential.cpp.o.d"
  "CMakeFiles/mp_prob.dir/transition.cpp.o"
  "CMakeFiles/mp_prob.dir/transition.cpp.o.d"
  "libmp_prob.a"
  "libmp_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
