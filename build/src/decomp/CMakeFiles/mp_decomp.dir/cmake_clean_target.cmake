file(REMOVE_RECURSE
  "libmp_decomp.a"
)
