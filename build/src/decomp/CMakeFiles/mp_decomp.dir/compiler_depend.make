# Empty compiler generated dependencies file for mp_decomp.
# This may be replaced when dependencies are built.
