file(REMOVE_RECURSE
  "CMakeFiles/mp_decomp.dir/huffman.cpp.o"
  "CMakeFiles/mp_decomp.dir/huffman.cpp.o.d"
  "CMakeFiles/mp_decomp.dir/network_decompose.cpp.o"
  "CMakeFiles/mp_decomp.dir/network_decompose.cpp.o.d"
  "CMakeFiles/mp_decomp.dir/node_decompose.cpp.o"
  "CMakeFiles/mp_decomp.dir/node_decompose.cpp.o.d"
  "CMakeFiles/mp_decomp.dir/package_merge.cpp.o"
  "CMakeFiles/mp_decomp.dir/package_merge.cpp.o.d"
  "CMakeFiles/mp_decomp.dir/transition_model.cpp.o"
  "CMakeFiles/mp_decomp.dir/transition_model.cpp.o.d"
  "CMakeFiles/mp_decomp.dir/tree.cpp.o"
  "CMakeFiles/mp_decomp.dir/tree.cpp.o.d"
  "libmp_decomp.a"
  "libmp_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
