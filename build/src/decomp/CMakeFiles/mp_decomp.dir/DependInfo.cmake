
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/huffman.cpp" "src/decomp/CMakeFiles/mp_decomp.dir/huffman.cpp.o" "gcc" "src/decomp/CMakeFiles/mp_decomp.dir/huffman.cpp.o.d"
  "/root/repo/src/decomp/network_decompose.cpp" "src/decomp/CMakeFiles/mp_decomp.dir/network_decompose.cpp.o" "gcc" "src/decomp/CMakeFiles/mp_decomp.dir/network_decompose.cpp.o.d"
  "/root/repo/src/decomp/node_decompose.cpp" "src/decomp/CMakeFiles/mp_decomp.dir/node_decompose.cpp.o" "gcc" "src/decomp/CMakeFiles/mp_decomp.dir/node_decompose.cpp.o.d"
  "/root/repo/src/decomp/package_merge.cpp" "src/decomp/CMakeFiles/mp_decomp.dir/package_merge.cpp.o" "gcc" "src/decomp/CMakeFiles/mp_decomp.dir/package_merge.cpp.o.d"
  "/root/repo/src/decomp/transition_model.cpp" "src/decomp/CMakeFiles/mp_decomp.dir/transition_model.cpp.o" "gcc" "src/decomp/CMakeFiles/mp_decomp.dir/transition_model.cpp.o.d"
  "/root/repo/src/decomp/tree.cpp" "src/decomp/CMakeFiles/mp_decomp.dir/tree.cpp.o" "gcc" "src/decomp/CMakeFiles/mp_decomp.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/mp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/mp_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/mp_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sop/CMakeFiles/mp_sop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
