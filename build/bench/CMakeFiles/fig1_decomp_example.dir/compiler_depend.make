# Empty compiler generated dependencies file for fig1_decomp_example.
# This may be replaced when dependencies are built.
