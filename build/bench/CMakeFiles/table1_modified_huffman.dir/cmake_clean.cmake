file(REMOVE_RECURSE
  "CMakeFiles/table1_modified_huffman.dir/table1_modified_huffman.cpp.o"
  "CMakeFiles/table1_modified_huffman.dir/table1_modified_huffman.cpp.o.d"
  "table1_modified_huffman"
  "table1_modified_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_modified_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
