# Empty dependencies file for table1_modified_huffman.
# This may be replaced when dependencies are built.
