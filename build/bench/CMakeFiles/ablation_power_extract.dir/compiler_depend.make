# Empty compiler generated dependencies file for ablation_power_extract.
# This may be replaced when dependencies are built.
