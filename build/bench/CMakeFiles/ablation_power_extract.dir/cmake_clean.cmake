file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_extract.dir/ablation_power_extract.cpp.o"
  "CMakeFiles/ablation_power_extract.dir/ablation_power_extract.cpp.o.d"
  "ablation_power_extract"
  "ablation_power_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
