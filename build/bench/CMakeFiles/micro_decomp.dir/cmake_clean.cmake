file(REMOVE_RECURSE
  "CMakeFiles/micro_decomp.dir/micro_decomp.cpp.o"
  "CMakeFiles/micro_decomp.dir/micro_decomp.cpp.o.d"
  "micro_decomp"
  "micro_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
