# Empty dependencies file for micro_decomp.
# This may be replaced when dependencies are built.
