# Empty dependencies file for ablation_power_method.
# This may be replaced when dependencies are built.
