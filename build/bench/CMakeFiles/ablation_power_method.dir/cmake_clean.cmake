file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_method.dir/ablation_power_method.cpp.o"
  "CMakeFiles/ablation_power_method.dir/ablation_power_method.cpp.o.d"
  "ablation_power_method"
  "ablation_power_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
