file(REMOVE_RECURSE
  "CMakeFiles/table23_summary.dir/table23_summary.cpp.o"
  "CMakeFiles/table23_summary.dir/table23_summary.cpp.o.d"
  "table23_summary"
  "table23_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table23_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
