# Empty compiler generated dependencies file for table23_summary.
# This may be replaced when dependencies are built.
