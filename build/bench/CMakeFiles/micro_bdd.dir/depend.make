# Empty dependencies file for micro_bdd.
# This may be replaced when dependencies are built.
