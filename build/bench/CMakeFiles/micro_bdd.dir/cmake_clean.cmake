file(REMOVE_RECURSE
  "CMakeFiles/micro_bdd.dir/micro_bdd.cpp.o"
  "CMakeFiles/micro_bdd.dir/micro_bdd.cpp.o.d"
  "micro_bdd"
  "micro_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
