file(REMOVE_RECURSE
  "CMakeFiles/ablation_epsilon.dir/ablation_epsilon.cpp.o"
  "CMakeFiles/ablation_epsilon.dir/ablation_epsilon.cpp.o.d"
  "ablation_epsilon"
  "ablation_epsilon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
