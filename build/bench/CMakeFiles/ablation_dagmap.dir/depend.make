# Empty dependencies file for ablation_dagmap.
# This may be replaced when dependencies are built.
