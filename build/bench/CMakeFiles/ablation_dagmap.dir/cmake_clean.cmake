file(REMOVE_RECURSE
  "CMakeFiles/ablation_dagmap.dir/ablation_dagmap.cpp.o"
  "CMakeFiles/ablation_dagmap.dir/ablation_dagmap.cpp.o.d"
  "ablation_dagmap"
  "ablation_dagmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dagmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
