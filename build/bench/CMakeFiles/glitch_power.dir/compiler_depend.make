# Empty compiler generated dependencies file for glitch_power.
# This may be replaced when dependencies are built.
