file(REMOVE_RECURSE
  "CMakeFiles/glitch_power.dir/glitch_power.cpp.o"
  "CMakeFiles/glitch_power.dir/glitch_power.cpp.o.d"
  "glitch_power"
  "glitch_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glitch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
