# Empty dependencies file for table2_admap.
# This may be replaced when dependencies are built.
