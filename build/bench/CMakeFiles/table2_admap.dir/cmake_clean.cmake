file(REMOVE_RECURSE
  "CMakeFiles/table2_admap.dir/table2_admap.cpp.o"
  "CMakeFiles/table2_admap.dir/table2_admap.cpp.o.d"
  "table2_admap"
  "table2_admap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_admap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
