# Empty compiler generated dependencies file for table3_pdmap.
# This may be replaced when dependencies are built.
