file(REMOVE_RECURSE
  "CMakeFiles/table3_pdmap.dir/table3_pdmap.cpp.o"
  "CMakeFiles/table3_pdmap.dir/table3_pdmap.cpp.o.d"
  "table3_pdmap"
  "table3_pdmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_pdmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
