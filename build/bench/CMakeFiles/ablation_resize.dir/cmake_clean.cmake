file(REMOVE_RECURSE
  "CMakeFiles/ablation_resize.dir/ablation_resize.cpp.o"
  "CMakeFiles/ablation_resize.dir/ablation_resize.cpp.o.d"
  "ablation_resize"
  "ablation_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
