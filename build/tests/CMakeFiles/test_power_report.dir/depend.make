# Empty dependencies file for test_power_report.
# This may be replaced when dependencies are built.
