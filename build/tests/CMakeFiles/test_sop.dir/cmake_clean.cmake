file(REMOVE_RECURSE
  "CMakeFiles/test_sop.dir/test_sop.cpp.o"
  "CMakeFiles/test_sop.dir/test_sop.cpp.o.d"
  "test_sop"
  "test_sop.pdb"
  "test_sop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
