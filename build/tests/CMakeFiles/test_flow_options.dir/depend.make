# Empty dependencies file for test_flow_options.
# This may be replaced when dependencies are built.
