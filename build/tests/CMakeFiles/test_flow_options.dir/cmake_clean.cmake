file(REMOVE_RECURSE
  "CMakeFiles/test_flow_options.dir/test_flow_options.cpp.o"
  "CMakeFiles/test_flow_options.dir/test_flow_options.cpp.o.d"
  "test_flow_options"
  "test_flow_options.pdb"
  "test_flow_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
