# Empty compiler generated dependencies file for test_transition.
# This may be replaced when dependencies are built.
