# Empty compiler generated dependencies file for test_decomp_tree.
# This may be replaced when dependencies are built.
