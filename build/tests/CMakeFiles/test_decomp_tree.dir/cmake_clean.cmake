file(REMOVE_RECURSE
  "CMakeFiles/test_decomp_tree.dir/test_decomp_tree.cpp.o"
  "CMakeFiles/test_decomp_tree.dir/test_decomp_tree.cpp.o.d"
  "test_decomp_tree"
  "test_decomp_tree.pdb"
  "test_decomp_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decomp_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
