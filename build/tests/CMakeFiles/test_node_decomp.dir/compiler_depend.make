# Empty compiler generated dependencies file for test_node_decomp.
# This may be replaced when dependencies are built.
