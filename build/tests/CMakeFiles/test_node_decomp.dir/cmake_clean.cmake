file(REMOVE_RECURSE
  "CMakeFiles/test_node_decomp.dir/test_node_decomp.cpp.o"
  "CMakeFiles/test_node_decomp.dir/test_node_decomp.cpp.o.d"
  "test_node_decomp"
  "test_node_decomp.pdb"
  "test_node_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
