# Empty compiler generated dependencies file for test_network_decomp.
# This may be replaced when dependencies are built.
