file(REMOVE_RECURSE
  "CMakeFiles/test_network_decomp.dir/test_network_decomp.cpp.o"
  "CMakeFiles/test_network_decomp.dir/test_network_decomp.cpp.o.d"
  "test_network_decomp"
  "test_network_decomp.pdb"
  "test_network_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
