file(REMOVE_RECURSE
  "CMakeFiles/test_pattern_model.dir/test_pattern_model.cpp.o"
  "CMakeFiles/test_pattern_model.dir/test_pattern_model.cpp.o.d"
  "test_pattern_model"
  "test_pattern_model.pdb"
  "test_pattern_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pattern_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
