# Empty dependencies file for test_pattern_model.
# This may be replaced when dependencies are built.
