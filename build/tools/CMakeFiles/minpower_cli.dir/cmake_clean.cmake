file(REMOVE_RECURSE
  "CMakeFiles/minpower_cli.dir/minpower_cli.cpp.o"
  "CMakeFiles/minpower_cli.dir/minpower_cli.cpp.o.d"
  "minpower"
  "minpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minpower_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
