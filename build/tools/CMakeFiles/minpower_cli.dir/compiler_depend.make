# Empty compiler generated dependencies file for minpower_cli.
# This may be replaced when dependencies are built.
