#pragma once
// Minimal JSON parser for validating the tool's own machine-readable output
// (the minpower.flow.v1 / minpower.verify.v1 reports) in tests. Supports the
// full JSON value grammar the JsonWriter can emit: objects, arrays, strings
// with escapes, numbers, booleans, null. Not a general-purpose parser — no
// \uXXXX surrogate handling beyond pass-through, and practical depth/size
// limits — but strict about everything it does accept.

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace minpower {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                             // arrays
  std::vector<std::pair<std::string, JsonValue>> members;   // objects, ordered

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }

  const char* kind_name() const {
    switch (kind) {
      case Kind::kNull: return "null";
      case Kind::kBool: return "bool";
      case Kind::kNumber: return "number";
      case Kind::kString: return "string";
      case Kind::kArray: return "array";
      case Kind::kObject: return "object";
    }
    return "?";
  }
};

namespace json_detail {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing content after the JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool set_error(const std::string& message) {
    if (error_ && error_->empty())
      *error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char ch, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != ch)
      return set_error(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return set_error("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return true;
      if (ch == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
              return set_error("truncated \\u escape");
            out += "\\u";  // pass through, enough for schema checks
            out += std::string(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            return set_error("invalid escape character");
        }
      } else {
        out += ch;
      }
    }
    return set_error("unterminated string");
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return set_error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    const char ch = text_[pos_];
    if (ch == '{') return parse_object(out, depth);
    if (ch == '[') return parse_array(out, depth);
    if (ch == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (ch == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (ch == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (ch == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return set_error("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return set_error("malformed number");
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return set_error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "':'")) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return set_error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace json_detail

/// Parse a complete JSON document. Returns std::nullopt and fills `error`
/// (when non-null) on malformed input.
inline std::optional<JsonValue> parse_json(std::string_view text,
                                           std::string* error = nullptr) {
  return json_detail::Parser(text, error).run();
}

}  // namespace minpower
