#pragma once
// Minimal JSON parser for the tool's own machine-readable formats: the
// minpower.flow.v1 / minpower.verify.v1 reports, the Chrome trace-event
// files the span tracer exports, and the profile/compare documents built on
// top of them. Supports the full JSON value grammar: objects, arrays,
// strings with escapes (\uXXXX decoded to UTF-8, surrogate pairs paired),
// numbers in negative and exponent form, booleans, null. Practical depth
// limits apply, and it is strict about everything it accepts: bad escapes,
// unpaired surrogates, malformed numbers, and trailing garbage are errors.

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace minpower {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                             // arrays
  std::vector<std::pair<std::string, JsonValue>> members;   // objects, ordered

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }

  const char* kind_name() const {
    switch (kind) {
      case Kind::kNull: return "null";
      case Kind::kBool: return "bool";
      case Kind::kNumber: return "number";
      case Kind::kString: return "string";
      case Kind::kArray: return "array";
      case Kind::kObject: return "object";
    }
    return "?";
  }
};

namespace json_detail {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing content after the JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool set_error(const std::string& message) {
    if (error_ && error_->empty())
      *error_ = message + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char ch, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != ch)
      return set_error(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return set_error("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return true;
      if (ch == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xDC00 && cp <= 0xDFFF)
              return set_error("unpaired low surrogate in \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a \uDC00–\uDFFF low half must follow.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u')
                return set_error("unpaired high surrogate in \\u escape");
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF)
                return set_error("unpaired high surrogate in \\u escape");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            }
            append_utf8(out, cp);
            break;
          }
          default:
            return set_error("invalid escape character");
        }
      } else {
        out += ch;
      }
    }
    return set_error("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return set_error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
      else return set_error("invalid hex digit in \\u escape");
      out = (out << 4) | digit;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return set_error("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return set_error("unexpected end of input");
    const char ch = text_[pos_];
    if (ch == '{') return parse_object(out, depth);
    if (ch == '[') return parse_array(out, depth);
    if (ch == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (ch == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (ch == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (ch == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    // JSON requires a digit after the optional sign ("+5", ".5", "-" alone
    // and bare words are all invalid); strtod below is laxer, so gate here.
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      return set_error("invalid value");
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      return set_error("malformed number");
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return set_error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "':'")) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return set_error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        skip_ws();
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return set_error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace json_detail

/// Parse a complete JSON document. Returns std::nullopt and fills `error`
/// (when non-null) on malformed input.
inline std::optional<JsonValue> parse_json(std::string_view text,
                                           std::string* error = nullptr) {
  return json_detail::Parser(text, error).run();
}

}  // namespace minpower
