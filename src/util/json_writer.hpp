#pragma once
// Minimal streaming JSON writer for machine-readable bench/flow reports.
//
// No DOM, no allocation beyond a nesting stack: values are emitted directly
// to the output stream with commas and indentation handled automatically.
// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
//
//   JsonWriter w(os);
//   w.begin_object();
//     w.key("name"); w.value("c432");
//     w.key("methods"); w.begin_array();
//       ...
//     w.end_array();
//   w.end_object();

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace minpower {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true)
      : os_(os), pretty_(pretty) {}

  ~JsonWriter() { MP_DCHECK(stack_.empty()); }

  void begin_object() { open('{', Frame::kObject); }
  void end_object() { close('}', Frame::kObject); }
  void begin_array() { open('[', Frame::kArray); }
  void end_array() { close(']', Frame::kArray); }

  /// Key of the next value; only valid directly inside an object.
  void key(std::string_view k) {
    MP_CHECK_MSG(!stack_.empty() && stack_.back().kind == Frame::kObject,
                 "JsonWriter::key outside of an object");
    MP_CHECK_MSG(!stack_.back().have_key, "JsonWriter: two keys in a row");
    separate();
    write_string(k);
    os_ << (pretty_ ? ": " : ":");
    stack_.back().have_key = true;
  }

  void value(std::string_view s) { value_prefix(); write_string(s); }
  void value(const char* s) { value(std::string_view(s)); }
  void value(const std::string& s) { value(std::string_view(s)); }
  void value(bool b) { value_prefix(); os_ << (b ? "true" : "false"); }
  void value(double d) {
    value_prefix();
    if (!std::isfinite(d)) {
      os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os_ << buf;
  }
  void value(int v) { value_prefix(); os_ << v; }
  void value(long v) { value_prefix(); os_ << v; }
  void value(long long v) { value_prefix(); os_ << v; }
  void value(unsigned v) { value_prefix(); os_ << v; }
  void value(unsigned long v) { value_prefix(); os_ << v; }
  void value(unsigned long long v) { value_prefix(); os_ << v; }
  void null() { value_prefix(); os_ << "null"; }

  /// Convenience: key + scalar value in one call.
  template <typename T>
  void field(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  struct Frame {
    enum Kind { kObject, kArray } kind;
    bool first = true;
    bool have_key = false;
  };

  void open(char c, Frame::Kind kind) {
    value_prefix();
    os_ << c;
    stack_.push_back(Frame{kind, true, false});
  }

  void close(char c, Frame::Kind kind) {
    MP_CHECK_MSG(!stack_.empty() && stack_.back().kind == kind,
                 "JsonWriter: mismatched close");
    MP_CHECK_MSG(!stack_.back().have_key, "JsonWriter: dangling key");
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (pretty_ && !empty) newline_indent();
    os_ << c;
  }

  /// Comma/indent before a value or key at the current nesting level.
  void separate() {
    if (stack_.empty()) return;
    if (!stack_.back().first) os_ << ',';
    stack_.back().first = false;
    if (pretty_) newline_indent();
  }

  void value_prefix() {
    if (stack_.empty()) return;  // top-level value
    if (stack_.back().kind == Frame::kObject) {
      MP_CHECK_MSG(stack_.back().have_key,
                   "JsonWriter: object value without a key");
      stack_.back().have_key = false;
    } else {
      separate();
    }
  }

  void newline_indent() {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char ch : s) {
      switch (ch) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(ch)));
            os_ << buf;
          } else {
            os_ << ch;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  bool pretty_;
  std::vector<Frame> stack_;
};

}  // namespace minpower
