#pragma once
// Lightweight invariant checking used across the library.
//
// MP_CHECK is always on (these guard data-structure invariants whose violation
// would silently corrupt synthesis results); MP_DCHECK compiles out in
// release-with-NDEBUG builds for hot inner loops.

#include <cstdio>
#include <cstdlib>

namespace minpower::detail {

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "MP_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace minpower::detail

#define MP_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr))                                                        \
      ::minpower::detail::check_fail(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define MP_CHECK_MSG(expr, msg)                                         \
  do {                                                                  \
    if (!(expr))                                                        \
      ::minpower::detail::check_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define MP_DCHECK(expr) ((void)0)
#else
#define MP_DCHECK(expr) MP_CHECK(expr)
#endif
