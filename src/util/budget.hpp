#pragma once
// Resource governance for the synthesis pipeline.
//
// A Budget bounds one unit of work (typically one FlowEngine task): a BDD
// node cap, an optional wall-clock deadline, and an optional step counter.
// Exceeding a budget raises ResourceExhausted — a *recoverable* error, in
// contrast to MP_CHECK, which stays reserved for invariant corruption and
// still aborts. Long-running loops call `budget_checkpoint("<site>")`; the
// active budget (if any) is found through a thread-local, so deep algorithm
// code needs no signature changes and standalone library use (no budget)
// pays one thread-local read per checkpoint.
//
// Deterministic fault injection: MINPOWER_INJECT_FAULT=<site>:<ordinal>
// (comma-separated list) arms faults against the task with that ordinal —
// a deterministic task id assigned by the engine, NOT a temporal counter,
// so injection is independent of thread count and scheduling. Sites:
//   * a checkpoint name ("decomp", "activity", "map", "bdd") — that
//     checkpoint throws ResourceExhausted when it runs in the armed task;
//   * "bdd-limit" — BddManagers built by the armed task get a tiny node
//     cap, forcing the genuine node-limit machinery to fire;
//   * "deadline" — the armed task's deadline is created already expired,
//     so its first checkpoint fails through the real deadline path;
//   * process-level sites consumed by the shard supervisor (shard/
//     supervisor.hpp), where the ordinal is a *global circuit index* and
//     the fault fires in the worker process that owns that circuit:
//     "worker-abort" calls std::abort() (SIGABRT), "worker-oom" raises
//     SIGKILL (the un-catchable OOM-killer shape), "worker-hang" stops
//     heartbeating and sleeps until the supervisor's heartbeat timeout
//     kills the worker, "worker-bloat" allocates and holds a ~160 MiB
//     ballast across several heartbeat periods so the --mem-limit-mb
//     watermarks trip. These sites never match an in-process checkpoint
//     name, so they are inert outside sharded runs.

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "trace/metrics.hpp"

namespace minpower {

/// Default BddManager node cap (synthesis-sized circuits stay far below).
inline constexpr std::size_t kDefaultBddNodeLimit = 60'000'000;

/// Node cap forced by a "bdd-limit" fault injection: big enough to build
/// the terminals and a few variables, small enough that any real activity
/// pass blows through it.
inline constexpr std::size_t kInjectedBddNodeLimit = 64;

/// A resource limit was exceeded. Catchable and recoverable: callers retry
/// with a smaller budget, fall back to a cheaper estimator, or record the
/// task as failed — they do not die.
class ResourceExhausted : public std::runtime_error {
 public:
  ResourceExhausted(std::string site, const std::string& what)
      : std::runtime_error(what), site_(std::move(site)) {}

  /// Stable identifier of the limit that fired ("bdd-limit", "deadline",
  /// "exact-overrun", or the checkpoint name for injected faults).
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// One armed fault: fire at `site` in the task with deterministic id
/// `ordinal`.
struct FaultInjection {
  std::string site;
  long ordinal = 0;
};

/// Parse "<site>:<ordinal>[,<site>:<ordinal>...]". Throws
/// std::runtime_error on malformed input (typos should fail fast, not
/// silently disarm a CI fault test).
inline std::vector<FaultInjection> parse_fault_injections(
    std::string_view spec) {
  std::vector<FaultInjection> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= item.size())
      throw std::runtime_error("bad fault injection '" + std::string(item) +
                               "' (want <site>:<ordinal>)");
    FaultInjection f;
    f.site = std::string(item.substr(0, colon));
    const std::string nth(item.substr(colon + 1));
    std::size_t used = 0;
    try {
      f.ordinal = std::stol(nth, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != nth.size() || f.ordinal < 0)
      throw std::runtime_error("bad fault injection ordinal '" + nth + "'");
    out.push_back(std::move(f));
  }
  return out;
}

/// Read MINPOWER_INJECT_FAULT afresh (no caching — tests set and clear the
/// variable between runs in one process).
inline std::vector<FaultInjection> fault_injections_from_env() {
  const char* spec = std::getenv("MINPOWER_INJECT_FAULT");
  if (spec == nullptr || spec[0] == '\0') return {};
  return parse_fault_injections(spec);
}

class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  /// BDD node cap applied to every BddManager built while this budget is
  /// current.
  std::size_t bdd_node_limit = kDefaultBddNodeLimit;

  /// Wall-clock deadline; Clock::time_point::max() = none.
  Clock::time_point deadline = Clock::time_point::max();

  /// Checkpoint-count cap; 0 = unlimited.
  std::size_t step_limit = 0;

  /// Deterministic task id used for fault-injection matching (-1 = no
  /// injection can match).
  long ordinal = -1;

  /// Human-readable owner ("alu2/activity[1]"), reported in diagnostics.
  std::string label;

  /// Arm every injection whose ordinal matches this budget. A "deadline"
  /// injection expires the deadline immediately so the next checkpoint
  /// fails through the genuine deadline path.
  void arm(const std::vector<FaultInjection>& table) {
    for (const FaultInjection& f : table) {
      if (f.ordinal != ordinal) continue;
      armed_.push_back(f.site);
      if (f.site == "deadline") deadline = Clock::now() - std::chrono::hours(1);
    }
  }

  bool injected(std::string_view site) const {
    for (const std::string& s : armed_)
      if (s == site) return true;
    return false;
  }

  std::size_t steps() const { return steps_; }

  /// One unit of forward progress at `site`. Throws ResourceExhausted when
  /// the step budget or the deadline is exhausted, or when a fault is
  /// injected at this site.
  void checkpoint(const char* site) {
    ++steps_;
    if (step_limit != 0 && steps_ > step_limit)
      throw ResourceExhausted(
          site, label + ": step budget exhausted (" +
                    std::to_string(step_limit) + " checkpoints) at " + site);
    if (deadline != Clock::time_point::max() && Clock::now() > deadline)
      throw ResourceExhausted(
          "deadline", label + ": deadline exceeded after " +
                          std::to_string(steps_) + " checkpoints at " + site);
    if (injected(site))
      throw ResourceExhausted(
          site, label + ": injected fault at " + site + ":" +
                    std::to_string(ordinal));
  }

  /// The budget governing the calling thread's current task, or nullptr.
  static Budget* current() { return current_slot(); }

 private:
  friend class BudgetScope;
  static Budget*& current_slot() {
    thread_local Budget* current = nullptr;
    return current;
  }

  std::vector<std::string> armed_;
  std::size_t steps_ = 0;
};

/// RAII: makes `b` the calling thread's current budget; restores the
/// previous one (nesting supported — the engine's halved-cap retry runs a
/// copy under a nested scope).
class BudgetScope {
 public:
  explicit BudgetScope(Budget& b) : prev_(Budget::current_slot()) {
    Budget::current_slot() = &b;
  }
  ~BudgetScope() { Budget::current_slot() = prev_; }
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  Budget* prev_;
};

/// Checkpoint against the current budget, if any. Every call also bumps the
/// per-site metrics counter `budget.checkpoint.<site>` (a progress measure
/// that is deterministic across thread counts), budget or not.
inline void budget_checkpoint(const char* site) {
  metrics::count_checkpoint(site);
  if (Budget* b = Budget::current()) b->checkpoint(site);
}

}  // namespace minpower
