#pragma once
// String helpers shared by the BLIF / genlib parsers and the table printers.

#include <charconv>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace minpower {

/// Split `s` on any run of characters from `delims`, skipping empty fields.
inline std::vector<std::string_view> split_ws(std::string_view s,
                                              std::string_view delims = " \t\r\n") {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    const std::size_t start = s.find_first_not_of(delims, i);
    if (start == std::string_view::npos) break;
    const std::size_t end = s.find_first_of(delims, start);
    out.push_back(s.substr(start, (end == std::string_view::npos ? s.size() : end) - start));
    i = (end == std::string_view::npos) ? s.size() : end;
  }
  return out;
}

inline std::string_view trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

inline std::optional<double> parse_double(std::string_view s) {
  // std::from_chars for double is available in libstdc++ >= 11.
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

inline std::optional<long> parse_long(std::string_view s) {
  long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace minpower
