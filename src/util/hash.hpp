#pragma once
// 128-bit streaming hash for cache keys (flow/session.hpp).
//
// Two independently-seeded 64-bit lanes, each advanced with a
// splitmix64-style finalizer per ingested word. The two lanes make
// accidental collisions across the session caches (where a collision would
// silently serve a wrong synthesis result) astronomically unlikely, at twice
// the mixing cost of a single 64-bit state — negligible next to the
// synthesis work the hash guards.
//
// This is NOT a cryptographic hash: keys are derived from trusted in-process
// network structures, not attacker-controlled input.

#include <cstdint>
#include <cstring>
#include <string_view>
#include <tuple>

namespace minpower {

/// splitmix64 finalizer: full-avalanche 64-bit mixing.
inline constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Hash128 {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  friend auto operator<=>(const Hash128& x, const Hash128& y) {
    return std::tie(x.a, x.b) <=> std::tie(y.a, y.b);
  }

  /// Collapse to one word (for unordered_map bucketing; the full 128 bits
  /// still back the equality check).
  std::uint64_t fold() const { return mix64(a ^ mix64(b)); }
};

struct Hash128Fold {
  std::size_t operator()(const Hash128& h) const {
    return static_cast<std::size_t>(h.fold());
  }
};

class StreamHash {
 public:
  StreamHash() = default;

  void u64(std::uint64_t v) {
    a_ = mix64(a_ ^ mix64(v + 0x2545f4914f6cdd1dULL));
    b_ = mix64(b_ ^ mix64(v + 0x9e6c63d0876a9a47ULL));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Bit pattern of a double (0.0 and -0.0 collapse so option fingerprints
  /// do not split on the sign of zero).
  void f64(double v) {
    std::uint64_t bits = 0;
    if (v != 0.0) std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed, so "ab","c" never collides with "a","bc".
  void str(std::string_view s) {
    u64(s.size());
    std::uint64_t word = 0;
    std::size_t i = 0;
    for (; i + 8 <= s.size(); i += 8) {
      std::memcpy(&word, s.data() + i, 8);
      u64(word);
    }
    if (i < s.size()) {
      word = 0;
      std::memcpy(&word, s.data() + i, s.size() - i);
      u64(word);
    }
  }

  void h128(const Hash128& h) {
    u64(h.a);
    u64(h.b);
  }

  Hash128 digest() const { return Hash128{mix64(a_), mix64(b_)}; }

 private:
  std::uint64_t a_ = 0x6a09e667f3bcc908ULL;  // distinct lane seeds
  std::uint64_t b_ = 0xbb67ae8584caa73bULL;
};

}  // namespace minpower
