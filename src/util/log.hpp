#pragma once
// Leveled, mutex-serialized stderr logger for the long-running layers
// (serve, shard supervisor). Replaces ad-hoc fprintf diagnostics so chaos
// tests and operators get parseable output:
//
//   [shard:info] worker 3 (pid 712) started, circuits 12..17
//
// One line per call, written with a single fwrite under a process-wide
// mutex, so concurrent connection handlers and the supervisor loop never
// interleave bytes. Level is `[component:level]`-tagged and gated by
// MINPOWER_LOG_LEVEL (error|warn|info|debug, or 0–3), default info; the
// env is read once at first use, set_level() overrides at runtime.
// Canonical stdout artifacts (reports, traces, exposition) never go
// through here — this is diagnostics only.

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace minpower::logging {

enum class Level : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

inline const char* level_name(Level l) {
  switch (l) {
    case Level::kError: return "error";
    case Level::kWarn: return "warn";
    case Level::kInfo: return "info";
    case Level::kDebug: return "debug";
  }
  return "?";
}

namespace log_detail {

inline Level level_from_env() {
  const char* env = std::getenv("MINPOWER_LOG_LEVEL");
  if (!env || !*env) return Level::kInfo;
  if (std::isdigit(static_cast<unsigned char>(env[0]))) {
    const long n = std::strtol(env, nullptr, 10);
    if (n <= 0) return Level::kError;
    if (n >= 3) return Level::kDebug;
    return static_cast<Level>(n);
  }
  std::string s(env);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "error") return Level::kError;
  if (s == "warn" || s == "warning") return Level::kWarn;
  if (s == "debug") return Level::kDebug;
  return Level::kInfo;
}

inline std::atomic<int>& level_slot() {
  static std::atomic<int> slot{static_cast<int>(level_from_env())};
  return slot;
}

inline std::mutex& mu() {
  static std::mutex m;
  return m;
}

}  // namespace log_detail

inline Level level() {
  return static_cast<Level>(
      log_detail::level_slot().load(std::memory_order_relaxed));
}
inline void set_level(Level l) {
  log_detail::level_slot().store(static_cast<int>(l),
                                 std::memory_order_relaxed);
}
inline bool enabled(Level l) {
  return static_cast<int>(l) <= static_cast<int>(level());
}

inline void vlogf(Level l, const char* component, const char* fmt,
                  va_list ap) {
  char msg[1024];
  std::vsnprintf(msg, sizeof msg, fmt, ap);
  char line[1200];
  const int n = std::snprintf(line, sizeof line, "[%s:%s] %s\n", component,
                              level_name(l), msg);
  if (n <= 0) return;
  std::lock_guard<std::mutex> lock(log_detail::mu());
  std::fwrite(line, 1, static_cast<std::size_t>(n) < sizeof line
                           ? static_cast<std::size_t>(n)
                           : sizeof line - 1,
              stderr);
}

#if defined(__GNUC__) || defined(__clang__)
#define MP_LOG_PRINTF(fmt_idx, arg_idx) \
  __attribute__((format(printf, fmt_idx, arg_idx)))
#else
#define MP_LOG_PRINTF(fmt_idx, arg_idx)
#endif

inline void logf(Level l, const char* component, const char* fmt, ...)
    MP_LOG_PRINTF(3, 4);
inline void logf(Level l, const char* component, const char* fmt, ...) {
  if (!enabled(l)) return;
  va_list ap;
  va_start(ap, fmt);
  vlogf(l, component, fmt, ap);
  va_end(ap);
}

inline void error(const char* component, const char* fmt, ...)
    MP_LOG_PRINTF(2, 3);
inline void error(const char* component, const char* fmt, ...) {
  if (!enabled(Level::kError)) return;
  va_list ap;
  va_start(ap, fmt);
  vlogf(Level::kError, component, fmt, ap);
  va_end(ap);
}

inline void warn(const char* component, const char* fmt, ...)
    MP_LOG_PRINTF(2, 3);
inline void warn(const char* component, const char* fmt, ...) {
  if (!enabled(Level::kWarn)) return;
  va_list ap;
  va_start(ap, fmt);
  vlogf(Level::kWarn, component, fmt, ap);
  va_end(ap);
}

inline void info(const char* component, const char* fmt, ...)
    MP_LOG_PRINTF(2, 3);
inline void info(const char* component, const char* fmt, ...) {
  if (!enabled(Level::kInfo)) return;
  va_list ap;
  va_start(ap, fmt);
  vlogf(Level::kInfo, component, fmt, ap);
  va_end(ap);
}

inline void debug(const char* component, const char* fmt, ...)
    MP_LOG_PRINTF(2, 3);
inline void debug(const char* component, const char* fmt, ...) {
  if (!enabled(Level::kDebug)) return;
  va_list ap;
  va_start(ap, fmt);
  vlogf(Level::kDebug, component, fmt, ap);
  va_end(ap);
}

}  // namespace minpower::logging
