#pragma once
// Small statistics accumulators used by the benchmark harnesses to report
// the aggregate numbers the paper quotes (average % power improvement etc.).

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace minpower {

/// Streaming mean/min/max/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  long long count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  long long n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of strictly positive samples; the standard way to average
/// per-circuit ratios (power improvement factors) across a benchmark suite.
class GeoMean {
 public:
  void add(double x) {
    MP_CHECK_MSG(x > 0.0, "geometric mean requires positive samples");
    log_sum_ += std::log(x);
    ++n_;
  }
  long long count() const { return n_; }
  double value() const {
    return n_ ? std::exp(log_sum_ / static_cast<double>(n_)) : 1.0;
  }

 private:
  double log_sum_ = 0.0;
  long long n_ = 0;
};

/// Percentage change helper: positive result means `b` is larger than `a`.
inline double percent_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return 100.0 * (b - a) / a;
}

}  // namespace minpower
