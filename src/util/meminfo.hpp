#pragma once
// Minimal /proc/<pid>/status sampler for OS-level memory telemetry
// (DESIGN.md §16). Reads the kernel's own accounting of a process —
// VmRSS (current resident set) and VmHWM (resident high-water mark) —
// which is what the OOM killer actually judges, as opposed to the
// deterministic byte-accounted BDD arena gauges in the metrics registry.
//
// These values are inherently non-deterministic (allocator, kernel page
// accounting, ASLR); they must NEVER enter the metrics registry or the
// canonical flow report. They travel only over the shard MEM wire record,
// the shard_metrics sidecar `memory` block, ph:"C" trace counters, and
// bench trajectory records.

#include <cstdio>
#include <cstring>
#include <string>

namespace minpower {

struct MemSample {
  std::size_t rss_kb = 0;  // VmRSS: current resident set size
  std::size_t hwm_kb = 0;  // VmHWM: peak resident set size
};

namespace meminfo_detail {

inline bool sample_status_file(const char* path, MemSample* out) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  MemSample s;
  bool saw_any = false;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long kb = 0;
    if (std::sscanf(line, "VmRSS: %lu", &kb) == 1) {
      s.rss_kb = kb;
      saw_any = true;
    } else if (std::sscanf(line, "VmHWM: %lu", &kb) == 1) {
      s.hwm_kb = kb;
      saw_any = true;
    }
    if (s.rss_kb != 0 && s.hwm_kb != 0) break;
  }
  std::fclose(f);
  if (!saw_any) return false;
  *out = s;
  return true;
}

}  // namespace meminfo_detail

/// Sample a process's memory from /proc/<pid>/status. Returns false (out
/// untouched) when the file is unreadable (process gone, non-Linux) or
/// neither field is present.
inline bool sample_process_memory(long pid, MemSample* out) {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc/%ld/status", pid);
  return meminfo_detail::sample_status_file(path, out);
}

/// Sample the calling process (workers self-sample on the heartbeat tick).
inline bool sample_self_memory(MemSample* out) {
  return meminfo_detail::sample_status_file("/proc/self/status", out);
}

}  // namespace minpower
