#include "map/mapped.hpp"

#include <algorithm>

namespace minpower {

double MappedNetwork::total_area() const {
  double a = 0.0;
  for (const MappedGateInst& g : gates) a += g.gate->area;
  return a;
}

int MappedNetwork::driver_of(NodeId signal) const {
  for (std::size_t i = 0; i < gates.size(); ++i)
    if (gates[i].root == signal) return static_cast<int>(i);
  return -1;
}

std::vector<bool> MappedNetwork::eval(
    const std::vector<bool>& pi_values) const {
  MP_CHECK(pi_values.size() == subject->pis().size());
  std::unordered_map<NodeId, bool> value;
  for (std::size_t i = 0; i < subject->pis().size(); ++i)
    value[subject->pis()[i]] = pi_values[i];
  for (NodeId id = 0; id < static_cast<NodeId>(subject->capacity()); ++id)
    if (subject->node(id).is_const())
      value[id] = subject->node(id).kind == NodeKind::kConstant1;

  for (const MappedGateInst& g : gates) {
    const std::vector<std::string> names = g.gate->function->variables();
    std::vector<bool> inputs;
    inputs.reserve(g.pin_nodes.size());
    for (NodeId s : g.pin_nodes) {
      const auto it = value.find(s);
      MP_CHECK_MSG(it != value.end(), "mapped gate reads an undriven signal");
      inputs.push_back(it->second);
    }
    value[g.root] = g.gate->function->eval(names, inputs);
  }

  std::vector<bool> out;
  out.reserve(po_signal.size());
  for (NodeId s : po_signal) {
    const auto it = value.find(s);
    MP_CHECK_MSG(it != value.end(), "mapped PO is undriven");
    out.push_back(it->second);
  }
  return out;
}

void MappedNetwork::check() const {
  std::unordered_map<NodeId, bool> defined;
  for (NodeId pi : subject->pis()) defined[pi] = true;
  for (NodeId id = 0; id < static_cast<NodeId>(subject->capacity()); ++id)
    if (subject->node(id).is_const()) defined[id] = true;
  for (const MappedGateInst& g : gates) {
    MP_CHECK(g.gate != nullptr);
    MP_CHECK(static_cast<int>(g.pin_nodes.size()) == g.gate->num_inputs());
    for (NodeId s : g.pin_nodes)
      MP_CHECK_MSG(defined.contains(s), "gate pin reads later/undriven signal");
    MP_CHECK_MSG(!defined.contains(g.root), "signal driven twice");
    defined[g.root] = true;
  }
  for (NodeId s : po_signal) MP_CHECK(defined.contains(s));
}

}  // namespace minpower
