#pragma once
// Power-efficient technology mapping (Section 3).
//
// Curves of non-inferior (arrival, cost) points are computed for every
// subject node in postorder (Sec. 3.2.1), where cost is either accumulated
// average power (pd-map, Method 1 of Sec. 3.1) or accumulated area (the
// ad-map baseline of Chaudhary–Pedram that Methods I–III use). A preorder
// pass (Sec. 3.2.2) then selects, for each primary output's required time,
// the minimum-cost realization, applying the unknown-load timing
// recalculation of Sec. 3.2.3 (arrival shift = Δload × drive).
//
// DAG handling (Sec. 3.3): matches never swallow multi-fanout nodes; the
// two published heuristics differ in how a multi-fanout input's accumulated
// cost is charged — once per reader (tree partition, DAGON-style) or
// divided by its fanout count (the MIS-style heuristic the paper adopts).
// Under Method 1 the fanout edge's own load power is never divided.

#include <vector>

#include "map/curve.hpp"
#include "map/mapped.hpp"
#include "map/match.hpp"
#include "prob/probability.hpp"

namespace minpower {

enum class MapObjective {
  kPower,  // pd-map: minimize average power under timing constraints
  kArea,   // ad-map: minimize area under timing constraints (baseline)
};

enum class DagHeuristic {
  kTreePartition,   // charge shared cones fully at every reader
  kFanoutDivision,  // divide shared cone cost by fanout count (paper's pick)
};

/// The two ways of accumulating power during curve construction (Sec. 3.1).
/// Method 1 (Eq. 15) charges each input's output-net power at the consuming
/// match — exact under the zero-delay model, and the fanout-edge power is
/// never divided in DAG mode. Method 2 (Eq. 16) charges the node's own
/// output power with the default ("unknown") load — less accurate, and its
/// fanout-edge power gets divided by the fanout count. The paper adopts
/// Method 1; Method 2 is kept for the ablation.
enum class PowerAccounting { kMethod1, kMethod2 };

enum class RequiredTimePolicy {
  kUnconstrained,    // pick the cheapest point everywhere
  kMinDelay,         // required = fastest achievable arrival per PO
  kRelaxedMinDelay,  // required = fastest · relax_factor (default flow)
};

struct MapOptions {
  MapObjective objective = MapObjective::kPower;
  DagHeuristic dag = DagHeuristic::kFanoutDivision;
  CircuitStyle style = CircuitStyle::kStatic;
  PowerAccounting accounting = PowerAccounting::kMethod1;

  double vdd = 5.0;           // volts
  double t_cycle = 50e-9;     // seconds (20 MHz)
  double po_load = 2.0;       // unit loads hanging on each primary output

  // Curve ε-pruning: a point is dropped only when it is within epsilon_t of
  // the kept neighbor on the time axis AND saves less than epsilon_c on the
  // cost axis. epsilon_c = 0 keeps every non-inferior point.
  double epsilon_t = 0.02;    // time axis (ns)
  double epsilon_c = 1e-3;    // cost axis (µW or area units)

  // Hard cap on per-node curve width (0 = unlimited). ε-pruning only bounds
  // local redundancy: on deep chain-like subjects the cumulative cost spread
  // grows with depth, curves widen linearly, and the mapper goes quadratic.
  // When set, curves wider than the cap are thinned to evenly spaced points
  // (endpoints always kept) after each node's pruning pass.
  std::size_t max_curve_points = 0;

  RequiredTimePolicy policy = RequiredTimePolicy::kRelaxedMinDelay;
  double relax_factor = 1.15;
  std::vector<double> po_required;  // explicit required times (overrides)
  std::vector<double> pi_arrival;   // per-PI arrival; empty → 0
  std::vector<double> pi_prob1;     // per-PI 1-probability; empty → 0.5

  /// Precomputed per-subject-node switching activities (indexed by NodeId).
  /// Empty → computed internally from the BDDs; callers that score several
  /// mappings of one subject should compute once and share.
  std::vector<double> activities;
};

struct MapResult {
  MappedNetwork mapped;
  std::vector<double> po_required_used;  // constraint actually applied
  std::size_t total_curve_points = 0;    // post-pruning, for the ε ablation
  std::size_t total_matches = 0;
  std::size_t max_curve_points = 0;      // widest per-node curve seen
};

/// Map a NAND2/INV subject network onto `lib`. The subject must satisfy
/// Network::is_nand_network(); every PO must be reachable from gates or PIs.
MapResult map_network(const Network& subject, const Library& lib,
                      const MapOptions& options);

/// Per-µW scaling of Eq. 1 for a load in capacitance units:
/// 0.5 · C · Vdd² / Tcycle · E, reported in micro-Watts.
inline double load_power_uw(double cap_units, double activity, double vdd,
                            double t_cycle) {
  return 0.5 * cap_units * kUnitCapFarads * vdd * vdd / t_cycle * activity *
         1e6;
}

}  // namespace minpower
