#pragma once
// Power-delay (or area-delay) curves: sets of non-inferior
// (arrival, cost) points per subject node (Sec. 3.1, Lemma 3.1).
//
// A point additionally records how it is realized — the match index at the
// node, the chosen point index on each input's curve, and the drive
// resistance of the matched gate — so the preorder pass can rebuild the
// mapping and the unknown-load recalculation (Sec. 3.2.3) can shift the
// point's arrival by Δload × drive.

#include <vector>

#include "util/check.hpp"

namespace minpower {

struct CurvePoint {
  double arrival = 0.0;  // at the node output, under the default load
  double cost = 0.0;     // accumulated power (Method 1) or area
  int match = -1;        // index into the node's match list (-1 for leaves)
  std::vector<int> input_point;  // chosen curve point per match input pin
  double drive = 0.0;    // max drive resistance R of the matched gate
};

class Curve {
 public:
  const std::vector<CurvePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const CurvePoint& operator[](std::size_t i) const { return points_[i]; }

  /// Insert keeping only non-inferior points; points_ stays sorted by
  /// arrival ascending (hence cost strictly descending).
  void insert(CurvePoint p);

  /// Would `insert` keep a point with this (arrival, cost)? Lets hot
  /// callers skip constructing the realization bookkeeping for points the
  /// curve would reject as inferior.
  bool admissible(double arrival, double cost) const;

  /// Drop points approximated by the previously kept point on both axes:
  /// arrival within `epsilon_t` AND cost saving below `epsilon_c`
  /// (Sec. 3.2.1's ε-pruning). A point that is barely slower but much
  /// cheaper is kept. Endpoints (fastest and cheapest) are always kept;
  /// `epsilon_c == 0` disables pruning entirely.
  void prune(double epsilon_t, double epsilon_c);

  /// Thin the curve to at most `max_points` by keeping evenly spaced
  /// indices (always including the fastest and cheapest endpoints).
  /// Deterministic; a no-op when the curve already fits. The ε-pruning
  /// above bounds *local* redundancy, this bounds the absolute width —
  /// on deep chain-like subjects cumulative cost spread grows with depth,
  /// so unbounded curves make the mapper quadratic in depth.
  void downsample(std::size_t max_points);

  /// Index of the cheapest point with arrival ≤ `required` after shifting
  /// each point by `load_shift × point.drive`; −1 when none qualifies.
  int best_within(double required, double load_shift = 0.0) const;

  /// Index of the minimum-arrival point (−1 when empty).
  int fastest() const;
  /// Index of the minimum-cost point (−1 when empty).
  int cheapest() const;

 private:
  std::vector<CurvePoint> points_;
};

}  // namespace minpower
