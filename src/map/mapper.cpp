#include "map/mapper.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"

namespace minpower {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct InputCand {
  double t;      // contribution to the node's output arrival
  double cost;   // accumulated cost if this input point is chosen
  int point;     // index on the input's curve
};

}  // namespace

MapResult map_network(const Network& subject, const Library& lib,
                      const MapOptions& options) {
  trace::Span span("map", "map");
  span.arg("network", subject.name());
  metrics::counter("map.passes").add(1);
  subject.check();
  for (NodeId id = 0; id < static_cast<NodeId>(subject.capacity()); ++id) {
    const Node& n = subject.node(id);
    if (n.is_internal())
      MP_CHECK_MSG(subject.is_nand2(id) || subject.is_inv(id),
                   "mapper requires a NAND2/INV subject network");
  }

  const std::vector<double> activity =
      options.activities.empty()
          ? switching_activities(subject, options.style, options.pi_prob1)
          : options.activities;
  MP_CHECK(activity.size() == subject.capacity());
  const double c_def = lib.default_load();
  const std::vector<NodeId> topo = subject.topo_order();

  MapResult result;
  std::size_t points_pruned = 0;
  std::vector<Curve> curve(subject.capacity());
  std::vector<std::vector<Match>> matches(subject.capacity());

  // Scratch reused across matches/nodes: the inner loop runs millions of
  // times per pass, so per-match allocations dominate otherwise.
  std::vector<std::vector<InputCand>> cands;
  std::vector<double> ts;
  std::vector<int> chosen;

  // ---- postorder: power-delay / area-delay curves --------------------------
  for (NodeId id : topo) {
    budget_checkpoint("map");
    const Node& n = subject.node(id);
    if (n.is_pi() || n.is_const()) {
      CurvePoint p;
      if (n.is_pi()) {
        const auto it =
            std::find(subject.pis().begin(), subject.pis().end(), id);
        const std::size_t pi_index =
            static_cast<std::size_t>(it - subject.pis().begin());
        p.arrival = options.pi_arrival.empty() ? 0.0
                                               : options.pi_arrival[pi_index];
      }
      curve[static_cast<std::size_t>(id)].insert(p);
      continue;
    }

    std::vector<Match>& ms = matches[static_cast<std::size_t>(id)];
    ms = find_matches(subject, id, lib);
    // Degenerate (zero-size) patterns are rejected by the matcher caller:
    std::erase_if(ms, [](const Match& m) {
      return m.covered.empty();
    });
    MP_CHECK_MSG(!ms.empty(), "no match at subject node (library too small)");
    result.total_matches += ms.size();
    // Per-node registry lookups are too hot for the inner loop; accumulate
    // locally and flush once per pass (handles stay valid across reset()).
    static metrics::Histogram& matches_per_node =
        metrics::histogram("map.matches_per_node");
    matches_per_node.record(ms.size());

    Curve& out = curve[static_cast<std::size_t>(id)];
    for (std::size_t mi = 0; mi < ms.size(); ++mi) {
      const Match& m = ms[mi];
      const std::vector<GatePin>& pins = m.gate->pins;
      const int k = m.gate->num_inputs();

      // Candidate (t, cost) list per input, sorted by t with prefix-min cost.
      if (cands.size() < static_cast<std::size_t>(k))
        cands.resize(static_cast<std::size_t>(k));
      bool feasible = true;
      for (int i = 0; i < k && feasible; ++i) {
        const NodeId s = m.pin_binding[static_cast<std::size_t>(i)];
        const Curve& in = curve[static_cast<std::size_t>(s)];
        MP_CHECK(!in.empty());
        const double load_shift = pins[static_cast<std::size_t>(i)].cap - c_def;
        const int fo = subject.fanout_count(s);
        const bool divide = options.dag == DagHeuristic::kFanoutDivision &&
                            subject.node(s).is_internal() && fo > 1;
        auto& list = cands[static_cast<std::size_t>(i)];
        list.clear();
        for (std::size_t pi = 0; pi < in.size(); ++pi) {
          const CurvePoint& p = in[pi];
          InputCand c;
          // Timing recalculation (Sec. 3.2.3): the input now drives this
          // pin's capacitance instead of the default load.
          c.t = pins[static_cast<std::size_t>(i)].intrinsic +
                pins[static_cast<std::size_t>(i)].drive * c_def +
                (p.arrival + load_shift * p.drive);
          c.cost = divide ? p.cost / fo : p.cost;
          if (options.objective == MapObjective::kPower &&
              options.accounting == PowerAccounting::kMethod1) {
            // Method 1 (Eq. 15): charge the input's output-load power here;
            // the fanout-edge term is never divided (Sec. 3.1 discussion).
            c.cost += load_power_uw(pins[static_cast<std::size_t>(i)].cap,
                                    activity[static_cast<std::size_t>(s)],
                                    options.vdd, options.t_cycle);
          }
          c.point = static_cast<int>(pi);
          list.push_back(c);
        }
        std::sort(list.begin(), list.end(),
                  [](const InputCand& a, const InputCand& b) {
                    return a.t < b.t;
                  });
        // Prefix-min on cost: list[j] becomes "cheapest with t <= list[j].t".
        for (std::size_t j = 1; j < list.size(); ++j)
          if (list[j - 1].cost < list[j].cost) {
            list[j].cost = list[j - 1].cost;
            list[j].point = list[j - 1].point;
          }
        if (list.empty()) feasible = false;
      }
      if (!feasible) continue;

      // Output arrival candidates: every input candidate t is a breakpoint.
      ts.clear();
      for (int i = 0; i < k; ++i)
        for (const InputCand& c : cands[static_cast<std::size_t>(i)])
          ts.push_back(c.t);
      std::sort(ts.begin(), ts.end());
      ts.erase(std::unique(ts.begin(), ts.end()), ts.end());

      chosen.resize(static_cast<std::size_t>(k));
      for (double t : ts) {
        double cost =
            options.objective == MapObjective::kArea ? m.gate->area : 0.0;
        if (options.objective == MapObjective::kPower &&
            options.accounting == PowerAccounting::kMethod2) {
          // Method 2 (Eq. 16): the node's own output power with the default
          // (unknown) load; inherits the fanout division of its readers.
          cost += load_power_uw(c_def, activity[static_cast<std::size_t>(id)],
                                options.vdd, options.t_cycle);
        }
        bool ok = true;
        for (int i = 0; i < k && ok; ++i) {
          const auto& list = cands[static_cast<std::size_t>(i)];
          // Last candidate with t_i <= t (they are sorted by t, prefix-min).
          const auto it = std::upper_bound(
              list.begin(), list.end(), t,
              [](double x, const InputCand& c) { return x < c.t; });
          if (it == list.begin()) {
            ok = false;
            break;
          }
          const InputCand& c = *(it - 1);
          cost += c.cost;
          chosen[static_cast<std::size_t>(i)] = c.point;
        }
        if (!ok) continue;
        // Only materialize a point the curve would keep: the realization
        // vector allocation is the hottest allocation of the whole pass.
        if (!out.admissible(t, cost)) continue;
        CurvePoint p;
        p.arrival = t;
        p.cost = cost;
        p.match = static_cast<int>(mi);
        p.input_point.assign(chosen.begin(),
                             chosen.begin() + static_cast<std::ptrdiff_t>(k));
        p.drive = m.gate->max_drive();
        out.insert(std::move(p));
      }
    }
    const std::size_t before_prune = out.size();
    out.prune(options.epsilon_t, options.epsilon_c);
    if (options.max_curve_points != 0) out.downsample(options.max_curve_points);
    MP_CHECK(!out.empty());
    result.total_curve_points += out.size();
    points_pruned += before_prune - out.size();
    if (out.size() > result.max_curve_points) result.max_curve_points = out.size();
  }
  metrics::counter("map.match_attempts").add(result.total_matches);
  metrics::counter("map.curve_points_kept").add(result.total_curve_points);
  metrics::counter("map.curve_points_pruned").add(points_pruned);
  metrics::gauge("map.curve_points_max").record_max(result.max_curve_points);

  // ---- required times at the primary outputs -------------------------------
  std::vector<double> load(subject.capacity(), 0.0);  // committed loads
  for (const PrimaryOutput& po : subject.pos())
    load[static_cast<std::size_t>(po.driver)] += options.po_load;

  std::vector<double> required(subject.capacity(), kInf);
  result.po_required_used.resize(subject.pos().size(), kInf);
  for (std::size_t j = 0; j < subject.pos().size(); ++j) {
    const NodeId d = subject.pos()[j].driver;
    const Curve& c = curve[static_cast<std::size_t>(d)];
    double req = kInf;
    if (!options.po_required.empty()) {
      req = options.po_required[j];
    } else if (options.policy != RequiredTimePolicy::kUnconstrained) {
      // Fastest achievable arrival at this PO, accounting for the PO load.
      const double shift = load[static_cast<std::size_t>(d)] - c_def;
      double tmin = kInf;
      for (std::size_t i = 0; i < c.size(); ++i)
        tmin = std::min(tmin, c[i].arrival + shift * c[i].drive);
      req = options.policy == RequiredTimePolicy::kMinDelay
                ? tmin
                : tmin * options.relax_factor;
    }
    result.po_required_used[j] = req;
    auto& r = required[static_cast<std::size_t>(d)];
    r = std::min(r, req);
  }

  // ---- preorder (reverse-topological) gate selection ------------------------
  // Readers are selected before their inputs, so by the time a node is
  // selected every committed pin load on it is known exactly — the
  // incremental load recalculation of Sec. 3.3.
  std::vector<char> needed(subject.capacity(), 0);
  std::vector<int> chosen_point(subject.capacity(), -1);
  for (const PrimaryOutput& po : subject.pos())
    needed[static_cast<std::size_t>(po.driver)] = 1;

  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId id = *it;
    if (!needed[static_cast<std::size_t>(id)]) continue;
    const Node& n = subject.node(id);
    if (!n.is_internal()) continue;

    const Curve& c = curve[static_cast<std::size_t>(id)];
    const double shift = load[static_cast<std::size_t>(id)] - c_def;
    int idx = c.best_within(required[static_cast<std::size_t>(id)], shift);
    if (idx < 0) {
      // Timing infeasible: take the fastest realization.
      idx = 0;
      double best = kInf;
      for (std::size_t i = 0; i < c.size(); ++i) {
        const double t = c[i].arrival + shift * c[i].drive;
        if (t < best) {
          best = t;
          idx = static_cast<int>(i);
        }
      }
    }
    chosen_point[static_cast<std::size_t>(id)] = idx;

    const CurvePoint& p = c[static_cast<std::size_t>(idx)];
    const Match& m =
        matches[static_cast<std::size_t>(id)][static_cast<std::size_t>(p.match)];
    for (int i = 0; i < m.gate->num_inputs(); ++i) {
      const NodeId s = m.pin_binding[static_cast<std::size_t>(i)];
      needed[static_cast<std::size_t>(s)] = 1;
      load[static_cast<std::size_t>(s)] +=
          m.gate->pins[static_cast<std::size_t>(i)].cap;
      const double req_i = required[static_cast<std::size_t>(id)] -
                           m.gate->pins[static_cast<std::size_t>(i)].intrinsic -
                           m.gate->pins[static_cast<std::size_t>(i)].drive *
                               load[static_cast<std::size_t>(id)];
      auto& r = required[static_cast<std::size_t>(s)];
      r = std::min(r, req_i);
    }
  }

  // ---- emit the mapped netlist ----------------------------------------------
  MappedNetwork& mn = result.mapped;
  mn.subject = &subject;
  mn.lib = &lib;
  for (NodeId id : topo) {
    if (!needed[static_cast<std::size_t>(id)]) continue;
    if (chosen_point[static_cast<std::size_t>(id)] < 0) continue;
    const Curve& c = curve[static_cast<std::size_t>(id)];
    const CurvePoint& p =
        c[static_cast<std::size_t>(chosen_point[static_cast<std::size_t>(id)])];
    const Match& m =
        matches[static_cast<std::size_t>(id)][static_cast<std::size_t>(p.match)];
    MappedGateInst inst;
    inst.gate = m.gate;
    inst.root = id;
    inst.pin_nodes = m.pin_binding;
    mn.gates.push_back(std::move(inst));
  }
  for (const PrimaryOutput& po : subject.pos())
    mn.po_signal.push_back(po.driver);
  mn.check();
  span.arg("matches", static_cast<unsigned long long>(result.total_matches));
  span.arg("curve_points",
           static_cast<unsigned long long>(result.total_curve_points));
  return result;
}

}  // namespace minpower
