#pragma once
// The result of technology mapping: a gate-level netlist over a library.
//
// Signals are identified by subject-graph node ids: every mapped gate
// implements the function of one subject node (its root), and reads signals
// that are either subject PIs/constants or roots of other mapped gates.

#include <unordered_map>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace minpower {

struct MappedGateInst {
  const Gate* gate = nullptr;
  NodeId root = kNoNode;            // subject node implemented
  std::vector<NodeId> pin_nodes;    // signal per pin (Gate::pins order)
};

struct MappedNetwork {
  const Network* subject = nullptr;
  const Library* lib = nullptr;
  /// Gates in topological order (pin signals precede their reader).
  std::vector<MappedGateInst> gates;
  /// Driver signal per subject PO (subject node id; a PI, constant, or
  /// some gate's root).
  std::vector<NodeId> po_signal;

  std::size_t num_gates() const { return gates.size(); }
  double total_area() const;

  /// gate index driving a signal; −1 for PIs/constants.
  int driver_of(NodeId signal) const;

  /// Evaluate the netlist on PI values (subject PI order) by gate-function
  /// simulation. Used to verify the mapping preserves network function.
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

  /// Structural sanity: every pin signal is a PI, constant, or an earlier
  /// gate's root; every PO signal is driven. Aborts on violation.
  void check() const;
};

}  // namespace minpower
