#include "map/match.hpp"

#include <algorithm>

namespace minpower {

namespace {

struct MatchState {
  const Network* net = nullptr;
  std::vector<NodeId> binding;   // per pin
  std::vector<NodeId> covered;   // internal nodes consumed (excluding root)
};

/// Try to match `pat` rooted at subject `node`. `is_root` differentiates the
/// match root (fanout unconstrained) from interior nodes (must be exclusive
/// to the match).
bool match_rec(const Pattern& pat, NodeId node, bool is_root, MatchState& st) {
  const Network& net = *st.net;
  if (pat.kind == Pattern::Kind::kLeaf) {
    NodeId& slot = st.binding[static_cast<std::size_t>(pat.pin)];
    if (slot == kNoNode) {
      slot = node;
      return true;
    }
    return slot == node;  // leaf-DAG patterns: repeated pin must rebind same
  }
  // Interior subject nodes consumed by the pattern must not feed anything
  // outside the match.
  if (!is_root && net.fanout_count(node) != 1) return false;
  if (pat.kind == Pattern::Kind::kInv) {
    if (!net.is_inv(node)) return false;
    st.covered.push_back(node);
    return match_rec(*pat.child[0], net.node(node).fanins[0], false, st);
  }
  // NAND: try both input orders.
  if (!net.is_nand2(node)) return false;
  st.covered.push_back(node);
  const NodeId a = net.node(node).fanins[0];
  const NodeId b = net.node(node).fanins[1];
  const MatchState saved = st;
  if (match_rec(*pat.child[0], a, false, st) &&
      match_rec(*pat.child[1], b, false, st))
    return true;
  st = saved;  // snapshot already contains `node`
  if (match_rec(*pat.child[0], b, false, st) &&
      match_rec(*pat.child[1], a, false, st))
    return true;
  st = saved;
  return false;
}

}  // namespace

std::vector<Match> find_matches(const Network& subject, NodeId n,
                                const Library& lib) {
  std::vector<Match> out;
  if (!subject.node(n).is_internal()) return out;
  for (const Gate& g : lib.gates()) {
    for (const auto& pat : g.patterns) {
      MatchState st;
      st.net = &subject;
      st.binding.assign(static_cast<std::size_t>(g.num_inputs()), kNoNode);
      if (!match_rec(*pat, n, true, st)) continue;
      // All pins must be bound (patterns mention every pin by construction,
      // but guard anyway).
      if (std::find(st.binding.begin(), st.binding.end(), kNoNode) !=
          st.binding.end())
        continue;
      Match m;
      m.gate = &g;
      m.pin_binding = std::move(st.binding);
      m.covered = std::move(st.covered);
      std::sort(m.covered.begin(), m.covered.end());
      m.covered.erase(std::unique(m.covered.begin(), m.covered.end()),
                      m.covered.end());
      // Deduplicate identical (gate, binding) pairs arising from several
      // patterns of the same gate.
      bool dup = false;
      for (const Match& prev : out)
        if (prev.gate == m.gate && prev.pin_binding == m.pin_binding &&
            prev.covered == m.covered) {
          dup = true;
          break;
        }
      if (!dup) out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace minpower
