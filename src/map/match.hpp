#pragma once
// Structural matching of library gate patterns against a NAND2/INV subject
// graph (Figure 2 terminology: merged(n,g) and inputs(n,g)).

#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace minpower {

struct Match {
  const Gate* gate = nullptr;
  /// Subject node bound to each gate pin (pin order = Gate::pins order).
  std::vector<NodeId> pin_binding;
  /// merged(n,g): subject nodes covered by the match, root included.
  std::vector<NodeId> covered;
};

/// All matches of library gates at subject node `n`.
///
/// A match is admissible when every covered node other than the root has a
/// single reader inside the match (covering a multi-fanout node would force
/// logic duplication); `inputs(n,g)` — the pin bindings — may be any nodes,
/// including multi-fanout ones and PIs.
std::vector<Match> find_matches(const Network& subject, NodeId n,
                                const Library& lib);

}  // namespace minpower
