#include "map/curve.hpp"

#include <algorithm>
#include <limits>

namespace minpower {

void Curve::insert(CurvePoint p) {
  // Position by arrival.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), p.arrival,
      [](const CurvePoint& q, double t) { return q.arrival < t; });
  // Inferior to an existing point (faster-or-equal and cheaper-or-equal)?
  // points_ is sorted by arrival ascending with cost strictly descending,
  // so the immediate predecessor is the cheapest earlier point: one probe
  // decides what a whole prefix scan used to.
  if (it != points_.begin() && std::prev(it)->cost <= p.cost) return;
  if (it != points_.end() && it->arrival == p.arrival && it->cost <= p.cost)
    return;
  // Remove points the new one dominates (slower and not cheaper).
  const auto first_dominated = it;
  auto last_dominated = it;
  while (last_dominated != points_.end() && last_dominated->cost >= p.cost)
    ++last_dominated;
  it = points_.erase(first_dominated, last_dominated);
  points_.insert(it, std::move(p));
}

void Curve::prune(double epsilon_t, double epsilon_c) {
  if (points_.size() <= 2) return;
  std::vector<CurvePoint> kept;
  kept.push_back(points_.front());  // fastest
  for (std::size_t i = 1; i + 1 < points_.size(); ++i) {
    const CurvePoint& prev = kept.back();
    const CurvePoint& cur = points_[i];
    // Drop only when the kept point approximates `cur` on BOTH axes: barely
    // slower AND barely cheaper. A point that is barely slower but much
    // cheaper carries real information and must survive.
    const bool barely_slower = cur.arrival - prev.arrival < epsilon_t;
    const bool barely_cheaper = prev.cost - cur.cost < epsilon_c;
    if (barely_slower && barely_cheaper) continue;
    kept.push_back(cur);
  }
  kept.push_back(points_.back());  // cheapest
  points_ = std::move(kept);
}

void Curve::downsample(std::size_t max_points) {
  if (max_points < 2 || points_.size() <= max_points) return;
  std::vector<CurvePoint> kept;
  kept.reserve(max_points);
  // i-th kept point = round(i · (n−1) / (m−1)): index 0 (fastest) and
  // index n−1 (cheapest) are always selected exactly.
  const std::size_t n = points_.size();
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t src = (i * (n - 1) + (max_points - 1) / 2) /
                            (max_points - 1);
    if (!kept.empty() &&
        kept.back().arrival == points_[src].arrival &&
        kept.back().cost == points_[src].cost)
      continue;
    kept.push_back(std::move(points_[src]));
  }
  points_ = std::move(kept);
}

bool Curve::admissible(double arrival, double cost) const {
  // Mirror of insert's rejection logic, for callers that want to skip
  // building a full CurvePoint (match bookkeeping, the input_point vector)
  // for a candidate that would be dropped anyway.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), arrival,
      [](const CurvePoint& q, double t) { return q.arrival < t; });
  if (it != points_.begin() && std::prev(it)->cost <= cost) return false;
  if (it != points_.end() && it->arrival == arrival && it->cost <= cost)
    return false;
  return true;
}

int Curve::best_within(double required, double load_shift) const {
  int best = -1;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double t = points_[i].arrival + load_shift * points_[i].drive;
    if (t <= required && points_[i].cost < best_cost) {
      best_cost = points_[i].cost;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int Curve::fastest() const {
  if (points_.empty()) return -1;
  // Shifts are uniform in sign; the unshifted fastest is index 0, but with
  // per-point drives the shifted minimum can move — scan to stay correct.
  int best = 0;
  for (std::size_t i = 1; i < points_.size(); ++i)
    if (points_[i].arrival < points_[static_cast<std::size_t>(best)].arrival)
      best = static_cast<int>(i);
  return best;
}

int Curve::cheapest() const {
  if (points_.empty()) return -1;
  int best = 0;
  for (std::size_t i = 1; i < points_.size(); ++i)
    if (points_[i].cost < points_[static_cast<std::size_t>(best)].cost)
      best = static_cast<int>(i);
  return best;
}

}  // namespace minpower
