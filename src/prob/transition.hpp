#pragma once
// Exact transition probabilities under a lag-one (Markov) input model.
//
// The paper's static-CMOS switching formulas (Eqs. 3, 10–13) are written in
// terms of signal transition probabilities w_{0->1}, w_{1->0}. Section 1.4
// then *assumes* the present input value is independent of the previous one
// (Eq. 3), which collapses the activity to 2·p·(1−p). This module implements
// the general case: each primary input is a stationary two-state Markov
// signal described by its 1-probability and its joint transition
// probability, and every node's exact transition probabilities are computed
// by a BDD over paired variables (x_k at level 2k, x'_k at level 2k+1) with
// a traversal that applies the conditional P(x'|x) whenever both ends of a
// pair lie on the path and the correct marginal when one is skipped.

#include <algorithm>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/network.hpp"

namespace minpower {

/// Stationary lag-one model of one PI.
/// State probabilities: P(x=1) = p1; joint transition P(x_t=0 ∧ x_{t+1}=1)
/// = p01. Stationarity forces P(1∧next 0) = p01 as well. Feasibility:
/// 0 ≤ p01 ≤ min(p1, 1−p1).
struct PiTemporalModel {
  double p1 = 0.5;
  double p01 = 0.25;

  /// Temporal independence (the paper's Eq. 3 default): p01 = (1−p1)·p1.
  static PiTemporalModel independent(double p1);

  /// Given a stationary probability and a per-cycle switching activity
  /// a = P(0→1) + P(1→0) = 2·p01.
  static PiTemporalModel with_activity(double p1, double activity);

  double p10() const { return p01; }  // stationarity
  double p00() const { return 1.0 - p1 - p01; }
  double p11() const { return p1 - p01; }
  /// Conditional P(x' = 1 | x = b).
  double cond_next1(bool b) const {
    return b ? (p1 > 0.0 ? p11() / p1 : 0.0)
             : (p1 < 1.0 ? p01 / (1.0 - p1) : 0.0);
  }
  double activity() const { return 2.0 * p01; }
  bool valid() const;
};

/// Exact transition behaviour of one node.
struct NodeTransition {
  double p1 = 0.0;   // P(f = 1)
  double p01 = 0.0;  // P(f_t = 0 ∧ f_{t+1} = 1)
  double p10 = 0.0;
  double activity() const { return p01 + p10; }
};

/// Probability of `f` = 1 where variable 2k is x_k and 2k+1 is x'_k,
/// distributed per `model[k]`. Exact; O(|BDD|) with pair-aware memoization.
double pair_probability(const BddManager& mgr, BddRef f,
                        const std::vector<PiTemporalModel>& model);

/// Exact per-node transition probabilities for every live node (indexed by
/// NodeId). Builds each node's function over current and next variables and
/// evaluates !f∧f' / f∧!f' under the pair distribution.
std::vector<NodeTransition> transition_probabilities(
    const Network& net, const std::vector<PiTemporalModel>& model);

}  // namespace minpower
