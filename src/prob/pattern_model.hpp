#pragma once
// Correlated primary-input model: a weighted pattern set.
//
// The paper (Secs. 1.2, 2.1.1, 5) motivates correlated inputs with finite
// state machines and instruction decoders, where "the correlations can be
// obtained from the opcode/state assignment or the state transition
// diagram". The natural machine-readable form of that information is a
// distribution over input vectors: each pattern is a (vector, weight) pair
// and weights sum to 1. From it we compute, exactly:
//   * the signal probability of every node,
//   * the pairwise joint probabilities P(x=1 ∧ y=1) of any node set —
//     the inputs the correlated Modified Huffman (Eqs. 7–9) needs.
//
// Internal-node evaluation uses the node's global BDD, so reconvergence is
// handled exactly; only the input distribution is approximated by the
// pattern set (exact when the set enumerates the reachable vectors, e.g.
// one pattern per opcode).

#include <vector>

#include "netlist/network.hpp"
#include "prob/joint.hpp"

namespace minpower {

struct InputPattern {
  std::vector<bool> values;  // one entry per PI (Network::pis() order)
  double weight = 0.0;       // probability mass of this vector
};

class PatternModel {
 public:
  /// Patterns must agree on width; weights are normalized to sum to 1.
  PatternModel(const Network& net, std::vector<InputPattern> patterns);

  /// Uniform independent model expressed as 2^n patterns (small n only) —
  /// the bridge for differential testing against the independent path.
  static PatternModel uniform(const Network& net);

  const Network& network() const { return *net_; }
  const std::vector<InputPattern>& patterns() const { return patterns_; }

  /// P(node = 1) under the pattern distribution.
  double probability(NodeId node) const;

  /// P(a = 1 ∧ b = 1).
  double joint(NodeId a, NodeId b) const;

  /// Joint-probability table over a node list, ready for
  /// modified_huffman_correlated.
  JointProbabilities joints(const std::vector<NodeId>& nodes) const;

  /// Per-node probabilities for all nodes (indexed by NodeId).
  std::vector<double> all_probabilities() const;

  /// P(cube over `fanins` evaluates to 1): exact under the pattern set.
  double cube_probability(const std::vector<NodeId>& fanins,
                          const Cube& cube) const;

  /// P(both cubes evaluate to 1).
  double cube_joint(const std::vector<NodeId>& fanins, const Cube& a,
                    const Cube& b) const;

 private:
  const Network* net_;
  std::vector<InputPattern> patterns_;
  // value_[p][node] = node value under pattern p.
  std::vector<std::vector<char>> value_;
};

}  // namespace minpower
