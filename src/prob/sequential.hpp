#pragma once
// State-line probabilities for sequential circuits.
//
// The paper evaluates ISCAS-89 circuits through their combinational cores:
// each latch output becomes a pseudo-PI and each latch input a pseudo-PO
// (our BLIF reader does the same, naming the pseudo-PO "<state>__next").
// Treating those pseudo-PIs as probability-0.5 inputs ignores the machine's
// dynamics; the standard refinement is a power-of-iteration fixpoint: set
// P(state) ← P(next-state function) and repeat until convergence, with the
// free PIs held at their given probabilities. This is exact for machines
// whose state lines are (approximately) independent — the same independence
// assumption the rest of the zero-delay model makes.

#include <vector>

#include "netlist/network.hpp"

namespace minpower {

/// One latch: PI position (Network::pis() order) of the state output and PO
/// position (Network::pos() order) of its next-state function.
struct LatchBinding {
  std::size_t pi_index = 0;
  std::size_t po_index = 0;
};

/// Infer latches by the reader's naming convention: PO "X__next" pairs with
/// PI "X".
std::vector<LatchBinding> infer_latches(const Network& net);

struct SequentialProbOptions {
  /// Probabilities of the free (non-latch) PIs; empty → 0.5.
  std::vector<double> free_pi_prob1;
  /// Initial state-line probabilities; empty → 0.5.
  std::vector<double> initial_state_prob1;
  int max_iterations = 500;
  double tolerance = 1e-9;
};

struct SequentialProbResult {
  /// Per-PI probabilities (latch PIs at their fixpoint values) — feed this
  /// to signal_probabilities / decompose_network / MapOptions::pi_prob1.
  std::vector<double> pi_prob1;
  int iterations = 0;
  bool converged = false;
};

SequentialProbResult sequential_pi_probabilities(
    const Network& net, const std::vector<LatchBinding>& latches,
    const SequentialProbOptions& options = {});

}  // namespace minpower
