#pragma once
// Exact signal probabilities and switching activities for Boolean networks.
//
// The paper's model (Sec. 1.2, 1.4): zero gate delay, no glitching,
// spatially independent primary inputs, and — for static CMOS — temporal
// independence of consecutive input vectors. Under that model:
//   * p-type domino:  E(node) = P(node = 1)                       (Eq. 5 ctx)
//   * n-type domino:  E(node) = P(node = 0)
//   * static CMOS:    E(node) = P(0→1) + P(1→0) = 2·p·(1−p)       (Eq. 3)
// Probabilities are computed exactly from the node's *global* function via
// the linear BDD traversal of Eq. 2, exactly as the Ghosh et al. estimator
// the paper uses for evaluation.

#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/network.hpp"

namespace minpower {

/// Circuit design style; selects the switching-activity formula.
enum class CircuitStyle {
  kDynamicP,  // domino, p logic block: switch when output evaluates to 1
  kDynamicN,  // domino, n logic block: switch when output evaluates to 0
  kStatic,    // static CMOS: both transitions count
};

/// Switching activity of a signal with 1-probability `p` under `style`.
inline double switching_activity(double p, CircuitStyle style) {
  switch (style) {
    case CircuitStyle::kDynamicP:
      return p;
    case CircuitStyle::kDynamicN:
      return 1.0 - p;
    case CircuitStyle::kStatic:
      return 2.0 * p * (1.0 - p);
  }
  return 0.0;
}

/// BDD variable index per PI (Network::pis() order), chosen by a depth-first
/// traversal from the primary outputs — the classic ordering heuristic that
/// keeps reconvergent-logic BDDs narrow.
std::vector<int> dfs_pi_variable_order(const Network& net);

/// Global BDDs for every node of a network. PIs get BDD variables in
/// DFS-from-outputs order; internal nodes are built in topological order by
/// composing their local SOP over fanin BDDs.
class NetworkBdds {
 public:
  NetworkBdds(BddManager& mgr, const Network& net);

  BddRef of(NodeId id) const {
    MP_CHECK(id >= 0 && id < static_cast<NodeId>(refs_.size()));
    return refs_[static_cast<std::size_t>(id)];
  }

  BddManager& manager() const { return mgr_; }

  /// BDD variable assigned to PI position i (Network::pis() order).
  int pi_variable(std::size_t i) const { return pi_var_order_[i]; }

  /// Permute a PI-position-indexed vector into BDD-variable indexing, as
  /// BddManager::probability expects.
  std::vector<double> to_variable_order(const std::vector<double>& by_pi) const {
    std::vector<double> out(by_pi.size(), 0.0);
    for (std::size_t i = 0; i < by_pi.size(); ++i)
      out[static_cast<std::size_t>(pi_var_order_[i])] = by_pi[i];
    return out;
  }

 private:
  BddManager& mgr_;
  std::vector<BddRef> refs_;
  std::vector<int> pi_var_order_;
};

/// Diagnostics of one BDD probability/activity pass, for the flow-engine
/// phase instrumentation.
struct ActivityPassStats {
  std::size_t bdd_nodes = 0;  // unique-table size after building all BDDs
};

/// Per-node exact signal probabilities P(node = 1).
/// `pi_prob1[i]` is the probability of PI i (Network::pis() order); pass an
/// empty vector for the uniform 0.5 default used throughout the paper.
/// `stats`, when non-null, receives pass diagnostics.
std::vector<double> signal_probabilities(const Network& net,
                                         std::vector<double> pi_prob1 = {},
                                         ActivityPassStats* stats = nullptr);

/// Per-node switching activities under `style` (same indexing as nodes).
std::vector<double> switching_activities(const Network& net,
                                         CircuitStyle style,
                                         std::vector<double> pi_prob1 = {},
                                         ActivityPassStats* stats = nullptr);

/// Monte-Carlo estimate of per-node switching activities: the degradation
/// fallback when exact BDD-based activities blow past their node budget.
/// Deterministic for a fixed seed. Static CMOS samples independent vector
/// pairs and counts value changes (zero-delay model, the same sampling as
/// verify's monte_carlo_power); dynamic styles count evaluate-phase
/// switching directly. Dead-node slots are 0.
std::vector<double> monte_carlo_activities(const Network& net,
                                           CircuitStyle style,
                                           std::vector<double> pi_prob1 = {},
                                           int samples = 4096,
                                           std::uint64_t seed = 0x6d6f6e7465ULL);

/// Sum of switching activities over internal nodes (the decomposition
/// objective of Section 2); optionally also count PI activity, as the
/// Figure 1 example does.
double total_internal_activity(const Network& net, CircuitStyle style,
                               std::vector<double> pi_prob1 = {},
                               bool include_pis = false);

/// Functional equivalence of two networks with identical PI/PO names
/// (order-insensitive), via global BDDs. Used by tests and as a safety net
/// after each synthesis transformation.
bool networks_equivalent(const Network& a, const Network& b);

}  // namespace minpower
