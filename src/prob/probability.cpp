#include "prob/probability.hpp"

#include <algorithm>
#include <unordered_map>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace minpower {

std::vector<int> dfs_pi_variable_order(const Network& net) {
  std::unordered_map<NodeId, std::size_t> pi_index;
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    pi_index[net.pis()[i]] = i;

  std::vector<int> var_of(net.pis().size(), -1);
  int next_var = 0;
  std::vector<char> visited(net.capacity(), 0);
  std::vector<NodeId> stack;
  for (const PrimaryOutput& po : net.pos()) stack.push_back(po.driver);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (visited[static_cast<std::size_t>(id)]) continue;
    visited[static_cast<std::size_t>(id)] = 1;
    const Node& n = net.node(id);
    if (n.is_pi()) {
      var_of[pi_index.at(id)] = next_var++;
      continue;
    }
    // Push fanins in reverse so the first fanin is explored first.
    for (auto it = n.fanins.rbegin(); it != n.fanins.rend(); ++it)
      stack.push_back(*it);
  }
  // PIs unreachable from any PO get the remaining variables.
  for (int& v : var_of)
    if (v < 0) v = next_var++;
  return var_of;
}

NetworkBdds::NetworkBdds(BddManager& mgr, const Network& net) : mgr_(mgr) {
  refs_.assign(net.capacity(), BddManager::kFalse);
  pi_var_order_ = dfs_pi_variable_order(net);
  std::unordered_map<NodeId, int> pi_var;
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    pi_var[net.pis()[i]] = pi_var_order_[i];

  for (NodeId id : net.topo_order()) {
    budget_checkpoint("activity");
    const Node& n = net.node(id);
    BddRef r = BddManager::kFalse;
    switch (n.kind) {
      case NodeKind::kPrimaryInput:
        r = mgr_.var(pi_var.at(id));
        break;
      case NodeKind::kConstant0:
        r = BddManager::kFalse;
        break;
      case NodeKind::kConstant1:
        r = BddManager::kTrue;
        break;
      case NodeKind::kInternal: {
        // Compose the local SOP over global fanin BDDs.
        r = BddManager::kFalse;
        for (const Cube& c : n.cover.cubes()) {
          BddRef cube = BddManager::kTrue;
          for (std::size_t i = 0; i < n.fanins.size(); ++i) {
            const BddRef fi = refs_[static_cast<std::size_t>(n.fanins[i])];
            if (c.has_pos(static_cast<int>(i))) cube = mgr_.and_(cube, fi);
            if (c.has_neg(static_cast<int>(i)))
              cube = mgr_.and_(cube, mgr_.not_(fi));
          }
          r = mgr_.or_(r, cube);
        }
        break;
      }
      case NodeKind::kDead:
        continue;
    }
    refs_[static_cast<std::size_t>(id)] = r;
  }
}

std::vector<double> signal_probabilities(const Network& net,
                                         std::vector<double> pi_prob1,
                                         ActivityPassStats* stats) {
  if (pi_prob1.empty()) pi_prob1.assign(net.pis().size(), 0.5);
  MP_CHECK(pi_prob1.size() == net.pis().size());
  trace::Span span("activity", "prob");
  span.arg("network", net.name());
  metrics::counter("activity.passes").add(1);
  BddManager mgr;
  const NetworkBdds bdds(mgr, net);
  if (stats) stats->bdd_nodes = mgr.num_nodes();
  span.arg("bdd_nodes", static_cast<unsigned long long>(mgr.num_nodes()));
  const std::vector<double> by_var = bdds.to_variable_order(pi_prob1);
  std::vector<double> p(net.capacity(), 0.0);
  // One batch traversal with a shared memo: subgraphs common to many node
  // functions are walked once per pass instead of once per node. Values are
  // bit-identical to per-node probability() calls.
  std::vector<NodeId> live_ids;
  std::vector<BddRef> live_refs;
  live_ids.reserve(net.capacity());
  live_refs.reserve(net.capacity());
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    if (net.node(id).is_dead()) continue;
    live_ids.push_back(id);
    live_refs.push_back(bdds.of(id));
  }
  const std::vector<double> probs = mgr.probabilities(live_refs, by_var);
  for (std::size_t i = 0; i < live_ids.size(); ++i)
    p[static_cast<std::size_t>(live_ids[i])] = probs[i];
  metrics::counter("activity.nodes").add(live_ids.size());
  return p;
}

std::vector<double> switching_activities(const Network& net,
                                         CircuitStyle style,
                                         std::vector<double> pi_prob1,
                                         ActivityPassStats* stats) {
  std::vector<double> p =
      signal_probabilities(net, std::move(pi_prob1), stats);
  for (double& x : p) x = switching_activity(x, style);
  return p;
}

std::vector<double> monte_carlo_activities(const Network& net,
                                           CircuitStyle style,
                                           std::vector<double> pi_prob1,
                                           int samples, std::uint64_t seed) {
  MP_CHECK(samples > 0);
  trace::Span span("mc-activity", "prob");
  span.arg("network", net.name());
  span.arg("samples", samples);
  metrics::counter("activity.mc_passes").add(1);
  const std::size_t n = net.pis().size();
  if (pi_prob1.empty()) pi_prob1.assign(n, 0.5);
  MP_CHECK(pi_prob1.size() == n);

  const std::vector<NodeId> order = net.topo_order();
  std::vector<char> value(net.capacity(), 0);
  auto eval_net = [&]() {
    for (NodeId id : order) {
      const Node& node = net.node(id);
      if (node.kind == NodeKind::kConstant1)
        value[static_cast<std::size_t>(id)] = 1;
      if (!node.is_internal()) continue;
      std::uint64_t assignment = 0;
      for (std::size_t i = 0; i < node.fanins.size(); ++i)
        if (value[static_cast<std::size_t>(node.fanins[i])])
          assignment |= std::uint64_t{1} << i;
      value[static_cast<std::size_t>(id)] = node.cover.eval(assignment);
    }
  };

  Rng rng(seed);
  std::vector<double> tally(net.capacity(), 0.0);
  std::vector<char> first(net.capacity(), 0);
  for (int s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < n; ++i)
      value[static_cast<std::size_t>(net.pis()[i])] = rng.coin(pi_prob1[i]);
    eval_net();
    if (style == CircuitStyle::kStatic) {
      // Vector-pair sampling: a second independent vector per sample and
      // count value changes, matching E = P(0→1) + P(1→0) directly.
      first = value;
      for (std::size_t i = 0; i < n; ++i)
        value[static_cast<std::size_t>(net.pis()[i])] = rng.coin(pi_prob1[i]);
      eval_net();
    }
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      if (net.node(id).is_dead()) continue;
      const std::size_t k = static_cast<std::size_t>(id);
      switch (style) {
        case CircuitStyle::kStatic:
          tally[k] += value[k] != first[k] ? 1.0 : 0.0;
          break;
        case CircuitStyle::kDynamicP:
          tally[k] += value[k] ? 1.0 : 0.0;
          break;
        case CircuitStyle::kDynamicN:
          tally[k] += value[k] ? 0.0 : 1.0;
          break;
      }
    }
  }
  for (double& x : tally) x /= samples;
  return tally;
}

double total_internal_activity(const Network& net, CircuitStyle style,
                               std::vector<double> pi_prob1,
                               bool include_pis) {
  const std::vector<double> e =
      switching_activities(net, style, std::move(pi_prob1));
  double total = 0.0;
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    const Node& n = net.node(id);
    if (n.is_internal() || (include_pis && n.is_pi()))
      total += e[static_cast<std::size_t>(id)];
  }
  return total;
}

bool networks_equivalent(const Network& a, const Network& b) {
  if (a.pis().size() != b.pis().size()) return false;
  if (a.pos().size() != b.pos().size()) return false;

  BddManager mgr;
  const NetworkBdds a_bdds(mgr, a);

  // Match PIs of b to a's (DFS-ordered) variable numbering by name.
  std::unordered_map<std::string, int> a_pi_var;
  for (std::size_t i = 0; i < a.pis().size(); ++i)
    a_pi_var[a.node(a.pis()[i]).name] = a_bdds.pi_variable(i);

  // Build b's BDDs against the same variable numbering.
  std::vector<BddRef> b_refs(b.capacity(), BddManager::kFalse);
  for (NodeId id : b.topo_order()) {
    const Node& n = b.node(id);
    BddRef r = BddManager::kFalse;
    switch (n.kind) {
      case NodeKind::kPrimaryInput: {
        const auto it = a_pi_var.find(n.name);
        if (it == a_pi_var.end()) return false;  // PI name mismatch
        r = mgr.var(it->second);
        break;
      }
      case NodeKind::kConstant0:
        r = BddManager::kFalse;
        break;
      case NodeKind::kConstant1:
        r = BddManager::kTrue;
        break;
      case NodeKind::kInternal: {
        r = BddManager::kFalse;
        for (const Cube& c : n.cover.cubes()) {
          BddRef cube = BddManager::kTrue;
          for (std::size_t i = 0; i < n.fanins.size(); ++i) {
            const BddRef fi = b_refs[static_cast<std::size_t>(n.fanins[i])];
            if (c.has_pos(static_cast<int>(i))) cube = mgr.and_(cube, fi);
            if (c.has_neg(static_cast<int>(i)))
              cube = mgr.and_(cube, mgr.not_(fi));
          }
          r = mgr.or_(r, cube);
        }
        break;
      }
      case NodeKind::kDead:
        continue;
    }
    b_refs[static_cast<std::size_t>(id)] = r;
  }

  // Match POs by name.
  std::unordered_map<std::string, NodeId> b_po;
  for (const PrimaryOutput& po : b.pos()) b_po[po.name] = po.driver;
  for (const PrimaryOutput& po : a.pos()) {
    const auto it = b_po.find(po.name);
    if (it == b_po.end()) return false;
    if (a_bdds.of(po.driver) != b_refs[static_cast<std::size_t>(it->second)])
      return false;
  }
  return true;
}

}  // namespace minpower
