#include "prob/transition.hpp"

#include <unordered_map>

#include "prob/probability.hpp"

namespace minpower {

PiTemporalModel PiTemporalModel::independent(double p1) {
  PiTemporalModel m;
  m.p1 = p1;
  m.p01 = (1.0 - p1) * p1;
  return m;
}

PiTemporalModel PiTemporalModel::with_activity(double p1, double activity) {
  PiTemporalModel m;
  m.p1 = p1;
  m.p01 = activity / 2.0;
  MP_CHECK_MSG(m.valid(), "activity infeasible for the given probability");
  return m;
}

bool PiTemporalModel::valid() const {
  const double eps = 1e-12;
  return p1 >= -eps && p1 <= 1.0 + eps && p01 >= -eps &&
         p01 <= std::min(p1, 1.0 - p1) + eps;
}

namespace {

struct PairKey {
  BddRef node;
  int cond;  // -1 unconditioned, 0/1 = value of the pending current-var
  bool operator==(const PairKey&) const = default;
};
struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.node) << 2) ^
        static_cast<std::uint64_t>(k.cond + 1));
  }
};

class PairProb {
 public:
  PairProb(const BddManager& mgr, const std::vector<PiTemporalModel>& model)
      : mgr_(mgr), model_(model) {}

  /// `cond` = value taken for x_k when evaluating a subtree whose top
  /// variable might be x'_k (2k+1); −1 when no pair is pending.
  double eval(BddRef f, int pending_pair, int cond) {
    if (f == BddManager::kFalse) return 0.0;
    if (f == BddManager::kTrue) return 1.0;
    const int var = mgr_.top_var(f);
    const int k = var / 2;
    const bool is_next = (var & 1) != 0;

    // A pending condition only matters if this subtree starts exactly at
    // the paired next-variable; anything deeper marginalizes it out.
    const bool conditioned =
        cond >= 0 && is_next && k == pending_pair;

    const PairKey key{f, conditioned ? cond : -1};
    if (!conditioned) {
      const auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    } else {
      const auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }

    const PiTemporalModel& m = model_[static_cast<std::size_t>(k)];
    double result;
    if (!is_next) {
      // Current variable x_k: branch on its stationary probability and pass
      // the taken value down as the pending condition for x'_k.
      const double p_hi = m.p1;
      result = p_hi * eval(mgr_.high(f), k, 1) +
               (1.0 - p_hi) * eval(mgr_.low(f), k, 0);
    } else {
      // Next variable x'_k: conditional when x_k is on the path, marginal
      // (stationary) otherwise.
      const double p_hi =
          conditioned ? m.cond_next1(cond != 0) : m.p1;
      result = p_hi * eval(mgr_.high(f), -1, -1) +
               (1.0 - p_hi) * eval(mgr_.low(f), -1, -1);
    }
    memo_.emplace(key, result);
    return result;
  }

 private:
  const BddManager& mgr_;
  const std::vector<PiTemporalModel>& model_;
  std::unordered_map<PairKey, double, PairKeyHash> memo_;
};

}  // namespace

double pair_probability(const BddManager& mgr, BddRef f,
                        const std::vector<PiTemporalModel>& model) {
  PairProb pp(mgr, model);
  return pp.eval(f, -1, -1);
}

std::vector<NodeTransition> transition_probabilities(
    const Network& net, const std::vector<PiTemporalModel>& model) {
  MP_CHECK(model.size() == net.pis().size());
  for (const PiTemporalModel& m : model) MP_CHECK(m.valid());

  BddManager mgr;
  // Variable pairing follows the DFS PI order used by NetworkBdds so that
  // reconvergent logic stays narrow: PI at DFS position j gets current
  // variable 2j and next variable 2j+1.
  std::unordered_map<NodeId, int> pi_pos;
  {
    const std::vector<int> order = dfs_pi_variable_order(net);
    for (std::size_t i = 0; i < net.pis().size(); ++i)
      pi_pos[net.pis()[i]] = order[i];
  }
  // model indexed by PAIR position (DFS order), not PI position.
  std::vector<PiTemporalModel> by_pair(model.size());
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    by_pair[static_cast<std::size_t>(pi_pos.at(net.pis()[i]))] = model[i];

  // Build current- and next-cycle BDDs for every node.
  std::vector<BddRef> cur(net.capacity(), BddManager::kFalse);
  std::vector<BddRef> nxt(net.capacity(), BddManager::kFalse);
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kPrimaryInput: {
        const int pos = pi_pos.at(id);
        cur[static_cast<std::size_t>(id)] = mgr.var(2 * pos);
        nxt[static_cast<std::size_t>(id)] = mgr.var(2 * pos + 1);
        break;
      }
      case NodeKind::kConstant0:
        break;
      case NodeKind::kConstant1:
        cur[static_cast<std::size_t>(id)] = BddManager::kTrue;
        nxt[static_cast<std::size_t>(id)] = BddManager::kTrue;
        break;
      case NodeKind::kInternal: {
        for (auto* refs : {&cur, &nxt}) {
          BddRef r = BddManager::kFalse;
          for (const Cube& c : n.cover.cubes()) {
            BddRef cube = BddManager::kTrue;
            for (std::size_t i = 0; i < n.fanins.size(); ++i) {
              const BddRef fi =
                  (*refs)[static_cast<std::size_t>(n.fanins[i])];
              if (c.has_pos(static_cast<int>(i))) cube = mgr.and_(cube, fi);
              if (c.has_neg(static_cast<int>(i)))
                cube = mgr.and_(cube, mgr.not_(fi));
            }
            r = mgr.or_(r, cube);
          }
          (*refs)[static_cast<std::size_t>(id)] = r;
        }
        break;
      }
      case NodeKind::kDead:
        continue;
    }
  }

  std::vector<NodeTransition> out(net.capacity());
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    if (net.node(id).is_dead()) continue;
    const BddRef f = cur[static_cast<std::size_t>(id)];
    const BddRef fp = nxt[static_cast<std::size_t>(id)];
    NodeTransition t;
    t.p1 = pair_probability(mgr, f, by_pair);
    t.p01 = pair_probability(mgr, mgr.and_(mgr.not_(f), fp), by_pair);
    t.p10 = pair_probability(mgr, mgr.and_(f, mgr.not_(fp)), by_pair);
    out[static_cast<std::size_t>(id)] = t;
  }
  return out;
}

}  // namespace minpower
