#pragma once
// Pairwise joint probabilities of a signal set — the correlation
// information the correlated weight-combination functions (Eqs. 7–9)
// consume. Exactness depends on the producer: PatternModel computes these
// from the input distribution; JointProbabilities::independent builds the
// uncorrelated table.

#include <vector>

#include "util/check.hpp"

namespace minpower {

/// joint(i,j) = P(signal_i = 1 ∧ signal_j = 1); the diagonal holds P(=1).
class JointProbabilities {
 public:
  explicit JointProbabilities(std::vector<double> p1);

  /// Independent-signals joint table.
  static JointProbabilities independent(const std::vector<double>& p1);

  void set(int i, int j, double p_and) {
    table_[idx(i, j)] = p_and;
    table_[idx(j, i)] = p_and;
  }
  double joint(int i, int j) const { return table_[idx(i, j)]; }
  double prob(int i) const { return table_[idx(i, i)]; }
  /// Conditional P(i=1 | j=1); 0 when P(j)=0.
  double cond(int i, int j) const {
    const double pj = prob(j);
    return pj <= 0.0 ? 0.0 : joint(i, j) / pj;
  }
  int size() const { return n_; }

 private:
  std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  int n_ = 0;
  std::vector<double> table_;
};

}  // namespace minpower
