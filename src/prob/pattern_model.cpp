#include "prob/pattern_model.hpp"

#include <algorithm>

namespace minpower {

PatternModel::PatternModel(const Network& net,
                           std::vector<InputPattern> patterns)
    : net_(&net), patterns_(std::move(patterns)) {
  MP_CHECK_MSG(!patterns_.empty(), "pattern model needs at least one pattern");
  double total = 0.0;
  for (const InputPattern& p : patterns_) {
    MP_CHECK(p.values.size() == net.pis().size());
    MP_CHECK(p.weight >= 0.0);
    total += p.weight;
  }
  MP_CHECK_MSG(total > 0.0, "pattern weights must not all be zero");
  for (InputPattern& p : patterns_) p.weight /= total;

  // Evaluate the whole network once per pattern.
  value_.reserve(patterns_.size());
  const std::vector<NodeId> order = net.topo_order();
  for (const InputPattern& p : patterns_) {
    std::vector<char> v(net.capacity(), 0);
    for (std::size_t i = 0; i < net.pis().size(); ++i)
      v[static_cast<std::size_t>(net.pis()[i])] = p.values[i] ? 1 : 0;
    for (NodeId id : order) {
      const Node& n = net.node(id);
      if (n.kind == NodeKind::kConstant1) v[static_cast<std::size_t>(id)] = 1;
      if (!n.is_internal()) continue;
      std::uint64_t assignment = 0;
      for (std::size_t i = 0; i < n.fanins.size(); ++i)
        if (v[static_cast<std::size_t>(n.fanins[i])])
          assignment |= std::uint64_t{1} << i;
      v[static_cast<std::size_t>(id)] = n.cover.eval(assignment) ? 1 : 0;
    }
    value_.push_back(std::move(v));
  }
}

PatternModel PatternModel::uniform(const Network& net) {
  const std::size_t n = net.pis().size();
  MP_CHECK_MSG(n <= 16, "uniform pattern model limited to 16 PIs");
  std::vector<InputPattern> ps;
  const std::size_t count = std::size_t{1} << n;
  ps.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    InputPattern p;
    p.weight = 1.0;
    p.values.resize(n);
    for (std::size_t i = 0; i < n; ++i) p.values[i] = (m >> i) & 1;
    ps.push_back(std::move(p));
  }
  return PatternModel(net, std::move(ps));
}

double PatternModel::probability(NodeId node) const {
  double p = 0.0;
  for (std::size_t i = 0; i < patterns_.size(); ++i)
    if (value_[i][static_cast<std::size_t>(node)])
      p += patterns_[i].weight;
  return p;
}

double PatternModel::joint(NodeId a, NodeId b) const {
  double p = 0.0;
  for (std::size_t i = 0; i < patterns_.size(); ++i)
    if (value_[i][static_cast<std::size_t>(a)] &&
        value_[i][static_cast<std::size_t>(b)])
      p += patterns_[i].weight;
  return p;
}

JointProbabilities PatternModel::joints(const std::vector<NodeId>& nodes) const {
  std::vector<double> p1;
  p1.reserve(nodes.size());
  for (NodeId n : nodes) p1.push_back(probability(n));
  JointProbabilities j(std::move(p1));
  for (std::size_t a = 0; a < nodes.size(); ++a)
    for (std::size_t b = a + 1; b < nodes.size(); ++b)
      j.set(static_cast<int>(a), static_cast<int>(b), joint(nodes[a], nodes[b]));
  return j;
}

double PatternModel::cube_probability(const std::vector<NodeId>& fanins,
                                      const Cube& cube) const {
  double p = 0.0;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    std::uint64_t assignment = 0;
    for (std::size_t v = 0; v < fanins.size(); ++v)
      if (value_[i][static_cast<std::size_t>(fanins[v])])
        assignment |= std::uint64_t{1} << v;
    if (cube.eval(assignment)) p += patterns_[i].weight;
  }
  return p;
}

double PatternModel::cube_joint(const std::vector<NodeId>& fanins,
                                const Cube& a, const Cube& b) const {
  double p = 0.0;
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    std::uint64_t assignment = 0;
    for (std::size_t v = 0; v < fanins.size(); ++v)
      if (value_[i][static_cast<std::size_t>(fanins[v])])
        assignment |= std::uint64_t{1} << v;
    if (a.eval(assignment) && b.eval(assignment)) p += patterns_[i].weight;
  }
  return p;
}

std::vector<double> PatternModel::all_probabilities() const {
  std::vector<double> p(net_->capacity(), 0.0);
  for (std::size_t i = 0; i < patterns_.size(); ++i)
    for (std::size_t node = 0; node < p.size(); ++node)
      if (value_[i][node]) p[node] += patterns_[i].weight;
  // Clear dead slots for cleanliness.
  for (NodeId id = 0; id < static_cast<NodeId>(p.size()); ++id)
    if (net_->node(id).is_dead()) p[static_cast<std::size_t>(id)] = 0.0;
  return p;
}

}  // namespace minpower
