#include "prob/sequential.hpp"

#include <cmath>

#include "prob/probability.hpp"
#include "util/strings.hpp"

namespace minpower {

std::vector<LatchBinding> infer_latches(const Network& net) {
  std::vector<LatchBinding> out;
  for (std::size_t po = 0; po < net.pos().size(); ++po) {
    const std::string& name = net.pos()[po].name;
    constexpr std::string_view kSuffix = "__next";
    if (name.size() <= kSuffix.size()) continue;
    if (name.substr(name.size() - kSuffix.size()) != kSuffix) continue;
    const std::string state = name.substr(0, name.size() - kSuffix.size());
    for (std::size_t pi = 0; pi < net.pis().size(); ++pi) {
      if (net.node(net.pis()[pi]).name == state) {
        out.push_back(LatchBinding{pi, po});
        break;
      }
    }
  }
  return out;
}

SequentialProbResult sequential_pi_probabilities(
    const Network& net, const std::vector<LatchBinding>& latches,
    const SequentialProbOptions& options) {
  const std::size_t npi = net.pis().size();
  std::vector<bool> is_latch_pi(npi, false);
  for (const LatchBinding& l : latches) {
    MP_CHECK(l.pi_index < npi && l.po_index < net.pos().size());
    is_latch_pi[l.pi_index] = true;
  }

  SequentialProbResult result;
  result.pi_prob1.assign(npi, 0.5);
  {
    std::size_t free_slot = 0;
    for (std::size_t i = 0; i < npi; ++i) {
      if (is_latch_pi[i]) continue;
      if (free_slot < options.free_pi_prob1.size())
        result.pi_prob1[i] = options.free_pi_prob1[free_slot];
      ++free_slot;
    }
  }
  for (std::size_t k = 0; k < latches.size(); ++k)
    if (k < options.initial_state_prob1.size())
      result.pi_prob1[latches[k].pi_index] = options.initial_state_prob1[k];

  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    const std::vector<double> node_prob =
        signal_probabilities(net, result.pi_prob1);
    double delta = 0.0;
    for (const LatchBinding& l : latches) {
      const double next =
          node_prob[static_cast<std::size_t>(net.pos()[l.po_index].driver)];
      // Damped update: plain iteration oscillates on toggle-like feedback
      // (p ← 1−p); averaging makes those fixpoints attracting.
      const double damped = 0.5 * (result.pi_prob1[l.pi_index] + next);
      delta = std::max(delta,
                       std::abs(damped - result.pi_prob1[l.pi_index]));
      result.pi_prob1[l.pi_index] = damped;
    }
    if (delta <= options.tolerance) {
      result.converged = true;
      ++result.iterations;
      break;
    }
  }
  return result;
}

}  // namespace minpower
