#include "prob/joint.hpp"

namespace minpower {

JointProbabilities::JointProbabilities(std::vector<double> p1)
    : n_(static_cast<int>(p1.size())) {
  table_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                0.0);
  for (int i = 0; i < n_; ++i) set(i, i, p1[static_cast<std::size_t>(i)]);
}

JointProbabilities JointProbabilities::independent(
    const std::vector<double>& p1) {
  JointProbabilities j(p1);
  for (int a = 0; a < j.size(); ++a)
    for (int b = a + 1; b < j.size(); ++b)
      j.set(a, b, p1[static_cast<std::size_t>(a)] * p1[static_cast<std::size_t>(b)]);
  return j;
}

}  // namespace minpower
