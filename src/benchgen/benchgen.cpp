#include "benchgen/benchgen.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace minpower {

namespace {

Cube lit_cube(int v, bool pos) { return Cube::literal(v, pos); }

/// Random non-constant cover over `k` variables.
Cover random_sop(Rng& rng, int k, int max_cubes) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int cubes = static_cast<int>(rng.range(1, max_cubes));
    Cover cover;
    for (int c = 0; c < cubes; ++c) {
      std::uint64_t pos = 0;
      std::uint64_t neg = 0;
      // Each variable joins the cube with probability ~0.6, random phase.
      int lits = 0;
      for (int v = 0; v < k; ++v) {
        if (!rng.coin(0.6)) continue;
        ++lits;
        if (rng.coin()) pos |= std::uint64_t{1} << v;
        else neg |= std::uint64_t{1} << v;
      }
      if (lits == 0) {  // force at least one literal
        const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));
        if (rng.coin()) pos |= std::uint64_t{1} << v;
        else neg |= std::uint64_t{1} << v;
      }
      cover.add(Cube{pos, neg});
    }
    cover.normalize();
    if (cover.is_zero() || cover.is_one() || cover.support() == 0) continue;
    // Keep only reasonably balanced functions: heavily skewed random SOPs
    // drift toward constants as they compose, and the sweep's semantic
    // constant detection then collapses whole regions of the network.
    if (k <= 8) {
      int ones = 0;
      const int total = 1 << k;
      for (int m = 0; m < total; ++m)
        if (cover.eval(static_cast<std::uint64_t>(m))) ++ones;
      const double p = static_cast<double>(ones) / total;
      if (p < 0.10 || p > 0.90) continue;
    }
    return cover;
  }
  // Fallback: a single positive literal.
  return Cover::literal(0, true);
}

/// A node function chosen from a mix of templates. Pure random SOPs over
/// already-skewed signals drift toward constant functions and collapse under
/// optimization; real circuits are full of parity/select/majority structure
/// whose outputs stay balanced. The template mix keeps generated networks
/// optimization-resistant, like their MCNC counterparts.
Cover random_cover(Rng& rng, int k, int max_cubes) {
  const double roll = rng.uniform();
  if (roll < 0.15 && k >= 2) {
    // XOR / XNOR of two variables (conjoined with a third when available).
    const bool odd = rng.coin();
    Cover x{{lit_cube(0, true) & lit_cube(1, !odd),
             lit_cube(0, false) & lit_cube(1, odd)}};
    if (k >= 3 && rng.coin(0.5)) {
      // (v0 ⊕ v1) gated by v2: keeps support wide, still balanced-ish.
      x = Cover::conjunction(x, Cover::literal(2, rng.coin()));
      x = Cover::disjunction(
          x, Cover{{lit_cube(0, odd) & lit_cube(1, odd) & lit_cube(2, false)}});
      x.normalize();
    }
    return x;
  }
  if (roll < 0.24 && k >= 3) {
    // 2:1 MUX — v2 selects between v0 and v1 (random input phases).
    Cover m{{lit_cube(2, true) & lit_cube(0, rng.coin()),
             lit_cube(2, false) & lit_cube(1, rng.coin())}};
    m.normalize();
    return m;
  }
  if (roll < 0.30 && k >= 3) {
    // Majority of three (random phases).
    const bool pa = rng.coin();
    const bool pb = rng.coin();
    const bool pc = rng.coin();
    Cover m{{lit_cube(0, pa) & lit_cube(1, pb),
             lit_cube(1, pb) & lit_cube(2, pc),
             lit_cube(0, pa) & lit_cube(2, pc)}};
    m.normalize();
    return m;
  }
  return random_sop(rng, k, max_cubes);
}

}  // namespace

Network generate_benchmark(const BenchProfile& p) {
  MP_CHECK(p.num_pi >= 2 && p.num_po >= 1 && p.num_nodes >= 1);
  Rng rng(p.seed ^ 0xabcdef0123456789ULL);
  Network net(p.name);

  std::vector<NodeId> pool;
  for (int i = 0; i < p.num_pi; ++i)
    pool.push_back(net.add_pi("pi" + std::to_string(i)));

  for (int i = 0; i < p.num_nodes; ++i) {
    const int k = static_cast<int>(
        rng.range(2, std::min<std::int64_t>(p.max_fanin,
                                            static_cast<std::int64_t>(pool.size()))));
    // Bias fanin selection toward recent nodes (depth) and keep structural
    // locality (narrow cuts, like real circuits — and small BDDs): most
    // picks come from a fixed-width recent window, the rest from a narrow
    // window around a random older center.
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      const std::size_t span = pool.size();
      const std::size_t width = std::min<std::size_t>(span, 12);
      std::size_t idx;
      if (rng.coin(0.8)) {
        idx = span - 1 - rng.below(width);
      } else {
        const std::size_t center = rng.below(span);
        const std::size_t lo = center < width / 2 ? 0 : center - width / 2;
        const std::size_t hi = std::min(span - 1, center + width / 2);
        idx = lo + rng.below(hi - lo + 1);
      }
      const NodeId cand = pool[idx];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    const Cover cover = random_cover(rng, k, p.max_cubes);
    // Drop fanins the cover does not mention to keep supports tight.
    std::vector<NodeId> used_fanins;
    std::vector<int> new_var(kMaxCubeVars, -1);
    for (int v = 0; v < k; ++v) {
      if ((cover.support() >> v) & 1) {
        new_var[static_cast<std::size_t>(v)] =
            static_cast<int>(used_fanins.size());
        used_fanins.push_back(fanins[static_cast<std::size_t>(v)]);
      }
    }
    pool.push_back(net.add_node(used_fanins, cover.remap(new_var),
                                "n" + std::to_string(i)));
  }

  // POs: prefer sinks (nodes nobody reads), newest first; top up with the
  // deepest remaining nodes.
  std::vector<NodeId> sinks;
  for (auto it = pool.rbegin(); it != pool.rend(); ++it)
    if (net.node(*it).is_internal() && net.node(*it).fanouts.empty())
      sinks.push_back(*it);
  std::vector<NodeId> po_nodes;
  for (NodeId s : sinks) {
    if (static_cast<int>(po_nodes.size()) >= p.num_po) break;
    po_nodes.push_back(s);
  }
  for (auto it = pool.rbegin();
       it != pool.rend() && static_cast<int>(po_nodes.size()) < p.num_po;
       ++it) {
    if (!net.node(*it).is_internal()) continue;
    if (std::find(po_nodes.begin(), po_nodes.end(), *it) == po_nodes.end())
      po_nodes.push_back(*it);
  }
  for (std::size_t i = 0; i < po_nodes.size(); ++i)
    net.add_po("po" + std::to_string(i), po_nodes[i]);

  net.sweep();
  net.check();
  return net;
}

const std::vector<BenchProfile>& paper_suite() {
  // PI/PO counts follow the real circuits (latch outputs counted as PIs for
  // the ISCAS-89 combinational cores); node counts are calibrated so the
  // optimized+mapped sizes land near the paper's Method-I gate areas.
  static const std::vector<BenchProfile> suite = {
      {"s208", 12, 9, 28, 5, 4, 2081},
      {"s344", 24, 26, 52, 5, 4, 3441},
      {"s382", 24, 27, 55, 5, 4, 3821},
      {"s444", 24, 27, 58, 5, 4, 4441},
      {"s510", 25, 13, 92, 5, 4, 5101},
      {"s526", 24, 27, 64, 5, 4, 5261},
      {"s641", 54, 42, 72, 5, 4, 6411},
      {"s713", 54, 42, 70, 5, 4, 7131},
      {"s820", 23, 24, 98, 5, 4, 8201},
      {"cm42a", 4, 10, 11, 3, 3, 421},
      {"x1", 51, 35, 95, 5, 4, 9001},
      {"x2", 10, 7, 20, 5, 4, 9002},
      {"x3", 135, 99, 160, 4, 4, 9203},
      {"ttt2", 24, 21, 74, 5, 4, 9004},
      {"apex7", 49, 37, 82, 5, 4, 9005},
      {"alu2", 10, 6, 105, 4, 5, 9006},
      {"ex2", 85, 56, 104, 5, 4, 9007},
  };
  return suite;
}

Network generate_pla(const PlaProfile& p) {
  MP_CHECK(p.num_pi >= 2 && p.num_outputs >= 1 && p.cubes_per_output >= 1);
  Rng rng(p.seed ^ 0x9a11ab5ULL);
  Network net(p.name);
  std::vector<NodeId> pis;
  for (int i = 0; i < p.num_pi; ++i)
    pis.push_back(net.add_pi("in" + std::to_string(i)));

  for (int o = 0; o < p.num_outputs; ++o) {
    Cover cover;
    for (int c = 0; c < p.cubes_per_output; ++c) {
      Cube cube;
      int lits = 0;
      for (int v = 0; v < p.num_pi; ++v) {
        if (!rng.coin(p.literal_density)) continue;
        cube = cube & Cube::literal(v, rng.coin());
        ++lits;
      }
      if (lits == 0)
        cube = Cube::literal(static_cast<int>(rng.below(
                                 static_cast<std::uint64_t>(p.num_pi))),
                             rng.coin());
      cover.add(cube);
    }
    cover.normalize();
    if (cover.is_zero() || cover.is_one())
      cover = Cover::literal(0, true);  // degenerate roll: fall back
    // Restrict the fanin list to the cover's support.
    std::vector<NodeId> fanins;
    std::vector<int> new_var(kMaxCubeVars, -1);
    for (int v = 0; v < p.num_pi; ++v)
      if ((cover.support() >> v) & 1) {
        new_var[static_cast<std::size_t>(v)] =
            static_cast<int>(fanins.size());
        fanins.push_back(pis[static_cast<std::size_t>(v)]);
      }
    net.add_po("out" + std::to_string(o),
               net.add_node(fanins, cover.remap(new_var),
                            "f" + std::to_string(o)));
  }
  net.check();
  return net;
}

Network make_benchmark(const std::string& name) {
  for (const BenchProfile& p : paper_suite())
    if (p.name == name) return generate_benchmark(p);
  MP_CHECK_MSG(false, ("unknown benchmark: " + name).c_str());
  return Network{};
}

}  // namespace minpower
