#include "benchgen/benchgen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace minpower {

namespace {

Cube lit_cube(int v, bool pos) { return Cube::literal(v, pos); }

/// Random non-constant cover over `k` variables.
Cover random_sop(Rng& rng, int k, int max_cubes) {
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int cubes = static_cast<int>(rng.range(1, max_cubes));
    Cover cover;
    for (int c = 0; c < cubes; ++c) {
      std::uint64_t pos = 0;
      std::uint64_t neg = 0;
      // Each variable joins the cube with probability ~0.6, random phase.
      int lits = 0;
      for (int v = 0; v < k; ++v) {
        if (!rng.coin(0.6)) continue;
        ++lits;
        if (rng.coin()) pos |= std::uint64_t{1} << v;
        else neg |= std::uint64_t{1} << v;
      }
      if (lits == 0) {  // force at least one literal
        const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));
        if (rng.coin()) pos |= std::uint64_t{1} << v;
        else neg |= std::uint64_t{1} << v;
      }
      cover.add(Cube{pos, neg});
    }
    cover.normalize();
    if (cover.is_zero() || cover.is_one() || cover.support() == 0) continue;
    // Keep only reasonably balanced functions: heavily skewed random SOPs
    // drift toward constants as they compose, and the sweep's semantic
    // constant detection then collapses whole regions of the network.
    if (k <= 8) {
      int ones = 0;
      const int total = 1 << k;
      for (int m = 0; m < total; ++m)
        if (cover.eval(static_cast<std::uint64_t>(m))) ++ones;
      const double p = static_cast<double>(ones) / total;
      if (p < 0.10 || p > 0.90) continue;
    }
    return cover;
  }
  // Fallback: a single positive literal.
  return Cover::literal(0, true);
}

/// A node function chosen from a mix of templates. Pure random SOPs over
/// already-skewed signals drift toward constant functions and collapse under
/// optimization; real circuits are full of parity/select/majority structure
/// whose outputs stay balanced. The template mix keeps generated networks
/// optimization-resistant, like their MCNC counterparts.
Cover random_cover(Rng& rng, int k, int max_cubes) {
  const double roll = rng.uniform();
  if (roll < 0.15 && k >= 2) {
    // XOR / XNOR of two variables (conjoined with a third when available).
    const bool odd = rng.coin();
    Cover x{{lit_cube(0, true) & lit_cube(1, !odd),
             lit_cube(0, false) & lit_cube(1, odd)}};
    if (k >= 3 && rng.coin(0.5)) {
      // (v0 ⊕ v1) gated by v2: keeps support wide, still balanced-ish.
      x = Cover::conjunction(x, Cover::literal(2, rng.coin()));
      x = Cover::disjunction(
          x, Cover{{lit_cube(0, odd) & lit_cube(1, odd) & lit_cube(2, false)}});
      x.normalize();
    }
    return x;
  }
  if (roll < 0.24 && k >= 3) {
    // 2:1 MUX — v2 selects between v0 and v1 (random input phases).
    Cover m{{lit_cube(2, true) & lit_cube(0, rng.coin()),
             lit_cube(2, false) & lit_cube(1, rng.coin())}};
    m.normalize();
    return m;
  }
  if (roll < 0.30 && k >= 3) {
    // Majority of three (random phases).
    const bool pa = rng.coin();
    const bool pb = rng.coin();
    const bool pc = rng.coin();
    Cover m{{lit_cube(0, pa) & lit_cube(1, pb),
             lit_cube(1, pb) & lit_cube(2, pc),
             lit_cube(0, pa) & lit_cube(2, pc)}};
    m.normalize();
    return m;
  }
  return random_sop(rng, k, max_cubes);
}

/// Parity of k variables (k ≤ kMaxCubeVars, SOP of 2^(k-1) minterm cubes).
/// Always full-support and exactly balanced — the fallback node function
/// for scale families, where a dropped fanin would sweep a whole subtree.
Cover parity_cover(int k, bool odd) {
  Cover c;
  for (int m = 0; m < (1 << k); ++m) {
    if ((__builtin_popcount(static_cast<unsigned>(m)) & 1) != (odd ? 1 : 0))
      continue;
    std::uint64_t pos = 0;
    std::uint64_t neg = 0;
    for (int v = 0; v < k; ++v) {
      if ((m >> v) & 1) pos |= std::uint64_t{1} << v;
      else neg |= std::uint64_t{1} << v;
    }
    c.add(Cube{pos, neg});
  }
  c.normalize();
  return c;
}

/// Like random_cover but guaranteed to read all k fanins: scale-family
/// structures (reduction trees, mesh layers) rely on every chosen edge
/// existing, otherwise sweep() cascades through orphaned subtrees and the
/// generated size drifts far from target_gates.
Cover random_full_cover(Rng& rng, int k, int max_cubes) {
  for (int attempt = 0; attempt < 20; ++attempt) {
    Cover c = random_cover(rng, k, max_cubes);
    if (c.support() == (std::uint64_t{1} << k) - 1) return c;
  }
  return parity_cover(k, rng.coin());
}

std::string scale_name(const ScaleProfile& p) {
  return p.family + "-" + std::to_string(p.target_gates);
}

/// A random 2-input op over (fanin 0, fanin 1) with random literal phases:
/// XOR/XNOR half the time, AND- and OR-shaped covers otherwise. Always
/// reads both fanins. Used only OFF the carry chain (tap nodes): the
/// nonlinearity must not compound stage over stage — see generate_chain.
Cover tap_cover(Rng& rng) {
  const int pick = static_cast<int>(rng.below(4));
  if (pick < 2) return parity_cover(2, rng.coin());
  const bool pa = rng.coin();
  const bool pb = rng.coin();
  if (pick == 2) {
    Cover c{{lit_cube(0, pa) & lit_cube(1, pb)}};  // AND of two literals
    c.normalize();
    return c;
  }
  Cover c{{lit_cube(0, pa), lit_cube(1, pb)}};  // OR of two literals
  c.normalize();
  return c;
}

/// Deep arithmetic chain: a running parity folds in ONE fresh operand PI
/// per stage through XOR/XNOR, with a randomly-shaped (XOR/AND/OR) tapped
/// output on a sampled subset of stages. Depth grows linearly with size.
/// The all-linear chain is the load-bearing choice: a parity of any subset
/// has OBDD width 2 under *every* variable order, so downstream passes that
/// re-derive a variable order from a restructured network — the activity
/// pass runs on the NAND-decomposed net, whose DFS order scrambles the
/// stage structure — still see linear BDDs, and cost growth along the
/// sweep measures genuine scale, not order luck. Nonlinear ops live only
/// in the taps, one step off the chain, where they cannot compound.
/// (Both a 2-operand ripple-carry ladder and a mixed XOR/AND/OR staircase
/// fail exactly there: under a scrambled order their cut state grows with
/// the number of split pairs / non-linear stages.)
Network generate_chain(const ScaleProfile& p, Rng& rng) {
  Network net(scale_name(p));
  const std::size_t target = std::max<std::size_t>(p.target_gates, 8);
  const std::size_t num_sums =
      std::min<std::size_t>(63, std::max<std::size_t>(1, target / 16));
  const std::size_t stages = std::max<std::size_t>(4, target - num_sums);
  const std::size_t tap_step = std::max<std::size_t>(1, stages / num_sums);

  NodeId carry = net.add_pi("c0");
  std::size_t pos = 0;
  std::size_t sums = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    const NodeId a = net.add_pi("a" + std::to_string(s));
    const NodeId next = net.add_node({a, carry}, parity_cover(2, rng.coin()),
                                     "carry" + std::to_string(s));
    if (sums < num_sums && (s + 1) % tap_step == 0) {
      const NodeId t = net.add_pi("t" + std::to_string(s));
      const NodeId sum = net.add_node({t, carry}, tap_cover(rng),
                                      "sum" + std::to_string(s));
      net.add_po("po" + std::to_string(pos++), sum);
      ++sums;
    }
    carry = next;
  }
  net.add_po("po" + std::to_string(pos), carry);
  net.sweep();
  net.check();
  return net;
}

/// Wide control cones: independent shallow reduction trees, each folding a
/// contiguous window of a large PI space down to one output through
/// full-support template nodes of fanin 2–4. Trees are appended until the
/// internal node count reaches target_gates, so the overshoot is bounded by
/// one tree (≈ target/8).
Network generate_cone(const ScaleProfile& p, Rng& rng) {
  Network net(scale_name(p));
  const std::size_t target = std::max<std::size_t>(p.target_gates, 8);
  const std::size_t num_pi = std::clamp<std::size_t>(
      static_cast<std::size_t>(4.0 * std::sqrt(static_cast<double>(target))),
      16, 16384);
  const std::size_t leaves_per_tree =
      std::min(num_pi, std::max<std::size_t>(12, (3 * target) / 8));

  std::vector<NodeId> pis;
  for (std::size_t i = 0; i < num_pi; ++i)
    pis.push_back(net.add_pi("pi" + std::to_string(i)));

  std::size_t internal = 0;
  std::size_t node_id = 0;
  std::size_t po_id = 0;
  while (internal < target) {
    const std::size_t start =
        leaves_per_tree < num_pi ? rng.below(num_pi - leaves_per_tree + 1)
                                 : 0;
    std::vector<NodeId> current(pis.begin() + static_cast<long>(start),
                                pis.begin() +
                                    static_cast<long>(start + leaves_per_tree));
    while (current.size() > 1) {
      std::vector<NodeId> next;
      std::size_t i = 0;
      while (i < current.size()) {
        const std::size_t k = std::min<std::size_t>(current.size() - i,
                                                    2 + rng.below(3));
        if (k < 2) {  // lone leftover: carry it up unchanged
          next.push_back(current[i]);
          ++i;
          continue;
        }
        std::vector<NodeId> fanins(current.begin() + static_cast<long>(i),
                                   current.begin() + static_cast<long>(i + k));
        const Cover cover = random_full_cover(rng, static_cast<int>(k), 4);
        next.push_back(net.add_node(fanins, cover,
                                    "n" + std::to_string(node_id++)));
        ++internal;
        i += k;
      }
      current = std::move(next);
    }
    net.add_po("po" + std::to_string(po_id++), current[0]);
  }
  net.sweep();
  net.check();
  return net;
}

/// High-reconvergence mesh: `layers` equal-width layers where node i draws
/// 2–4 fanins from the ±3 window around position i of the previous layer.
/// Neighboring windows overlap in all but one position, so nearly every
/// signal fans out to several consumers and reconverges a few levels up,
/// while the banded structure keeps the positional variable order sane.
Network generate_mesh(const ScaleProfile& p, Rng& rng) {
  Network net(scale_name(p));
  const std::size_t target = std::max<std::size_t>(p.target_gates, 8);
  const std::size_t width = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::sqrt(static_cast<double>(target)) + 0.5),
      4, 512);
  const std::size_t layers =
      std::max<std::size_t>(2, (target + width / 2) / width);

  std::vector<NodeId> prev;
  for (std::size_t i = 0; i < width; ++i)
    prev.push_back(net.add_pi("pi" + std::to_string(i)));

  std::size_t node_id = 0;
  for (std::size_t l = 0; l < layers; ++l) {
    std::vector<NodeId> layer;
    for (std::size_t i = 0; i < width; ++i) {
      const std::size_t lo = i >= 3 ? i - 3 : 0;
      const std::size_t hi = std::min(width - 1, i + 3);
      const std::size_t window = hi - lo + 1;
      const std::size_t k =
          std::min<std::size_t>(window, 2 + rng.below(3));
      std::vector<NodeId> fanins;
      while (fanins.size() < k) {
        const NodeId cand = prev[lo + rng.below(window)];
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
          fanins.push_back(cand);
      }
      const Cover cover = random_full_cover(rng, static_cast<int>(k), 4);
      layer.push_back(net.add_node(fanins, cover,
                                   "n" + std::to_string(node_id++)));
    }
    prev = std::move(layer);
  }
  for (std::size_t i = 0; i < prev.size(); ++i)
    net.add_po("po" + std::to_string(i), prev[i]);
  net.sweep();
  net.check();
  return net;
}

}  // namespace

const std::vector<std::string>& scale_families() {
  static const std::vector<std::string> families = {"chain", "cone", "mesh"};
  return families;
}

bool is_scale_family(const std::string& family) {
  for (const std::string& f : scale_families())
    if (f == family) return true;
  return false;
}

Network generate_scale_benchmark(const ScaleProfile& p) {
  MP_CHECK_MSG(is_scale_family(p.family),
               ("unknown scale family: " + p.family).c_str());
  Rng rng(p.seed ^ 0x5ca1e0b5e55edULL);
  if (p.family == "chain") return generate_chain(p, rng);
  if (p.family == "cone") return generate_cone(p, rng);
  return generate_mesh(p, rng);
}

Network generate_benchmark(const BenchProfile& p) {
  MP_CHECK(p.num_pi >= 2 && p.num_po >= 1 && p.num_nodes >= 1);
  Rng rng(p.seed ^ 0xabcdef0123456789ULL);
  Network net(p.name);

  std::vector<NodeId> pool;
  for (int i = 0; i < p.num_pi; ++i)
    pool.push_back(net.add_pi("pi" + std::to_string(i)));

  for (int i = 0; i < p.num_nodes; ++i) {
    const int k = static_cast<int>(
        rng.range(2, std::min<std::int64_t>(p.max_fanin,
                                            static_cast<std::int64_t>(pool.size()))));
    // Bias fanin selection toward recent nodes (depth) and keep structural
    // locality (narrow cuts, like real circuits — and small BDDs): most
    // picks come from a fixed-width recent window, the rest from a narrow
    // window around a random older center.
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      const std::size_t span = pool.size();
      const std::size_t width = std::min<std::size_t>(span, 12);
      std::size_t idx;
      if (rng.coin(0.8)) {
        idx = span - 1 - rng.below(width);
      } else {
        const std::size_t center = rng.below(span);
        const std::size_t lo = center < width / 2 ? 0 : center - width / 2;
        const std::size_t hi = std::min(span - 1, center + width / 2);
        idx = lo + rng.below(hi - lo + 1);
      }
      const NodeId cand = pool[idx];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end())
        fanins.push_back(cand);
    }
    const Cover cover = random_cover(rng, k, p.max_cubes);
    // Drop fanins the cover does not mention to keep supports tight.
    std::vector<NodeId> used_fanins;
    std::vector<int> new_var(kMaxCubeVars, -1);
    for (int v = 0; v < k; ++v) {
      if ((cover.support() >> v) & 1) {
        new_var[static_cast<std::size_t>(v)] =
            static_cast<int>(used_fanins.size());
        used_fanins.push_back(fanins[static_cast<std::size_t>(v)]);
      }
    }
    pool.push_back(net.add_node(used_fanins, cover.remap(new_var),
                                "n" + std::to_string(i)));
  }

  // POs: prefer sinks (nodes nobody reads), newest first; top up with the
  // deepest remaining nodes.
  std::vector<NodeId> sinks;
  for (auto it = pool.rbegin(); it != pool.rend(); ++it)
    if (net.node(*it).is_internal() && net.node(*it).fanouts.empty())
      sinks.push_back(*it);
  std::vector<NodeId> po_nodes;
  for (NodeId s : sinks) {
    if (static_cast<int>(po_nodes.size()) >= p.num_po) break;
    po_nodes.push_back(s);
  }
  for (auto it = pool.rbegin();
       it != pool.rend() && static_cast<int>(po_nodes.size()) < p.num_po;
       ++it) {
    if (!net.node(*it).is_internal()) continue;
    if (std::find(po_nodes.begin(), po_nodes.end(), *it) == po_nodes.end())
      po_nodes.push_back(*it);
  }
  for (std::size_t i = 0; i < po_nodes.size(); ++i)
    net.add_po("po" + std::to_string(i), po_nodes[i]);

  net.sweep();
  net.check();
  return net;
}

const std::vector<BenchProfile>& paper_suite() {
  // PI/PO counts follow the real circuits (latch outputs counted as PIs for
  // the ISCAS-89 combinational cores); node counts are calibrated so the
  // optimized+mapped sizes land near the paper's Method-I gate areas.
  static const std::vector<BenchProfile> suite = {
      {"s208", 12, 9, 28, 5, 4, 2081},
      {"s344", 24, 26, 52, 5, 4, 3441},
      {"s382", 24, 27, 55, 5, 4, 3821},
      {"s444", 24, 27, 58, 5, 4, 4441},
      {"s510", 25, 13, 92, 5, 4, 5101},
      {"s526", 24, 27, 64, 5, 4, 5261},
      {"s641", 54, 42, 72, 5, 4, 6411},
      {"s713", 54, 42, 70, 5, 4, 7131},
      {"s820", 23, 24, 98, 5, 4, 8201},
      {"cm42a", 4, 10, 11, 3, 3, 421},
      {"x1", 51, 35, 95, 5, 4, 9001},
      {"x2", 10, 7, 20, 5, 4, 9002},
      {"x3", 135, 99, 160, 4, 4, 9203},
      {"ttt2", 24, 21, 74, 5, 4, 9004},
      {"apex7", 49, 37, 82, 5, 4, 9005},
      {"alu2", 10, 6, 105, 4, 5, 9006},
      {"ex2", 85, 56, 104, 5, 4, 9007},
  };
  return suite;
}

Network generate_pla(const PlaProfile& p) {
  MP_CHECK(p.num_pi >= 2 && p.num_outputs >= 1 && p.cubes_per_output >= 1);
  Rng rng(p.seed ^ 0x9a11ab5ULL);
  Network net(p.name);
  std::vector<NodeId> pis;
  for (int i = 0; i < p.num_pi; ++i)
    pis.push_back(net.add_pi("in" + std::to_string(i)));

  for (int o = 0; o < p.num_outputs; ++o) {
    Cover cover;
    for (int c = 0; c < p.cubes_per_output; ++c) {
      Cube cube;
      int lits = 0;
      for (int v = 0; v < p.num_pi; ++v) {
        if (!rng.coin(p.literal_density)) continue;
        cube = cube & Cube::literal(v, rng.coin());
        ++lits;
      }
      if (lits == 0)
        cube = Cube::literal(static_cast<int>(rng.below(
                                 static_cast<std::uint64_t>(p.num_pi))),
                             rng.coin());
      cover.add(cube);
    }
    cover.normalize();
    if (cover.is_zero() || cover.is_one())
      cover = Cover::literal(0, true);  // degenerate roll: fall back
    // Restrict the fanin list to the cover's support.
    std::vector<NodeId> fanins;
    std::vector<int> new_var(kMaxCubeVars, -1);
    for (int v = 0; v < p.num_pi; ++v)
      if ((cover.support() >> v) & 1) {
        new_var[static_cast<std::size_t>(v)] =
            static_cast<int>(fanins.size());
        fanins.push_back(pis[static_cast<std::size_t>(v)]);
      }
    net.add_po("out" + std::to_string(o),
               net.add_node(fanins, cover.remap(new_var),
                            "f" + std::to_string(o)));
  }
  net.check();
  return net;
}

Network make_benchmark(const std::string& name) {
  for (const BenchProfile& p : paper_suite())
    if (p.name == name) return generate_benchmark(p);
  MP_CHECK_MSG(false, ("unknown benchmark: " + name).c_str());
  return Network{};
}

}  // namespace minpower
