#pragma once
// Deterministic synthetic benchmark circuits.
//
// SUBSTITUTION (documented in DESIGN.md): the paper evaluates on ISCAS-89
// and MCNC-91 circuits that are not redistributable offline. We generate
// seeded random multi-level networks whose PI/PO counts and optimized sizes
// land near the paper's per-circuit scale, keeping the original names so the
// tables line up. The synthesis algorithms under test consume generic
// Boolean networks; the paper's claims are aggregate trends over such
// random-logic circuits, which this preserves.

#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace minpower {

struct BenchProfile {
  std::string name;
  int num_pi = 8;
  int num_po = 8;
  int num_nodes = 40;     // internal SOP nodes before optimization
  int max_fanin = 5;      // per-node support
  int max_cubes = 4;      // per-node SOP width
  std::uint64_t seed = 1;
};

/// Generate the network for a profile. Deterministic in the profile.
Network generate_benchmark(const BenchProfile& profile);

/// The 17 circuit profiles standing in for the paper's Tables 2/3 suite.
const std::vector<BenchProfile>& paper_suite();

/// Lookup by circuit name (aborts if unknown).
Network make_benchmark(const std::string& name);

/// Parameterized scale-sweep families (DESIGN.md §16, ROADMAP item 3):
/// seed-deterministic generators whose internal node count tracks
/// `target_gates` from ~10^2 up to 10^5+ — the workload for `bench_flow
/// --scale` trajectories and the `minpower trend` gate.
///
///   chain — deep parity chain: a running carry folds in one fresh operand
///           PI per stage through an XOR/XNOR step, with XOR/AND/OR tap
///           nodes one step off-chain feeding sampled POs. Depth grows
///           linearly with size; the pure-parity spine keeps every prefix
///           BDD linear-width under any variable order, so cost growth
///           measures the *flow*, not an ordering accident.
///   cone  — wide control cones: many independent shallow reduction trees,
///           each folding a contiguous window of a large PI space down to
///           one output through fanin-4-ish template nodes. Wide support,
///           logarithmic depth, PO-heavy.
///   mesh  — high-reconvergence mesh: equal-width layers where neighboring
///           nodes draw fanins from heavily overlapping windows of the
///           previous layer, so almost every signal reconverges a few
///           levels up. The classic stress case for cofactor sharing.
struct ScaleProfile {
  std::string family = "chain";     // chain | cone | mesh
  std::size_t target_gates = 100;   // requested internal node count
  std::uint64_t seed = 1;
};

/// Canonical family names, in sweep order.
const std::vector<std::string>& scale_families();

/// True when `family` names a known scale family.
bool is_scale_family(const std::string& family);

/// Generate a scale-sweep instance named "<family>-<target>". Deterministic
/// in the profile; after the generator's own sweep the internal node count
/// lands within ~±25% of target_gates (locked by test_benchgen).
Network generate_scale_benchmark(const ScaleProfile& profile);

/// Two-level PLA-style circuit: every output is a sum of random cubes over
/// the same inputs, so outputs share many literal pairs — the workload where
/// common-subexpression extraction (plain or power-aware) has real freedom.
struct PlaProfile {
  std::string name = "pla";
  int num_pi = 10;
  int num_outputs = 8;
  int cubes_per_output = 6;
  double literal_density = 0.5;  // P(variable appears in a cube)
  std::uint64_t seed = 1;
};
Network generate_pla(const PlaProfile& profile);

}  // namespace minpower
