#pragma once
// Deterministic synthetic benchmark circuits.
//
// SUBSTITUTION (documented in DESIGN.md): the paper evaluates on ISCAS-89
// and MCNC-91 circuits that are not redistributable offline. We generate
// seeded random multi-level networks whose PI/PO counts and optimized sizes
// land near the paper's per-circuit scale, keeping the original names so the
// tables line up. The synthesis algorithms under test consume generic
// Boolean networks; the paper's claims are aggregate trends over such
// random-logic circuits, which this preserves.

#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace minpower {

struct BenchProfile {
  std::string name;
  int num_pi = 8;
  int num_po = 8;
  int num_nodes = 40;     // internal SOP nodes before optimization
  int max_fanin = 5;      // per-node support
  int max_cubes = 4;      // per-node SOP width
  std::uint64_t seed = 1;
};

/// Generate the network for a profile. Deterministic in the profile.
Network generate_benchmark(const BenchProfile& profile);

/// The 17 circuit profiles standing in for the paper's Tables 2/3 suite.
const std::vector<BenchProfile>& paper_suite();

/// Lookup by circuit name (aborts if unknown).
Network make_benchmark(const std::string& name);

/// Two-level PLA-style circuit: every output is a sum of random cubes over
/// the same inputs, so outputs share many literal pairs — the workload where
/// common-subexpression extraction (plain or power-aware) has real freedom.
struct PlaProfile {
  std::string name = "pla";
  int num_pi = 10;
  int num_outputs = 8;
  int cubes_per_output = 6;
  double literal_density = 0.5;  // P(variable appears in a cube)
  std::uint64_t seed = 1;
};
Network generate_pla(const PlaProfile& profile);

}  // namespace minpower
