#pragma once
// Boolean network: the multi-level logic representation shared by every
// phase of the flow (technology-independent optimization, NAND decomposition,
// technology mapping, power estimation).
//
// The network is a DAG of nodes. Internal nodes carry a sum-of-products
// (Cover) over their fanins; primary inputs and constants carry none.
// Primary outputs are named references to driver nodes.
//
// Node ids are stable: deleting a node leaves a tombstone, and `compact()`
// is never required for correctness. All structure-mutating operations keep
// fanin/fanout lists consistent; `check()` validates every invariant and is
// exercised by tests after each transformation.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sop/cover.hpp"
#include "util/check.hpp"

namespace minpower {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

enum class NodeKind : std::uint8_t {
  kPrimaryInput,
  kConstant0,
  kConstant1,
  kInternal,
  kDead,  // tombstone
};

struct Node {
  NodeKind kind = NodeKind::kDead;
  std::string name;
  std::vector<NodeId> fanins;
  std::vector<NodeId> fanouts;  // internal nodes reading this one (with dups
                                // collapsed; PO references tracked separately)
  Cover cover;                  // function over fanins (internal nodes only)

  bool is_pi() const { return kind == NodeKind::kPrimaryInput; }
  bool is_const() const {
    return kind == NodeKind::kConstant0 || kind == NodeKind::kConstant1;
  }
  bool is_internal() const { return kind == NodeKind::kInternal; }
  bool is_dead() const { return kind == NodeKind::kDead; }
};

struct PrimaryOutput {
  std::string name;
  NodeId driver = kNoNode;
};

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction -------------------------------------------------------

  NodeId add_pi(const std::string& name);
  NodeId add_constant(bool value, const std::string& name = "");

  /// Add an internal node computing `cover` over `fanins`.
  /// Variable i of the cover refers to fanins[i].
  NodeId add_node(std::vector<NodeId> fanins, Cover cover,
                  const std::string& name = "");

  /// Convenience subject-graph constructors.
  NodeId add_inv(NodeId a, const std::string& name = "");
  NodeId add_buf(NodeId a, const std::string& name = "");
  NodeId add_nand2(NodeId a, NodeId b, const std::string& name = "");
  NodeId add_and2(NodeId a, NodeId b, const std::string& name = "");
  NodeId add_or2(NodeId a, NodeId b, const std::string& name = "");

  void add_po(const std::string& name, NodeId driver);
  void set_po_driver(std::size_t po_index, NodeId driver);

  // ---- access --------------------------------------------------------------

  std::size_t capacity() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }

  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<PrimaryOutput>& pos() const { return pos_; }

  NodeId find(const std::string& name) const;

  std::size_t num_internal() const;
  std::size_t num_live() const;
  int num_literals() const;

  /// Number of PO references to `id` (POs are fanouts too for sweeping and
  /// load purposes but are not in Node::fanouts).
  int po_refs(NodeId id) const;

  /// Fanout degree including PO references.
  int fanout_count(NodeId id) const {
    return static_cast<int>(node(id).fanouts.size()) + po_refs(id);
  }

  // ---- structure edits ------------------------------------------------------

  /// Redirect every reader of `from` (internal fanins and POs) to `to`.
  void replace_everywhere(NodeId from, NodeId to);

  /// Delete `id` (must have no readers).
  void remove_node(NodeId id);

  /// Remove dead logic: nodes with no path to a PO, plus propagate constants
  /// and collapse single-input identity/inverter chains where trivial.
  /// Returns number of nodes removed.
  int sweep();

  // ---- analysis --------------------------------------------------------------

  /// Topological order over live nodes (PIs and constants first).
  std::vector<NodeId> topo_order() const;

  /// Unit-delay depth of each node (PIs at their arrival time, default 0).
  std::vector<int> unit_depths() const;

  /// Largest unit-delay PO depth.
  int depth() const;

  /// Evaluate the network on a PI assignment (by PI order). Returns PO values.
  std::vector<bool> eval(const std::vector<bool>& pi_values) const;

  /// Deep copy.
  Network duplicate() const;

  /// Validate all invariants (fanin/fanout symmetry, cover supports, kinds,
  /// acyclicity). Aborts on violation.
  void check() const;

  /// True when every internal node is a NAND2, INV or BUF (a subject graph).
  bool is_nand_network() const;

  /// Subject-graph node classification.
  bool is_inv(NodeId id) const;
  bool is_buf(NodeId id) const;
  bool is_nand2(NodeId id) const;

  /// Fresh unique node name with the given prefix.
  std::string fresh_name(const std::string& prefix);

 private:
  NodeId alloc(NodeKind kind, const std::string& name);
  void add_fanout_edge(NodeId driver, NodeId reader);
  void drop_fanout_edge(NodeId driver, NodeId reader);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<PrimaryOutput> pos_;
  std::unordered_map<std::string, NodeId> by_name_;
  int name_counter_ = 0;
};

/// Standard covers for the subject-graph primitives.
Cover nand2_cover();
Cover inv_cover();
Cover buf_cover();
Cover and2_cover();
Cover or2_cover();

}  // namespace minpower
