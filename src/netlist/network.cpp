#include "netlist/network.hpp"

#include <algorithm>
#include <bit>
#include <deque>

namespace minpower {

Cover nand2_cover() {
  return Cover{{Cube::literal(0, false), Cube::literal(1, false)}};
}
Cover inv_cover() { return Cover{{Cube::literal(0, false)}}; }
Cover buf_cover() { return Cover{{Cube::literal(0, true)}}; }
Cover and2_cover() {
  return Cover{{Cube::literal(0, true) & Cube::literal(1, true)}};
}
Cover or2_cover() {
  return Cover{{Cube::literal(0, true), Cube::literal(1, true)}};
}

NodeId Network::alloc(NodeKind kind, const std::string& name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = kind;
  n.name = name.empty() ? fresh_name("n") : name;
  MP_CHECK_MSG(!by_name_.contains(n.name),
               ("duplicate node name: " + n.name).c_str());
  by_name_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  return id;
}

NodeId Network::add_pi(const std::string& name) {
  const NodeId id = alloc(NodeKind::kPrimaryInput, name);
  pis_.push_back(id);
  return id;
}

NodeId Network::add_constant(bool value, const std::string& name) {
  return alloc(value ? NodeKind::kConstant1 : NodeKind::kConstant0, name);
}

NodeId Network::add_node(std::vector<NodeId> fanins, Cover cover,
                         const std::string& name) {
  MP_CHECK(fanins.size() <= kMaxCubeVars);
  for (NodeId f : fanins) MP_CHECK(f >= 0 && !node(f).is_dead());
  // Cover may only mention variables < fanins.size().
  const std::uint64_t sup = cover.support();
  if (fanins.size() < 64) {
    MP_CHECK_MSG((sup >> fanins.size()) == 0,
                 "cover mentions variable beyond fanin list");
  }
  const NodeId id = alloc(NodeKind::kInternal, name);
  Node& n = node(id);
  n.fanins = std::move(fanins);
  n.cover = std::move(cover);
  for (NodeId f : n.fanins) add_fanout_edge(f, id);
  return id;
}

NodeId Network::add_inv(NodeId a, const std::string& name) {
  return add_node({a}, inv_cover(), name);
}
NodeId Network::add_buf(NodeId a, const std::string& name) {
  return add_node({a}, buf_cover(), name);
}
NodeId Network::add_nand2(NodeId a, NodeId b, const std::string& name) {
  return add_node({a, b}, nand2_cover(), name);
}
NodeId Network::add_and2(NodeId a, NodeId b, const std::string& name) {
  return add_node({a, b}, and2_cover(), name);
}
NodeId Network::add_or2(NodeId a, NodeId b, const std::string& name) {
  return add_node({a, b}, or2_cover(), name);
}

void Network::add_po(const std::string& name, NodeId driver) {
  MP_CHECK(driver >= 0 && !node(driver).is_dead());
  pos_.push_back(PrimaryOutput{name, driver});
}

void Network::set_po_driver(std::size_t po_index, NodeId driver) {
  MP_CHECK(po_index < pos_.size());
  MP_CHECK(driver >= 0 && !node(driver).is_dead());
  pos_[po_index].driver = driver;
}

NodeId Network::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kNoNode : it->second;
}

std::size_t Network::num_internal() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.is_internal()) ++n;
  return n;
}

std::size_t Network::num_live() const {
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (!node.is_dead()) ++n;
  return n;
}

int Network::num_literals() const {
  int n = 0;
  for (const Node& node : nodes_)
    if (node.is_internal()) n += node.cover.num_literals();
  return n;
}

int Network::po_refs(NodeId id) const {
  int n = 0;
  for (const PrimaryOutput& po : pos_)
    if (po.driver == id) ++n;
  return n;
}

void Network::add_fanout_edge(NodeId driver, NodeId reader) {
  node(driver).fanouts.push_back(reader);
}

void Network::drop_fanout_edge(NodeId driver, NodeId reader) {
  auto& fo = node(driver).fanouts;
  const auto it = std::find(fo.begin(), fo.end(), reader);
  MP_CHECK(it != fo.end());
  fo.erase(it);
}

void Network::replace_everywhere(NodeId from, NodeId to) {
  MP_CHECK(from != to);
  // Collect readers first: editing fanouts while iterating invalidates.
  std::vector<NodeId> readers = node(from).fanouts;
  for (NodeId r : readers) {
    Node& reader = node(r);
    for (NodeId& f : reader.fanins) {
      if (f == from) {
        f = to;
        drop_fanout_edge(from, r);
        add_fanout_edge(to, r);
      }
    }
  }
  for (PrimaryOutput& po : pos_)
    if (po.driver == from) po.driver = to;
}

void Network::remove_node(NodeId id) {
  Node& n = node(id);
  MP_CHECK(n.fanouts.empty() && po_refs(id) == 0);
  for (NodeId f : n.fanins) drop_fanout_edge(f, id);
  n.fanins.clear();
  n.cover = Cover{};
  by_name_.erase(n.name);
  if (n.is_pi()) pis_.erase(std::find(pis_.begin(), pis_.end(), id));
  n.kind = NodeKind::kDead;
}

int Network::sweep() {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
      Node& n = node(id);
      if (!n.is_internal()) continue;
      if (n.fanouts.empty() && po_refs(id) == 0) {
        remove_node(id);
        ++removed;
        changed = true;
        continue;
      }
      // Propagate constant fanins: cofactor the cover at the known value;
      // the canonicalization step below then drops the dead fanin slot.
      {
        bool cofactored = false;
        for (std::size_t i = 0; i < n.fanins.size(); ++i) {
          const Node& f = node(n.fanins[i]);
          if (!f.is_const() || !n.cover.support()) continue;
          if (!((n.cover.support() >> i) & 1)) continue;
          n.cover = n.cover.cofactor(static_cast<int>(i),
                                     f.kind == NodeKind::kConstant1);
          cofactored = true;
        }
        if (cofactored) {
          changed = true;
          continue;  // revisit: cover may now be constant or buffer-like
        }
      }
      // Canonicalize the fanin list: drop fanins the cover does not mention
      // and merge slots aliased to the same driver (replace_everywhere can
      // alias slots). Merged slots can make cubes contradictory or covers
      // constant; normalize() and the constant branch below handle that.
      {
        const std::uint64_t sup = n.cover.support();
        bool needs_rewrite = false;
        for (std::size_t i = 0; i < n.fanins.size(); ++i) {
          if (!((sup >> i) & 1)) needs_rewrite = true;
          for (std::size_t j = 0; j < i; ++j)
            if (n.fanins[i] == n.fanins[j]) needs_rewrite = true;
        }
        if (needs_rewrite) {
          std::vector<NodeId> new_fanins;
          std::vector<int> new_var(kMaxCubeVars, -1);
          for (std::size_t i = 0; i < n.fanins.size(); ++i) {
            if (!((sup >> i) & 1)) continue;
            const auto it = std::find(new_fanins.begin(), new_fanins.end(),
                                      n.fanins[i]);
            if (it == new_fanins.end()) {
              new_var[i] = static_cast<int>(new_fanins.size());
              new_fanins.push_back(n.fanins[i]);
            } else {
              new_var[i] = static_cast<int>(it - new_fanins.begin());
            }
          }
          Cover new_cover = n.cover.remap(new_var);
          for (NodeId f : n.fanins) drop_fanout_edge(f, id);
          n.fanins = std::move(new_fanins);
          n.cover = std::move(new_cover);
          for (NodeId f : n.fanins) add_fanout_edge(f, id);
          changed = true;
          continue;  // revisit this node with its canonical shape
        }
      }
      // Semantic constant detection: optimization passes can build covers
      // that are tautologies without containing the literal "1" cube
      // (e.g. !x + x after a collapse). Check by complementation on small
      // supports; larger tautologies are left to the BDD-based passes.
      if (n.cover.num_cubes() >= 2 &&
          std::popcount(n.cover.support()) <= 12 &&
          n.cover.complement().is_zero()) {
        n.cover = Cover::one();
        changed = true;
        continue;  // the constant branch below picks this up
      }
      // Collapse buffers: single positive-literal cover.
      if (n.fanins.size() == 1 && n.cover == buf_cover()) {
        const NodeId src = n.fanins[0];
        replace_everywhere(id, src);
        remove_node(id);
        ++removed;
        changed = true;
        continue;
      }
      // Constant covers.
      if (n.cover.is_zero() || n.cover.is_one()) {
        const bool value = n.cover.is_one();
        NodeId k = kNoNode;
        for (NodeId c = 0; c < static_cast<NodeId>(nodes_.size()); ++c) {
          const NodeKind want =
              value ? NodeKind::kConstant1 : NodeKind::kConstant0;
          if (nodes_[static_cast<std::size_t>(c)].kind == want) {
            k = c;
            break;
          }
        }
        if (k == kNoNode) k = add_constant(value);
        replace_everywhere(id, k);
        remove_node(id);
        ++removed;
        changed = true;
        continue;
      }
    }
  }
  return removed;
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  std::vector<std::uint8_t> state(nodes_.size(), 0);  // 0 new, 1 open, 2 done
  // Iterative DFS from every live node.
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < static_cast<NodeId>(nodes_.size()); ++root) {
    if (node(root).is_dead() || state[static_cast<std::size_t>(root)] == 2)
      continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId id = stack.back();
      auto& st = state[static_cast<std::size_t>(id)];
      if (st == 2) {
        stack.pop_back();
        continue;
      }
      if (st == 0) {
        st = 1;
        for (NodeId f : node(id).fanins) {
          const auto fs = state[static_cast<std::size_t>(f)];
          MP_CHECK_MSG(fs != 1, "combinational cycle in network");
          if (fs == 0) stack.push_back(f);
        }
      } else {  // st == 1: all fanins done
        st = 2;
        order.push_back(id);
        stack.pop_back();
      }
    }
  }
  return order;
}

std::vector<int> Network::unit_depths() const {
  std::vector<int> depth(nodes_.size(), 0);
  for (NodeId id : topo_order()) {
    const Node& n = node(id);
    if (!n.is_internal()) continue;
    int d = 0;
    for (NodeId f : n.fanins)
      d = std::max(d, depth[static_cast<std::size_t>(f)]);
    depth[static_cast<std::size_t>(id)] = d + 1;
  }
  return depth;
}

int Network::depth() const {
  const std::vector<int> d = unit_depths();
  int out = 0;
  for (const PrimaryOutput& po : pos_)
    out = std::max(out, d[static_cast<std::size_t>(po.driver)]);
  return out;
}

std::vector<bool> Network::eval(const std::vector<bool>& pi_values) const {
  MP_CHECK(pi_values.size() == pis_.size());
  std::vector<char> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < pis_.size(); ++i)
    value[static_cast<std::size_t>(pis_[i])] = pi_values[i] ? 1 : 0;
  for (NodeId id : topo_order()) {
    const Node& n = node(id);
    if (n.kind == NodeKind::kConstant1) value[static_cast<std::size_t>(id)] = 1;
    if (!n.is_internal()) continue;
    std::uint64_t assignment = 0;
    for (std::size_t i = 0; i < n.fanins.size(); ++i)
      if (value[static_cast<std::size_t>(n.fanins[i])])
        assignment |= std::uint64_t{1} << i;
    value[static_cast<std::size_t>(id)] = n.cover.eval(assignment) ? 1 : 0;
  }
  std::vector<bool> out;
  out.reserve(pos_.size());
  for (const PrimaryOutput& po : pos_)
    out.push_back(value[static_cast<std::size_t>(po.driver)] != 0);
  return out;
}

Network Network::duplicate() const {
  Network copy = *this;  // value semantics: vectors and map copy cleanly
  return copy;
}

void Network::check() const {
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const Node& n = node(id);
    if (n.is_dead()) {
      MP_CHECK(n.fanins.empty() && n.fanouts.empty());
      continue;
    }
    if (n.is_internal()) {
      const std::uint64_t sup = n.cover.support();
      if (n.fanins.size() < 64) MP_CHECK((sup >> n.fanins.size()) == 0);
      for (NodeId f : n.fanins) {
        MP_CHECK(f >= 0 && f < static_cast<NodeId>(nodes_.size()));
        MP_CHECK(!node(f).is_dead());
        const auto& fo = node(f).fanouts;
        MP_CHECK(std::find(fo.begin(), fo.end(), id) != fo.end());
      }
    } else {
      MP_CHECK(n.fanins.empty());
    }
    for (NodeId r : n.fanouts) {
      const auto& fi = node(r).fanins;
      MP_CHECK(std::find(fi.begin(), fi.end(), id) != fi.end());
    }
  }
  for (const PrimaryOutput& po : pos_) {
    MP_CHECK(po.driver >= 0 && !node(po.driver).is_dead());
  }
  (void)topo_order();  // aborts on cycles
}

bool Network::is_nand_network() const {
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const Node& n = node(id);
    if (!n.is_internal()) continue;
    if (!is_nand2(id) && !is_inv(id) && !is_buf(id)) return false;
  }
  return true;
}

bool Network::is_inv(NodeId id) const {
  const Node& n = node(id);
  return n.is_internal() && n.fanins.size() == 1 && n.cover == inv_cover();
}

bool Network::is_buf(NodeId id) const {
  const Node& n = node(id);
  return n.is_internal() && n.fanins.size() == 1 && n.cover == buf_cover();
}

bool Network::is_nand2(NodeId id) const {
  const Node& n = node(id);
  return n.is_internal() && n.fanins.size() == 2 && n.cover == nand2_cover();
}

std::string Network::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = prefix + "_" + std::to_string(name_counter_++);
    if (!by_name_.contains(candidate)) return candidate;
  }
}

}  // namespace minpower
