#include "verify/verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "benchgen/benchgen.hpp"
#include "decomp/huffman.hpp"
#include "decomp/network_decompose.hpp"
#include "decomp/package_merge.hpp"
#include "flow/flow.hpp"
#include "library/library.hpp"
#include "map/curve.hpp"
#include "map/mapper.hpp"
#include "prob/probability.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace minpower::verify {

namespace {

/// SplitMix64 finalizer: derives independent sub-seeds from (seed, salt)
/// so the oracles consume disjoint random streams.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void fail(VerifyReport& report, const char* check, std::uint64_t seed,
          std::string detail) {
  report.failures.push_back(VerifyFailure{check, seed, std::move(detail)});
}

CircuitStyle style_for(std::uint64_t seed) {
  switch (mix(seed, 0x57) % 3) {
    case 0:
      return CircuitStyle::kStatic;
    case 1:
      return CircuitStyle::kDynamicP;
    default:
      return CircuitStyle::kDynamicN;
  }
}

const char* style_name(CircuitStyle s) {
  switch (s) {
    case CircuitStyle::kStatic:
      return "static";
    case CircuitStyle::kDynamicP:
      return "dynp";
    case CircuitStyle::kDynamicN:
      return "dynn";
  }
  return "?";
}

/// Local SOP of a library gate over its pin order, cached per Gate.
const Cover& gate_cover(const Gate* gate,
                        std::unordered_map<const Gate*, Cover>& cache) {
  const auto it = cache.find(gate);
  if (it != cache.end()) return it->second;
  std::vector<std::string> pin_names;
  pin_names.reserve(gate->pins.size());
  for (const GatePin& p : gate->pins) pin_names.push_back(p.name);
  return cache.emplace(gate, cover_from_expr(*gate->function, pin_names))
      .first->second;
}

BddRef compose_cover(BddManager& mgr, const Cover& cover,
                     const std::vector<BddRef>& fanin_refs) {
  BddRef r = BddManager::kFalse;
  for (const Cube& c : cover.cubes()) {
    BddRef cube = BddManager::kTrue;
    for (std::size_t i = 0; i < fanin_refs.size(); ++i) {
      if (c.has_pos(static_cast<int>(i)))
        cube = mgr.and_(cube, fanin_refs[i]);
      if (c.has_neg(static_cast<int>(i)))
        cube = mgr.and_(cube, mgr.not_(fanin_refs[i]));
    }
    r = mgr.or_(r, cube);
  }
  return r;
}

}  // namespace

bool mapped_network_equivalent(const Network& source,
                               const MappedNetwork& mapped) {
  const Network& subject = *mapped.subject;
  if (source.pis().size() != subject.pis().size()) return false;
  if (source.pos().size() != mapped.po_signal.size()) return false;

  BddManager mgr;
  const NetworkBdds src(mgr, source);
  std::unordered_map<std::string, int> var_of;
  for (std::size_t i = 0; i < source.pis().size(); ++i)
    var_of[source.node(source.pis()[i]).name] = src.pi_variable(i);

  // Signal BDDs over the subject node ids, against source variables.
  std::vector<BddRef> sig(subject.capacity(), BddManager::kFalse);
  for (std::size_t i = 0; i < subject.pis().size(); ++i) {
    const NodeId pi = subject.pis()[i];
    const auto it = var_of.find(subject.node(pi).name);
    if (it == var_of.end()) return false;  // PI name mismatch
    sig[static_cast<std::size_t>(pi)] = mgr.var(it->second);
  }
  for (NodeId id = 0; id < static_cast<NodeId>(subject.capacity()); ++id)
    if (subject.node(id).kind == NodeKind::kConstant1)
      sig[static_cast<std::size_t>(id)] = BddManager::kTrue;

  std::unordered_map<const Gate*, Cover> covers;
  for (const MappedGateInst& g : mapped.gates) {
    std::vector<BddRef> pins;
    pins.reserve(g.pin_nodes.size());
    for (NodeId s : g.pin_nodes) pins.push_back(sig[static_cast<std::size_t>(s)]);
    sig[static_cast<std::size_t>(g.root)] =
        compose_cover(mgr, gate_cover(g.gate, covers), pins);
  }

  std::unordered_map<std::string, BddRef> mapped_po;
  for (std::size_t j = 0; j < subject.pos().size(); ++j)
    mapped_po[subject.pos()[j].name] =
        sig[static_cast<std::size_t>(mapped.po_signal[j])];
  for (const PrimaryOutput& po : source.pos()) {
    const auto it = mapped_po.find(po.name);
    if (it == mapped_po.end()) return false;
    if (src.of(po.driver) != it->second) return false;
  }
  return true;
}

std::vector<double> exhaustive_signal_probabilities(
    const Network& net, const std::vector<double>& pi_prob1) {
  const std::size_t n = net.pis().size();
  MP_CHECK(pi_prob1.size() == n);
  MP_CHECK_MSG(n <= 24, "exhaustive probability oracle limited to 24 PIs");
  const std::vector<NodeId> order = net.topo_order();
  std::vector<double> p(net.capacity(), 0.0);
  std::vector<char> value(net.capacity(), 0);
  for (std::size_t m = 0; m < (std::size_t{1} << n); ++m) {
    double weight = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool v = (m >> i) & 1;
      value[static_cast<std::size_t>(net.pis()[i])] = v;
      weight *= v ? pi_prob1[i] : 1.0 - pi_prob1[i];
    }
    for (NodeId id : order) {
      const Node& node = net.node(id);
      if (node.kind == NodeKind::kConstant1) value[static_cast<std::size_t>(id)] = 1;
      if (!node.is_internal()) continue;
      std::uint64_t assignment = 0;
      for (std::size_t i = 0; i < node.fanins.size(); ++i)
        if (value[static_cast<std::size_t>(node.fanins[i])])
          assignment |= std::uint64_t{1} << i;
      value[static_cast<std::size_t>(id)] = node.cover.eval(assignment);
    }
    for (NodeId id : order)
      if (value[static_cast<std::size_t>(id)])
        p[static_cast<std::size_t>(id)] += weight;
  }
  return p;
}

McPowerEstimate monte_carlo_power(const MappedNetwork& mapped,
                                  const PowerParams& params, int samples,
                                  std::uint64_t seed) {
  MP_CHECK(samples > 0);
  const Network& subject = *mapped.subject;
  const std::size_t n = subject.pis().size();
  std::vector<double> pi_p1 =
      params.pi_prob1.empty() ? std::vector<double>(n, 0.5) : params.pi_prob1;
  MP_CHECK(pi_p1.size() == n);

  // Net loads, exactly as evaluate_mapped computes them.
  std::vector<double> load(subject.capacity(), 0.0);
  for (const MappedGateInst& g : mapped.gates)
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
      load[static_cast<std::size_t>(g.pin_nodes[i])] += g.gate->pins[i].cap;
  for (NodeId s : mapped.po_signal)
    load[static_cast<std::size_t>(s)] += params.po_load;

  // Monitored nets (gate outputs + PIs) with their µW-per-switch weights.
  std::vector<NodeId> nets;
  std::vector<double> weight;
  for (const MappedGateInst& g : mapped.gates) {
    nets.push_back(g.root);
    weight.push_back(load_power_uw(load[static_cast<std::size_t>(g.root)], 1.0,
                                   params.vdd, params.t_cycle));
  }
  for (NodeId pi : subject.pis()) {
    nets.push_back(pi);
    weight.push_back(load_power_uw(load[static_cast<std::size_t>(pi)], 1.0,
                                   params.vdd, params.t_cycle));
  }

  std::unordered_map<const Gate*, Cover> covers;
  std::vector<char> value(subject.capacity(), 0);
  auto eval_netlist = [&](const std::vector<bool>& pi_values) {
    for (std::size_t i = 0; i < n; ++i)
      value[static_cast<std::size_t>(subject.pis()[i])] = pi_values[i];
    for (NodeId id = 0; id < static_cast<NodeId>(subject.capacity()); ++id)
      if (subject.node(id).is_const())
        value[static_cast<std::size_t>(id)] =
            subject.node(id).kind == NodeKind::kConstant1;
    for (const MappedGateInst& g : mapped.gates) {
      std::uint64_t assignment = 0;
      for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
        if (value[static_cast<std::size_t>(g.pin_nodes[i])])
          assignment |= std::uint64_t{1} << i;
      value[static_cast<std::size_t>(g.root)] =
          gate_cover(g.gate, covers).eval(assignment);
    }
  };

  // Per-sample totals: mean is the estimate; the sample stddev captures the
  // cross-net correlation a per-net binomial model would miss.
  Rng rng(mix(seed, 0x3c));
  std::vector<bool> v1(n);
  std::vector<char> first(subject.capacity(), 0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int k = 0; k < samples; ++k) {
    for (std::size_t i = 0; i < n; ++i) v1[i] = rng.coin(pi_p1[i]);
    eval_netlist(v1);
    double x = 0.0;
    if (params.style == CircuitStyle::kStatic) {
      // Temporal independence: a switch is a value change across an
      // independently drawn consecutive vector.
      first = value;
      for (std::size_t i = 0; i < n; ++i) v1[i] = rng.coin(pi_p1[i]);
      eval_netlist(v1);
      for (std::size_t s = 0; s < nets.size(); ++s) {
        const auto id = static_cast<std::size_t>(nets[s]);
        if (first[id] != value[id]) x += weight[s];
      }
    } else {
      const bool want = params.style == CircuitStyle::kDynamicP;
      for (std::size_t s = 0; s < nets.size(); ++s)
        if (static_cast<bool>(value[static_cast<std::size_t>(nets[s])]) == want)
          x += weight[s];
    }
    sum += x;
    sum_sq += x * x;
  }

  McPowerEstimate est;
  est.power_uw = sum / samples;
  const double var =
      std::max(0.0, sum_sq / samples - est.power_uw * est.power_uw);
  est.stderr_uw = std::sqrt(var / samples);
  return est;
}

double reference_length_limited_cost(const std::vector<double>& weights,
                                     int max_level) {
  const int n = static_cast<int>(weights.size());
  MP_CHECK(n >= 1);
  MP_CHECK_MSG(n <= 12, "level-assignment oracle limited to 12 leaves");
  if (n == 1) return 0.0;
  MP_CHECK((1LL << max_level) >= n);

  // By the rearrangement inequality the optimum sorts weights descending
  // against levels ascending, so enumerating non-decreasing level sequences
  // with exact Kraft capacity covers every candidate optimum.
  std::vector<double> w = weights;
  std::sort(w.begin(), w.end(), std::greater<>());

  const std::int64_t full = std::int64_t{1} << max_level;
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> levels(static_cast<std::size_t>(n), 0);
  auto rec = [&](auto&& self, int i, int min_level, std::int64_t capacity,
                 double cost) -> void {
    if (cost >= best) return;
    if (i == n) {
      if (capacity == 0) best = cost;
      return;
    }
    const int remaining = n - i;
    for (int l = min_level; l <= max_level; ++l) {
      const std::int64_t unit = std::int64_t{1} << (max_level - l);
      // Every remaining leaf consumes at least one unit at max_level and at
      // most `unit` (levels are non-decreasing from l).
      if (capacity < unit + (remaining - 1)) continue;
      if (capacity > remaining * unit) continue;
      levels[static_cast<std::size_t>(i)] = l;
      self(self, i + 1, l, capacity - unit,
           cost + w[static_cast<std::size_t>(i)] * l);
    }
  };
  rec(rec, 0, 1, full, 0.0);
  MP_CHECK(std::isfinite(best));
  return best;
}

namespace {

void ref_tree_rec(std::vector<std::pair<double, int>>& active,
                  const DecompModel& model, int max_height, double acc,
                  double& best) {
  if (active.size() == 1) {
    best = std::min(best, acc);
    return;
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      const auto [pa, ha] = active[i];
      const auto [pb, hb] = active[j];
      const int h = 1 + std::max(ha, hb);
      if (max_height >= 0 && h > max_height) continue;
      const double p = model.merge_prob(pa, pb);
      std::vector<std::pair<double, int>> next;
      next.reserve(active.size() - 1);
      for (std::size_t k = 0; k < active.size(); ++k)
        if (k != i && k != j) next.push_back(active[k]);
      next.emplace_back(p, h);
      ref_tree_rec(next, model, max_height, acc + model.activity(p), best);
    }
  }
}

}  // namespace

double reference_best_tree_cost(const std::vector<double>& leaf_probs,
                                const DecompModel& model, int max_height) {
  MP_CHECK(!leaf_probs.empty());
  MP_CHECK_MSG(leaf_probs.size() <= 7,
               "plain tree enumeration limited to 7 leaves");
  if (leaf_probs.size() == 1) return 0.0;
  std::vector<std::pair<double, int>> active;
  active.reserve(leaf_probs.size());
  for (double p : leaf_probs) active.emplace_back(p, 0);
  double best = std::numeric_limits<double>::infinity();
  ref_tree_rec(active, model, max_height, 0.0, best);
  MP_CHECK_MSG(std::isfinite(best), "height bound admits no tree");
  return best;
}

// ---------------------------------------------------------------------------
// Pipeline oracle: one random circuit through opt → decomp ×3 → map ×2.
// ---------------------------------------------------------------------------

void verify_circuit(std::uint64_t seed, const VerifyOptions& options,
                    VerifyReport& report) {
  Rng rng(mix(seed, 0x01));

  BenchProfile profile;
  profile.name = "verify" + std::to_string(seed);
  profile.num_pi = 4 + static_cast<int>(rng.below(6));   // 4..9
  profile.num_po = 2 + static_cast<int>(rng.below(3));   // 2..4
  profile.num_nodes = 8 + static_cast<int>(rng.below(14));
  profile.max_fanin = 3 + static_cast<int>(rng.below(2));
  profile.max_cubes = 2 + static_cast<int>(rng.below(2));
  profile.seed = mix(seed, 0x02);
  const CircuitStyle style = style_for(seed);

  // Half the runs use biased PI statistics — they change decomposition,
  // mapping and power, so the oracles must hold off the 0.5 default too.
  std::vector<double> pi_prob1;
  if (rng.coin()) {
    pi_prob1.resize(static_cast<std::size_t>(profile.num_pi));
    for (double& p : pi_prob1) p = rng.uniform(0.1, 0.9);
  }

  const Network source = generate_benchmark(profile);
  Network prepared = source.duplicate();
  prepare_network(prepared);

  std::ostringstream ctx;
  ctx << "circuit seed=" << seed << " pis=" << profile.num_pi
      << " style=" << style_name(style)
      << (pi_prob1.empty() ? " uniform" : " biased");
  ++report.circuits;

  ++report.equivalence_checks;
  if (!networks_equivalent(source, prepared)) {
    fail(report, "opt-equivalence", seed,
         ctx.str() + ": rugged-lite changed the network function");
    return;  // downstream results would chase a miscompiled network
  }

  // The three decomposition configurations of Methods I/II/III.
  struct DecompCase {
    const char* name;
    DecompAlgorithm algorithm;
    bool bounded;
  };
  const DecompCase cases[] = {
      {"balanced", DecompAlgorithm::kBalanced, false},
      {"minpower", DecompAlgorithm::kMinPower, false},
      {"bounded-minpower", DecompAlgorithm::kMinPower, true},
  };

  Network subject;  // the minpower decomposition, reused for mapping
  for (const DecompCase& c : cases) {
    NetworkDecompOptions d;
    d.style = style;
    d.algorithm = c.algorithm;
    d.bounded_height = c.bounded;
    d.pi_prob1 = pi_prob1;
    NetworkDecompResult r = decompose_network(prepared, d);
    if (!r.network.is_nand_network()) {
      fail(report, "decomp-subject-graph", seed,
           ctx.str() + ": " + c.name + " result is not a NAND2/INV network");
      continue;
    }
    ++report.equivalence_checks;
    if (!networks_equivalent(prepared, r.network))
      fail(report, "decomp-equivalence", seed,
           ctx.str() + ": " + c.name + " decomposition is not equivalent");
    if (c.algorithm == DecompAlgorithm::kMinPower && !c.bounded)
      subject = std::move(r.network);
  }

  // Exhaustive activity oracle on both the optimized network and the
  // decomposed subject graph.
  const std::vector<double> probs_full =
      pi_prob1.empty()
          ? std::vector<double>(static_cast<std::size_t>(profile.num_pi), 0.5)
          : pi_prob1;
  auto check_probabilities = [&](const Network& net, const char* which) {
    if (static_cast<int>(net.pis().size()) > options.max_exhaustive_pis)
      return;
    ++report.activity_checks;
    std::vector<double> by_pi(net.pis().size(), 0.5);
    // PI sets can shrink during optimization; rebind by name.
    std::unordered_map<std::string, double> by_name;
    for (std::size_t i = 0; i < source.pis().size(); ++i)
      by_name[source.node(source.pis()[i]).name] = probs_full[i];
    for (std::size_t i = 0; i < net.pis().size(); ++i) {
      const auto it = by_name.find(net.node(net.pis()[i]).name);
      if (it != by_name.end()) by_pi[i] = it->second;
    }
    const std::vector<double> exact =
        exhaustive_signal_probabilities(net, by_pi);
    const std::vector<double> bdd = signal_probabilities(net, by_pi);
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& node = net.node(id);
      if (node.is_dead()) continue;
      const double d = std::abs(exact[static_cast<std::size_t>(id)] -
                                bdd[static_cast<std::size_t>(id)]);
      if (d > 1e-7) {
        std::ostringstream os;
        os << ctx.str() << ": " << which << " node " << node.name
           << " exhaustive p=" << exact[static_cast<std::size_t>(id)]
           << " vs BDD p=" << bdd[static_cast<std::size_t>(id)];
        fail(report, "activity-oracle", seed, os.str());
        return;  // one node is enough to reproduce
      }
    }
  };
  check_probabilities(prepared, "optimized");
  if (subject.pos().empty()) return;  // decomposition already failed above
  check_probabilities(subject, "decomposed");

  // Map the shared subject under both objectives; each mapping must stay
  // BDD-equivalent to the original optimized network.
  const Library& lib = standard_library();
  for (const MapObjective objective :
       {MapObjective::kPower, MapObjective::kArea}) {
    MapOptions m;
    m.objective = objective;
    m.style = style;
    m.pi_prob1 = pi_prob1;
    const MapResult mr = map_network(subject, lib, m);
    mr.mapped.check();
    ++report.equivalence_checks;
    if (!mapped_network_equivalent(prepared, mr.mapped)) {
      fail(report, "map-equivalence", seed,
           ctx.str() + (objective == MapObjective::kPower ? ": pd-map"
                                                          : ": ad-map") +
               " netlist is not equivalent to the source");
      continue;
    }

    // Monte-Carlo power convergence (power objective only — one netlist
    // per circuit keeps the harness fast).
    if (objective != MapObjective::kPower || options.mc_samples <= 0) continue;
    const PowerParams params = PowerParams::from(m);
    const MappedReport analytic = evaluate_mapped(mr.mapped, params);
    const McPowerEstimate mc = monte_carlo_power(
        mr.mapped, params, options.mc_samples, mix(seed, 0x04));
    ++report.monte_carlo_checks;
    const double band =
        options.mc_sigmas * mc.stderr_uw + 1e-6 * (1.0 + analytic.power_uw);
    if (std::abs(mc.power_uw - analytic.power_uw) > band) {
      std::ostringstream os;
      os << ctx.str() << ": analytic power " << analytic.power_uw
         << " µW vs Monte-Carlo " << mc.power_uw << " ± " << mc.stderr_uw
         << " µW (" << options.mc_samples << " samples)";
      fail(report, "monte-carlo-power", seed, os.str());
    }
  }
}

// ---------------------------------------------------------------------------
// Tree optimality oracles.
// ---------------------------------------------------------------------------

void verify_trees(std::uint64_t seed, VerifyReport& report) {
  Rng rng(mix(seed, 0x10));
  const int n = 2 + static_cast<int>(rng.below(7));  // 2..8
  std::vector<double> probs(static_cast<std::size_t>(n));
  for (double& p : probs) p = rng.uniform(0.02, 0.98);
  const GateType gate = rng.coin() ? GateType::kAnd : GateType::kOr;
  const CircuitStyle style = style_for(mix(seed, 0x11));
  const DecompModel model(gate, style);
  constexpr double kTol = 1e-9;

  std::ostringstream ctx;
  ctx << "tree seed=" << seed << " n=" << n
      << " gate=" << (gate == GateType::kAnd ? "and" : "or")
      << " style=" << style_name(style);

  const DecompTree exhaustive = best_tree_exhaustive(probs, model);
  const double opt = exhaustive.internal_cost(model, probs);

  // The branch-and-bound enumerator itself is cross-checked against a plain
  // recursion for small n, so the oracle is not self-referential.
  if (n <= 5) {
    ++report.tree_checks;
    const double plain = reference_best_tree_cost(probs, model);
    if (std::abs(plain - opt) > kTol) {
      std::ostringstream os;
      os << ctx.str() << ": best_tree_exhaustive=" << opt
         << " vs plain enumeration=" << plain;
      fail(report, "exhaustive-self-check", seed, os.str());
    }
  }

  if (model.huffman_optimal()) {
    // Theorem 2.2: Huffman is exactly optimal for quasi-linear merges.
    ++report.tree_checks;
    const double h = huffman_tree(probs, model).internal_cost(model, probs);
    if (std::abs(h - opt) > kTol) {
      std::ostringstream os;
      os << ctx.str() << ": huffman=" << h << " vs brute force=" << opt;
      fail(report, "huffman-optimality", seed, os.str());
    }
  } else {
    // Modified Huffman is a heuristic for static CMOS: assert it never beats
    // the brute-force optimum and report its Table-1 hit rate.
    ++report.tree_checks;
    const double mh =
        modified_huffman_tree(probs, model).internal_cost(model, probs);
    if (mh < opt - kTol) {
      std::ostringstream os;
      os << ctx.str() << ": modified huffman=" << mh
         << " beats the brute-force optimum " << opt;
      fail(report, "modified-huffman-sanity", seed, os.str());
    }
    ++report.modified_huffman_total;
    if (mh <= opt + kTol) ++report.modified_huffman_optimal;
  }

  // Package-merge vs the DP/enumeration reference, plus structural
  // invariants of the returned level assignment.
  for (int max_level : {balanced_height(n), balanced_height(n) + 1, n - 1}) {
    if (max_level < balanced_height(n) || max_level > n - 1) continue;
    if (n == 2 && max_level != 1) continue;
    ++report.tree_checks;
    const std::vector<int> levels =
        length_limited_levels(probs, max_level);
    std::int64_t kraft = 0;
    double cost = 0.0;
    bool bounds_ok = levels.size() == probs.size();
    for (std::size_t i = 0; bounds_ok && i < levels.size(); ++i) {
      bounds_ok = levels[i] >= 1 && levels[i] <= max_level;
      if (bounds_ok) {
        kraft += std::int64_t{1} << (max_level - levels[i]);
        cost += probs[i] * levels[i];
      }
    }
    if (!bounds_ok || kraft != (std::int64_t{1} << max_level)) {
      std::ostringstream os;
      os << ctx.str() << ": L=" << max_level
         << " package-merge levels violate bounds or Kraft equality";
      fail(report, "package-merge-kraft", seed, os.str());
      continue;
    }
    const double ref = reference_length_limited_cost(probs, max_level);
    if (std::abs(cost - ref) > kTol) {
      std::ostringstream os;
      os << ctx.str() << ": L=" << max_level << " package-merge cost=" << cost
         << " vs DP reference=" << ref;
      fail(report, "package-merge-optimality", seed, os.str());
      continue;
    }
    // The level assignment must realize as a tree within the bound.
    const DecompTree t = tree_from_levels(levels);
    if (t.height() > max_level)
      fail(report, "package-merge-height", seed,
           ctx.str() + ": realized tree exceeds the height bound");
  }

  // Height-bounded MINPOWER construction: feasible, and exactly optimal for
  // the n ≤ 6 range the implementation solves by exhaustion.
  const int bound = balanced_height(n) + static_cast<int>(rng.below(2));
  const DecompTree bounded =
      bounded_height_minpower_tree(probs, bound, model);
  ++report.tree_checks;
  if (bounded.height() > bound) {
    std::ostringstream os;
    os << ctx.str() << ": bounded tree height " << bounded.height()
       << " exceeds bound " << bound;
    fail(report, "bounded-height-feasibility", seed, os.str());
  } else if (n <= 6) {
    const double ref = reference_best_tree_cost(probs, model, bound);
    const double got = bounded.internal_cost(model, probs);
    if (std::abs(got - ref) > kTol) {
      std::ostringstream os;
      os << ctx.str() << ": bound=" << bound << " bounded minpower=" << got
         << " vs height-bounded brute force=" << ref;
      fail(report, "bounded-height-optimality", seed, os.str());
    }
  }
}

// ---------------------------------------------------------------------------
// Curve invariants.
// ---------------------------------------------------------------------------

void verify_curves(std::uint64_t seed, VerifyReport& report) {
  Rng rng(mix(seed, 0x20));
  const int count = 1 + static_cast<int>(rng.below(30));
  std::vector<CurvePoint> inserted;
  Curve curve;
  for (int i = 0; i < count; ++i) {
    CurvePoint p;
    // Snapped grids create the arrival/cost ties that exercise the
    // dominance edge cases.
    p.arrival = 0.25 * static_cast<double>(rng.below(40));
    p.cost = 0.5 * static_cast<double>(rng.below(60));
    p.match = i;
    inserted.push_back(p);
    curve.insert(p);
  }
  std::ostringstream ctx;
  ctx << "curve seed=" << seed << " points=" << count;

  ++report.curve_checks;
  const auto& pts = curve.points();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    if (!(pts[i].arrival < pts[i + 1].arrival) ||
        !(pts[i].cost > pts[i + 1].cost)) {
      fail(report, "curve-non-inferior", seed,
           ctx.str() + ": points are not strictly sorted/non-inferior");
      return;
    }
  }

  // Completeness both ways: every input point is weakly dominated by a kept
  // point, and every kept point is one of the inputs.
  ++report.curve_checks;
  for (const CurvePoint& p : inserted) {
    bool dominated = false;
    for (const CurvePoint& q : pts)
      if (q.arrival <= p.arrival && q.cost <= p.cost) {
        dominated = true;
        break;
      }
    if (!dominated) {
      std::ostringstream os;
      os << ctx.str() << ": inserted point (" << p.arrival << ", " << p.cost
         << ") is not dominated by any kept point";
      fail(report, "curve-dominance", seed, os.str());
      return;
    }
  }
  for (const CurvePoint& q : pts) {
    bool known = false;
    for (const CurvePoint& p : inserted)
      if (p.arrival == q.arrival && p.cost == q.cost) {
        known = true;
        break;
      }
    if (!known) {
      fail(report, "curve-invented-point", seed,
           ctx.str() + ": curve contains a point that was never inserted");
      return;
    }
  }

  // Insertion-order independence: the non-inferior frontier is a set.
  ++report.curve_checks;
  Curve reversed;
  for (auto it = inserted.rbegin(); it != inserted.rend(); ++it)
    reversed.insert(*it);
  bool same = reversed.size() == curve.size();
  for (std::size_t i = 0; same && i < pts.size(); ++i)
    same = reversed[i].arrival == pts[i].arrival &&
           reversed[i].cost == pts[i].cost;
  if (!same) {
    fail(report, "curve-order-dependence", seed,
         ctx.str() + ": reversed insertion order yields a different frontier");
    return;
  }

  // Prune idempotence + endpoint preservation (Sec. 3.2.1 ε-pruning).
  ++report.curve_checks;
  const double epsilon_t = rng.uniform(0.0, 0.6);
  const double epsilon_c = rng.uniform(0.0, 1.5);
  Curve pruned = curve;
  pruned.prune(epsilon_t, epsilon_c);
  if (!pts.empty()) {
    const bool endpoints_kept =
        !pruned.empty() &&
        pruned[0].arrival == pts.front().arrival &&
        pruned[pruned.size() - 1].cost == pts.back().cost;
    if (!endpoints_kept) {
      fail(report, "curve-prune-endpoints", seed,
           ctx.str() + ": pruning dropped the fastest or cheapest point");
      return;
    }
  }
  Curve twice = pruned;
  twice.prune(epsilon_t, epsilon_c);
  bool idempotent = twice.size() == pruned.size();
  for (std::size_t i = 0; idempotent && i < pruned.size(); ++i)
    idempotent = twice[i].arrival == pruned[i].arrival &&
                 twice[i].cost == pruned[i].cost;
  if (!idempotent) {
    std::ostringstream os;
    os << ctx.str() << ": prune(" << epsilon_t << ", " << epsilon_c
       << ") is not idempotent";
    fail(report, "curve-prune-idempotence", seed, os.str());
  }
}

VerifyReport run_verification(const VerifyOptions& options) {
  VerifyReport report;
  for (int i = 0; i < options.count; ++i) {
    const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(i);
    if (options.check_circuits) verify_circuit(seed, options, report);
    if (options.check_trees) verify_trees(seed, report);
    if (options.check_curves) verify_curves(seed, report);
  }
  return report;
}

void write_verify_json(std::ostream& os, const VerifyOptions& options,
                       const VerifyReport& report) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "minpower.verify.v1");
  w.field("seed", static_cast<unsigned long long>(options.seed));
  w.field("count", options.count);
  w.field("ok", report.ok());
  w.key("checks");
  w.begin_object();
  w.field("circuits", report.circuits);
  w.field("equivalence", report.equivalence_checks);
  w.field("activity", report.activity_checks);
  w.field("monte_carlo", report.monte_carlo_checks);
  w.field("trees", report.tree_checks);
  w.field("curves", report.curve_checks);
  w.field("modified_huffman_optimal", report.modified_huffman_optimal);
  w.field("modified_huffman_total", report.modified_huffman_total);
  w.end_object();
  w.key("failures");
  w.begin_array();
  for (const VerifyFailure& f : report.failures) {
    w.begin_object();
    w.field("check", f.check);
    w.field("seed", static_cast<unsigned long long>(f.seed));
    w.field("reproduce", "minpower verify --seed " + std::to_string(f.seed) +
                             " --count 1");
    w.field("detail", f.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace minpower::verify
