#pragma once
// Differential verification harness for the decompose → map → power pipeline.
//
// Every stage of the flow is cross-checked against an independent reference:
//   * equivalence oracle — global BDDs prove the optimized network, its
//     NAND2/INV decomposition and the mapped gate netlist all compute the
//     source functions (Sections 2.3 and 3 both rest on this);
//   * activity oracle — for small-PI circuits, exact switching activity by
//     weighted exhaustive enumeration must match the Eq. 2 BDD traversal,
//     and the analytic mapped power must agree with a zero-delay Monte-Carlo
//     estimate within statistical bounds;
//   * optimality oracles — Huffman (Theorem 2.2) and package-merge
//     (BOUNDED-HEIGHT MINSUM) results are compared with plain brute-force /
//     DP references for small leaf counts;
//   * curve invariants — every Curve stays non-inferior, sorted, insertion-
//     order independent and prune-idempotent (Lemma 3.1).
//
// Seed convention: every failure records the single seed that reproduces it
// via `minpower verify --seed <seed> --count 1`. The harness derives all of
// one iteration's randomness from that one seed, so a CI failure with a
// date-derived base seed is one command away from a local repro.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "decomp/model.hpp"
#include "map/mapped.hpp"
#include "netlist/network.hpp"
#include "power/report.hpp"

namespace minpower::verify {

struct VerifyOptions {
  std::uint64_t seed = 1;  // iteration i uses seed + i
  int count = 200;         // seeded iterations (one random circuit each)

  /// Exhaustive activity oracle runs only when the circuit has at most this
  /// many PIs (2^n weighted assignments per network).
  int max_exhaustive_pis = 12;

  /// Monte-Carlo vector(-pair) samples for the power convergence check;
  /// 0 disables the check.
  int mc_samples = 1500;

  /// Acceptance band for the Monte-Carlo estimate, in standard errors.
  double mc_sigmas = 6.0;

  bool check_circuits = true;  // equivalence + activity + Monte-Carlo
  bool check_trees = true;     // Huffman / package-merge optimality
  bool check_curves = true;    // Curve invariants
};

struct VerifyFailure {
  std::string check;   // stable id, e.g. "decomp-equivalence"
  std::uint64_t seed;  // reproduce: minpower verify --seed <seed> --count 1
  std::string detail;
};

struct VerifyReport {
  int circuits = 0;            // random circuits pushed through the pipeline
  int equivalence_checks = 0;  // BDD equivalence assertions
  int activity_checks = 0;     // exhaustive-vs-BDD probability assertions
  int monte_carlo_checks = 0;  // analytic-vs-simulated power assertions
  int tree_checks = 0;         // tree/level optimality assertions
  int curve_checks = 0;        // curve invariant assertions

  /// Informational Table-1-style rate: Modified Huffman hits the brute-force
  /// optimum in `modified_huffman_optimal` of `modified_huffman_total`
  /// static-style instances (a heuristic — not asserted, just reported).
  int modified_huffman_optimal = 0;
  int modified_huffman_total = 0;

  std::vector<VerifyFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Run every enabled oracle on `count` seeded iterations. Deterministic in
/// the options.
VerifyReport run_verification(const VerifyOptions& options);

/// Single-seed entry points used by run_verification and the tests.
void verify_circuit(std::uint64_t seed, const VerifyOptions& options,
                    VerifyReport& report);
void verify_trees(std::uint64_t seed, VerifyReport& report);
void verify_curves(std::uint64_t seed, VerifyReport& report);

/// BDD equivalence of a mapped netlist against the source network it
/// realizes: PIs matched by name, POs by name, gate functions composed from
/// their genlib expressions.
bool mapped_network_equivalent(const Network& source,
                               const MappedNetwork& mapped);

/// Exact per-node signal probabilities by weighted exhaustive enumeration
/// over all 2^n PI assignments (oracle for the BDD pass; n small).
std::vector<double> exhaustive_signal_probabilities(
    const Network& net, const std::vector<double>& pi_prob1);

/// Zero-delay Monte-Carlo power estimate of a mapped netlist under the same
/// net-load model as evaluate_mapped. Returns the estimate and its standard
/// error, both in µW. Deterministic in the seed.
struct McPowerEstimate {
  double power_uw = 0.0;
  double stderr_uw = 0.0;
};
McPowerEstimate monte_carlo_power(const MappedNetwork& mapped,
                                  const PowerParams& params, int samples,
                                  std::uint64_t seed);

/// Independent minimum of Σ w_i·l_i over level assignments with l_i ≤
/// max_level and Kraft equality (the BOUNDED-HEIGHT MINSUM objective;
/// rearrangement-inequality enumeration, n ≤ 12).
double reference_length_limited_cost(const std::vector<double>& weights,
                                     int max_level);

/// Plain recursive minimum of internal tree cost over all merge orders — no
/// pruning, optionally height-bounded (max_height < 0 = unbounded). The
/// fully independent oracle for huffman_tree / best_tree_exhaustive /
/// bounded_height_minpower_tree; practical for n ≤ 6.
double reference_best_tree_cost(const std::vector<double>& leaf_probs,
                                const DecompModel& model, int max_height = -1);

/// Machine-readable `minpower.verify.v1` report (schema in DESIGN.md §8).
void write_verify_json(std::ostream& os, const VerifyOptions& options,
                       const VerifyReport& report);

}  // namespace minpower::verify
