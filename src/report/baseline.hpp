#pragma once
// QoR baseline / regression-compare subsystem (DESIGN.md §11).
//
// Loads two `minpower.flow.v1` reports and diffs them cell by cell, where a
// cell is one (circuit × method) result:
//
//   - QoR values (power_uw, area, delay_ns, gates) and the task status are
//     an *exact lock* by default: any drift beyond the configured tolerance
//     — including an improvement — is a gate failure, because baselines
//     record what the code computes, and improvements must be banked by
//     regenerating the baseline deliberately (MINPOWER_REGEN_BASELINE=1).
//   - Metrics-registry counters/gauges/histograms are deterministic and
//     thread-count independent (DESIGN.md §10), so they compare exactly —
//     but only when both reports cover the same circuit set; a subset run
//     (the CI gate) skips them with a recorded reason. Histogram drift is
//     additionally summarized as p50/p90/p99 shifts estimated from the
//     log-2 buckets (the estimate is the inclusive lower bound of the
//     bucket holding the quantile sample).
//   - Wall times are noisy, so they gate only on *slowdown* beyond a
//     configurable band (default +20%), and per-phase times below a floor
//     (default 1 ms) are ignored entirely.
//
// Cells present only in the baseline are "skipped" (a subset candidate is
// fine unless require_all is set); cells only in the candidate are "new"
// and never fail the gate.
//
// Consumed by `minpower compare <baseline> <candidate>`, which prints the
// verdict table, emits `minpower.compare.v1`, and exits 3 on regression.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace minpower::report {

/// One histogram from a report's metrics block (log-2 buckets, sparse).
struct HistSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // (lo, n)
};

/// Nearest-rank q-quantile estimated from the log-2 buckets: the inclusive
/// lower bound of the bucket containing the ⌈q·count⌉-th sample. Exact for
/// the bucket, a factor-2 under-estimate of the sample at worst.
std::uint64_t histogram_percentile(const HistSnapshot& h, double q);

/// One (circuit × method) result of a flow report.
struct QorCell {
  std::string circuit;
  std::string method;
  std::string state;  // task status: ok / degraded / failed
  double area = 0.0;
  double delay_ns = 0.0;
  double power_uw = 0.0;
  double gates = 0.0;
  double decomp_ms = 0.0;
  double activity_ms = 0.0;
  double map_ms = 0.0;
  double eval_ms = 0.0;
};

/// A parsed `minpower.flow.v1` document, reduced to what compare needs.
struct FlowReportDoc {
  std::string path;     // label for messages/reports
  std::string library;
  double num_threads = 0.0;
  double elapsed_ms = 0.0;
  std::vector<std::string> circuits;  // order of appearance
  std::vector<QorCell> cells;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<HistSnapshot> histograms;
};

/// Parse a report from JSON text. Returns false (with `error`) on
/// malformed JSON or a wrong/missing schema marker.
bool load_flow_report(std::string_view json_text, const std::string& label,
                      FlowReportDoc* out, std::string* error);

/// Convenience: read + parse a report file.
bool load_flow_report_file(const std::string& path, FlowReportDoc* out,
                           std::string* error);

struct CompareOptions {
  /// QoR tolerance: |cand − base| ≤ abs_tol + rel_tol·|base| passes.
  /// Both default to 0 — exact match.
  double qor_rel_tol = 0.0;
  double qor_abs_tol = 0.0;
  /// Allowed fractional wall-time slowdown (0.2 = +20%). Negative
  /// disables every wall-time check. Speedups never fail.
  double time_band = 0.20;
  /// Per-phase times with a baseline below this floor are ignored (they
  /// are scheduling noise, not signal).
  double time_floor_ms = 1.0;
  /// Treat baseline cells missing from the candidate as regressions
  /// (full-suite lock) instead of "skipped" (subset gate).
  bool require_all = false;
  /// Compare the metrics-registry block (counters/gauges/histograms).
  /// Disable (`--qor-only`) when vetting an intentional engine change whose
  /// operation counts legitimately move but whose QoR must stay locked —
  /// the gate that precedes a deliberate baseline regeneration.
  bool check_metrics = true;
};

enum class Verdict {
  kOk,             // within tolerance
  kQorRegressed,   // QoR value drifted worse than tolerance
  kQorImproved,    // QoR value drifted better — still fails the exact lock
  kStatusChanged,  // task state differs (e.g. ok → degraded)
  kSlow,           // wall time beyond the slowdown band
  kSkipped,        // in baseline only (subset candidate)
  kNew,            // in candidate only
};

const char* verdict_name(Verdict v);

/// One offending metric of a cell.
struct Delta {
  std::string metric;
  double base = 0.0;
  double cand = 0.0;
};

struct CellResult {
  std::string circuit;
  std::string method;
  Verdict verdict = Verdict::kOk;
  std::vector<Delta> deltas;  // offending metrics only
};

struct MetricDiff {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t cand = 0;
};

struct HistDiff {
  std::string name;
  std::uint64_t base_count = 0, cand_count = 0;
  std::uint64_t base_sum = 0, cand_sum = 0;
  std::uint64_t base_p50 = 0, cand_p50 = 0;
  std::uint64_t base_p90 = 0, cand_p90 = 0;
  std::uint64_t base_p99 = 0, cand_p99 = 0;
};

struct CompareReport {
  std::string baseline_path;
  std::string candidate_path;
  CompareOptions options;
  std::vector<CellResult> cells;  // every baseline ∪ candidate cell
  // Registry comparison (exact); skipped when circuit sets differ.
  bool metrics_checked = false;
  std::string metrics_skip_reason;
  std::vector<MetricDiff> counter_diffs;  // differing entries only
  std::vector<MetricDiff> gauge_diffs;
  std::vector<HistDiff> histogram_diffs;
  // Whole-run wall time.
  double base_elapsed_ms = 0.0;
  double cand_elapsed_ms = 0.0;
  bool elapsed_slow = false;
  // Verdict tallies over `cells`.
  int ok = 0, qor_regressed = 0, qor_improved = 0, status_changed = 0,
      slow = 0, skipped = 0, added = 0;

  bool regression() const {
    return qor_regressed + qor_improved + status_changed + slow > 0 ||
           !counter_diffs.empty() || !gauge_diffs.empty() ||
           !histogram_diffs.empty() || elapsed_slow ||
           (options.require_all && skipped > 0);
  }
};

CompareReport compare_flow_reports(const FlowReportDoc& base,
                                   const FlowReportDoc& cand,
                                   const CompareOptions& options);

/// Emit the `minpower.compare.v1` document.
void write_compare_json(std::ostream& os, const CompareReport& r);

/// Human-readable verdict table: summary line + every non-ok cell with its
/// offending metrics, plus registry and wall-time findings.
void print_compare(std::ostream& os, const CompareReport& r);

}  // namespace minpower::report
