#pragma once
// Scale-trajectory trend gate (DESIGN.md §16) — the scale-axis sibling of
// the QoR compare gate (baseline.hpp).
//
// Input is one or more `minpower.bench_trajectory.v1` JSONL files, as
// appended by `bench_flow --append` / `bench_flow --scale`: one compact
// JSON object per line, each a single (family, target_gates, seed) sweep
// point carrying gates, wall ms, peak BDD node bytes, peak worker RSS and
// degradation/retry/failure counts. A torn trailing line (a sweep killed
// mid-append) is tolerated and dropped, like the shard journal.
//
// Analysis fits per-family log2-log2 slopes — d log2(metric) / d log2(gates)
// for wall time, peak RSS and peak BDD arena bytes — over the distinct
// sweep points, the straight-line summary of "how does cost scale with
// circuit size". With a committed reference trajectory the gate compares:
//
//   - per-point ratios: a candidate point matching a baseline point (same
//     family/target_gates/seed/suite) whose wall_ms or memory peak exceeds
//     baseline·(1+band) regresses (wall times below a floor are noise and
//     ignored);
//   - per-family slopes: a fitted slope exceeding the baseline slope by
//     more than slope_band regresses — catching complexity-class drift
//     that per-point bands at small sizes would miss.
//
// Consumed by `minpower trend <traj...>`, which prints the fitted-slope
// table, emits `minpower.trend.v1`, and exits 3 on regression.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace minpower::report {

/// One parsed trajectory record. Unknown fields are ignored; missing
/// numeric fields default to 0 (older records simply lack the memory
/// telemetry).
struct TrajectoryPoint {
  std::string family;  // chain | cone | mesh | paper-suite | ...
  std::uint64_t seed = 0;
  std::uint64_t target_gates = 0;  // requested size (0: fixed suites)
  double gates = 0.0;              // generated internal node count
  double suite = 0.0;              // circuits in the run
  double threads = 0.0;
  double shards = 0.0;
  double wall_ms = 0.0;
  double peak_bdd_nodes = 0.0;
  double peak_bdd_node_bytes = 0.0;
  double peak_bdd_arena_bytes = 0.0;
  double peak_rss_kb = 0.0;
  double degradations = 0.0;
  double failures = 0.0;
  double retries = 0.0;
};

struct TrajectoryDoc {
  std::string path;  // label for messages
  std::vector<TrajectoryPoint> points;
};

/// Parse trajectory JSONL text. A malformed or schema-less final line is
/// dropped (torn tail); a malformed interior line fails the load.
bool load_trajectory(std::string_view text, const std::string& label,
                     TrajectoryDoc* out, std::string* error);

/// Read + parse one file, appending to `out->points` (callers merge several
/// trajectory files into one candidate document).
bool load_trajectory_file(const std::string& path, TrajectoryDoc* out,
                          std::string* error);

/// Least-squares line through (log2 gates, log2 metric). Unavailable until
/// two points with distinct positive gate counts and positive metric exist.
struct SlopeFit {
  bool available = false;
  double slope = 0.0;      // d log2(metric) / d log2(gates)
  double intercept = 0.0;  // log2(metric) at log2(gates) = 0
  int points = 0;
};

/// Per-family trend summary over every point of that family.
struct FamilyTrend {
  std::string family;
  int points = 0;
  double min_gates = 0.0;
  double max_gates = 0.0;
  SlopeFit time;       // wall_ms vs gates
  SlopeFit rss;        // peak_rss_kb vs gates
  SlopeFit bdd_bytes;  // peak BDD arena/node bytes vs gates
  double degradations = 0.0;  // totals across the family's points
  double failures = 0.0;
  double retries = 0.0;
};

struct TrendOptions {
  /// Per-point wall-time ratio band vs the baseline point (0.25 = +25%).
  double time_band = 0.25;
  /// Per-point memory ratio band (peak RSS and peak BDD bytes).
  double mem_band = 0.25;
  /// Allowed absolute increase of a fitted slope vs the baseline fit.
  double slope_band = 0.15;
  /// Candidate/baseline wall times both below this floor are ignored.
  double time_floor_ms = 5.0;
};

/// One offending point or slope. For slope regressions `target_gates` is 0
/// and base/cand are the fitted slopes.
struct TrendDelta {
  std::string family;
  std::uint64_t target_gates = 0;
  std::uint64_t seed = 0;
  std::string metric;  // wall_ms | peak_rss_kb | peak_bdd_bytes | *_slope
  double base = 0.0;
  double cand = 0.0;
};

struct TrendReport {
  std::string candidate_path;
  std::string baseline_path;  // empty: no gate, fits only
  TrendOptions options;
  std::vector<FamilyTrend> families;           // candidate fits
  std::vector<FamilyTrend> baseline_families;  // baseline fits (if any)
  std::vector<TrendDelta> point_regressions;
  std::vector<TrendDelta> slope_regressions;
  int matched_points = 0;  // candidate points with a baseline twin

  bool regression() const {
    return !point_regressions.empty() || !slope_regressions.empty();
  }
};

/// Fit candidate (and baseline, when non-null) trajectories and apply the
/// bands. Pure: no I/O.
TrendReport analyze_trend(const TrajectoryDoc& cand,
                          const TrajectoryDoc* base,
                          const TrendOptions& options);

/// Emit the `minpower.trend.v1` document.
void write_trend_json(std::ostream& os, const TrendReport& r);

/// Human-readable table: per-family fitted slopes plus every regression.
void print_trend(std::ostream& os, const TrendReport& r);

}  // namespace minpower::report
