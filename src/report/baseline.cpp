#include "report/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower::report {

std::uint64_t histogram_percentile(const HistSnapshot& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0;
  double rank = std::ceil(q * static_cast<double>(h.count));
  if (rank < 1.0) rank = 1.0;
  std::uint64_t cum = 0;
  for (const auto& [lo, n] : h.buckets) {
    cum += n;
    if (static_cast<double>(cum) >= rank) return lo;
  }
  return h.buckets.back().first;
}

namespace {

double num_or(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::uint64_t u64_or(const JsonValue& obj, const char* key) {
  return static_cast<std::uint64_t>(num_or(obj, key));
}

std::string str_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : std::string();
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool load_flow_report(std::string_view json_text, const std::string& label,
                      FlowReportDoc* out, std::string* error) {
  *out = FlowReportDoc{};
  out->path = label;
  std::string parse_error;
  const auto doc = parse_json(json_text, &parse_error);
  if (!doc)
    return set_error(error, label + ": invalid JSON: " + parse_error);
  if (doc->kind != JsonValue::Kind::kObject)
    return set_error(error, label + ": not a JSON object");
  const std::string schema = str_or(*doc, "schema");
  if (schema != "minpower.flow.v1")
    return set_error(error, label + ": unexpected schema '" + schema +
                                "' (want minpower.flow.v1)");
  out->library = str_or(*doc, "library");
  out->num_threads = num_or(*doc, "num_threads");
  out->elapsed_ms = num_or(*doc, "elapsed_ms");

  const JsonValue* circuits = doc->find("circuits");
  if (circuits == nullptr || circuits->kind != JsonValue::Kind::kArray)
    return set_error(error, label + ": missing circuits array");
  for (const JsonValue& c : circuits->items) {
    if (c.kind != JsonValue::Kind::kObject) continue;
    const std::string name = str_or(c, "name");
    out->circuits.push_back(name);
    const JsonValue* methods = c.find("methods");
    if (methods == nullptr || methods->kind != JsonValue::Kind::kArray)
      return set_error(error,
                       label + ": circuit " + name + " has no methods array");
    for (const JsonValue& m : methods->items) {
      QorCell cell;
      cell.circuit = name;
      cell.method = str_or(m, "method");
      cell.area = num_or(m, "area");
      cell.delay_ns = num_or(m, "delay_ns");
      cell.power_uw = num_or(m, "power_uw");
      cell.gates = num_or(m, "gates");
      if (const JsonValue* status = m.find("status");
          status != nullptr && status->kind == JsonValue::Kind::kObject)
        cell.state = str_or(*status, "state");
      if (const JsonValue* phases = m.find("phases");
          phases != nullptr && phases->kind == JsonValue::Kind::kObject) {
        cell.decomp_ms = num_or(*phases, "decomp_ms");
        cell.activity_ms = num_or(*phases, "activity_ms");
        cell.map_ms = num_or(*phases, "map_ms");
        cell.eval_ms = num_or(*phases, "eval_ms");
      }
      out->cells.push_back(std::move(cell));
    }
  }

  if (const JsonValue* metrics = doc->find("metrics");
      metrics != nullptr && metrics->kind == JsonValue::Kind::kObject) {
    auto read_pairs =
        [&](const char* key,
            std::vector<std::pair<std::string, std::uint64_t>>& into) {
          const JsonValue* arr = metrics->find(key);
          if (arr == nullptr || arr->kind != JsonValue::Kind::kArray) return;
          for (const JsonValue& e : arr->items)
            if (e.kind == JsonValue::Kind::kObject)
              into.emplace_back(str_or(e, "name"), u64_or(e, "value"));
        };
    read_pairs("counters", out->counters);
    read_pairs("gauges", out->gauges);
    if (const JsonValue* hists = metrics->find("histograms");
        hists != nullptr && hists->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& e : hists->items) {
        if (e.kind != JsonValue::Kind::kObject) continue;
        HistSnapshot h;
        h.name = str_or(e, "name");
        h.count = u64_or(e, "count");
        h.sum = u64_or(e, "sum");
        if (const JsonValue* buckets = e.find("buckets");
            buckets != nullptr && buckets->kind == JsonValue::Kind::kArray)
          for (const JsonValue& b : buckets->items)
            if (b.kind == JsonValue::Kind::kObject)
              h.buckets.emplace_back(u64_or(b, "lo"), u64_or(b, "count"));
        out->histograms.push_back(std::move(h));
      }
    }
  }
  return true;
}

bool load_flow_report_file(const std::string& path, FlowReportDoc* out,
                           std::string* error) {
  std::ifstream in(path);
  if (!in.good()) return set_error(error, "cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return load_flow_report(buf.str(), path, out, error);
}

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kQorRegressed: return "qor-regressed";
    case Verdict::kQorImproved: return "qor-improved";
    case Verdict::kStatusChanged: return "status-changed";
    case Verdict::kSlow: return "slow";
    case Verdict::kSkipped: return "skipped";
    case Verdict::kNew: return "new";
  }
  return "?";
}

namespace {

/// Worse-than-baseline direction for QoR values (all are lower-is-better).
bool qor_within(double base, double cand, const CompareOptions& o) {
  return std::abs(cand - base) <= o.qor_abs_tol + o.qor_rel_tol *
                                                     std::abs(base);
}

/// Verdict precedence: a QoR drift outranks a status or time finding, and
/// regression outranks improvement.
void raise_verdict(CellResult& cell, Verdict v) {
  auto rank = [](Verdict x) {
    switch (x) {
      case Verdict::kQorRegressed: return 4;
      case Verdict::kQorImproved: return 3;
      case Verdict::kStatusChanged: return 2;
      case Verdict::kSlow: return 1;
      default: return 0;
    }
  };
  if (rank(v) > rank(cell.verdict)) cell.verdict = v;
}

}  // namespace

CompareReport compare_flow_reports(const FlowReportDoc& base,
                                   const FlowReportDoc& cand,
                                   const CompareOptions& options) {
  CompareReport r;
  r.baseline_path = base.path;
  r.candidate_path = cand.path;
  r.options = options;
  r.base_elapsed_ms = base.elapsed_ms;
  r.cand_elapsed_ms = cand.elapsed_ms;

  std::map<std::pair<std::string, std::string>, const QorCell*> cand_cells;
  for (const QorCell& c : cand.cells) cand_cells[{c.circuit, c.method}] = &c;
  std::map<std::pair<std::string, std::string>, const QorCell*> base_cells;
  for (const QorCell& c : base.cells) base_cells[{c.circuit, c.method}] = &c;

  // Baseline-driven pass: every baseline cell gets a verdict.
  for (const QorCell& b : base.cells) {
    CellResult cell;
    cell.circuit = b.circuit;
    cell.method = b.method;
    const auto it = cand_cells.find({b.circuit, b.method});
    if (it == cand_cells.end()) {
      cell.verdict = Verdict::kSkipped;
      r.skipped += 1;
      r.cells.push_back(std::move(cell));
      continue;
    }
    const QorCell& c = *it->second;
    const std::pair<const char*, double QorCell::*> qor[] = {
        {"power_uw", &QorCell::power_uw},
        {"area", &QorCell::area},
        {"delay_ns", &QorCell::delay_ns},
        {"gates", &QorCell::gates},
    };
    for (const auto& [name, field] : qor) {
      const double bv = b.*field;
      const double cv = c.*field;
      if (qor_within(bv, cv, options)) continue;
      cell.deltas.push_back({name, bv, cv});
      raise_verdict(cell, cv > bv ? Verdict::kQorRegressed
                                  : Verdict::kQorImproved);
    }
    if (c.state != b.state) {
      cell.deltas.push_back({"status:" + b.state + "->" + c.state, 0, 0});
      raise_verdict(cell, Verdict::kStatusChanged);
    }
    if (options.time_band >= 0.0) {
      const std::pair<const char*, double QorCell::*> times[] = {
          {"decomp_ms", &QorCell::decomp_ms},
          {"activity_ms", &QorCell::activity_ms},
          {"map_ms", &QorCell::map_ms},
          {"eval_ms", &QorCell::eval_ms},
      };
      for (const auto& [name, field] : times) {
        const double bv = b.*field;
        const double cv = c.*field;
        if (bv < options.time_floor_ms) continue;
        if (cv <= bv * (1.0 + options.time_band)) continue;
        cell.deltas.push_back({name, bv, cv});
        raise_verdict(cell, Verdict::kSlow);
      }
    }
    switch (cell.verdict) {
      case Verdict::kOk: r.ok += 1; break;
      case Verdict::kQorRegressed: r.qor_regressed += 1; break;
      case Verdict::kQorImproved: r.qor_improved += 1; break;
      case Verdict::kStatusChanged: r.status_changed += 1; break;
      case Verdict::kSlow: r.slow += 1; break;
      default: break;
    }
    r.cells.push_back(std::move(cell));
  }
  // Candidate-only cells are informational.
  for (const QorCell& c : cand.cells) {
    if (base_cells.count({c.circuit, c.method})) continue;
    CellResult cell;
    cell.circuit = c.circuit;
    cell.method = c.method;
    cell.verdict = Verdict::kNew;
    r.added += 1;
    r.cells.push_back(std::move(cell));
  }

  // Registry metrics: exact, but only comparable over identical circuit
  // sets (counters are whole-run totals).
  std::vector<std::string> base_names = base.circuits;
  std::vector<std::string> cand_names = cand.circuits;
  std::sort(base_names.begin(), base_names.end());
  std::sort(cand_names.begin(), cand_names.end());
  if (!options.check_metrics) {
    r.metrics_checked = false;
    r.metrics_skip_reason = "disabled (--qor-only)";
  } else if (base_names != cand_names) {
    r.metrics_checked = false;
    r.metrics_skip_reason =
        "circuit sets differ (subset run); registry totals not comparable";
  } else {
    r.metrics_checked = true;
    auto diff_pairs =
        [](const std::vector<std::pair<std::string, std::uint64_t>>& bs,
           const std::vector<std::pair<std::string, std::uint64_t>>& cs,
           std::vector<MetricDiff>& out) {
          std::map<std::string, std::uint64_t> bm(bs.begin(), bs.end());
          std::map<std::string, std::uint64_t> cm(cs.begin(), cs.end());
          for (const auto& [name, bv] : bm) {
            const auto it = cm.find(name);
            const std::uint64_t cv = it == cm.end() ? 0 : it->second;
            if (cv != bv) out.push_back({name, bv, cv});
          }
          for (const auto& [name, cv] : cm)
            if (!bm.count(name) && cv != 0) out.push_back({name, 0, cv});
        };
    diff_pairs(base.counters, cand.counters, r.counter_diffs);
    diff_pairs(base.gauges, cand.gauges, r.gauge_diffs);

    std::map<std::string, const HistSnapshot*> cand_hists;
    for (const HistSnapshot& h : cand.histograms) cand_hists[h.name] = &h;
    std::map<std::string, const HistSnapshot*> base_hists;
    for (const HistSnapshot& h : base.histograms) base_hists[h.name] = &h;
    static const HistSnapshot kEmpty;
    auto hist_diff = [&](const HistSnapshot& b, const HistSnapshot& c,
                         const std::string& name) {
      if (b.count == c.count && b.sum == c.sum && b.buckets == c.buckets)
        return;
      HistDiff d;
      d.name = name;
      d.base_count = b.count;
      d.cand_count = c.count;
      d.base_sum = b.sum;
      d.cand_sum = c.sum;
      d.base_p50 = histogram_percentile(b, 0.50);
      d.cand_p50 = histogram_percentile(c, 0.50);
      d.base_p90 = histogram_percentile(b, 0.90);
      d.cand_p90 = histogram_percentile(c, 0.90);
      d.base_p99 = histogram_percentile(b, 0.99);
      d.cand_p99 = histogram_percentile(c, 0.99);
      r.histogram_diffs.push_back(std::move(d));
    };
    for (const auto& [name, b] : base_hists) {
      const auto it = cand_hists.find(name);
      hist_diff(*b, it == cand_hists.end() ? kEmpty : *it->second, name);
    }
    for (const auto& [name, c] : cand_hists)
      if (!base_hists.count(name)) hist_diff(kEmpty, *c, name);
  }

  // Whole-run wall time (subset runs excluded: shorter input, shorter run).
  if (options.time_band >= 0.0 && base_names == cand_names &&
      base.elapsed_ms >= options.time_floor_ms)
    r.elapsed_slow = cand.elapsed_ms > base.elapsed_ms *
                                           (1.0 + options.time_band);
  return r;
}

void write_compare_json(std::ostream& os, const CompareReport& r) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "minpower.compare.v1");
  w.field("baseline", r.baseline_path);
  w.field("candidate", r.candidate_path);
  w.key("options");
  w.begin_object();
  w.field("qor_rel_tol", r.options.qor_rel_tol);
  w.field("qor_abs_tol", r.options.qor_abs_tol);
  w.field("time_band", r.options.time_band);
  w.field("time_floor_ms", r.options.time_floor_ms);
  w.field("require_all", r.options.require_all);
  w.end_object();
  w.key("summary");
  w.begin_object();
  w.field("cells", static_cast<int>(r.cells.size()));
  w.field("ok", r.ok);
  w.field("qor_regressed", r.qor_regressed);
  w.field("qor_improved", r.qor_improved);
  w.field("status_changed", r.status_changed);
  w.field("slow", r.slow);
  w.field("skipped", r.skipped);
  w.field("new", r.added);
  w.field("metrics_checked", r.metrics_checked);
  w.field("metric_diffs",
          static_cast<int>(r.counter_diffs.size() + r.gauge_diffs.size() +
                           r.histogram_diffs.size()));
  w.field("elapsed_slow", r.elapsed_slow);
  w.field("verdict", r.regression() ? "regression" : "ok");
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const CellResult& c : r.cells) {
    if (c.verdict == Verdict::kOk) continue;  // keep the document small
    w.begin_object();
    w.field("circuit", c.circuit);
    w.field("method", c.method);
    w.field("verdict", verdict_name(c.verdict));
    w.key("deltas");
    w.begin_array();
    for (const Delta& d : c.deltas) {
      w.begin_object();
      w.field("metric", d.metric);
      w.field("base", d.base);
      w.field("cand", d.cand);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  w.begin_object();
  w.field("checked", r.metrics_checked);
  w.field("skip_reason", r.metrics_skip_reason);
  auto write_diffs = [&w](const char* key,
                          const std::vector<MetricDiff>& diffs) {
    w.key(key);
    w.begin_array();
    for (const MetricDiff& d : diffs) {
      w.begin_object();
      w.field("name", d.name);
      w.field("base", d.base);
      w.field("cand", d.cand);
      w.end_object();
    }
    w.end_array();
  };
  write_diffs("counters", r.counter_diffs);
  write_diffs("gauges", r.gauge_diffs);
  w.key("histograms");
  w.begin_array();
  for (const HistDiff& d : r.histogram_diffs) {
    w.begin_object();
    w.field("name", d.name);
    w.field("base_count", d.base_count);
    w.field("cand_count", d.cand_count);
    w.field("base_sum", d.base_sum);
    w.field("cand_sum", d.cand_sum);
    w.field("base_p50", d.base_p50);
    w.field("cand_p50", d.cand_p50);
    w.field("base_p90", d.base_p90);
    w.field("cand_p90", d.cand_p90);
    w.field("base_p99", d.base_p99);
    w.field("cand_p99", d.cand_p99);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("time");
  w.begin_object();
  w.field("base_elapsed_ms", r.base_elapsed_ms);
  w.field("cand_elapsed_ms", r.cand_elapsed_ms);
  w.field("elapsed_slow", r.elapsed_slow);
  w.end_object();
  w.end_object();
  os << '\n';
}

void print_compare(std::ostream& os, const CompareReport& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "compare: %s vs %s\n  %d ok, %d qor-regressed, %d "
                "qor-improved, %d status-changed, %d slow, %d skipped, %d "
                "new\n",
                r.baseline_path.c_str(), r.candidate_path.c_str(), r.ok,
                r.qor_regressed, r.qor_improved, r.status_changed, r.slow,
                r.skipped, r.added);
  os << buf;
  for (const CellResult& c : r.cells) {
    if (c.verdict == Verdict::kOk || c.verdict == Verdict::kSkipped ||
        c.verdict == Verdict::kNew)
      continue;
    std::snprintf(buf, sizeof(buf), "  %-10s %-4s %s", c.circuit.c_str(),
                  c.method.c_str(), verdict_name(c.verdict));
    os << buf;
    for (const Delta& d : c.deltas) {
      std::snprintf(buf, sizeof(buf), "  %s %.17g -> %.17g",
                    d.metric.c_str(), d.base, d.cand);
      os << buf;
    }
    os << '\n';
  }
  if (r.metrics_checked) {
    for (const MetricDiff& d : r.counter_diffs) {
      std::snprintf(buf, sizeof(buf), "  counter %s: %llu -> %llu\n",
                    d.name.c_str(), static_cast<unsigned long long>(d.base),
                    static_cast<unsigned long long>(d.cand));
      os << buf;
    }
    for (const MetricDiff& d : r.gauge_diffs) {
      std::snprintf(buf, sizeof(buf), "  gauge %s: %llu -> %llu\n",
                    d.name.c_str(), static_cast<unsigned long long>(d.base),
                    static_cast<unsigned long long>(d.cand));
      os << buf;
    }
    for (const HistDiff& d : r.histogram_diffs) {
      std::snprintf(
          buf, sizeof(buf),
          "  histogram %s: count %llu -> %llu, sum %llu -> %llu, p50 %llu -> "
          "%llu, p99 %llu -> %llu\n",
          d.name.c_str(), static_cast<unsigned long long>(d.base_count),
          static_cast<unsigned long long>(d.cand_count),
          static_cast<unsigned long long>(d.base_sum),
          static_cast<unsigned long long>(d.cand_sum),
          static_cast<unsigned long long>(d.base_p50),
          static_cast<unsigned long long>(d.cand_p50),
          static_cast<unsigned long long>(d.base_p99),
          static_cast<unsigned long long>(d.cand_p99));
      os << buf;
    }
  } else {
    os << "  metrics: skipped — " << r.metrics_skip_reason << '\n';
  }
  if (r.elapsed_slow) {
    std::snprintf(buf, sizeof(buf), "  elapsed: %.1f ms -> %.1f ms (slow)\n",
                  r.base_elapsed_ms, r.cand_elapsed_ms);
    os << buf;
  }
  os << (r.regression() ? "REGRESSION\n" : "OK\n");
}

}  // namespace minpower::report
