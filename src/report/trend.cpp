#include "report/trend.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower::report {

namespace {

double num_or(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

std::uint64_t u64_or(const JsonValue& obj, const char* key) {
  return static_cast<std::uint64_t>(num_or(obj, key));
}

std::string str_or(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : std::string();
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Identity of one sweep point: the same configuration re-measured across
/// commits must collide so the gate compares like with like.
using PointKey = std::tuple<std::string, std::uint64_t, std::uint64_t, double>;

PointKey key_of(const TrajectoryPoint& p) {
  return {p.family, p.target_gates, p.seed, p.suite};
}

/// The memory peak used for the bdd-bytes fit: prefer the whole-arena peak,
/// fall back to the node-array peak for records predating the arena gauge.
double bdd_bytes_of(const TrajectoryPoint& p) {
  return p.peak_bdd_arena_bytes > 0.0 ? p.peak_bdd_arena_bytes
                                      : p.peak_bdd_node_bytes;
}

bool parse_point(const JsonValue& obj, TrajectoryPoint* out) {
  if (obj.kind != JsonValue::Kind::kObject) return false;
  if (str_or(obj, "schema") != "minpower.bench_trajectory.v1") return false;
  out->family = str_or(obj, "family");
  if (out->family.empty()) out->family = "paper-suite";
  out->seed = u64_or(obj, "seed");
  out->target_gates = u64_or(obj, "target_gates");
  out->gates = num_or(obj, "gates");
  out->suite = num_or(obj, "suite");
  out->threads = num_or(obj, "threads");
  out->shards = num_or(obj, "shards");
  out->wall_ms = num_or(obj, "wall_ms");
  out->peak_bdd_nodes = num_or(obj, "peak_bdd_nodes");
  out->peak_bdd_node_bytes = num_or(obj, "peak_bdd_node_bytes");
  out->peak_bdd_arena_bytes = num_or(obj, "peak_bdd_arena_bytes");
  out->peak_rss_kb = num_or(obj, "peak_rss_kb");
  out->degradations = num_or(obj, "degradations");
  out->failures = num_or(obj, "failures");
  out->retries = num_or(obj, "retries");
  return true;
}

}  // namespace

bool load_trajectory(std::string_view text, const std::string& label,
                     TrajectoryDoc* out, std::string* error) {
  out->path = label;
  // Collect non-empty lines first so "last line" is well-defined whether or
  // not the file ends in a newline.
  std::vector<std::pair<std::size_t, std::string_view>> lines;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string_view line = text.substr(pos, end - pos);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.remove_suffix(1);
    if (!line.empty()) lines.emplace_back(line_no, line);
    if (end == text.size()) break;
    pos = end + 1;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    std::string parse_error;
    const auto doc = parse_json(lines[i].second, &parse_error);
    TrajectoryPoint p;
    if (!doc || !parse_point(*doc, &p)) {
      // A torn or foreign tail (a run killed mid-append) is dropped; the
      // same damage mid-file means the file is not a trajectory.
      if (last) break;
      return set_error(error, label + ":" + std::to_string(lines[i].first) +
                                  ": not a minpower.bench_trajectory.v1 "
                                  "record");
    }
    out->points.push_back(std::move(p));
  }
  if (out->points.empty())
    return set_error(error, label + ": no trajectory records");
  return true;
}

bool load_trajectory_file(const std::string& path, TrajectoryDoc* out,
                          std::string* error) {
  std::ifstream in(path);
  if (!in.good()) return set_error(error, "cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return load_trajectory(buf.str(), path, out, error);
}

namespace {

SlopeFit fit_log2(const std::vector<std::pair<double, double>>& xy) {
  SlopeFit f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double first_x = 0;
  bool distinct = false;
  int n = 0;
  for (const auto& [gates, metric] : xy) {
    if (gates <= 0.0 || metric <= 0.0) continue;
    const double x = std::log2(gates);
    const double y = std::log2(metric);
    if (n == 0)
      first_x = x;
    else if (x != first_x)
      distinct = true;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  f.points = n;
  if (n < 2 || !distinct) return f;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  f.available = denom != 0.0;
  if (!f.available) return f;
  f.slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / static_cast<double>(n);
  return f;
}

std::vector<FamilyTrend> fit_families(const TrajectoryDoc& doc) {
  std::vector<FamilyTrend> out;
  std::vector<std::string> order;  // first-seen family order
  std::map<std::string, std::vector<const TrajectoryPoint*>> grouped;
  for (const TrajectoryPoint& p : doc.points) {
    auto [it, fresh] = grouped.try_emplace(p.family);
    if (fresh) order.push_back(p.family);
    it->second.push_back(&p);
  }
  for (const std::string& family : order) {
    const auto& pts = grouped[family];
    FamilyTrend t;
    t.family = family;
    t.points = static_cast<int>(pts.size());
    std::vector<std::pair<double, double>> time_xy, rss_xy, bdd_xy;
    for (const TrajectoryPoint* p : pts) {
      if (p->gates > 0.0) {
        if (t.min_gates == 0.0 || p->gates < t.min_gates)
          t.min_gates = p->gates;
        if (p->gates > t.max_gates) t.max_gates = p->gates;
      }
      time_xy.emplace_back(p->gates, p->wall_ms);
      rss_xy.emplace_back(p->gates, p->peak_rss_kb);
      bdd_xy.emplace_back(p->gates, bdd_bytes_of(*p));
      t.degradations += p->degradations;
      t.failures += p->failures;
      t.retries += p->retries;
    }
    t.time = fit_log2(time_xy);
    t.rss = fit_log2(rss_xy);
    t.bdd_bytes = fit_log2(bdd_xy);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

TrendReport analyze_trend(const TrajectoryDoc& cand, const TrajectoryDoc* base,
                          const TrendOptions& options) {
  TrendReport r;
  r.candidate_path = cand.path;
  r.options = options;
  r.families = fit_families(cand);
  if (base == nullptr) return r;
  r.baseline_path = base->path;
  r.baseline_families = fit_families(*base);

  // Per-point bands. Repeated measurements of the same key keep the last
  // record (latest append wins) on both sides.
  std::map<PointKey, const TrajectoryPoint*> base_pts;
  for (const TrajectoryPoint& p : base->points) base_pts[key_of(p)] = &p;
  std::map<PointKey, const TrajectoryPoint*> cand_pts;
  for (const TrajectoryPoint& p : cand.points) cand_pts[key_of(p)] = &p;
  for (const auto& [key, c] : cand_pts) {
    const auto it = base_pts.find(key);
    if (it == base_pts.end()) continue;
    const TrajectoryPoint& b = *it->second;
    r.matched_points += 1;
    auto check = [&](const char* metric, double bv, double cv, double band,
                     double floor) {
      if (bv <= floor || cv <= bv * (1.0 + band)) return;
      r.point_regressions.push_back(
          {c->family, c->target_gates, c->seed, metric, bv, cv});
    };
    check("wall_ms", b.wall_ms, c->wall_ms, options.time_band,
          options.time_floor_ms);
    check("peak_rss_kb", b.peak_rss_kb, c->peak_rss_kb, options.mem_band, 0.0);
    check("peak_bdd_bytes", bdd_bytes_of(b), bdd_bytes_of(*c),
          options.mem_band, 0.0);
  }

  // Slope bands: complexity-class drift.
  std::map<std::string, const FamilyTrend*> base_fams;
  for (const FamilyTrend& t : r.baseline_families) base_fams[t.family] = &t;
  for (const FamilyTrend& c : r.families) {
    const auto it = base_fams.find(c.family);
    if (it == base_fams.end()) continue;
    const FamilyTrend& b = *it->second;
    auto check = [&](const char* metric, const SlopeFit& bs,
                     const SlopeFit& cs) {
      if (!bs.available || !cs.available) return;
      if (cs.slope <= bs.slope + options.slope_band) return;
      r.slope_regressions.push_back({c.family, 0, 0, metric, bs.slope,
                                     cs.slope});
    };
    check("wall_ms_slope", b.time, c.time);
    check("peak_rss_kb_slope", b.rss, c.rss);
    check("peak_bdd_bytes_slope", b.bdd_bytes, c.bdd_bytes);
  }
  return r;
}

namespace {

void write_families(JsonWriter& w, const char* key,
                    const std::vector<FamilyTrend>& families) {
  w.key(key);
  w.begin_array();
  for (const FamilyTrend& t : families) {
    w.begin_object();
    w.field("family", t.family);
    w.field("points", t.points);
    w.field("min_gates", t.min_gates);
    w.field("max_gates", t.max_gates);
    auto fit = [&w](const char* name, const SlopeFit& f) {
      w.key(name);
      w.begin_object();
      w.field("available", f.available);
      w.field("slope", f.slope);
      w.field("intercept", f.intercept);
      w.field("points", f.points);
      w.end_object();
    };
    fit("wall_ms", t.time);
    fit("peak_rss_kb", t.rss);
    fit("peak_bdd_bytes", t.bdd_bytes);
    w.field("degradations", t.degradations);
    w.field("failures", t.failures);
    w.field("retries", t.retries);
    w.end_object();
  }
  w.end_array();
}

void write_deltas(JsonWriter& w, const char* key,
                  const std::vector<TrendDelta>& deltas) {
  w.key(key);
  w.begin_array();
  for (const TrendDelta& d : deltas) {
    w.begin_object();
    w.field("family", d.family);
    w.field("target_gates", d.target_gates);
    w.field("seed", d.seed);
    w.field("metric", d.metric);
    w.field("base", d.base);
    w.field("cand", d.cand);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void write_trend_json(std::ostream& os, const TrendReport& r) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "minpower.trend.v1");
  w.field("candidate", r.candidate_path);
  w.field("baseline", r.baseline_path);
  w.key("options");
  w.begin_object();
  w.field("time_band", r.options.time_band);
  w.field("mem_band", r.options.mem_band);
  w.field("slope_band", r.options.slope_band);
  w.field("time_floor_ms", r.options.time_floor_ms);
  w.end_object();
  w.key("summary");
  w.begin_object();
  w.field("families", static_cast<int>(r.families.size()));
  w.field("matched_points", r.matched_points);
  w.field("point_regressions", static_cast<int>(r.point_regressions.size()));
  w.field("slope_regressions", static_cast<int>(r.slope_regressions.size()));
  w.field("verdict", r.regression() ? "regression" : "ok");
  w.end_object();
  write_families(w, "families", r.families);
  if (!r.baseline_path.empty())
    write_families(w, "baseline_families", r.baseline_families);
  write_deltas(w, "point_regressions", r.point_regressions);
  write_deltas(w, "slope_regressions", r.slope_regressions);
  w.end_object();
  os << '\n';
}

void print_trend(std::ostream& os, const TrendReport& r) {
  char buf[512];
  os << "trend: " << r.candidate_path;
  if (!r.baseline_path.empty()) os << " vs " << r.baseline_path;
  os << '\n';
  os << "  family        pts   gates            wall^   rss^    bddB^   "
        "degr  fail  retry\n";
  auto slope_str = [](const SlopeFit& f, char out[16]) {
    if (f.available)
      std::snprintf(out, 16, "%.2f", f.slope);
    else
      std::snprintf(out, 16, "n/a");
  };
  for (const FamilyTrend& t : r.families) {
    char ts[16], rs[16], bs[16];
    slope_str(t.time, ts);
    slope_str(t.rss, rs);
    slope_str(t.bdd_bytes, bs);
    std::snprintf(buf, sizeof(buf),
                  "  %-12s %4d   %7.0f-%-7.0f %-7s %-7s %-7s %4.0f  %4.0f  "
                  "%5.0f\n",
                  t.family.c_str(), t.points, t.min_gates, t.max_gates, ts, rs,
                  bs, t.degradations, t.failures, t.retries);
    os << buf;
  }
  if (!r.baseline_path.empty()) {
    std::snprintf(buf, sizeof(buf), "  matched %d point(s) against baseline\n",
                  r.matched_points);
    os << buf;
  }
  for (const TrendDelta& d : r.point_regressions) {
    std::snprintf(buf, sizeof(buf),
                  "  POINT %s target=%llu seed=%llu %s: %.17g -> %.17g\n",
                  d.family.c_str(),
                  static_cast<unsigned long long>(d.target_gates),
                  static_cast<unsigned long long>(d.seed), d.metric.c_str(),
                  d.base, d.cand);
    os << buf;
  }
  for (const TrendDelta& d : r.slope_regressions) {
    std::snprintf(buf, sizeof(buf), "  SLOPE %s %s: %.3f -> %.3f\n",
                  d.family.c_str(), d.metric.c_str(), d.base, d.cand);
    os << buf;
  }
  os << (r.regression() ? "REGRESSION\n" : "OK\n");
}

}  // namespace minpower::report
