#include "library/pattern.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace minpower {

std::unique_ptr<Pattern> Pattern::leaf(int pin) {
  auto p = std::make_unique<Pattern>();
  p->kind = Kind::kLeaf;
  p->pin = pin;
  return p;
}

std::unique_ptr<Pattern> Pattern::inv(std::unique_ptr<Pattern> c) {
  auto p = std::make_unique<Pattern>();
  p->kind = Kind::kInv;
  p->child.push_back(std::move(c));
  return p;
}

std::unique_ptr<Pattern> Pattern::nand(std::unique_ptr<Pattern> a,
                                       std::unique_ptr<Pattern> b) {
  auto p = std::make_unique<Pattern>();
  p->kind = Kind::kNand;
  p->child.push_back(std::move(a));
  p->child.push_back(std::move(b));
  return p;
}

std::unique_ptr<Pattern> Pattern::clone() const {
  auto p = std::make_unique<Pattern>();
  p->kind = kind;
  p->pin = pin;
  for (const auto& c : child) p->child.push_back(c->clone());
  return p;
}

std::string Pattern::canonical() const {
  switch (kind) {
    case Kind::kLeaf:
      return "L" + std::to_string(pin);
    case Kind::kInv:
      return "I(" + child[0]->canonical() + ")";
    case Kind::kNand: {
      std::string a = child[0]->canonical();
      std::string b = child[1]->canonical();
      if (b < a) std::swap(a, b);
      return "N(" + a + "," + b + ")";
    }
  }
  return "?";
}

int Pattern::size() const {
  if (kind == Kind::kLeaf) return 0;
  int n = 1;
  for (const auto& c : child) n += c->size();
  return n;
}

int Pattern::depth() const {
  if (kind == Kind::kLeaf) return 0;
  int d = 0;
  for (const auto& c : child) d = std::max(d, c->depth());
  return d + 1;
}

namespace {

using PatternList = std::vector<std::unique_ptr<Pattern>>;

class Generator {
 public:
  Generator(const std::vector<std::string>& pin_names, std::size_t cap)
      : pin_names_(pin_names), cap_(cap) {}

  PatternList gen(const Expr& e, bool complemented) {
    switch (e.kind) {
      case Expr::Kind::kVar: {
        const auto it =
            std::find(pin_names_.begin(), pin_names_.end(), e.var);
        MP_CHECK(it != pin_names_.end());
        const int pin = static_cast<int>(it - pin_names_.begin());
        PatternList out;
        out.push_back(complemented ? Pattern::inv(Pattern::leaf(pin))
                                   : Pattern::leaf(pin));
        return out;
      }
      case Expr::Kind::kNot:
        return gen(*e.child[0], !complemented);
      case Expr::Kind::kAnd:
        return complemented ? nand_of(e.child) : inv_all(nand_of(e.child));
      case Expr::Kind::kOr: {
        PatternList u = or_of(e.child);
        if (complemented) return inv_all(std::move(u));
        return u;
      }
      case Expr::Kind::kConst0:
      case Expr::Kind::kConst1:
        MP_CHECK_MSG(false, "constant gate functions have no pattern");
    }
    return {};
  }

 private:
  /// All NAND-rooted patterns for !(AND of children).
  PatternList nand_of(const std::vector<std::unique_ptr<Expr>>& children) {
    PatternList out;
    const int n = static_cast<int>(children.size());
    MP_CHECK(n >= 2);
    // Unordered splits {A, B}: child 0 always goes to A; the mask places the
    // remaining children; B must stay non-empty.
    for (std::uint32_t mask = 0; mask + 1 < (1u << (n - 1)); ++mask) {
      std::vector<const Expr*> A{children[0].get()};
      std::vector<const Expr*> B;
      for (int i = 1; i < n; ++i)
        ((mask >> (i - 1)) & 1 ? A : B)
            .push_back(children[static_cast<std::size_t>(i)].get());
      for (auto& pa : and_group_pos(A))
        for (auto& pb : and_group_pos(B)) {
          if (out.size() >= cap_) return out;
          out.push_back(Pattern::nand(pa->clone(), pb->clone()));
        }
    }
    return out;
  }

  /// Patterns for the *uncomplemented* AND of a child group.
  PatternList and_group_pos(const std::vector<const Expr*>& group) {
    if (group.size() == 1) return gen(*group[0], false);
    std::vector<std::unique_ptr<Expr>> owned;
    for (const Expr* e : group) owned.push_back(e->clone());
    return inv_all(nand_of(owned));
  }

  /// All NAND-rooted patterns for OR of children (NAND of complements).
  PatternList or_of(const std::vector<std::unique_ptr<Expr>>& children) {
    PatternList out;
    const int n = static_cast<int>(children.size());
    MP_CHECK(n >= 2);
    for (std::uint32_t mask = 0; mask + 1 < (1u << (n - 1)); ++mask) {
      std::vector<const Expr*> A{children[0].get()};
      std::vector<const Expr*> B;
      for (int i = 1; i < n; ++i)
        ((mask >> (i - 1)) & 1 ? A : B)
            .push_back(children[static_cast<std::size_t>(i)].get());
      for (auto& pa : or_group_neg(A))
        for (auto& pb : or_group_neg(B)) {
          if (out.size() >= cap_) return out;
          out.push_back(Pattern::nand(pa->clone(), pb->clone()));
        }
    }
    return out;
  }

  /// Patterns for the *complement* of the OR of a child group.
  PatternList or_group_neg(const std::vector<const Expr*>& group) {
    if (group.size() == 1) return gen(*group[0], true);
    std::vector<std::unique_ptr<Expr>> owned;
    for (const Expr* e : group) owned.push_back(e->clone());
    return inv_all(or_of(owned));
  }

  static PatternList inv_all(PatternList in) {
    PatternList out;
    out.reserve(in.size());
    for (auto& p : in) {
      // INV(INV(x)) would never match a reduced subject graph; collapse.
      if (p->kind == Pattern::Kind::kInv)
        out.push_back(std::move(p->child[0]));
      else
        out.push_back(Pattern::inv(std::move(p)));
    }
    return out;
  }

  const std::vector<std::string>& pin_names_;
  std::size_t cap_;
};

}  // namespace

std::vector<std::unique_ptr<Pattern>> generate_patterns(
    const Expr& expr, const std::vector<std::string>& pin_names,
    std::size_t max_patterns) {
  Generator g(pin_names, max_patterns);
  PatternList all = g.gen(expr, false);
  // Deduplicate by canonical form.
  std::set<std::string> seen;
  PatternList out;
  for (auto& p : all) {
    if (seen.insert(p->canonical()).second) out.push_back(std::move(p));
  }
  return out;
}

}  // namespace minpower
