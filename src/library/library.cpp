#include "library/library.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace minpower {

double Gate::worst_delay(double load) const {
  double d = 0.0;
  for (const GatePin& p : pins)
    d = std::max(d, p.intrinsic + p.drive * load);
  return d;
}

double Gate::max_drive() const {
  double r = 0.0;
  for (const GatePin& p : pins) r = std::max(r, p.drive);
  return r;
}

const Gate* Library::find(const std::string& gate_name) const {
  for (const Gate& g : gates_)
    if (g.name == gate_name) return &g;
  return nullptr;
}

const Gate& Library::inverter() const {
  MP_CHECK_MSG(inverter_index_ >= 0, "library has no inverter");
  return gates_[static_cast<std::size_t>(inverter_index_)];
}

const Gate& Library::nand2() const {
  MP_CHECK_MSG(nand2_index_ >= 0, "library has no 2-input NAND");
  return gates_[static_cast<std::size_t>(nand2_index_)];
}

double Library::default_load() const { return nand2().pins[0].cap; }

Library Library::parse_genlib(const std::string& text, std::string name) {
  Library lib;
  lib.name_ = std::move(name);

  // Tokenize the whole file (comments stripped per line). genlib allows PIN
  // entries on the GATE line or on following lines, so a token stream is the
  // robust representation.
  std::vector<std::string> tokens;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (const auto hash = line.find('#'); hash != std::string::npos)
        line.erase(hash);
      for (std::string_view t : split_ws(line)) tokens.emplace_back(t);
    }
  }

  std::size_t pos = 0;
  auto next = [&]() -> const std::string& {
    MP_CHECK_MSG(pos < tokens.size(), "genlib: unexpected end of file");
    return tokens[pos++];
  };

  while (pos < tokens.size()) {
    MP_CHECK_MSG(tokens[pos] == "GATE",
                 ("genlib: expected GATE, got " + tokens[pos]).c_str());
    ++pos;
    Gate g;
    g.name = next();
    const auto area = parse_double(next());
    MP_CHECK_MSG(area.has_value(), "genlib: bad gate area");
    g.area = *area;
    // Function: tokens up to and including the one ending with ';'.
    std::string fn;
    for (;;) {
      const std::string& t = next();
      if (!fn.empty()) fn += ' ';
      fn += t;
      if (!t.empty() && t.back() == ';') break;
    }
    const auto eq = fn.find('=');
    MP_CHECK_MSG(eq != std::string::npos, "genlib: gate function needs '='");
    g.output = std::string(trim(fn.substr(0, eq)));
    g.function = parse_expr(fn.substr(eq + 1, fn.rfind(';') - eq - 1));

    // PIN entries.
    std::vector<GatePin> pins;
    bool star = false;
    GatePin star_pin;
    while (pos < tokens.size() && tokens[pos] == "PIN") {
      ++pos;
      GatePin p;
      p.name = next();
      next();  // phase (INV/NONINV/UNKNOWN) — not needed for matching
      const auto cap = parse_double(next());
      next();  // max-load
      const auto rb = parse_double(next());
      const auto rf = parse_double(next());
      const auto fb = parse_double(next());
      const auto ff = parse_double(next());
      MP_CHECK_MSG(cap && rb && rf && fb && ff, "genlib: bad PIN numbers");
      p.cap = *cap;
      p.intrinsic = std::max(*rb, *fb);
      p.drive = std::max(*rf, *ff);
      if (p.name == "*") {
        star = true;
        star_pin = p;
      } else {
        pins.push_back(p);
      }
    }

    const std::vector<std::string> vars = g.function->variables();
    for (const std::string& v : vars) {
      const GatePin* found = nullptr;
      for (const GatePin& p : pins)
        if (p.name == v) found = &p;
      if (found != nullptr) {
        g.pins.push_back(*found);
      } else {
        MP_CHECK_MSG(star, ("genlib: missing PIN for " + v).c_str());
        star_pin.name = v;
        g.pins.push_back(star_pin);
      }
    }
    if (g.function->kind != Expr::Kind::kConst0 &&
        g.function->kind != Expr::Kind::kConst1)
      g.patterns = generate_patterns(*g.function, vars);
    lib.gates_.push_back(std::move(g));
  }

  // Locate the canonical inverter and NAND2.
  for (std::size_t i = 0; i < lib.gates_.size(); ++i) {
    const Gate& g = lib.gates_[i];
    const auto is_better = [&](int idx) {
      return idx < 0 || g.area < lib.gates_[static_cast<std::size_t>(idx)].area;
    };
    if (g.num_inputs() == 1 && g.function->kind == Expr::Kind::kNot &&
        is_better(lib.inverter_index_))
      lib.inverter_index_ = static_cast<int>(i);
    if (g.num_inputs() == 2 && g.function->kind == Expr::Kind::kNot &&
        g.function->child[0]->kind == Expr::Kind::kAnd &&
        is_better(lib.nand2_index_))
      lib.nand2_index_ = static_cast<int>(i);
  }
  MP_CHECK_MSG(!lib.gates_.empty(), "genlib: empty library");
  return lib;
}

std::string Library::to_genlib() const {
  std::string out;
  char buf[256];
  for (const Gate& g : gates_) {
    std::snprintf(buf, sizeof buf, "GATE %s %g %s=%s;\n", g.name.c_str(),
                  g.area, g.output.c_str(), g.function->to_string().c_str());
    out += buf;
    for (const GatePin& p : g.pins) {
      std::snprintf(buf, sizeof buf, "PIN %s UNKNOWN %g 999 %g %g %g %g\n",
                    p.name.c_str(), p.cap, p.intrinsic, p.drive, p.intrinsic,
                    p.drive);
      out += buf;
    }
  }
  return out;
}

namespace {

// A lib2-scale library: INV/NAND/NOR families in three drive strengths /
// input counts, AND/OR, AOI/OAI complex gates, XOR/XNOR and a buffer.
// Numbers follow the usual static-CMOS trends: per-input cap ~1 unit,
// larger stacks are slower, complex gates amortize area but drive weakly.
const char kStandardGenlib[] = R"(
# minpower standard cell library (lib2-like)
GATE inv1   1.0  O=!a;        PIN a INV 1.0 999 0.40 0.45 0.40 0.45
GATE inv2   2.0  O=!a;        PIN a INV 2.0 999 0.32 0.22 0.32 0.22
GATE inv4   4.0  O=!a;        PIN a INV 4.0 999 0.28 0.11 0.28 0.11
GATE buf2   3.0  O=a;         PIN a NONINV 1.0 999 0.75 0.25 0.75 0.25
GATE nand2  2.0  O=!(a*b);    PIN * INV 1.0 999 0.50 0.50 0.50 0.50
GATE nand3  3.0  O=!(a*b*c);  PIN * INV 1.1 999 0.72 0.58 0.72 0.58
GATE nand4  4.0  O=!(a*b*c*d); PIN * INV 1.2 999 0.94 0.66 0.94 0.66
GATE nor2   2.0  O=!(a+b);    PIN * INV 1.0 999 0.58 0.58 0.58 0.58
GATE nor3   3.0  O=!(a+b+c);  PIN * INV 1.1 999 0.86 0.70 0.86 0.70
GATE nor4   4.0  O=!(a+b+c+d); PIN * INV 1.2 999 1.14 0.82 1.14 0.82
GATE and2   3.0  O=a*b;       PIN * NONINV 1.0 999 0.90 0.35 0.90 0.35
GATE and3   4.0  O=a*b*c;     PIN * NONINV 1.1 999 1.12 0.38 1.12 0.38
GATE and4   5.0  O=a*b*c*d;   PIN * NONINV 1.2 999 1.34 0.42 1.34 0.42
GATE or2    3.0  O=a+b;       PIN * NONINV 1.0 999 0.98 0.35 0.98 0.35
GATE or3    4.0  O=a+b+c;     PIN * NONINV 1.1 999 1.26 0.38 1.26 0.38
GATE or4    5.0  O=a+b+c+d;   PIN * NONINV 1.2 999 1.54 0.42 1.54 0.42
GATE aoi21  3.0  O=!(a*b+c);  PIN * INV 1.1 999 0.68 0.62 0.68 0.62
GATE aoi22  4.0  O=!(a*b+c*d); PIN * INV 1.1 999 0.78 0.66 0.78 0.66
GATE oai21  3.0  O=!((a+b)*c); PIN * INV 1.1 999 0.68 0.62 0.68 0.62
GATE oai22  4.0  O=!((a+b)*(c+d)); PIN * INV 1.1 999 0.78 0.66 0.78 0.66
GATE aoi211 4.0 O=!(a*b+c+d); PIN * INV 1.2 999 0.88 0.72 0.88 0.72
GATE oai211 4.0 O=!((a+b)*c*d); PIN * INV 1.2 999 0.88 0.72 0.88 0.72
GATE xor2   5.0  O=a*!b+!a*b; PIN * UNKNOWN 1.4 999 1.10 0.68 1.10 0.68
GATE xnor2  5.0  O=a*b+!a*!b; PIN * UNKNOWN 1.4 999 1.10 0.68 1.10 0.68
GATE mux21  5.0  O=s*a+!s*b;  PIN * UNKNOWN 1.3 999 1.05 0.60 1.05 0.60
GATE nand2b 3.0 O=!(!a*b);   PIN * INV 1.1 999 0.62 0.55 0.62 0.55
GATE nor2b  3.0  O=!(!a+b);   PIN * INV 1.1 999 0.70 0.58 0.70 0.58
)";

}  // namespace

const std::string& standard_library_genlib() {
  static const std::string text(kStandardGenlib);
  return text;
}

const Library& standard_library() {
  static const Library lib =
      Library::parse_genlib(standard_library_genlib(), "mp-lib2");
  return lib;
}

}  // namespace minpower
