#pragma once
// Gate-function expression trees, as written in genlib GATE lines.
//
// Grammar (SIS genlib):   expr := term ('+' term)*
//                         term := factor (('*')? factor)*
//                         factor := '!' factor | factor "'" | '(' expr ')' | ident | CONST0 | CONST1
// AND/OR are flattened to n-ary nodes; NOT is pushed by the pattern
// generator, not here.

#include <memory>
#include <string>
#include <vector>

#include "sop/cover.hpp"

namespace minpower {

struct Expr {
  enum class Kind { kVar, kNot, kAnd, kOr, kConst0, kConst1 };

  Kind kind = Kind::kVar;
  std::string var;                           // kVar
  std::vector<std::unique_ptr<Expr>> child;  // kNot: 1, kAnd/kOr: >= 2

  static std::unique_ptr<Expr> make_var(std::string name);
  static std::unique_ptr<Expr> make_not(std::unique_ptr<Expr> c);
  static std::unique_ptr<Expr> make_nary(Kind k,
                                         std::vector<std::unique_ptr<Expr>> cs);

  std::unique_ptr<Expr> clone() const;

  /// Distinct variable names in first-appearance order.
  std::vector<std::string> variables() const;

  bool eval(const std::vector<std::string>& names,
            const std::vector<bool>& values) const;

  std::string to_string() const;
};

/// Parse a genlib expression. Aborts with a diagnostic on syntax errors.
std::unique_ptr<Expr> parse_expr(const std::string& text);

/// SOP of the expression with variable i = pin_names[i].
Cover cover_from_expr(const Expr& expr,
                      const std::vector<std::string>& pin_names);

}  // namespace minpower
