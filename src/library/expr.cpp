#include "library/expr.hpp"

#include <algorithm>
#include <cctype>
#include <functional>

#include "util/check.hpp"

namespace minpower {

std::unique_ptr<Expr> Expr::make_var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::make_not(std::unique_ptr<Expr> c) {
  // Collapse double negation.
  if (c->kind == Kind::kNot) return std::move(c->child[0]);
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->child.push_back(std::move(c));
  return e;
}

std::unique_ptr<Expr> Expr::make_nary(Kind k,
                                      std::vector<std::unique_ptr<Expr>> cs) {
  MP_CHECK(k == Kind::kAnd || k == Kind::kOr);
  if (cs.size() == 1) return std::move(cs[0]);
  auto e = std::make_unique<Expr>();
  e->kind = k;
  // Flatten nested same-kind children.
  for (auto& c : cs) {
    if (c->kind == k) {
      for (auto& gc : c->child) e->child.push_back(std::move(gc));
    } else {
      e->child.push_back(std::move(c));
    }
  }
  return e;
}

std::unique_ptr<Expr> Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->var = var;
  for (const auto& c : child) e->child.push_back(c->clone());
  return e;
}

std::vector<std::string> Expr::variables() const {
  std::vector<std::string> out;
  const std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (e.kind == Kind::kVar) {
      if (std::find(out.begin(), out.end(), e.var) == out.end())
        out.push_back(e.var);
    }
    for (const auto& c : e.child) walk(*c);
  };
  walk(*this);
  return out;
}

bool Expr::eval(const std::vector<std::string>& names,
                const std::vector<bool>& values) const {
  switch (kind) {
    case Kind::kConst0:
      return false;
    case Kind::kConst1:
      return true;
    case Kind::kVar: {
      const auto it = std::find(names.begin(), names.end(), var);
      MP_CHECK(it != names.end());
      return values[static_cast<std::size_t>(it - names.begin())];
    }
    case Kind::kNot:
      return !child[0]->eval(names, values);
    case Kind::kAnd:
      for (const auto& c : child)
        if (!c->eval(names, values)) return false;
      return true;
    case Kind::kOr:
      for (const auto& c : child)
        if (c->eval(names, values)) return true;
      return false;
  }
  return false;
}

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::kConst0:
      return "CONST0";
    case Kind::kConst1:
      return "CONST1";
    case Kind::kVar:
      return var;
    case Kind::kNot:
      return "!" + child[0]->to_string();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      for (std::size_t i = 0; i < child.size(); ++i) {
        if (i) out += kind == Kind::kAnd ? "*" : "+";
        out += child[i]->to_string();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::unique_ptr<Expr> parse() {
    auto e = parse_or();
    skip_ws();
    MP_CHECK_MSG(pos_ == s_.size(), "trailing characters in expression");
    return e;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }
  bool accept(char c) {
    if (peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::unique_ptr<Expr> parse_or() {
    std::vector<std::unique_ptr<Expr>> terms;
    terms.push_back(parse_and());
    while (accept('+')) terms.push_back(parse_and());
    return Expr::make_nary(Expr::Kind::kOr, std::move(terms));
  }

  std::unique_ptr<Expr> parse_and() {
    std::vector<std::unique_ptr<Expr>> factors;
    factors.push_back(parse_factor());
    for (;;) {
      if (accept('*')) {
        factors.push_back(parse_factor());
        continue;
      }
      // Implicit AND: a factor can start right away (ident, '(', '!').
      skip_ws();
      if (pos_ < s_.size() &&
          (s_[pos_] == '(' || s_[pos_] == '!' ||
           std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
           s_[pos_] == '_')) {
        factors.push_back(parse_factor());
        continue;
      }
      break;
    }
    return Expr::make_nary(Expr::Kind::kAnd, std::move(factors));
  }

  std::unique_ptr<Expr> parse_factor() {
    skip_ws();
    MP_CHECK_MSG(pos_ < s_.size(), "unexpected end of expression");
    std::unique_ptr<Expr> e;
    if (accept('!')) {
      e = Expr::make_not(parse_factor());
    } else if (accept('(')) {
      e = parse_or();
      MP_CHECK_MSG(accept(')'), "missing ')' in expression");
    } else {
      std::string name;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '_' || s_[pos_] == '[' || s_[pos_] == ']')) {
        name += s_[pos_++];
      }
      MP_CHECK_MSG(!name.empty(), "expected identifier in expression");
      if (name == "CONST0") {
        e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kConst0;
      } else if (name == "CONST1") {
        e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kConst1;
      } else {
        e = Expr::make_var(std::move(name));
      }
    }
    // Postfix complement: a'
    while (accept('\'')) e = Expr::make_not(std::move(e));
    return e;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Expr> parse_expr(const std::string& text) {
  return Parser(text).parse();
}

Cover cover_from_expr(const Expr& expr,
                      const std::vector<std::string>& pin_names) {
  switch (expr.kind) {
    case Expr::Kind::kConst0:
      return Cover::zero();
    case Expr::Kind::kConst1:
      return Cover::one();
    case Expr::Kind::kVar: {
      const auto it =
          std::find(pin_names.begin(), pin_names.end(), expr.var);
      MP_CHECK(it != pin_names.end());
      return Cover::literal(static_cast<int>(it - pin_names.begin()), true);
    }
    case Expr::Kind::kNot:
      return cover_from_expr(*expr.child[0], pin_names).complement();
    case Expr::Kind::kAnd: {
      Cover out = Cover::one();
      for (const auto& c : expr.child)
        out = Cover::conjunction(out, cover_from_expr(*c, pin_names));
      return out;
    }
    case Expr::Kind::kOr: {
      Cover out = Cover::zero();
      for (const auto& c : expr.child)
        out = Cover::disjunction(out, cover_from_expr(*c, pin_names));
      return out;
    }
  }
  return Cover::zero();
}

}  // namespace minpower
