#pragma once
// Gate library with the pin-dependent SIS delay model (Sec. 3.1, Eq. 14):
//   arrival(n,g,C) = max_i ( τ_i,g + R_i,g · C + arrival(input_i) )
// Each pin carries an input capacitance, an intrinsic (block) delay τ and a
// drive resistance R (the fanout-delay coefficient). Capacitance is in
// abstract "unit loads"; `kUnitCapFarads` converts to Farads for the power
// formula of Eq. 1.

#include <memory>
#include <string>
#include <vector>

#include "library/expr.hpp"
#include "library/pattern.hpp"

namespace minpower {

/// One capacitance unit in Farads (10 fF): keeps mapped power in the µW
/// range the paper reports at Vdd = 5 V, 20 MHz.
inline constexpr double kUnitCapFarads = 1e-14;

struct GatePin {
  std::string name;
  double cap = 1.0;        // input capacitance, unit loads
  double intrinsic = 0.0;  // block delay, ns
  double drive = 0.0;      // drive resistance: ns per unit load
};

struct Gate {
  std::string name;
  double area = 0.0;
  std::string output;
  std::unique_ptr<Expr> function;
  std::vector<GatePin> pins;                        // order = leaf pin index
  std::vector<std::unique_ptr<Pattern>> patterns;   // NAND2/INV trees

  int num_inputs() const { return static_cast<int>(pins.size()); }

  /// Worst-case delay through the gate at load C (used for reporting).
  double worst_delay(double load) const;

  /// Largest drive resistance over pins (for curve shifting).
  double max_drive() const;
};

class Library {
 public:
  const std::vector<Gate>& gates() const { return gates_; }
  const std::string& name() const { return name_; }

  const Gate* find(const std::string& gate_name) const;

  /// Smallest-area inverter / NAND2 (must exist in any usable library).
  const Gate& inverter() const;
  const Gate& nand2() const;

  /// Default load during postorder traversal: the input capacitance of the
  /// smallest 2-input NAND (Sec. 3.2.3).
  double default_load() const;

  static Library parse_genlib(const std::string& text,
                              std::string name = "genlib");

  /// Serialize back to genlib text (pin-per-line form). Round-trips through
  /// parse_genlib up to the lossy block/fanout split (intrinsic and drive
  /// are emitted as both rise and fall values).
  std::string to_genlib() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  int inverter_index_ = -1;
  int nand2_index_ = -1;
};

/// The embedded lib2-like library used by the experiments.
const Library& standard_library();

/// Its genlib source text (also usable to test the parser round trip).
const std::string& standard_library_genlib();

}  // namespace minpower
