#pragma once
// NAND2/INV pattern trees for structural matching (DAGON/MIS style).
//
// Every library gate's function is rewritten over the {NAND2, INV} basis.
// Associative operators admit multiple binary groupings, so one gate yields
// several structurally distinct patterns; the matcher tries them all. Leaves
// carry pin indices; a pin appearing several times (XOR-like gates) makes
// the pattern a leaf-DAG, which the matcher supports through binding
// consistency.

#include <memory>
#include <string>
#include <vector>

#include "library/expr.hpp"

namespace minpower {

struct Pattern {
  enum class Kind { kLeaf, kInv, kNand };
  Kind kind = Kind::kLeaf;
  int pin = -1;                          // kLeaf
  std::vector<std::unique_ptr<Pattern>> child;

  static std::unique_ptr<Pattern> leaf(int pin);
  static std::unique_ptr<Pattern> inv(std::unique_ptr<Pattern> c);
  static std::unique_ptr<Pattern> nand(std::unique_ptr<Pattern> a,
                                       std::unique_ptr<Pattern> b);

  std::unique_ptr<Pattern> clone() const;

  /// Canonical string (children of NAND ordered), used for deduplication.
  std::string canonical() const;

  /// Number of internal (NAND/INV) nodes — the subject nodes a match covers.
  int size() const;

  int depth() const;
};

/// All structurally distinct NAND2/INV patterns realizing `expr`, where pin
/// name i of `pin_names` maps to leaf index i. `max_patterns` caps the
/// enumeration for wide gates.
std::vector<std::unique_ptr<Pattern>> generate_patterns(
    const Expr& expr, const std::vector<std::string>& pin_names,
    std::size_t max_patterns = 64);

}  // namespace minpower
