#pragma once
// Structured JSONL access log for `minpower serve` (DESIGN.md §15) —
// `--access-log <path>` appends exactly one JSON object per request line
// handled by a connection worker:
//
//   {"id":7,"peer":"127.0.0.1:51324","verb":"FLOW","bytes_in":143,
//    "bytes_out":2048,"outcome":"ok","wall_us":1234,"hits":12,"misses":0}
//
// `id` is the server's monotonic request counter (shared with STATS), so a
// log line can be correlated with the `request` trace span carrying the
// same request_id. `bytes_in` counts the FLOW payload (0 for verbs without
// bodies), `bytes_out` the response body. `outcome` is "ok" for answered
// requests, "error" for ERR responses, and the connection verbs report
// themselves ("pong", "quit", "shutdown"). One line is built in memory and
// appended with a single mutex-serialized fwrite + flush, so concurrent
// workers never interleave bytes and a crashed server keeps every answered
// request's record. Disabled (all calls no-ops) unless open() succeeded.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>

#include "util/json_writer.hpp"

namespace minpower::serve {

class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog() {
    if (file_ != nullptr) std::fclose(file_);
  }

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Open (append) the log file. False with `error` on failure; the log
  /// then stays disabled rather than taking the server down.
  bool open(const std::string& path, std::string* error) {
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
      if (error != nullptr)
        *error = "cannot open access log " + path + ": " +
                 std::strerror(errno);
      return false;
    }
    return true;
  }

  bool enabled() const { return file_ != nullptr; }

  struct Entry {
    std::uint64_t id = 0;
    std::string peer;
    std::string verb;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::string outcome;  // "ok" / "error" / "pong" / "quit" / "shutdown"
    std::uint64_t wall_us = 0;
    std::uint64_t hits = 0;    // session cache hits (FLOW only)
    std::uint64_t misses = 0;  // session cache misses (FLOW only)
  };

  void write(const Entry& e) {
    if (file_ == nullptr) return;
    std::ostringstream line;
    {
      JsonWriter w(line, /*pretty=*/false);
      w.begin_object();
      w.field("id", e.id);
      w.field("peer", e.peer);
      w.field("verb", e.verb);
      w.field("bytes_in", e.bytes_in);
      w.field("bytes_out", e.bytes_out);
      w.field("outcome", e.outcome);
      w.field("wall_us", e.wall_us);
      w.field("hits", e.hits);
      w.field("misses", e.misses);
      w.end_object();
    }
    line << '\n';
    const std::string text = line.str();
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(text.data(), 1, text.size(), file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_ = nullptr;
  std::mutex mu_;
};

}  // namespace minpower::serve
