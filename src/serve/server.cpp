#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "io/blif.hpp"
#include "serve/net.hpp"
#include "trace/metrics.hpp"
#include "trace/prometheus.hpp"
#include "trace/trace.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"

namespace minpower::serve {

namespace {

constexpr std::size_t kMaxHeaderLine = 4096;

/// `ERR <nbytes>\n` + minpower.serve.v1 error body. `line` carries the BLIF
/// parser's line number (0 elsewhere). `retryable` marks load conditions
/// (busy queue, drain, idle reap) the client may retry after a backoff, as
/// opposed to caller mistakes that would fail identically again.
std::string render_error(const std::string& message, int line,
                         bool retryable) {
  std::ostringstream body;
  {
    JsonWriter w(body);
    w.begin_object();
    w.field("schema", "minpower.serve.v1");
    w.field("status", "error");
    w.key("error");
    w.begin_object();
    w.field("message", message);
    w.field("line", line);
    w.field("retryable", retryable);
    w.end_object();
    w.end_object();
  }
  body << '\n';
  return body.str();
}

bool send_error(int fd, const std::string& message, int line = 0,
                bool retryable = false) {
  const std::string body = render_error(message, line, retryable);
  // One send per response: a header segment alone would sit in the Nagle
  // buffer waiting for the client's delayed ACK.
  return send_all(fd, "ERR " + std::to_string(body.size()) + "\n" + body);
}

bool parse_double(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty();
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size() && !text.empty();
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream in(line);
  std::string t;
  while (in >> t) toks.push_back(std::move(t));
  return toks;
}

/// Apply one FLOW `key=value` token onto the request's FlowOptions.
bool apply_option(const std::string& token, FlowOptions* flow,
                  std::string* error) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "bad option token '" + token + "' (want key=value)";
    return false;
  }
  const std::string key = token.substr(0, eq);
  const std::string val = token.substr(eq + 1);
  auto bad_value = [&] {
    *error = "bad value '" + val + "' for option " + key;
    return false;
  };
  std::uint64_t u = 0;
  if (key == "deadline_ms") {
    if (!parse_double(val, &flow->task_deadline_ms)) return bad_value();
  } else if (key == "bdd_limit") {
    if (!parse_u64(val, &u) || u == 0) return bad_value();
    flow->bdd_node_limit = u;
  } else if (key == "step_limit") {
    if (!parse_u64(val, &u)) return bad_value();
    flow->task_step_limit = u;
  } else if (key == "map_curve_cap") {
    if (!parse_u64(val, &u)) return bad_value();
    flow->max_curve_points = u;
  } else if (key == "vdd") {
    if (!parse_double(val, &flow->vdd)) return bad_value();
  } else if (key == "t_cycle") {
    if (!parse_double(val, &flow->t_cycle)) return bad_value();
  } else if (key == "po_load") {
    if (!parse_double(val, &flow->po_load)) return bad_value();
  } else if (key == "style") {
    if (val == "static") flow->style = CircuitStyle::kStatic;
    else if (val == "dynp") flow->style = CircuitStyle::kDynamicP;
    else if (val == "dynn") flow->style = CircuitStyle::kDynamicN;
    else return bad_value();
  } else {
    *error = "unknown option '" + key + "'";
    return false;
  }
  return true;
}

}  // namespace

Server::Server(const Library& lib, ServerOptions options)
    : lib_(lib),
      options_(std::move(options)),
      session_(
          lib,
          EngineOptions{options_.flow, /*num_threads=*/1, {},
                        options_.verbose},
          options_.session) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  };
  if (!options_.access_log.empty()) {
    std::string log_error;
    if (!access_log_.open(options_.access_log, &log_error))
      return fail(log_error);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail(std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    return fail("invalid host address " + options_.host);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return fail("bind " + options_.host + ":" +
                std::to_string(options_.port) + ": " + std::strerror(errno));
  if (::listen(listen_fd_, 128) != 0) return fail(std::strerror(errno));
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0)
    return fail(std::strerror(errno));
  port_ = ntohs(bound.sin_port);

  if (::pipe(drain_pipe_) != 0) return fail(std::strerror(errno));

  const unsigned workers = options_.workers != 0 ? options_.workers : 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  drain_thread_ = std::thread([this] { drain_watch_loop(); });
  return true;
}

void Server::signal_drain() {
  // Async-signal-safe: one write to the self-pipe; the watcher thread does
  // everything that needs locks.
  if (drain_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
  }
}

void Server::drain_watch_loop() {
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(drain_pipe_[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // write end closed: server is stopping anyway
    draining_.store(true, std::memory_order_release);
    // Deliberately keep the listener open: connections already past the TCP
    // handshake but still in the backlog must be accepted and answered with
    // the structured retryable refusal, not dropped with a raw EOF. The
    // accept loop refuses everything while draining_; stop() (reached once
    // wait() releases below) is what actually tears the listener down.
    {
      std::lock_guard<std::mutex> lock(wait_mu_);
      shutdown_requested_ = true;
    }
    wait_cv_.notify_all();
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_ && listen_fd_ < 0 && workers_.empty()) return;
    stopping_ = true;
  }
  draining_.store(true, std::memory_order_release);
  // Unblock accept(): shutdown() first, then close.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  // Wake the drain watcher (EOF on the self-pipe) and join it before the
  // workers so no drain transition races the teardown.
  if (drain_pipe_[1] >= 0) {
    close_fd(drain_pipe_[1]);
    drain_pipe_[1] = -1;
  }
  if (drain_thread_.joinable()) drain_thread_.join();
  close_fd(drain_pipe_[0]);
  drain_pipe_[0] = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  close_fd(listen_fd_);
  listen_fd_ = -1;
  // Reject anything still queued (accepted but never served).
  std::deque<int> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    orphans.swap(pending_);
  }
  for (const int fd : orphans) {
    send_error(fd, "server shutting down", 0, /*retryable=*/true);
    close_fd(fd);
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    shutdown_requested_ = true;
  }
  wait_cv_.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  stop();
}

ServeStats Server::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.flow_ok = flow_ok_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  s.idle_reaped = idle_reaped_.load(std::memory_order_relaxed);
  s.drain_rejections = drain_rejections_.load(std::memory_order_relaxed);
  s.queue_depth_peak = queue_depth_peak_.load(std::memory_order_relaxed);
  s.inflight_peak = inflight_peak_.load(std::memory_order_relaxed);
  return s;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) {
        if (fd >= 0) close_fd(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener gone
    }
    set_nodelay(fd);
    if (draining_.load(std::memory_order_acquire)) {
      // Accept raced the drain transition: structured retryable refusal.
      drain_rejections_.fetch_add(1, std::memory_order_relaxed);
      send_error(fd, "server draining; retry later", 0, /*retryable=*/true);
      close_fd(fd);
      continue;
    }
    bool admitted = false;
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        depth = pending_.size();
        admitted = true;
      }
    }
    if (!admitted) {
      busy_rejections_.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("serve.busy_rejections").add(1);
      send_error(fd, "server busy: pending queue full", 0,
                 /*retryable=*/true);
      close_fd(fd);
      continue;
    }
    std::uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
    while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
    metrics::gauge("serve.queue_depth_peak").record_max(depth);
    queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping, nothing left to drain
      fd = pending_.front();
      pending_.pop_front();
    }
    const std::uint64_t inflight =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = inflight_peak_.load(std::memory_order_relaxed);
    while (inflight > peak && !inflight_peak_.compare_exchange_weak(
                                  peak, inflight, std::memory_order_relaxed)) {
    }
    metrics::gauge("serve.inflight_peak").record_max(inflight);
    serve_connection(fd);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::serve_connection(int fd) {
  LineReader reader(fd);
  const std::string peer = peer_name(fd);
  // Short recv ticks: a blocked read wakes every tick so the connection can
  // notice a drain and the idle reaper can fire. The tick is a fraction of
  // the idle timeout so short test timeouts stay accurate.
  const int idle_ms = options_.idle_timeout_ms;
  int tick_ms = 250;
  if (idle_ms > 0) tick_ms = std::clamp(idle_ms / 4, 10, 250);
  set_recv_timeout(fd, tick_ms);
  auto last_activity = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stopping_) break;
    }
    std::string line;
    const LineReader::Status s = reader.read_line(&line, kMaxHeaderLine);
    if (s == LineReader::Status::kTimeout) {
      if (draining_.load(std::memory_order_acquire)) {
        // A request sent from here on would go unanswered; tell the idle
        // client to come back once the server is, instead of going silent.
        drain_rejections_.fetch_add(1, std::memory_order_relaxed);
        send_error(fd, "server draining; retry later", 0, /*retryable=*/true);
        break;
      }
      if (idle_ms > 0 && std::chrono::steady_clock::now() - last_activity >
                             std::chrono::milliseconds(idle_ms)) {
        idle_reaped_.fetch_add(1, std::memory_order_relaxed);
        metrics::counter("serve.idle_reaped").add(1);
        send_error(fd,
                   "idle connection reaped after " + std::to_string(idle_ms) +
                       " ms",
                   0, /*retryable=*/true);
        break;
      }
      continue;
    }
    last_activity = std::chrono::steady_clock::now();
    if (s == LineReader::Status::kOverflow) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      metrics::counter("serve.errors").add(1);
      send_error(fd, "header line too long");
      break;
    }
    if (s != LineReader::Status::kOk) break;  // EOF / peer gone
    const std::uint64_t rid =
        requests_.fetch_add(1, std::memory_order_relaxed) + 1;
    metrics::counter("serve.requests").add(1);
    const std::string verb = line.substr(0, line.find(' '));
    logging::logf(options_.verbose ? logging::Level::kInfo
                                   : logging::Level::kDebug,
                  "serve", "#%llu %s from %s",
                  static_cast<unsigned long long>(rid), verb.c_str(),
                  peer.c_str());

    AccessLog::Entry acc;
    acc.id = rid;
    acc.peer = peer;
    acc.verb = verb;
    const auto req_start = std::chrono::steady_clock::now();
    bool keep = true;
    {
      trace::Span req_span("request", "serve");
      req_span.arg("request_id", static_cast<long long>(rid));
      req_span.arg("verb", verb);

      if (line == "PING") {
        acc.outcome = "pong";
        acc.bytes_out = 5;
        keep = send_all(fd, "PONG\n");
      } else if (line == "QUIT") {
        acc.outcome = "quit";
        keep = false;
      } else if (line == "SHUTDOWN") {
        send_all(fd, "OK 0\n");
        acc.outcome = "shutdown";
        acc.bytes_out = 5;
        {
          std::lock_guard<std::mutex> lock(wait_mu_);
          shutdown_requested_ = true;
        }
        wait_cv_.notify_all();
        keep = false;
      } else if (line == "STATS") {
        const ServeStats st = stats();
        const SessionStats ss = session_.stats();
        std::ostringstream body;
        {
          JsonWriter w(body);
          w.begin_object();
          w.field("schema", "minpower.serve.v1");
          w.field("status", "ok");
          w.key("serve");
          w.begin_object();
          w.field("requests", st.requests);
          w.field("flow_ok", st.flow_ok);
          w.field("errors", st.errors);
          w.field("busy_rejections", st.busy_rejections);
          w.field("idle_reaped", st.idle_reaped);
          w.field("drain_rejections", st.drain_rejections);
          w.field("queue_depth_peak", st.queue_depth_peak);
          w.field("inflight_peak", st.inflight_peak);
          w.end_object();
          w.key("session");
          w.begin_object();
          w.field("group_hits", ss.group_hits);
          w.field("group_misses", ss.group_misses);
          w.field("result_hits", ss.result_hits);
          w.field("result_misses", ss.result_misses);
          w.field("evictions", ss.evictions);
          w.end_object();
          w.end_object();
        }
        body << '\n';
        const std::string text = body.str();
        acc.outcome = "ok";
        acc.bytes_out = text.size();
        keep = send_all(fd, "OK " + std::to_string(text.size()) + "\n" + text);
      } else if (line == "METRICS") {
        // Live Prometheus scrape of the process registry. Deliberately a
        // separate verb: STATS stays the stable JSON document, METRICS the
        // exposition-format view of every serve.*/bdd.*/flow.* series.
        std::ostringstream body;
        trace::write_prometheus(body, metrics::Registry::global().snapshot());
        const std::string text = body.str();
        acc.outcome = "ok";
        acc.bytes_out = text.size();
        keep = send_all(fd, "OK " + std::to_string(text.size()) + "\n" + text);
      } else if (line.rfind("FLOW ", 0) == 0 || line == "FLOW") {
        keep = handle_flow(fd, reader, line, &acc);
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
        metrics::counter("serve.errors").add(1);
        acc.outcome = "error";
        keep = send_error(fd, "unknown request '" + verb + "'");
      }
    }
    acc.wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - req_start)
            .count());
    access_log_.write(acc);
    if (!keep) break;
  }
  close_fd(fd);
}

/// One FLOW request. Returns false when the connection must close (framing
/// lost or peer gone); a well-framed bad request answers ERR and returns
/// true so the connection can carry the next request.
bool Server::handle_flow(int fd, LineReader& reader, const std::string& line,
                         AccessLog::Entry* acc) {
  auto err = [&](const std::string& message, int blif_line = 0) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("serve.errors").add(1);
    acc->outcome = "error";
    return send_error(fd, message, blif_line);
  };
  const std::vector<std::string> toks = split_tokens(line);
  std::uint64_t nbytes = 0;
  if (toks.size() < 2 || !parse_u64(toks[1], &nbytes)) {
    // Without a parsable length the body cannot be skipped: close.
    err("malformed FLOW header (want: FLOW <nbytes> [key=value ...])");
    return false;
  }
  if (nbytes == 0) {
    err("empty FLOW payload");
    return false;
  }
  if (nbytes > options_.max_request_bytes) {
    err("payload too large (" + std::to_string(nbytes) + " > " +
        std::to_string(options_.max_request_bytes) + " bytes)");
    return false;
  }
  // Option errors are reported only after the body is consumed, so the
  // connection stays usable.
  FlowOptions flow = options_.flow;
  std::string option_error;
  for (std::size_t i = 2; i < toks.size(); ++i)
    if (!apply_option(toks[i], &flow, &option_error)) break;

  acc->bytes_in = nbytes;
  std::string blif;
  const auto body_start = std::chrono::steady_clock::now();
  for (;;) {
    const LineReader::Status bs = reader.read_exact(&blif, nbytes);
    if (bs == LineReader::Status::kOk) break;
    if (bs == LineReader::Status::kTimeout) {
      // Recv tick expired mid-body: keep waiting, but not forever — a
      // half-sent request must not pin this worker past the idle budget,
      // and a drain must not wait on a stalled sender.
      const bool overdue =
          options_.idle_timeout_ms > 0 &&
          std::chrono::steady_clock::now() - body_start >
              std::chrono::milliseconds(options_.idle_timeout_ms);
      if (!overdue && !draining_.load(std::memory_order_acquire)) continue;
      err("truncated FLOW payload (body timed out)");
      return false;
    }
    // Truncated body: the client died mid-request.
    err("truncated FLOW payload");
    return false;
  }
  if (!option_error.empty()) return err(option_error);

  BlifError blif_error;
  std::optional<Network> net;
  {
    trace::Span span("parse", "serve");
    span.arg("bytes", static_cast<long long>(nbytes));
    net = try_read_blif_string(blif, &blif_error);
  }
  if (!net) return err(blif_error.message, blif_error.line);

  try {
    SessionStats delta;
    std::vector<FlowResult> results;
    {
      trace::Span span("session", "serve");
      span.arg("circuit", net->name());
      prepare_network(*net);
      results = session_.run_circuit(*net, flow, &delta);
      span.arg("cache_hits", static_cast<long long>(delta.hits()));
      span.arg("cache_misses", static_cast<long long>(delta.group_misses +
                                                      delta.result_misses));
    }

    // Canonical one-shot rendering: the counters a cold single-circuit
    // FlowEngine run reports, thread count 1, zeroed wall times, no metrics
    // block — so a warm response is byte-identical to a cold one and to the
    // one-shot CLI document under the same policy.
    EngineCounters counters;
    counters.decomp_passes = 3;
    counters.activity_passes = 3;
    counters.map_passes = 6;
    FlowJsonPolicy policy;
    policy.include_metrics = false;
    policy.zero_wall_times = true;
    std::ostringstream body;
    {
      trace::Span span("render", "serve");
      write_flow_json(body, {results}, counters, /*num_threads=*/1,
                      /*elapsed_ms=*/0.0, lib_.name(), policy);
    }
    const std::string text = body.str();
    acc->bytes_out = text.size();
    acc->hits = delta.hits();
    acc->misses = delta.group_misses + delta.result_misses;
    const std::string head =
        "OK " + std::to_string(text.size()) +
        " hits=" + std::to_string(delta.hits()) +
        " misses=" + std::to_string(delta.group_misses + delta.result_misses) +
        "\n";
    acc->outcome = "ok";
    // Count before the send: the flow itself succeeded, and a METRICS
    // scrape racing the response must already see it.
    flow_ok_.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("serve.flow_ok").add(1);
    return send_all(fd, head + text);
  } catch (const std::exception& e) {
    return err(std::string("internal error: ") + e.what());
  }
}

}  // namespace minpower::serve
