#include "serve/client.hpp"

#include <cstdlib>
#include <sstream>

#include "serve/net.hpp"

namespace minpower::serve {

namespace {

constexpr std::size_t kMaxHeaderLine = 4096;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

Client::Client() = default;

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  if (connected()) return fail(error, "already connected");
  fd_ = tcp_connect(host, port, error);
  if (fd_ < 0) return false;
  reader_ = std::make_unique<LineReader>(fd_);
  return true;
}

void Client::close() {
  reader_.reset();
  close_fd(fd_);
  fd_ = -1;
}

/// Parse `OK <nbytes> [k=v ...]` / `ERR <nbytes>` + body.
bool Client::read_response(Response* out, std::string* error) {
  *out = Response{};
  std::string line;
  if (reader_->read_line(&line, kMaxHeaderLine) != LineReader::Status::kOk)
    return fail(error, "connection closed before a response arrived");
  std::istringstream head(line);
  std::string status;
  std::uint64_t nbytes = 0;
  if (!(head >> status >> nbytes) || (status != "OK" && status != "ERR"))
    return fail(error, "malformed response header '" + line + "'");
  out->ok = status == "OK";
  std::string token;
  while (head >> token) {
    if (token.rfind("hits=", 0) == 0)
      out->hits = std::strtoull(token.c_str() + 5, nullptr, 10);
    else if (token.rfind("misses=", 0) == 0)
      out->misses = std::strtoull(token.c_str() + 7, nullptr, 10);
  }
  if (nbytes != 0 &&
      reader_->read_exact(&out->body, nbytes) != LineReader::Status::kOk)
    return fail(error, "connection closed mid-response");
  return true;
}

bool Client::flow(std::string_view blif,
                  const std::vector<std::string>& options, Response* out,
                  std::string* error) {
  if (!connected()) return fail(error, "not connected");
  std::string request = "FLOW " + std::to_string(blif.size());
  for (const std::string& o : options) request += " " + o;
  request += "\n";
  request.append(blif);  // one send: don't let Nagle hold the body
  if (!send_all(fd_, request))
    return fail(error, "send failed (server gone?)");
  return read_response(out, error);
}

bool Client::stats(Response* out, std::string* error) {
  if (!connected()) return fail(error, "not connected");
  if (!send_all(fd_, "STATS\n")) return fail(error, "send failed");
  return read_response(out, error);
}

bool Client::ping(std::string* error) {
  if (!connected()) return fail(error, "not connected");
  if (!send_all(fd_, "PING\n")) return fail(error, "send failed");
  std::string line;
  if (reader_->read_line(&line, kMaxHeaderLine) != LineReader::Status::kOk)
    return fail(error, "connection closed before PONG");
  if (line != "PONG") return fail(error, "unexpected reply '" + line + "'");
  return true;
}

bool Client::shutdown_server(std::string* error) {
  if (!connected()) return fail(error, "not connected");
  if (!send_all(fd_, "SHUTDOWN\n")) return fail(error, "send failed");
  Response r;
  if (!read_response(&r, error)) return false;
  if (!r.ok) return fail(error, "server refused shutdown");
  return true;
}

}  // namespace minpower::serve
