#include "serve/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <random>
#include <sstream>
#include <thread>

#include "serve/net.hpp"
#include "util/json_reader.hpp"

namespace minpower::serve {

namespace {

constexpr std::size_t kMaxHeaderLine = 4096;

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool response_retryable(const Response& r) {
  if (r.ok) return false;
  std::string parse_error;
  const std::optional<JsonValue> doc = parse_json(r.body, &parse_error);
  if (!doc) return false;
  const JsonValue* err = doc->find("error");
  if (err == nullptr || err->kind != JsonValue::Kind::kObject) return false;
  const JsonValue* retryable = err->find("retryable");
  return retryable != nullptr && retryable->kind == JsonValue::Kind::kBool &&
         retryable->boolean;
}

Client::Client() = default;

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      response_timeout_ms_(other.response_timeout_ms_),
      reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    response_timeout_ms_ = other.response_timeout_ms_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  if (connected()) return fail(error, "already connected");
  fd_ = tcp_connect(host, port, error);
  if (fd_ < 0) return false;
  if (response_timeout_ms_ > 0) set_recv_timeout(fd_, response_timeout_ms_);
  reader_ = std::make_unique<LineReader>(fd_);
  return true;
}

bool Client::connect_with_retry(const std::string& host, std::uint16_t port,
                                const RetryPolicy& policy,
                                unsigned* attempts_out, std::string* error) {
  // Jitter seeded off the clock and pid: reconnect storms should decorrelate
  // across processes, determinism is worthless here.
  std::mt19937 rng(static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      (static_cast<std::uint64_t>(::getpid()) << 16)));
  std::uniform_real_distribution<double> jitter(0.5, 1.5);
  unsigned attempts = 0;
  for (;;) {
    if (connect(host, port, error)) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      return true;
    }
    if (attempts >= static_cast<unsigned>(std::max(policy.retries, 0))) {
      if (attempts_out != nullptr) *attempts_out = attempts;
      return false;
    }
    const int shift = attempts < 16 ? static_cast<int>(attempts) : 16;
    const double capped = std::min<double>(
        static_cast<double>(std::max(policy.base_ms, 1)) * (1 << shift),
        static_cast<double>(std::max(policy.max_ms, 1)));
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(capped * jitter(rng)));
    ++attempts;
  }
}

void Client::set_response_timeout_ms(int ms) {
  response_timeout_ms_ = ms;
  if (connected() && ms > 0) set_recv_timeout(fd_, ms);
}

void Client::close() {
  reader_.reset();
  close_fd(fd_);
  fd_ = -1;
}

/// Parse `OK <nbytes> [k=v ...]` / `ERR <nbytes>` + body.
bool Client::read_response(Response* out, std::string* error) {
  *out = Response{};
  std::string line;
  const LineReader::Status hs = reader_->read_line(&line, kMaxHeaderLine);
  if (hs == LineReader::Status::kTimeout)
    return fail(error, "response timed out after " +
                           std::to_string(response_timeout_ms_) + " ms");
  if (hs != LineReader::Status::kOk)
    return fail(error, "connection closed before a response arrived");
  std::istringstream head(line);
  std::string status;
  std::uint64_t nbytes = 0;
  if (!(head >> status >> nbytes) || (status != "OK" && status != "ERR"))
    return fail(error, "malformed response header '" + line + "'");
  out->ok = status == "OK";
  std::string token;
  while (head >> token) {
    if (token.rfind("hits=", 0) == 0)
      out->hits = std::strtoull(token.c_str() + 5, nullptr, 10);
    else if (token.rfind("misses=", 0) == 0)
      out->misses = std::strtoull(token.c_str() + 7, nullptr, 10);
  }
  if (nbytes != 0) {
    const LineReader::Status bs = reader_->read_exact(&out->body, nbytes);
    if (bs == LineReader::Status::kTimeout)
      return fail(error, "response timed out after " +
                             std::to_string(response_timeout_ms_) + " ms");
    if (bs != LineReader::Status::kOk)
      return fail(error, "connection closed mid-response");
  }
  return true;
}

bool Client::flow(std::string_view blif,
                  const std::vector<std::string>& options, Response* out,
                  std::string* error) {
  if (!connected()) return fail(error, "not connected");
  std::string request = "FLOW " + std::to_string(blif.size());
  for (const std::string& o : options) request += " " + o;
  request += "\n";
  request.append(blif);  // one send: don't let Nagle hold the body
  if (!send_all(fd_, request))
    return fail(error, "send failed (server gone?)");
  return read_response(out, error);
}

bool Client::stats(Response* out, std::string* error) {
  if (!connected()) return fail(error, "not connected");
  if (!send_all(fd_, "STATS\n")) return fail(error, "send failed");
  return read_response(out, error);
}

bool Client::ping(std::string* error) {
  if (!connected()) return fail(error, "not connected");
  if (!send_all(fd_, "PING\n")) return fail(error, "send failed");
  std::string line;
  const LineReader::Status s = reader_->read_line(&line, kMaxHeaderLine);
  if (s == LineReader::Status::kTimeout)
    return fail(error, "response timed out after " +
                           std::to_string(response_timeout_ms_) + " ms");
  if (s != LineReader::Status::kOk)
    return fail(error, "connection closed before PONG");
  if (line != "PONG") return fail(error, "unexpected reply '" + line + "'");
  return true;
}

bool Client::shutdown_server(std::string* error) {
  if (!connected()) return fail(error, "not connected");
  if (!send_all(fd_, "SHUTDOWN\n")) return fail(error, "send failed");
  Response r;
  if (!read_response(&r, error)) return false;
  if (!r.ok) return fail(error, "server refused shutdown");
  return true;
}

}  // namespace minpower::serve
