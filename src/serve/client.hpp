#pragma once
// Client side of the `minpower serve` line protocol (serve/server.hpp):
// frames requests, parses response headers, and reads length-prefixed
// bodies. Used by the `minpower client` CLI verb and the serve tests.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace minpower::serve {

class LineReader;  // net.hpp

/// One framed server response. `ok` reflects the OK/ERR status word; the
/// body is a minpower.flow.v1 document (OK FLOW), a minpower.serve.v1
/// stats document (OK STATS), or a minpower.serve.v1 error document (ERR).
struct Response {
  bool ok = false;
  std::string body;
  std::uint64_t hits = 0;    // cache hits of this request (FLOW only)
  std::uint64_t misses = 0;  // cache misses of this request (FLOW only)
};

/// True when an ERR response's minpower.serve.v1 body carries
/// `"retryable": true` — a load condition (busy admission queue, graceful
/// drain), not a caller mistake. Retry against a fresh connection after a
/// backoff; never retry non-retryable errors (they will fail identically).
bool response_retryable(const Response& r);

/// Capped jittered exponential backoff for connection attempts:
/// `base_ms << attempt`, capped at `max_ms`, scaled by a uniform factor in
/// [0.5, 1.5) so a fleet of clients does not reconnect in lockstep.
struct RetryPolicy {
  int retries = 0;       // re-attempts after the first failure
  int base_ms = 100;     // first backoff
  int max_ms = 2'000;    // backoff cap (pre-jitter)
};

class Client {
 public:
  Client();  // out-of-line: LineReader is incomplete here
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Open a connection. False (with `error`) on failure; a connected
  /// client reconnects only via close() + connect().
  bool connect(const std::string& host, std::uint16_t port,
               std::string* error);

  /// connect() with RetryPolicy backoff on refused/failed attempts. When
  /// `attempts_out` is non-null it receives the number of *re*-attempts
  /// taken (0 = first try succeeded).
  bool connect_with_retry(const std::string& host, std::uint16_t port,
                          const RetryPolicy& policy, unsigned* attempts_out,
                          std::string* error);

  /// Bound every response read to `ms` milliseconds (0 = wait forever, the
  /// historical behavior). A stalled server then fails the request with a
  /// "timed out" transport error instead of blocking the client for good.
  /// Applies to the current connection and any later connect().
  void set_response_timeout_ms(int ms);

  void close();
  bool connected() const { return fd_ >= 0; }

  /// FLOW request: BLIF text + raw protocol option tokens ("key=value").
  /// False only on transport failure; a server-side error is a successful
  /// call with `out->ok == false` and the error document in `out->body`.
  bool flow(std::string_view blif, const std::vector<std::string>& options,
            Response* out, std::string* error);

  bool stats(Response* out, std::string* error);
  bool ping(std::string* error);

  /// Ask the server to shut down (it answers before exiting).
  bool shutdown_server(std::string* error);

 private:
  bool read_response(Response* out, std::string* error);

  int fd_ = -1;
  int response_timeout_ms_ = 0;
  std::unique_ptr<LineReader> reader_;  // persists buffering across responses
};

}  // namespace minpower::serve
