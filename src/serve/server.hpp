#pragma once
// `minpower serve` — a persistent synthesis service over a line protocol
// (DESIGN.md §13).
//
// One caching FlowSession is shared by every request, so repeated or
// structurally identical circuits hit the session's decomposition-group and
// method-result caches instead of recomputing. Concurrency comes from
// serving requests in parallel (each request runs the flow single-threaded);
// admission control is a bounded pending-connection queue — when it is full
// the server answers a structured busy error instead of queueing unbounded
// work — plus the per-request Budget deadline inherited from FlowOptions.
//
// Protocol (requests are '\n'-terminated ASCII header lines; FLOW carries a
// length-prefixed raw BLIF body):
//
//   PING                          → PONG
//   STATS                         → OK <nbytes>\n<minpower.serve.v1 stats>
//   METRICS                       → OK <nbytes>\n<Prometheus exposition>
//   FLOW <nbytes> [key=value ...] → OK <nbytes> hits=<h> misses=<m>\n<body>
//   <nbytes of BLIF>                (body: minpower.flow.v1 document)
//   SHUTDOWN                      → OK 0\n  (server begins shutdown)
//   QUIT                          → connection closed
//
// Observability (DESIGN.md §15): every FLOW request runs under a `request`
// trace span (cat "serve", request_id arg) with parse/session/render child
// phases and cache hit/miss args; `--access-log` appends one JSONL object
// per request line (serve/access_log.hpp); METRICS scrapes the process
// metrics registry as Prometheus text exposition (trace/prometheus.hpp)
// without touching the STATS document.
//
// Recognized FLOW options: deadline_ms, bdd_limit, step_limit, vdd,
// t_cycle, po_load, style=static|dynp|dynn. Anything else is a structured
// error. Response bodies are rendered with wall times zeroed and without
// the metrics block, so identical requests yield byte-identical bodies.
//
// Errors (malformed header, oversized payload, bad option token, BLIF parse
// failure, failed flow) answer `ERR <nbytes>\n` + a minpower.serve.v1 error
// document and — whenever the request framing is still intact — keep the
// connection open for the next request. Load-condition errors (busy
// admission queue, graceful drain, idle reap) carry `"retryable": true` so
// clients know to back off and retry rather than give up.
//
// Lifecycle hardening: signal_drain() (async-signal-safe, wired to
// SIGTERM/SIGINT by the CLI) begins a graceful drain — stop accepting,
// finish in-flight requests, answer new ones with a retryable error, then
// release wait(). Connections idle past ServerOptions::idle_timeout_ms are
// reaped so leaked clients cannot pin worker slots.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "flow/session.hpp"
#include "serve/access_log.hpp"

namespace minpower::serve {

class LineReader;  // net.hpp

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 → ephemeral; Server::port() has the result
  /// Request worker threads; each runs its request's flow single-threaded,
  /// so this is also the maximum number of in-flight syntheses.
  unsigned workers = 4;
  /// Accepted connections waiting for a worker; beyond this the server
  /// answers a busy error and closes (admission control).
  std::size_t max_pending = 64;
  /// FLOW payload cap; larger requests are rejected without reading.
  std::size_t max_request_bytes = 8u << 20;
  /// Reap connections idle longer than this (a leaked client otherwise pins
  /// a worker slot forever). 0 disables the reaper. The reaped connection
  /// is sent a structured, retryable error before closing.
  int idle_timeout_ms = 60'000;
  /// Per-request defaults; FLOW key=value tokens override per request.
  FlowOptions flow;
  SessionOptions session = {/*enable_cache=*/true};
  bool verbose = false;
  /// JSONL access log path ("" = disabled): one object per request line
  /// (serve/access_log.hpp) with the monotonic request id, peer, verb,
  /// byte counts, outcome, wall time, and cache hits/misses.
  std::string access_log;
};

/// Monotonic service totals (also mirrored into the metrics registry as
/// serve.* counters / gauges).
struct ServeStats {
  std::uint64_t requests = 0;         // header lines handled
  std::uint64_t flow_ok = 0;          // FLOW answered OK
  std::uint64_t errors = 0;           // ERR responses
  std::uint64_t busy_rejections = 0;  // connections refused at admission
  std::uint64_t idle_reaped = 0;      // connections closed by the reaper
  std::uint64_t drain_rejections = 0; // requests refused during drain
  std::uint64_t queue_depth_peak = 0;
  std::uint64_t inflight_peak = 0;
};

class Server {
 public:
  explicit Server(const Library& lib, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept loop and workers. False (with
  /// `error`) if the socket setup fails; the server is then inert.
  bool start(std::string* error);

  /// The bound port (after start(); resolves port 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, drain queued connections, join all threads.
  /// Idempotent; also safe when start() failed or was never called.
  void stop();

  /// Block until a SHUTDOWN request (or a concurrent stop()) ends the
  /// server, then tear it down. Returns when all threads are joined.
  void wait();

  /// Begin a graceful drain: stop accepting, answer new requests on live
  /// connections with a structured retryable error, let in-flight requests
  /// finish, then release wait(). Async-signal-safe (one write to a
  /// self-pipe) — this is the SIGTERM/SIGINT handler's entry point.
  void signal_drain();

  /// True once a drain (signal_drain or stop) has begun.
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  FlowSession& session() { return session_; }
  ServeStats stats() const;

 private:
  void accept_loop();
  void worker_loop();
  void drain_watch_loop();
  void serve_connection(int fd);
  bool handle_flow(int fd, LineReader& reader, const std::string& line,
                   AccessLog::Entry* acc);

  const Library& lib_;
  ServerOptions options_;
  FlowSession session_;
  AccessLog access_log_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int drain_pipe_[2] = {-1, -1};  // self-pipe: signal handler → watcher
  std::mutex stop_mu_;  // serializes stop() (wait() vs destructor)
  std::thread accept_thread_;
  std::thread drain_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker
  bool stopping_ = false;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> flow_ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> idle_reaped_{0};
  std::atomic<std::uint64_t> drain_rejections_{0};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> queue_depth_peak_{0};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> inflight_peak_{0};
};

}  // namespace minpower::serve
