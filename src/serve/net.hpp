#pragma once
// Minimal POSIX TCP plumbing shared by the serve server and client
// (serve/server.hpp, serve/client.hpp). Blocking sockets only; every send
// uses MSG_NOSIGNAL so a peer that disconnects mid-response surfaces as an
// error return, never SIGPIPE.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

namespace minpower::serve {

inline void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

/// Disable Nagle: the protocol is strict request/response, so batching a
/// small header behind a delayed ACK only adds ~40 ms per round trip.
inline void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Bound every recv() on `fd` to `ms` milliseconds (0 = blocking forever).
/// A timed-out recv surfaces as LineReader::Status::kTimeout with all
/// buffered bytes preserved, so the read can simply be retried — the server
/// uses short ticks to notice drain/idle conditions, the client uses it as
/// a per-response timeout.
inline void set_recv_timeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// "ip:port" of the connected peer ("?" when getpeername fails, e.g. the
/// peer already vanished) — access-log and diagnostics labeling only.
inline std::string peer_name(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return "?";
  char ip[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip)) == nullptr)
    return "?";
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

/// Write the whole buffer; false on any socket error (peer gone).
inline bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Buffered reader over a blocking socket: '\n'-framed header lines plus
/// exact-length bodies, the two shapes the line protocol uses.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  enum class Status { kOk, kEof, kError, kOverflow, kTimeout };

  /// One '\n'-terminated line (terminator stripped). kOverflow once the
  /// line exceeds `max_len` — the connection's framing is unrecoverable.
  /// kTimeout (recv timeout armed via set_recv_timeout) preserves any
  /// partial line; calling again resumes where the read left off.
  Status read_line(std::string* out, std::size_t max_len) {
    out->clear();
    for (;;) {
      const std::size_t nl = buf_.find('\n', scanned_);
      if (nl != std::string::npos) {
        out->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        scanned_ = 0;
        if (out->size() > max_len) return Status::kOverflow;
        return Status::kOk;
      }
      scanned_ = buf_.size();
      if (buf_.size() > max_len) return Status::kOverflow;
      const Status s = fill();
      if (s == Status::kTimeout) return s;
      if (s != Status::kOk) return buf_.empty() ? s : Status::kEof;
    }
  }

  /// Exactly n bytes (a request/response body). kTimeout keeps the partial
  /// body buffered; retrying continues the read.
  Status read_exact(std::string* out, std::size_t n) {
    while (buf_.size() < n) {
      const Status s = fill();
      if (s != Status::kOk) return s;
    }
    out->assign(buf_, 0, n);
    buf_.erase(0, n);
    scanned_ = 0;
    return Status::kOk;
  }

 private:
  Status fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf_.append(chunk, static_cast<std::size_t>(n));
        return Status::kOk;
      }
      if (n == 0) return Status::kEof;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Status::kTimeout;  // SO_RCVTIMEO expired
      return Status::kError;
    }
  }

  int fd_;
  std::string buf_;
  std::size_t scanned_ = 0;  // prefix of buf_ already searched for '\n'
};

/// Blocking client connect; -1 with `error` filled on failure.
inline int tcp_connect(const std::string& host, std::uint16_t port,
                       std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid host address " + host;
    close_fd(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr)
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    close_fd(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

}  // namespace minpower::serve
