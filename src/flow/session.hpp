#pragma once
// FlowSession: the reusable session/cache layer behind the flow engine and
// the `minpower serve` long-lived service (DESIGN.md §13).
//
// The paper's flow — decompose, activity, map against power-delay curves —
// is a pure function of the (sub)network and the options, so its expensive
// intermediates are memoizable across runs. A FlowSession keys them on a
// canonical 128-bit structural hash of the network plus an option
// fingerprint and keeps them in bounded LRU caches:
//
//   * decomposition group cache: (net, options, group) → decomposed subject
//     network + switching-activity vector (the stage-1 product);
//   * result cache: (net, options, method) → mapped QoR (the stage-2
//     product — curves are consumed during mapping, so the cached unit is
//     the final method result).
//
// Both caches are guarded for concurrent readers: lookups take a shared
// lock and stamp the entry's recency with a relaxed atomic, inserts take
// the exclusive lock and evict the least-recently-stamped entry past
// capacity. Values are shared_ptr-owned, so a hit stays valid after
// eviction. Only ok/degraded results are cached — a failed task (deadline,
// fatal error) is load- or request-specific and recomputes next time.
//
// Determinism: cache lookups happen during (serial) run planning, and
// identical stage-1/stage-2 work within one batch is deduplicated by key
// before fan-out, so results and pass counters are independent of thread
// count and arrival interleaving. The one-shot FlowEngine wraps a session
// with caching disabled and behaves exactly as before; `minpower serve`
// keeps one caching session alive across requests.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "flow/flow.hpp"
#include "util/budget.hpp"
#include "util/hash.hpp"

namespace minpower {

class JsonWriter;   // util/json_writer.hpp
struct JsonValue;   // util/json_reader.hpp

struct EngineOptions {
  FlowOptions flow;
  /// Worker threads (0 → hardware concurrency). 1 runs inline.
  unsigned num_threads = 1;
  /// Armed faults, merged with MINPOWER_INJECT_FAULT at each run_suite
  /// call (see flow_engine.hpp for the ordinal scheme). A run with armed
  /// faults bypasses the caches and the intra-batch dedup so every task
  /// ordinal stays live.
  std::vector<FaultInjection> injections;
  /// Emit one live stderr status line per finished task. Lines are built
  /// whole and written under a mutex, so threads never interleave output.
  bool verbose = false;
};

/// Cumulative computed-pass counts over the session's lifetime. Cache hits
/// and intra-batch duplicates do not count — these are passes actually run.
struct EngineCounters {
  int decomp_passes = 0;    // decompose_network invocations
  int activity_passes = 0;  // switching_activities invocations
  int map_passes = 0;       // map_network invocations
};

struct SessionOptions {
  /// Cross-run memoization. Off by default (the one-shot FlowEngine
  /// contract); `minpower serve` turns it on.
  bool enable_cache = false;
  /// Bounded LRU capacities, in entries. A decomposition-group entry holds
  /// a subject network + activity vector; a result entry holds one QoR row.
  std::size_t group_cache_capacity = 256;
  std::size_t result_cache_capacity = 4096;
};

/// Cumulative cache traffic. Mirrored into the global metrics registry
/// (session.* counters) whenever caching is enabled.
struct SessionStats {
  std::uint64_t group_hits = 0;
  std::uint64_t group_misses = 0;
  std::uint64_t result_hits = 0;
  std::uint64_t result_misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t hits() const { return group_hits + result_hits; }
  std::uint64_t lookups() const {
    return group_hits + group_misses + result_hits + result_misses;
  }
};

/// Canonical structural hash of a network: invariant under PI/node
/// declaration-order permutations (node hashes are derived from fanin
/// hashes; PI and PO contributions are combined as sorted multisets), and
/// sensitive to any functional change — a single-literal flip, an
/// added/removed cube, a different PO binding. Node and PI *names* of
/// internal nodes do not participate; PI/PO names do (they bind option
/// vectors and outputs).
Hash128 structural_hash(const Network& net);

/// Fingerprint of every FlowOptions field that can change a result,
/// with per-PI probabilities/arrivals bound by PI *name* (so a permuted
/// netlist with correspondingly permuted vectors fingerprints identically).
/// Thread count is excluded — results are thread-count independent.
Hash128 option_fingerprint(const FlowOptions& options, const Network& net);

class FlowSession {
 public:
  explicit FlowSession(const Library& lib, EngineOptions options = {},
                       SessionOptions session = {});
  ~FlowSession();

  FlowSession(const FlowSession&) = delete;
  FlowSession& operator=(const FlowSession&) = delete;

  /// All six methods of one prepared circuit, in Method order.
  std::vector<FlowResult> run_circuit(const Network& prepared);

  /// Fan out (circuit × method) over the pool; result [i] holds circuit i's
  /// six methods in Method order. With caching enabled, memoized
  /// decomposition groups and method results are reused across calls; when
  /// `delta` is non-null it receives this run's cache traffic only.
  std::vector<std::vector<FlowResult>> run_suite(
      const std::vector<const Network*>& circuits,
      SessionStats* delta = nullptr);

  /// Per-request variants for the serve path: run with `flow` in place of
  /// the session's default FlowOptions (the option fingerprint keys the
  /// caches, so requests with different options never share entries).
  /// Concurrent calls on one session are safe — caches and counters are
  /// internally locked, and each call fans out its own workers.
  std::vector<FlowResult> run_circuit(const Network& prepared,
                                      const FlowOptions& flow,
                                      SessionStats* delta);
  std::vector<std::vector<FlowResult>> run_suite(
      const std::vector<const Network*>& circuits, const FlowOptions& flow,
      SessionStats* delta);

  EngineCounters counters() const;
  void reset_counters();

  /// The thread count a run will actually use (resolves 0).
  unsigned effective_threads() const;

  /// Cumulative cache traffic (thread-safe snapshot).
  SessionStats stats() const;

  const Library& library() const { return lib_; }
  const EngineOptions& options() const { return options_; }
  bool caching() const { return session_options_.enable_cache; }

 private:
  struct Caches;  // LRU tables; defined in session.cpp

  const Library& lib_;
  EngineOptions options_;
  SessionOptions session_options_;
  std::unique_ptr<Caches> caches_;
  /// Guards counters_ and stats_ (concurrent run_suite calls accumulate).
  mutable std::mutex stats_mu_;
  EngineCounters counters_;
  SessionStats stats_;
};

/// Serialization policy for `write_flow_json`. The defaults produce the
/// classic CLI/bench document; serve responses zero the wall-time fields
/// and drop the (process-global, request-order-dependent) metrics snapshot
/// so repeated identical requests yield byte-identical documents.
struct FlowJsonPolicy {
  bool include_metrics = true;
  bool zero_wall_times = false;
};

/// Serialize per-circuit six-method results (plus engine pass counters and
/// a `metrics` block snapshotting the global metrics registry) as the
/// machine-readable flow-bench schema `minpower.flow.v1` — see
/// DESIGN.md §"Flow engine" for the field list.
void write_flow_json(std::ostream& os,
                     const std::vector<std::vector<FlowResult>>& per_circuit,
                     const EngineCounters& counters, unsigned num_threads,
                     double elapsed_ms, const std::string& library_name,
                     const FlowJsonPolicy& policy = {});

/// Render one method cell exactly as it appears in the `methods[]` array of
/// `minpower.flow.v1` (the inner loop of write_flow_json). The shard journal
/// and the pipe protocol between shard workers and the supervisor serialize
/// cells through this single path, so a result that round-trips through
/// parse_flow_result_json re-renders byte-identically (doubles are emitted
/// as %.17g, which strtod recovers exactly).
void write_flow_result_json(JsonWriter& w, const FlowResult& r,
                            const FlowJsonPolicy& policy = {});

/// Inverse of write_flow_result_json over a parsed JSON object. The circuit
/// name is not part of the method object; callers fill `out->circuit`.
/// False (with `error`) on a missing/mistyped field or unknown enum name.
bool parse_flow_result_json(const JsonValue& v, FlowResult* out,
                            std::string* error);

}  // namespace minpower
