#include "flow/session.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "decomp/package_merge.hpp"
#include "prob/probability.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower {

namespace {

constexpr Method kMethods[6] = {Method::kI,  Method::kII, Method::kIII,
                                Method::kIV, Method::kV,  Method::kVI};

/// Decomposition group of a method: I/IV → 0 (balanced), II/V → 1
/// (MINPOWER), III/VI → 2 (BH-MINPOWER).
std::size_t group_of(Method m) {
  switch (m) {
    case Method::kI:
    case Method::kIV:
      return 0;
    case Method::kII:
    case Method::kV:
      return 1;
    case Method::kIII:
    case Method::kVI:
      return 2;
  }
  return 0;
}

/// A representative method per group, used to derive the (identical)
/// decomposition options the pair shares.
constexpr Method kGroupMethod[3] = {Method::kI, Method::kII, Method::kIII};

/// One decomposed subject network shared by a method pair — the stage-1
/// product and the value cached by the session's group cache.
struct DecompGroup {
  NetworkDecompResult nd;
  std::vector<double> activities;
  ActivityPassStats astats;
  double decomp_ms = 0.0;
  double activity_ms = 0.0;
  TaskStatus status;
  int exact_fallbacks = 0;
};

/// Per-task budget: FlowOptions limits + fault injections armed against
/// this task's deterministic ordinal.
Budget make_budget(const FlowOptions& flow,
                   const std::vector<FaultInjection>& injections, long ordinal,
                   std::string label) {
  Budget b;
  b.bdd_node_limit = flow.bdd_node_limit;
  if (flow.task_deadline_ms > 0.0)
    b.deadline = Budget::Clock::now() +
                 std::chrono::duration_cast<Budget::Clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         flow.task_deadline_ms));
  b.step_limit = flow.task_step_limit;
  b.ordinal = ordinal;
  b.label = std::move(label);
  b.arm(injections);
  return b;
}

/// Structured reason string for a blown budget: leads with the stable site
/// identifier and the BDD-cap watermark that was active when the limit
/// fired, so flow reports (and the sharded sidecar) show *which* limit at
/// *what* setting killed the task without parsing free-form text.
std::string exhausted_reason(const ResourceExhausted& e,
                             std::size_t bdd_cap) {
  return "resource-exhausted site=" + e.site() +
         " bdd_limit=" + std::to_string(bdd_cap) + ": " + e.what();
}

/// Whole lines only, under one mutex: concurrent tasks never interleave
/// partial status output.
void emit_status_line(const std::string& line) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fputs(line.c_str(), stderr);
}

/// Scope guard that reports a task's final status once its slot has been
/// written — including the early-return failure paths.
struct StatusLine {
  bool enabled;
  const char* stage;
  const std::string& label;
  const TaskStatus& status;
  ~StatusLine() {
    if (!enabled) return;
    std::string line = "[flow] ";
    line += stage;
    line += ' ';
    line += label;
    line += ' ';
    line += task_state_name(status.state);
    if (status.retries > 0) line += " retries=" + std::to_string(status.retries);
    for (const std::string& f : status.fallbacks) line += " fallback=" + f;
    if (!status.reason.empty()) line += " (" + status.reason + ")";
    line += '\n';
    emit_status_line(line);
  }
};

std::uint64_t us_since(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run fn(0..n-1) across `threads` workers. Tasks are claimed from an
/// atomic counter; each task writes only its own output slot, so results
/// are independent of the interleaving.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads > n) threads = static_cast<unsigned>(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

/// Cache key: structural hash ⊕ option fingerprint ⊕ a work-unit tag
/// (decomposition group 0–2 for stage 1, 8+method index for stage 2).
Hash128 work_key(const Hash128& net, const Hash128& opts, std::uint64_t tag) {
  StreamHash s;
  s.h128(net);
  s.h128(opts);
  s.u64(tag);
  return s.digest();
}

/// Bounded LRU keyed on Hash128, guarded for concurrent readers: lookups
/// take the shared lock and refresh the entry's recency with a relaxed
/// atomic stamp; inserts take the exclusive lock and evict the
/// least-recently-stamped entries past capacity (an O(size) scan —
/// capacities are small and inserts are rare next to the synthesis work an
/// entry represents). Values are shared_ptr-owned, so a returned hit stays
/// valid after its entry is evicted.
template <typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity)
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  std::shared_ptr<const V> lookup(const Hash128& key) {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    it->second.stamp.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                           std::memory_order_relaxed);
    return it->second.value;
  }

  /// Returns the number of entries evicted to stay within capacity.
  std::size_t insert(const Hash128& key, std::shared_ptr<const V> value) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Entry& e = map_[key];
    e.value = std::move(value);
    e.stamp.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    std::size_t evicted = 0;
    while (map_.size() > capacity_) {
      auto victim = map_.begin();
      for (auto it = map_.begin(); it != map_.end(); ++it)
        if (it->second.stamp.load(std::memory_order_relaxed) <
            victim->second.stamp.load(std::memory_order_relaxed))
          victim = it;
      map_.erase(victim);
      ++evicted;
    }
    return evicted;
  }

  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    std::atomic<std::uint64_t> stamp{0};
  };

  const std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::atomic<std::uint64_t> clock_{0};
  std::unordered_map<Hash128, Entry, Hash128Fold> map_;
};

}  // namespace

Hash128 structural_hash(const Network& net) {
  // Per-node hashes derive from fanin hashes, so they are independent of
  // declaration order; the network hash combines PI and PO contributions as
  // sorted multisets, so it is too.
  std::vector<Hash128> h(net.capacity());
  for (NodeId id : net.topo_order()) {
    const Node& node = net.node(id);
    StreamHash s;
    switch (node.kind) {
      case NodeKind::kPrimaryInput:
        s.u64(1);
        s.str(node.name);  // PI names bind option vectors; internal names
                           // never participate
        break;
      case NodeKind::kConstant0:
        s.u64(2);
        break;
      case NodeKind::kConstant1:
        s.u64(3);
        break;
      case NodeKind::kInternal: {
        s.u64(4);
        s.u64(node.fanins.size());
        for (const NodeId f : node.fanins)
          s.h128(h[static_cast<std::size_t>(f)]);
        // Canonical cover: cube order is irrelevant to the function, so a
        // sorted copy makes the hash independent of it. Fanin order stays
        // significant (it binds cover variables) — permuting fanins with a
        // remapped cover misses the cache, which is safe.
        std::vector<Cube> cubes = node.cover.cubes();
        std::sort(cubes.begin(), cubes.end());
        s.u64(cubes.size());
        for (const Cube& c : cubes) {
          s.u64(c.pos());
          s.u64(c.neg());
        }
        break;
      }
      case NodeKind::kDead:
        continue;  // tombstones never reach topo_order, but be explicit
    }
    h[static_cast<std::size_t>(id)] = s.digest();
  }

  std::vector<Hash128> pi_h;
  pi_h.reserve(net.pis().size());
  for (const NodeId pi : net.pis()) pi_h.push_back(h[static_cast<std::size_t>(pi)]);
  std::sort(pi_h.begin(), pi_h.end());

  std::vector<Hash128> po_h;
  po_h.reserve(net.pos().size());
  for (const PrimaryOutput& po : net.pos()) {
    StreamHash s;
    s.u64(5);
    s.str(po.name);
    s.h128(po.driver == kNoNode ? Hash128{}
                                : h[static_cast<std::size_t>(po.driver)]);
    po_h.push_back(s.digest());
  }
  std::sort(po_h.begin(), po_h.end());

  StreamHash s;
  s.u64(0x6d70'6e65'7477'6f72ULL);  // "mpnetwor" domain tag
  s.u64(pi_h.size());
  for (const Hash128& x : pi_h) s.h128(x);
  s.u64(po_h.size());
  for (const Hash128& x : po_h) s.h128(x);
  return s.digest();
}

Hash128 option_fingerprint(const FlowOptions& o, const Network& net) {
  StreamHash s;
  s.u64(0x6d70'6f70'7469'6f6eULL);  // "mpoption" domain tag
  s.u64(static_cast<std::uint64_t>(o.style));
  s.f64(o.vdd);
  s.f64(o.t_cycle);
  s.f64(o.po_load);
  s.f64(o.epsilon_t);
  s.f64(o.epsilon_c);
  s.u64(o.max_curve_points);
  s.u64(static_cast<std::uint64_t>(o.policy));
  s.f64(o.relax_factor);
  s.u64(static_cast<std::uint64_t>(o.dag));
  // Budget limits shape degradation outcomes, so they are part of the key.
  s.u64(o.bdd_node_limit);
  s.f64(o.task_deadline_ms);
  s.u64(o.task_step_limit);

  // Per-PI statistics, bound by PI name in sorted-name order: a permuted
  // netlist with correspondingly permuted vectors fingerprints identically,
  // and an explicit all-default vector matches the empty one.
  struct PiStat {
    const std::string* name;
    double prob;
    double arrival;
  };
  std::vector<PiStat> stats;
  stats.reserve(net.pis().size());
  for (std::size_t i = 0; i < net.pis().size(); ++i) {
    const Node& pi = net.node(net.pis()[i]);
    stats.push_back({&pi.name, i < o.pi_prob1.size() ? o.pi_prob1[i] : 0.5,
                     i < o.pi_arrival.size() ? o.pi_arrival[i] : 0.0});
  }
  std::sort(stats.begin(), stats.end(),
            [](const PiStat& a, const PiStat& b) { return *a.name < *b.name; });
  s.u64(stats.size());
  for (const PiStat& p : stats) {
    s.str(*p.name);
    s.f64(p.prob);
    s.f64(p.arrival);
  }
  return s.digest();
}

struct FlowSession::Caches {
  LruCache<DecompGroup> groups;
  LruCache<FlowResult> results;
  Caches(std::size_t group_capacity, std::size_t result_capacity)
      : groups(group_capacity), results(result_capacity) {}
};

FlowSession::FlowSession(const Library& lib, EngineOptions options,
                         SessionOptions session)
    : lib_(lib), options_(std::move(options)), session_options_(session) {
  if (session_options_.enable_cache)
    caches_ = std::make_unique<Caches>(session_options_.group_cache_capacity,
                                       session_options_.result_cache_capacity);
}

FlowSession::~FlowSession() = default;

unsigned FlowSession::effective_threads() const {
  if (options_.num_threads != 0) return options_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

SessionStats FlowSession::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

EngineCounters FlowSession::counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

void FlowSession::reset_counters() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_ = EngineCounters{};
}

std::vector<FlowResult> FlowSession::run_circuit(const Network& prepared) {
  return run_circuit(prepared, options_.flow, nullptr);
}

std::vector<FlowResult> FlowSession::run_circuit(const Network& prepared,
                                                 const FlowOptions& flow,
                                                 SessionStats* delta) {
  const Network* one[] = {&prepared};
  std::vector<std::vector<FlowResult>> rs =
      run_suite(std::vector<const Network*>(one, one + 1), flow, delta);
  return std::move(rs.front());
}

std::vector<std::vector<FlowResult>> FlowSession::run_suite(
    const std::vector<const Network*>& circuits, SessionStats* delta) {
  return run_suite(circuits, options_.flow, delta);
}

std::vector<std::vector<FlowResult>> FlowSession::run_suite(
    const std::vector<const Network*>& circuits, const FlowOptions& flow,
    SessionStats* delta) {
  const std::size_t n = circuits.size();
  const unsigned threads = effective_threads();

  // Armed faults: explicit options first, then the environment hook.
  std::vector<FaultInjection> injections = options_.injections;
  for (FaultInjection& f : fault_injections_from_env())
    injections.push_back(std::move(f));

  // Identical work units are shared within the batch (and, when caching is
  // on, across runs). Armed faults disable both, so every task ordinal in
  // the injection scheme stays a live task.
  const bool share = injections.empty();
  const bool cached = share && session_options_.enable_cache;
  SessionStats run_stats;

  std::vector<Hash128> net_hash(n);
  std::vector<Hash128> opt_hash(n);
  if (share)
    for (std::size_t i = 0; i < n; ++i) {
      net_hash[i] = structural_hash(*circuits[i]);
      opt_hash[i] = option_fingerprint(flow, *circuits[i]);
    }

  // ---- stage 0: resolve whole (subject × method) results from the cache
  // before any planning. A fully warm circuit touches neither stage — in
  // particular its decomposition groups are never fetched or recomputed,
  // even after they were evicted. ------------------------------------------
  std::vector<std::vector<FlowResult>> out(n, std::vector<FlowResult>(6));
  std::vector<Hash128> slot2_key(n * 6);
  std::vector<char> resolved(n * 6, 0);
  if (cached)
    for (std::size_t t = 0; t < n * 6; ++t) {
      slot2_key[t] = work_key(net_hash[t / 6], opt_hash[t / 6], 8 + t % 6);
      if (auto hit = caches_->results.lookup(slot2_key[t])) {
        FlowResult r = *hit;
        r.circuit = circuits[t / 6]->name();
        out[t / 6][t % 6] = std::move(r);
        resolved[t] = 1;
        ++run_stats.result_hits;
      }
    }

  // ---- stage 1 planning: one decomposition + one activity pass per
  // *distinct* subject still needed by an unresolved method (cache hits are
  // taken here, serially, so results and counters are independent of thread
  // count). ----------------------------------------------------------------
  std::vector<std::shared_ptr<const DecompGroup>> groups(n * 3);
  std::vector<Hash128> slot_key(n * 3);
  std::vector<std::size_t> alias(n * 3);
  std::vector<std::size_t> compute;
  compute.reserve(n * 3);
  {
    std::unordered_map<Hash128, std::size_t, Hash128Fold> owner;
    for (std::size_t t = 0; t < n * 3; ++t) {
      alias[t] = t;
      if (!share) {
        compute.push_back(t);
        continue;
      }
      bool needed = false;
      for (std::size_t m = 0; m < 6; ++m)
        if (group_of(kMethods[m]) == t % 3 && !resolved[(t / 3) * 6 + m])
          needed = true;
      if (!needed) continue;
      slot_key[t] = work_key(net_hash[t / 3], opt_hash[t / 3], t % 3);
      if (cached) {
        if (auto hit = caches_->groups.lookup(slot_key[t])) {
          groups[t] = std::move(hit);
          ++run_stats.group_hits;
          continue;
        }
      }
      const auto [it, fresh] = owner.try_emplace(slot_key[t], t);
      if (!fresh) {
        alias[t] = it->second;
        continue;
      }
      compute.push_back(t);
      if (cached) ++run_stats.group_misses;
    }
  }

  // ---- stage 1 execution. Each task is fault-isolated: a blown budget
  // degrades (halved-cap retry, then Monte-Carlo activities) or fails this
  // group only. ------------------------------------------------------------
  const auto stage1_t0 = std::chrono::steady_clock::now();
  std::vector<DecompGroup> scratch(n * 3);
  parallel_for(compute.size(), threads, [&](std::size_t i) {
    const std::size_t t = compute[i];
    const auto task_start = std::chrono::steady_clock::now();
    const Network& net = *circuits[t / 3];
    DecompGroup& g = scratch[t];
    const long ordinal = static_cast<long>(t);
    const std::string label =
        net.name() + "/decomp[" + std::to_string(t % 3) + "]";
    trace::Span task_span("stage1", "engine");
    task_span.arg("task", label);
    task_span.arg("circuit", net.name());
    task_span.arg("group", static_cast<unsigned long long>(t % 3));
    task_span.arg("queue_wait_us", us_since(stage1_t0, task_start));
    const StatusLine report{options_.verbose, "stage1", label, g.status};
    const NetworkDecompOptions d =
        decomp_options_for(kGroupMethod[t % 3], flow);

    auto note_fallback = [&g](const char* name) {
      g.status.state = TaskState::kDegraded;
      for (const std::string& f : g.status.fallbacks)
        if (f == name) return;
      g.status.fallbacks.push_back(name);
    };

    // Decomposition with its own ladder: the exact probability pass inside
    // decompose_network builds BDDs too, so a blowup here retries at half
    // the node cap and then re-decomposes over Monte-Carlo probabilities
    // (which skips the BDD pass entirely).
    reset_bounded_exact_fallbacks();
    // Watermark of the most recent attempt, reported in failure reasons.
    std::size_t attempted_cap = flow.bdd_node_limit;
    auto decomp_pass = [&](std::size_t node_cap,
                           const std::vector<double>* node_prob) {
      Budget budget = make_budget(flow, injections, ordinal, label);
      budget.bdd_node_limit = attempted_cap = node_cap;
      BudgetScope scope(budget);
      NetworkDecompOptions dd = d;
      if (node_prob != nullptr) dd.node_prob = *node_prob;
      const auto t0 = std::chrono::steady_clock::now();
      g.nd = decompose_network(net, dd);
      g.decomp_ms += ms_since(t0);
    };
    try {
      try {
        decomp_pass(flow.bdd_node_limit, nullptr);
      } catch (const ResourceExhausted& e) {
        if (e.site() == "deadline") throw;
        g.status.retries += 1;
        decomp_pass(std::max<std::size_t>(flow.bdd_node_limit / 2, 2),
                    nullptr);
      }
    } catch (const ResourceExhausted& e) {
      const std::size_t failed_cap = attempted_cap;
      if (e.site() == "deadline" || e.site() == "decomp") {
        g.status.state = TaskState::kFailed;
        g.status.reason = exhausted_reason(e, failed_cap);
        return;
      }
      // MC signal probabilities: activity under kDynamicP is exactly P(=1).
      try {
        const std::vector<double> mc_prob = monte_carlo_activities(
            net, CircuitStyle::kDynamicP, flow.pi_prob1);
        decomp_pass(flow.bdd_node_limit, &mc_prob);
      } catch (const std::exception& e2) {
        g.status.state = TaskState::kFailed;
        g.status.reason = e2.what();
        return;
      }
      if (g.status.reason.empty())
        g.status.reason = exhausted_reason(e, failed_cap);
      note_fallback("mc-activity");
    } catch (const std::exception& e) {
      g.status.state = TaskState::kFailed;
      g.status.reason = e.what();
      return;
    }
    g.exact_fallbacks = static_cast<int>(bounded_exact_fallbacks());
    if (g.exact_fallbacks > 0) note_fallback("greedy-ladder");

    // Activity pass with the degradation ladder: full budget, one retry at
    // half the BDD node cap, then the Monte-Carlo estimator. Deadline and
    // unexpected errors fail the group instead of degrading.
    auto exact_pass = [&](std::size_t node_cap) {
      Budget budget = make_budget(flow, injections, ordinal,
                                  net.name() + "/activity[" +
                                      std::to_string(t % 3) + "]");
      budget.bdd_node_limit = attempted_cap = node_cap;
      BudgetScope scope(budget);
      const auto t0 = std::chrono::steady_clock::now();
      g.activities = switching_activities(g.nd.network, flow.style,
                                          flow.pi_prob1, &g.astats);
      g.activity_ms += ms_since(t0);
    };
    try {
      try {
        exact_pass(flow.bdd_node_limit);
      } catch (const ResourceExhausted& e) {
        if (e.site() == "deadline") throw;
        g.status.retries += 1;
        exact_pass(std::max<std::size_t>(flow.bdd_node_limit / 2, 2));
      }
    } catch (const ResourceExhausted& e) {
      if (e.site() == "deadline") {
        g.status.state = TaskState::kFailed;
        g.status.reason = exhausted_reason(e, attempted_cap);
        return;
      }
      // Fall back to Monte-Carlo activities: deterministic, BDD-free.
      const auto t0 = std::chrono::steady_clock::now();
      g.activities =
          monte_carlo_activities(g.nd.network, flow.style, flow.pi_prob1);
      g.activity_ms += ms_since(t0);
      if (g.status.reason.empty())
        g.status.reason = exhausted_reason(e, attempted_cap);
      note_fallback("mc-activity");
    } catch (const std::exception& e) {
      g.status.state = TaskState::kFailed;
      g.status.reason = e.what();
    }
  });
  for (const std::size_t t : compute) {
    auto sp = std::make_shared<const DecompGroup>(std::move(scratch[t]));
    // Failed groups are load-specific (deadlines, injected faults never
    // reach here, fatal errors) — recompute them next time.
    if (cached && sp->status.state != TaskState::kFailed)
      run_stats.evictions += caches_->groups.insert(slot_key[t], sp);
    groups[t] = std::move(sp);
  }
  scratch.clear();
  for (std::size_t t = 0; t < n * 3; ++t)
    if (!groups[t]) groups[t] = groups[alias[t]];

  // ---- stage 2 planning: map + evaluate each *distinct* (subject ×
  // method) not already resolved from the cache in stage 0; duplicates
  // reuse the result with the circuit name rewritten. ----------------------
  std::vector<std::size_t> alias2(n * 6);
  std::vector<std::size_t> compute2;
  compute2.reserve(n * 6);
  {
    std::unordered_map<Hash128, std::size_t, Hash128Fold> owner;
    for (std::size_t t = 0; t < n * 6; ++t) {
      alias2[t] = t;
      if (resolved[t]) continue;
      if (!share) {
        compute2.push_back(t);
        continue;
      }
      slot2_key[t] = work_key(net_hash[t / 6], opt_hash[t / 6], 8 + t % 6);
      const auto [it, fresh] = owner.try_emplace(slot2_key[t], t);
      if (!fresh) {
        alias2[t] = it->second;
        continue;
      }
      compute2.push_back(t);
      if (cached) ++run_stats.result_misses;
    }
  }

  // ---- stage 2 execution over the shared subjects. A method whose group
  // failed inherits that failure; its own budget covers mapping and
  // evaluation. ------------------------------------------------------------
  const auto stage2_t0 = std::chrono::steady_clock::now();
  parallel_for(compute2.size(), threads, [&](std::size_t i) {
    const std::size_t t = compute2[i];
    const auto task_start = std::chrono::steady_clock::now();
    const std::size_t ci = t / 6;
    const Method method = kMethods[t % 6];
    const Network& prepared = *circuits[ci];
    const DecompGroup& g = *groups[ci * 3 + group_of(method)];
    const long ordinal = static_cast<long>(3 * n + t);
    const std::string label =
        prepared.name() + "/map[" + method_name(method) + "]";
    trace::Span task_span("stage2", "engine");
    task_span.arg("task", label);
    task_span.arg("circuit", prepared.name());
    task_span.arg("method", method_name(method));
    task_span.arg("queue_wait_us", us_since(stage2_t0, task_start));
    // References the result slot, not the local: every exit path moves the
    // local into the slot before the guard's destructor runs.
    const StatusLine report{options_.verbose, "stage2", label,
                            out[ci][t % 6].status};

    FlowResult r;
    r.circuit = prepared.name();
    r.method = method;
    r.status = g.status;  // inherit group degradation / failure context
    r.phases.decomp_ms = g.decomp_ms;
    r.phases.activity_ms = g.activity_ms;
    r.phases.bdd_nodes = g.astats.bdd_nodes;
    r.phases.shared_decomp = true;
    r.phases.shared_activity = true;
    r.phases.decomp_passes = 3;
    r.phases.activity_passes = 3;
    r.phases.exact_fallbacks = g.exact_fallbacks;
    r.phases.activity_retries = g.status.retries;

    if (g.status.state == TaskState::kFailed) {
      r.status.reason = "decomposition/activity failed: " + g.status.reason;
      out[ci][t % 6] = std::move(r);
      return;
    }
    r.tree_activity = g.nd.tree_activity;
    r.nand_depth = g.nd.unit_depth;
    r.nand_nodes = g.nd.network.num_internal();
    r.redecomposed = g.nd.redecomposed_nodes;
    r.phases.redecomp_iterations = g.nd.redecomposed_nodes;

    try {
      Budget budget = make_budget(flow, injections, ordinal, label);
      BudgetScope scope(budget);

      MapOptions m = map_options_for(method, flow);
      m.activities = g.activities;
      auto t0 = std::chrono::steady_clock::now();
      const MapResult mapped = map_network(g.nd.network, lib_, m);
      r.phases.map_ms = ms_since(t0);
      r.phases.matches = mapped.total_matches;
      r.phases.curve_points = mapped.total_curve_points;

      t0 = std::chrono::steady_clock::now();
      const MappedReport rep =
          evaluate_mapped(mapped.mapped, PowerParams::from(m));
      r.phases.eval_ms = ms_since(t0);
      r.area = rep.area;
      r.delay = rep.delay;
      r.power_uw = rep.power_uw;
      r.gates = rep.num_gates;
    } catch (const ResourceExhausted& e) {
      r.status.state = TaskState::kFailed;
      r.status.reason = exhausted_reason(e, flow.bdd_node_limit);
      r.area = r.delay = r.power_uw = 0.0;
      r.gates = 0;
    } catch (const std::exception& e) {
      r.status.state = TaskState::kFailed;
      r.status.reason = e.what();
      r.area = r.delay = r.power_uw = 0.0;
      r.gates = 0;
    }
    out[ci][t % 6] = std::move(r);
  });
  for (const std::size_t t : compute2) {
    const FlowResult& r = out[t / 6][t % 6];
    if (cached && r.status.state != TaskState::kFailed)
      run_stats.evictions += caches_->results.insert(
          slot2_key[t], std::make_shared<const FlowResult>(r));
  }
  for (std::size_t t = 0; t < n * 6; ++t) {
    if (alias2[t] == t) continue;
    FlowResult r = out[alias2[t] / 6][alias2[t] % 6];
    r.circuit = circuits[t / 6]->name();
    out[t / 6][t % 6] = std::move(r);
  }

  // Task-outcome metrics over the executed tasks (cache hits and batch
  // duplicates did not run). Retries/fallbacks originate in stage 1 and are
  // counted there only (stage-2 results inherit the group status verbatim).
  {
    std::uint64_t ok = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t exact_fb = 0;
    auto bump = [&](TaskState s) {
      switch (s) {
        case TaskState::kOk: ++ok; break;
        case TaskState::kDegraded: ++degraded; break;
        case TaskState::kFailed: ++failed; break;
      }
    };
    for (const std::size_t t : compute) {
      const DecompGroup& g = *groups[t];
      bump(g.status.state);
      retries += static_cast<std::uint64_t>(g.status.retries);
      fallbacks += g.status.fallbacks.size();
      exact_fb += static_cast<std::uint64_t>(g.exact_fallbacks);
    }
    for (const std::size_t t : compute2) bump(out[t / 6][t % 6].status.state);
    metrics::counter("engine.tasks_ok").add(ok);
    metrics::counter("engine.tasks_degraded").add(degraded);
    metrics::counter("engine.tasks_failed").add(failed);
    metrics::counter("engine.retries").add(retries);
    metrics::counter("engine.fallbacks").add(fallbacks);
    metrics::counter("engine.exact_fallbacks").add(exact_fb);
  }

  if (cached) {
    // Mirror cache traffic into the registry (serve dashboards); the
    // one-shot FlowEngine path never touches these names, keeping its
    // metrics block byte-compatible with committed baselines.
    metrics::counter("session.group_hits").add(run_stats.group_hits);
    metrics::counter("session.group_misses").add(run_stats.group_misses);
    metrics::counter("session.result_hits").add(run_stats.result_hits);
    metrics::counter("session.result_misses").add(run_stats.result_misses);
    metrics::counter("session.evictions").add(run_stats.evictions);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.decomp_passes += static_cast<int>(compute.size());
    counters_.activity_passes += static_cast<int>(compute.size());
    counters_.map_passes += static_cast<int>(compute2.size());
    stats_.group_hits += run_stats.group_hits;
    stats_.group_misses += run_stats.group_misses;
    stats_.result_hits += run_stats.result_hits;
    stats_.result_misses += run_stats.result_misses;
    stats_.evictions += run_stats.evictions;
  }
  if (delta != nullptr) *delta = run_stats;
  return out;
}

void write_flow_json(std::ostream& os,
                     const std::vector<std::vector<FlowResult>>& per_circuit,
                     const EngineCounters& counters, unsigned num_threads,
                     double elapsed_ms, const std::string& library_name,
                     const FlowJsonPolicy& policy) {
  // Task rollup: every (circuit × method) result carries the status of the
  // tasks that produced it.
  int ok = 0;
  int degraded = 0;
  int failed = 0;
  for (const std::vector<FlowResult>& methods : per_circuit)
    for (const FlowResult& r : methods) {
      switch (r.status.state) {
        case TaskState::kOk: ++ok; break;
        case TaskState::kDegraded: ++degraded; break;
        case TaskState::kFailed: ++failed; break;
      }
    }
  auto worst_of = [](const std::vector<FlowResult>& methods) {
    TaskState worst = TaskState::kOk;
    for (const FlowResult& r : methods)
      if (static_cast<int>(r.status.state) > static_cast<int>(worst))
        worst = r.status.state;
    return worst;
  };
  const auto wall = [&policy](double ms) {
    return policy.zero_wall_times ? 0.0 : ms;
  };

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "minpower.flow.v1");
  w.field("library", library_name);
  w.field("num_threads", num_threads);
  w.field("elapsed_ms", wall(elapsed_ms));
  w.key("engine");
  w.begin_object();
  w.field("decomp_passes", counters.decomp_passes);
  w.field("activity_passes", counters.activity_passes);
  w.field("map_passes", counters.map_passes);
  w.end_object();
  w.key("tasks");
  w.begin_object();
  w.field("ok", ok);
  w.field("degraded", degraded);
  w.field("failed", failed);
  w.end_object();
  if (policy.include_metrics) {
    w.key("metrics");
    metrics::write_metrics_json(w, metrics::Registry::global().snapshot());
  }
  w.key("circuits");
  w.begin_array();
  for (const std::vector<FlowResult>& methods : per_circuit) {
    w.begin_object();
    w.field("name", methods.empty() ? std::string() : methods.front().circuit);
    w.field("status", task_state_name(worst_of(methods)));
    w.key("methods");
    w.begin_array();
    for (const FlowResult& r : methods) write_flow_result_json(w, r, policy);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void write_flow_result_json(JsonWriter& w, const FlowResult& r,
                            const FlowJsonPolicy& policy) {
  const auto wall = [&policy](double ms) {
    return policy.zero_wall_times ? 0.0 : ms;
  };
  w.begin_object();
  w.field("method", method_name(r.method));
  w.field("area", r.area);
  w.field("delay_ns", r.delay);
  w.field("power_uw", r.power_uw);
  w.field("gates", r.gates);
  w.field("tree_activity", r.tree_activity);
  w.field("nand_depth", r.nand_depth);
  w.field("nand_nodes", r.nand_nodes);
  w.field("redecomposed", r.redecomposed);
  w.key("status");
  w.begin_object();
  w.field("state", task_state_name(r.status.state));
  w.field("reason", r.status.reason);
  w.field("retries", r.status.retries);
  w.key("fallbacks");
  w.begin_array();
  for (const std::string& f : r.status.fallbacks) w.value(f);
  w.end_array();
  w.end_object();
  w.key("phases");
  w.begin_object();
  w.field("decomp_ms", wall(r.phases.decomp_ms));
  w.field("activity_ms", wall(r.phases.activity_ms));
  w.field("map_ms", wall(r.phases.map_ms));
  w.field("eval_ms", wall(r.phases.eval_ms));
  w.field("bdd_nodes", r.phases.bdd_nodes);
  w.field("matches", r.phases.matches);
  w.field("curve_points", r.phases.curve_points);
  w.field("redecomp_iterations", r.phases.redecomp_iterations);
  w.field("shared_decomp", r.phases.shared_decomp);
  w.field("shared_activity", r.phases.shared_activity);
  w.field("decomp_passes", r.phases.decomp_passes);
  w.field("activity_passes", r.phases.activity_passes);
  w.field("exact_fallbacks", r.phases.exact_fallbacks);
  w.field("activity_retries", r.phases.activity_retries);
  w.end_object();
  w.end_object();
}

namespace {

bool cell_fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

const JsonValue* cell_member(const JsonValue& obj, const char* key,
                             JsonValue::Kind kind, std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != kind) {
    cell_fail(error, std::string("missing or mistyped field '") + key + "'");
    return nullptr;
  }
  return v;
}

bool cell_number(const JsonValue& obj, const char* key, double* out,
                 std::string* error) {
  const JsonValue* v =
      cell_member(obj, key, JsonValue::Kind::kNumber, error);
  if (v == nullptr) return false;
  *out = v->number;
  return true;
}

bool cell_int(const JsonValue& obj, const char* key, int* out,
              std::string* error) {
  double d = 0.0;
  if (!cell_number(obj, key, &d, error)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool cell_size(const JsonValue& obj, const char* key, std::size_t* out,
               std::string* error) {
  double d = 0.0;
  if (!cell_number(obj, key, &d, error)) return false;
  *out = static_cast<std::size_t>(d);
  return true;
}

bool cell_bool(const JsonValue& obj, const char* key, bool* out,
               std::string* error) {
  const JsonValue* v = cell_member(obj, key, JsonValue::Kind::kBool, error);
  if (v == nullptr) return false;
  *out = v->boolean;
  return true;
}

}  // namespace

bool parse_flow_result_json(const JsonValue& v, FlowResult* out,
                            std::string* error) {
  *out = FlowResult{};
  if (v.kind != JsonValue::Kind::kObject)
    return cell_fail(error, "method cell is not an object");
  const JsonValue* method =
      cell_member(v, "method", JsonValue::Kind::kString, error);
  if (method == nullptr) return false;
  if (!method_from_name(method->string, &out->method))
    return cell_fail(error, "unknown method '" + method->string + "'");
  if (!cell_number(v, "area", &out->area, error) ||
      !cell_number(v, "delay_ns", &out->delay, error) ||
      !cell_number(v, "power_uw", &out->power_uw, error) ||
      !cell_size(v, "gates", &out->gates, error) ||
      !cell_number(v, "tree_activity", &out->tree_activity, error) ||
      !cell_int(v, "nand_depth", &out->nand_depth, error) ||
      !cell_size(v, "nand_nodes", &out->nand_nodes, error) ||
      !cell_int(v, "redecomposed", &out->redecomposed, error))
    return false;

  const JsonValue* status =
      cell_member(v, "status", JsonValue::Kind::kObject, error);
  if (status == nullptr) return false;
  const JsonValue* state =
      cell_member(*status, "state", JsonValue::Kind::kString, error);
  if (state == nullptr) return false;
  if (!task_state_from_name(state->string, &out->status.state))
    return cell_fail(error, "unknown task state '" + state->string + "'");
  const JsonValue* reason =
      cell_member(*status, "reason", JsonValue::Kind::kString, error);
  if (reason == nullptr) return false;
  out->status.reason = reason->string;
  if (!cell_int(*status, "retries", &out->status.retries, error))
    return false;
  const JsonValue* fallbacks =
      cell_member(*status, "fallbacks", JsonValue::Kind::kArray, error);
  if (fallbacks == nullptr) return false;
  for (const JsonValue& f : fallbacks->items) {
    if (f.kind != JsonValue::Kind::kString)
      return cell_fail(error, "non-string fallback entry");
    out->status.fallbacks.push_back(f.string);
  }

  const JsonValue* phases =
      cell_member(v, "phases", JsonValue::Kind::kObject, error);
  if (phases == nullptr) return false;
  PhaseStats& p = out->phases;
  return cell_number(*phases, "decomp_ms", &p.decomp_ms, error) &&
         cell_number(*phases, "activity_ms", &p.activity_ms, error) &&
         cell_number(*phases, "map_ms", &p.map_ms, error) &&
         cell_number(*phases, "eval_ms", &p.eval_ms, error) &&
         cell_size(*phases, "bdd_nodes", &p.bdd_nodes, error) &&
         cell_size(*phases, "matches", &p.matches, error) &&
         cell_size(*phases, "curve_points", &p.curve_points, error) &&
         cell_int(*phases, "redecomp_iterations", &p.redecomp_iterations,
                  error) &&
         cell_bool(*phases, "shared_decomp", &p.shared_decomp, error) &&
         cell_bool(*phases, "shared_activity", &p.shared_activity, error) &&
         cell_int(*phases, "decomp_passes", &p.decomp_passes, error) &&
         cell_int(*phases, "activity_passes", &p.activity_passes, error) &&
         cell_int(*phases, "exact_fallbacks", &p.exact_fallbacks, error) &&
         cell_int(*phases, "activity_retries", &p.activity_retries, error);
}

}  // namespace minpower
