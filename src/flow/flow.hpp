#pragma once
// End-to-end synthesis flows: the six method combinations of Tables 2 and 3.
//
//   Method I   : conventional decomposition + area-delay mapping
//   Method II  : MINPOWER decomposition     + area-delay mapping
//   Method III : BH-MINPOWER decomposition  + area-delay mapping
//   Method IV  : conventional decomposition + power-delay mapping
//   Method V   : MINPOWER decomposition     + power-delay mapping
//   Method VI  : BH-MINPOWER decomposition  + power-delay mapping
//
// Every method starts from the same technology-independent optimization
// (rugged-lite; the paper uses the SIS rugged script).
//
// Methods I/IV, II/V and III/VI operate on the *same* subject network (the
// pairs differ only in the mapping objective), so a full six-method run needs
// only three decompositions and three switching-activity passes. The
// FlowEngine (flow_engine.hpp) exploits that; `run_all_methods` routes
// through it.

#include <string>
#include <vector>

#include "decomp/network_decompose.hpp"
#include "library/library.hpp"
#include "map/mapper.hpp"
#include "netlist/network.hpp"
#include "power/report.hpp"
#include "util/budget.hpp"

namespace minpower {

enum class Method { kI, kII, kIII, kIV, kV, kVI };

const char* method_name(Method m);

/// Inverse of method_name ("I".."VI"); false when `name` is not a method.
bool method_from_name(const std::string& name, Method* out);

/// Outcome of one fault-isolated engine task.
///   ok       — completed on the primary path;
///   degraded — completed, but on a fallback (MC activities, heuristic
///              ladder instead of the exact bounded-height search);
///   failed   — no result; `reason` explains, sibling tasks are unaffected.
enum class TaskState { kOk, kDegraded, kFailed };

const char* task_state_name(TaskState s);

/// Inverse of task_state_name ("ok"/"degraded"/"failed"); false otherwise.
bool task_state_from_name(const std::string& name, TaskState* out);

struct TaskStatus {
  TaskState state = TaskState::kOk;
  std::string reason;                  // empty when ok
  int retries = 0;                     // budget-shrunk re-attempts
  std::vector<std::string> fallbacks;  // e.g. "mc-activity", "greedy-ladder"
};

struct FlowOptions {
  CircuitStyle style = CircuitStyle::kStatic;
  double vdd = 5.0;
  double t_cycle = 50e-9;       // 20 MHz
  double po_load = 2.0;
  double epsilon_t = 0.02;
  double epsilon_c = 1e-3;      // curve ε-pruning, cost axis
  /// Hard cap on per-node mapper curve width (0 = unlimited, the exact
  /// paper algorithm). Scale sweeps set this: without it curve width grows
  /// with subject depth and mapping goes quadratic on chain-like circuits.
  std::size_t max_curve_points = 0;
  RequiredTimePolicy policy = RequiredTimePolicy::kRelaxedMinDelay;
  double relax_factor = 1.35;
  DagHeuristic dag = DagHeuristic::kFanoutDivision;

  /// Per-PI 1-probabilities (Network::pis() order); empty → 0.5 everywhere.
  /// Reaches decomposition, mapping, and power reporting.
  std::vector<double> pi_prob1;

  /// Per-PI arrival times in ns (Network::pis() order); empty → all zero.
  /// Reaches the bounded-height decomposition timing and the mapper's
  /// required-time computation.
  std::vector<double> pi_arrival;

  /// Worker threads for `run_all_methods` (0 → hardware concurrency).
  /// Results are deterministic and independent of the thread count.
  unsigned num_threads = 1;

  /// Resource budget applied to every engine task. A task that exhausts its
  /// budget degrades or fails in isolation (see TaskStatus); it never kills
  /// the run.
  std::size_t bdd_node_limit = kDefaultBddNodeLimit;
  double task_deadline_ms = 0.0;   // wall-clock per task; 0 = none
  std::size_t task_step_limit = 0; // budget checkpoints per task; 0 = none
};

/// Per-phase instrumentation of one method run (wall times are the only
/// fields that legitimately differ between repeated identical runs).
struct PhaseStats {
  double decomp_ms = 0.0;    // technology decomposition wall time
  double activity_ms = 0.0;  // BDD switching-activity pass wall time
  double map_ms = 0.0;       // curve construction + gate selection wall time
  double eval_ms = 0.0;      // mapped-netlist evaluation wall time

  std::size_t bdd_nodes = 0;     // BDD unique-table size, activity pass
  std::size_t matches = 0;       // matches enumerated during mapping
  std::size_t curve_points = 0;  // post-pruning curve points
  int redecomp_iterations = 0;   // bounded-height refinement loop count

  /// True when the decomposition / activity vector was computed once and
  /// shared with the sibling method (I↔IV, II↔V, III↔VI) by the FlowEngine.
  bool shared_decomp = false;
  bool shared_activity = false;

  /// Pass totals of the producing run (an engine run over one circuit does
  /// 3 of each for 6 methods; a standalone `run_method` does 1 of each).
  int decomp_passes = 0;
  int activity_passes = 0;

  /// Degradation instrumentation: exact bounded-height searches that overran
  /// their step cap and fell back to the heuristic ladder, and halved-cap
  /// activity-pass retries taken before the result (or MC fallback) landed.
  int exact_fallbacks = 0;
  int activity_retries = 0;
};

struct FlowResult {
  std::string circuit;
  Method method = Method::kI;
  double area = 0.0;
  double delay = 0.0;        // ns
  double power_uw = 0.0;
  std::size_t gates = 0;
  // Decomposition-phase diagnostics:
  double tree_activity = 0.0;   // Σ internal switching activity of Γ'
  int nand_depth = 0;           // unit-delay depth of Γ'
  std::size_t nand_nodes = 0;
  int redecomposed = 0;         // bounded-height loop iterations
  // Phase instrumentation (FlowEngine / run_method fill this in).
  PhaseStats phases;
  // Fault-isolation outcome of the task(s) that produced this result.
  TaskStatus status;
};

/// Apply rugged-lite preconditioning in place (every method's common start).
void prepare_network(Network& net);

/// Decomposition configuration of a method (shared by its sibling).
NetworkDecompOptions decomp_options_for(Method method,
                                        const FlowOptions& options);

/// Mapping configuration of a method. `activities` is left empty; callers
/// that share one activity pass across methods fill it in.
MapOptions map_options_for(Method method, const FlowOptions& options);

/// Run one method on an already-prepared network.
FlowResult run_method(const Network& prepared, Method method,
                      const Library& lib, const FlowOptions& options = {});

/// Convenience: run all six methods; results indexed by Method order.
/// Internally uses the shared-decomposition FlowEngine: 3 decompositions and
/// 3 activity passes total, parallel across `options.num_threads` workers.
std::vector<FlowResult> run_all_methods(const Network& prepared,
                                        const Library& lib,
                                        const FlowOptions& options = {});

}  // namespace minpower
