#pragma once
// End-to-end synthesis flows: the six method combinations of Tables 2 and 3.
//
//   Method I   : conventional decomposition + area-delay mapping
//   Method II  : MINPOWER decomposition     + area-delay mapping
//   Method III : BH-MINPOWER decomposition  + area-delay mapping
//   Method IV  : conventional decomposition + power-delay mapping
//   Method V   : MINPOWER decomposition     + power-delay mapping
//   Method VI  : BH-MINPOWER decomposition  + power-delay mapping
//
// Every method starts from the same technology-independent optimization
// (rugged-lite; the paper uses the SIS rugged script).

#include <string>

#include "decomp/network_decompose.hpp"
#include "library/library.hpp"
#include "map/mapper.hpp"
#include "netlist/network.hpp"
#include "power/report.hpp"

namespace minpower {

enum class Method { kI, kII, kIII, kIV, kV, kVI };

const char* method_name(Method m);

struct FlowOptions {
  CircuitStyle style = CircuitStyle::kStatic;
  double vdd = 5.0;
  double t_cycle = 50e-9;       // 20 MHz
  double po_load = 2.0;
  double epsilon_t = 0.02;
  RequiredTimePolicy policy = RequiredTimePolicy::kRelaxedMinDelay;
  double relax_factor = 1.35;
  DagHeuristic dag = DagHeuristic::kFanoutDivision;
};

struct FlowResult {
  std::string circuit;
  Method method = Method::kI;
  double area = 0.0;
  double delay = 0.0;        // ns
  double power_uw = 0.0;
  std::size_t gates = 0;
  // Decomposition-phase diagnostics:
  double tree_activity = 0.0;   // Σ internal switching activity of Γ'
  int nand_depth = 0;           // unit-delay depth of Γ'
  std::size_t nand_nodes = 0;
  int redecomposed = 0;         // bounded-height loop iterations
};

/// Apply rugged-lite preconditioning in place (every method's common start).
void prepare_network(Network& net);

/// Run one method on an already-prepared network.
FlowResult run_method(const Network& prepared, Method method,
                      const Library& lib, const FlowOptions& options = {});

/// Convenience: run all six methods; results indexed by Method order.
std::vector<FlowResult> run_all_methods(const Network& prepared,
                                        const Library& lib,
                                        const FlowOptions& options = {});

}  // namespace minpower
