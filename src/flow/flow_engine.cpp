#include "flow/flow_engine.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "decomp/package_merge.hpp"
#include "prob/probability.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"
#include "util/json_writer.hpp"

namespace minpower {

namespace {

constexpr Method kMethods[6] = {Method::kI,  Method::kII, Method::kIII,
                                Method::kIV, Method::kV,  Method::kVI};

/// Decomposition group of a method: I/IV → 0 (balanced), II/V → 1
/// (MINPOWER), III/VI → 2 (BH-MINPOWER).
std::size_t group_of(Method m) {
  switch (m) {
    case Method::kI:
    case Method::kIV:
      return 0;
    case Method::kII:
    case Method::kV:
      return 1;
    case Method::kIII:
    case Method::kVI:
      return 2;
  }
  return 0;
}

/// A representative method per group, used to derive the (identical)
/// decomposition options the pair shares.
constexpr Method kGroupMethod[3] = {Method::kI, Method::kII, Method::kIII};

/// One decomposed subject network shared by a method pair.
struct DecompGroup {
  NetworkDecompResult nd;
  std::vector<double> activities;
  ActivityPassStats astats;
  double decomp_ms = 0.0;
  double activity_ms = 0.0;
  TaskStatus status;
  int exact_fallbacks = 0;
};

/// Per-task budget: FlowOptions limits + fault injections armed against
/// this task's deterministic ordinal.
Budget make_budget(const FlowOptions& flow,
                   const std::vector<FaultInjection>& injections, long ordinal,
                   std::string label) {
  Budget b;
  b.bdd_node_limit = flow.bdd_node_limit;
  if (flow.task_deadline_ms > 0.0)
    b.deadline = Budget::Clock::now() +
                 std::chrono::duration_cast<Budget::Clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         flow.task_deadline_ms));
  b.step_limit = flow.task_step_limit;
  b.ordinal = ordinal;
  b.label = std::move(label);
  b.arm(injections);
  return b;
}

/// Whole lines only, under one mutex: concurrent tasks never interleave
/// partial status output.
void emit_status_line(const std::string& line) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fputs(line.c_str(), stderr);
}

/// Scope guard that reports a task's final status once its slot has been
/// written — including the early-return failure paths.
struct StatusLine {
  bool enabled;
  const char* stage;
  const std::string& label;
  const TaskStatus& status;
  ~StatusLine() {
    if (!enabled) return;
    std::string line = "[flow] ";
    line += stage;
    line += ' ';
    line += label;
    line += ' ';
    line += task_state_name(status.state);
    if (status.retries > 0) line += " retries=" + std::to_string(status.retries);
    for (const std::string& f : status.fallbacks) line += " fallback=" + f;
    if (!status.reason.empty()) line += " (" + status.reason + ")";
    line += '\n';
    emit_status_line(line);
  }
};

std::uint64_t us_since(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Run fn(0..n-1) across `threads` workers. Tasks are claimed from an
/// atomic counter; each task writes only its own output slot, so results
/// are independent of the interleaving.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& fn) {
  if (threads > n) threads = static_cast<unsigned>(n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

}  // namespace

FlowEngine::FlowEngine(const Library& lib, EngineOptions options)
    : lib_(lib), options_(std::move(options)) {}

unsigned FlowEngine::effective_threads() const {
  if (options_.num_threads != 0) return options_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

std::vector<FlowResult> FlowEngine::run_circuit(const Network& prepared) {
  const Network* one[] = {&prepared};
  std::vector<std::vector<FlowResult>> rs =
      run_suite(std::vector<const Network*>(one, one + 1));
  return std::move(rs.front());
}

std::vector<std::vector<FlowResult>> FlowEngine::run_suite(
    const std::vector<const Network*>& circuits) {
  const std::size_t n = circuits.size();
  const unsigned threads = effective_threads();
  const FlowOptions& flow = options_.flow;

  // Armed faults: explicit options first, then the environment hook.
  std::vector<FaultInjection> injections = options_.injections;
  for (FaultInjection& f : fault_injections_from_env())
    injections.push_back(std::move(f));

  // ---- stage 1: one decomposition + one activity pass per distinct
  // subject network (3 per circuit). Each task is fault-isolated: a blown
  // budget degrades (halved-cap retry, then Monte-Carlo activities) or
  // fails this group only. -------------------------------------------------
  const auto stage1_t0 = std::chrono::steady_clock::now();
  std::vector<DecompGroup> groups(n * 3);
  parallel_for(n * 3, threads, [&](std::size_t t) {
    const auto task_start = std::chrono::steady_clock::now();
    const Network& net = *circuits[t / 3];
    DecompGroup& g = groups[t];
    const long ordinal = static_cast<long>(t);
    const std::string label =
        net.name() + "/decomp[" + std::to_string(t % 3) + "]";
    trace::Span task_span("stage1", "engine");
    task_span.arg("task", label);
    task_span.arg("circuit", net.name());
    task_span.arg("group", static_cast<unsigned long long>(t % 3));
    task_span.arg("queue_wait_us", us_since(stage1_t0, task_start));
    const StatusLine report{options_.verbose, "stage1", label, g.status};
    const NetworkDecompOptions d =
        decomp_options_for(kGroupMethod[t % 3], flow);

    auto note_fallback = [&g](const char* name) {
      g.status.state = TaskState::kDegraded;
      for (const std::string& f : g.status.fallbacks)
        if (f == name) return;
      g.status.fallbacks.push_back(name);
    };

    // Decomposition with its own ladder: the exact probability pass inside
    // decompose_network builds BDDs too, so a blowup here retries at half
    // the node cap and then re-decomposes over Monte-Carlo probabilities
    // (which skips the BDD pass entirely).
    reset_bounded_exact_fallbacks();
    auto decomp_pass = [&](std::size_t node_cap,
                           const std::vector<double>* node_prob) {
      Budget budget = make_budget(flow, injections, ordinal, label);
      budget.bdd_node_limit = node_cap;
      BudgetScope scope(budget);
      NetworkDecompOptions dd = d;
      if (node_prob != nullptr) dd.node_prob = *node_prob;
      const auto t0 = std::chrono::steady_clock::now();
      g.nd = decompose_network(net, dd);
      g.decomp_ms += ms_since(t0);
    };
    try {
      try {
        decomp_pass(flow.bdd_node_limit, nullptr);
      } catch (const ResourceExhausted& e) {
        if (e.site() == "deadline") throw;
        g.status.retries += 1;
        decomp_pass(std::max<std::size_t>(flow.bdd_node_limit / 2, 2),
                    nullptr);
      }
    } catch (const ResourceExhausted& e) {
      if (e.site() == "deadline" || e.site() == "decomp") {
        g.status.state = TaskState::kFailed;
        g.status.reason = e.what();
        return;
      }
      // MC signal probabilities: activity under kDynamicP is exactly P(=1).
      try {
        const std::vector<double> mc_prob = monte_carlo_activities(
            net, CircuitStyle::kDynamicP, flow.pi_prob1);
        decomp_pass(flow.bdd_node_limit, &mc_prob);
      } catch (const std::exception& e2) {
        g.status.state = TaskState::kFailed;
        g.status.reason = e2.what();
        return;
      }
      if (g.status.reason.empty()) g.status.reason = e.what();
      note_fallback("mc-activity");
    } catch (const std::exception& e) {
      g.status.state = TaskState::kFailed;
      g.status.reason = e.what();
      return;
    }
    g.exact_fallbacks = static_cast<int>(bounded_exact_fallbacks());
    if (g.exact_fallbacks > 0) note_fallback("greedy-ladder");

    // Activity pass with the degradation ladder: full budget, one retry at
    // half the BDD node cap, then the Monte-Carlo estimator. Deadline and
    // unexpected errors fail the group instead of degrading.
    auto exact_pass = [&](std::size_t node_cap) {
      Budget budget = make_budget(flow, injections, ordinal,
                                  net.name() + "/activity[" +
                                      std::to_string(t % 3) + "]");
      budget.bdd_node_limit = node_cap;
      BudgetScope scope(budget);
      const auto t0 = std::chrono::steady_clock::now();
      g.activities = switching_activities(g.nd.network, flow.style,
                                          flow.pi_prob1, &g.astats);
      g.activity_ms += ms_since(t0);
    };
    try {
      try {
        exact_pass(flow.bdd_node_limit);
      } catch (const ResourceExhausted& e) {
        if (e.site() == "deadline") throw;
        g.status.retries += 1;
        exact_pass(std::max<std::size_t>(flow.bdd_node_limit / 2, 2));
      }
    } catch (const ResourceExhausted& e) {
      if (e.site() == "deadline") {
        g.status.state = TaskState::kFailed;
        g.status.reason = e.what();
        return;
      }
      // Fall back to Monte-Carlo activities: deterministic, BDD-free.
      const auto t0 = std::chrono::steady_clock::now();
      g.activities =
          monte_carlo_activities(g.nd.network, flow.style, flow.pi_prob1);
      g.activity_ms += ms_since(t0);
      if (g.status.reason.empty()) g.status.reason = e.what();
      note_fallback("mc-activity");
    } catch (const std::exception& e) {
      g.status.state = TaskState::kFailed;
      g.status.reason = e.what();
    }
  });
  counters_.decomp_passes += static_cast<int>(n) * 3;
  counters_.activity_passes += static_cast<int>(n) * 3;

  // ---- stage 2: map + evaluate each (circuit × method) over the shared
  // subject. A method whose group failed inherits that failure; its own
  // budget covers mapping and evaluation. ----------------------------------
  const auto stage2_t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<FlowResult>> out(n, std::vector<FlowResult>(6));
  parallel_for(n * 6, threads, [&](std::size_t t) {
    const auto task_start = std::chrono::steady_clock::now();
    const std::size_t ci = t / 6;
    const Method method = kMethods[t % 6];
    const Network& prepared = *circuits[ci];
    const DecompGroup& g = groups[ci * 3 + group_of(method)];
    const long ordinal = static_cast<long>(3 * n + t);
    const std::string label =
        prepared.name() + "/map[" + method_name(method) + "]";
    trace::Span task_span("stage2", "engine");
    task_span.arg("task", label);
    task_span.arg("circuit", prepared.name());
    task_span.arg("method", method_name(method));
    task_span.arg("queue_wait_us", us_since(stage2_t0, task_start));
    // References the result slot, not the local: every exit path moves the
    // local into the slot before the guard's destructor runs.
    const StatusLine report{options_.verbose, "stage2", label,
                            out[ci][t % 6].status};

    FlowResult r;
    r.circuit = prepared.name();
    r.method = method;
    r.status = g.status;  // inherit group degradation / failure context
    r.phases.decomp_ms = g.decomp_ms;
    r.phases.activity_ms = g.activity_ms;
    r.phases.bdd_nodes = g.astats.bdd_nodes;
    r.phases.shared_decomp = true;
    r.phases.shared_activity = true;
    r.phases.decomp_passes = 3;
    r.phases.activity_passes = 3;
    r.phases.exact_fallbacks = g.exact_fallbacks;
    r.phases.activity_retries = g.status.retries;

    if (g.status.state == TaskState::kFailed) {
      r.status.reason = "decomposition/activity failed: " + g.status.reason;
      out[ci][t % 6] = std::move(r);
      return;
    }
    r.tree_activity = g.nd.tree_activity;
    r.nand_depth = g.nd.unit_depth;
    r.nand_nodes = g.nd.network.num_internal();
    r.redecomposed = g.nd.redecomposed_nodes;
    r.phases.redecomp_iterations = g.nd.redecomposed_nodes;

    try {
      Budget budget = make_budget(flow, injections, ordinal, label);
      BudgetScope scope(budget);

      MapOptions m = map_options_for(method, flow);
      m.activities = g.activities;
      auto t0 = std::chrono::steady_clock::now();
      const MapResult mapped = map_network(g.nd.network, lib_, m);
      r.phases.map_ms = ms_since(t0);
      r.phases.matches = mapped.total_matches;
      r.phases.curve_points = mapped.total_curve_points;

      t0 = std::chrono::steady_clock::now();
      const MappedReport rep =
          evaluate_mapped(mapped.mapped, PowerParams::from(m));
      r.phases.eval_ms = ms_since(t0);
      r.area = rep.area;
      r.delay = rep.delay;
      r.power_uw = rep.power_uw;
      r.gates = rep.num_gates;
    } catch (const std::exception& e) {
      r.status.state = TaskState::kFailed;
      r.status.reason = e.what();
      r.area = r.delay = r.power_uw = 0.0;
      r.gates = 0;
    }
    out[ci][t % 6] = std::move(r);
  });
  counters_.map_passes += static_cast<int>(n) * 6;

  // Task-outcome metrics over all 9n tasks (3n stage-1 groups + 6n stage-2
  // results). Retries/fallbacks originate in stage 1 and are counted there
  // only (stage-2 results inherit the group status verbatim).
  {
    std::uint64_t ok = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t exact_fb = 0;
    auto bump = [&](TaskState s) {
      switch (s) {
        case TaskState::kOk: ++ok; break;
        case TaskState::kDegraded: ++degraded; break;
        case TaskState::kFailed: ++failed; break;
      }
    };
    for (const DecompGroup& g : groups) {
      bump(g.status.state);
      retries += static_cast<std::uint64_t>(g.status.retries);
      fallbacks += g.status.fallbacks.size();
      exact_fb += static_cast<std::uint64_t>(g.exact_fallbacks);
    }
    for (const std::vector<FlowResult>& methods : out)
      for (const FlowResult& r : methods) bump(r.status.state);
    metrics::counter("engine.tasks_ok").add(ok);
    metrics::counter("engine.tasks_degraded").add(degraded);
    metrics::counter("engine.tasks_failed").add(failed);
    metrics::counter("engine.retries").add(retries);
    metrics::counter("engine.fallbacks").add(fallbacks);
    metrics::counter("engine.exact_fallbacks").add(exact_fb);
  }
  return out;
}

void write_flow_json(std::ostream& os,
                     const std::vector<std::vector<FlowResult>>& per_circuit,
                     const EngineCounters& counters, unsigned num_threads,
                     double elapsed_ms, const std::string& library_name) {
  // Task rollup: every (circuit × method) result carries the status of the
  // tasks that produced it.
  int ok = 0;
  int degraded = 0;
  int failed = 0;
  for (const std::vector<FlowResult>& methods : per_circuit)
    for (const FlowResult& r : methods) {
      switch (r.status.state) {
        case TaskState::kOk: ++ok; break;
        case TaskState::kDegraded: ++degraded; break;
        case TaskState::kFailed: ++failed; break;
      }
    }
  auto worst_of = [](const std::vector<FlowResult>& methods) {
    TaskState worst = TaskState::kOk;
    for (const FlowResult& r : methods)
      if (static_cast<int>(r.status.state) > static_cast<int>(worst))
        worst = r.status.state;
    return worst;
  };

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "minpower.flow.v1");
  w.field("library", library_name);
  w.field("num_threads", num_threads);
  w.field("elapsed_ms", elapsed_ms);
  w.key("engine");
  w.begin_object();
  w.field("decomp_passes", counters.decomp_passes);
  w.field("activity_passes", counters.activity_passes);
  w.field("map_passes", counters.map_passes);
  w.end_object();
  w.key("tasks");
  w.begin_object();
  w.field("ok", ok);
  w.field("degraded", degraded);
  w.field("failed", failed);
  w.end_object();
  w.key("metrics");
  metrics::write_metrics_json(w, metrics::Registry::global().snapshot());
  w.key("circuits");
  w.begin_array();
  for (const std::vector<FlowResult>& methods : per_circuit) {
    w.begin_object();
    w.field("name", methods.empty() ? std::string() : methods.front().circuit);
    w.field("status", task_state_name(worst_of(methods)));
    w.key("methods");
    w.begin_array();
    for (const FlowResult& r : methods) {
      w.begin_object();
      w.field("method", method_name(r.method));
      w.field("area", r.area);
      w.field("delay_ns", r.delay);
      w.field("power_uw", r.power_uw);
      w.field("gates", r.gates);
      w.field("tree_activity", r.tree_activity);
      w.field("nand_depth", r.nand_depth);
      w.field("nand_nodes", r.nand_nodes);
      w.field("redecomposed", r.redecomposed);
      w.key("status");
      w.begin_object();
      w.field("state", task_state_name(r.status.state));
      w.field("reason", r.status.reason);
      w.field("retries", r.status.retries);
      w.key("fallbacks");
      w.begin_array();
      for (const std::string& f : r.status.fallbacks) w.value(f);
      w.end_array();
      w.end_object();
      w.key("phases");
      w.begin_object();
      w.field("decomp_ms", r.phases.decomp_ms);
      w.field("activity_ms", r.phases.activity_ms);
      w.field("map_ms", r.phases.map_ms);
      w.field("eval_ms", r.phases.eval_ms);
      w.field("bdd_nodes", r.phases.bdd_nodes);
      w.field("matches", r.phases.matches);
      w.field("curve_points", r.phases.curve_points);
      w.field("redecomp_iterations", r.phases.redecomp_iterations);
      w.field("shared_decomp", r.phases.shared_decomp);
      w.field("shared_activity", r.phases.shared_activity);
      w.field("decomp_passes", r.phases.decomp_passes);
      w.field("activity_passes", r.phases.activity_passes);
      w.field("exact_fallbacks", r.phases.exact_fallbacks);
      w.field("activity_retries", r.phases.activity_retries);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace minpower
