#pragma once
// FlowEngine: the shared-decomposition, multi-threaded runner behind the
// six-method evaluation of Tables 2–3 — the one-shot face of the
// session/cache layer in flow/session.hpp.
//
// The method pairs I/IV, II/V and III/VI differ only in the mapping
// objective — they operate on the *same* decomposed subject network. The
// engine therefore splits a run into two fan-out stages:
//
//   stage 1  (circuit × decomposition group, 3 per circuit):
//            decompose once, run one BDD switching-activity pass over the
//            resulting subject network;
//   stage 2  (circuit × method, 6 per circuit):
//            map the shared subject with the method's objective and
//            evaluate the mapped netlist, reusing the shared activities.
//
// Threading model: independent tasks are executed on a std::thread worker
// pool (work-stealing via an atomic task index). Every task that needs BDDs
// builds its own BddManager internally — the manager is not thread-safe and
// is never shared across threads. All shared inputs (Network, Library,
// options) are read-only during a run. Results are written to pre-sized
// slots indexed by (circuit, method), so output ordering — and every
// computed value — is deterministic and independent of the thread count.
//
// Fault isolation: every task runs under its own Budget (FlowOptions carries
// the per-task limits). A task that exhausts its budget degrades (MC
// activity fallback, heuristic-ladder decomposition) or fails, recording a
// TaskStatus into its pre-sized result slot; sibling tasks and the pool are
// untouched and the run completes with partial results.
//
// Deterministic fault injection matches tasks by *ordinal* — the task's slot
// index, not a temporal counter — so an injected fault hits the same task at
// any thread count:
//   stage-1 task (decomp + activity):  ordinal = circuit*3 + group
//   stage-2 task (map + evaluate):     ordinal = 3*num_circuits
//                                                + circuit*6 + method_index
// (a single-circuit run thus has stage-1 ordinals 0–2, stage-2 3–8).
// A run with armed faults disables cross-run caching and intra-batch work
// sharing so every ordinal above stays a live task.
//
// FlowEngine is a FlowSession with cross-run caching disabled (the
// SessionOptions default): each run_suite call computes every distinct
// (circuit × group) and (circuit × method) unit afresh. `minpower serve`
// constructs the session with caching enabled instead.

#include "flow/session.hpp"

namespace minpower {

using FlowEngine = FlowSession;

}  // namespace minpower
