#pragma once
// FlowEngine: the shared-decomposition, multi-threaded runner behind the
// six-method evaluation of Tables 2–3.
//
// The method pairs I/IV, II/V and III/VI differ only in the mapping
// objective — they operate on the *same* decomposed subject network. The
// engine therefore splits a run into two fan-out stages:
//
//   stage 1  (circuit × decomposition group, 3 per circuit):
//            decompose once, run one BDD switching-activity pass over the
//            resulting subject network;
//   stage 2  (circuit × method, 6 per circuit):
//            map the shared subject with the method's objective and
//            evaluate the mapped netlist, reusing the shared activities.
//
// Threading model: independent tasks are executed on a std::thread worker
// pool (work-stealing via an atomic task index). Every task that needs BDDs
// builds its own BddManager internally — the manager is not thread-safe and
// is never shared across threads. All shared inputs (Network, Library,
// options) are read-only during a run. Results are written to pre-sized
// slots indexed by (circuit, method), so output ordering — and every
// computed value — is deterministic and independent of the thread count.
//
// Fault isolation: every task runs under its own Budget (FlowOptions carries
// the per-task limits). A task that exhausts its budget degrades (MC
// activity fallback, heuristic-ladder decomposition) or fails, recording a
// TaskStatus into its pre-sized result slot; sibling tasks and the pool are
// untouched and the run completes with partial results.
//
// Deterministic fault injection matches tasks by *ordinal* — the task's slot
// index, not a temporal counter — so an injected fault hits the same task at
// any thread count:
//   stage-1 task (decomp + activity):  ordinal = circuit*3 + group
//   stage-2 task (map + evaluate):     ordinal = 3*num_circuits
//                                                + circuit*6 + method_index
// (a single-circuit run thus has stage-1 ordinals 0–2, stage-2 3–8).

#include <iosfwd>
#include <vector>

#include "flow/flow.hpp"
#include "util/budget.hpp"

namespace minpower {

struct EngineOptions {
  FlowOptions flow;
  /// Worker threads (0 → hardware concurrency). 1 runs inline.
  unsigned num_threads = 1;
  /// Armed faults, merged with MINPOWER_INJECT_FAULT at each run_suite
  /// call (see the ordinal scheme above).
  std::vector<FaultInjection> injections;
  /// Emit one live stderr status line per finished task. Lines are built
  /// whole and written under a mutex, so threads never interleave output.
  bool verbose = false;
};

/// Cumulative pass counts over the engine's lifetime (across run_* calls).
struct EngineCounters {
  int decomp_passes = 0;    // decompose_network invocations
  int activity_passes = 0;  // switching_activities invocations
  int map_passes = 0;       // map_network invocations
};

class FlowEngine {
 public:
  explicit FlowEngine(const Library& lib, EngineOptions options = {});

  /// All six methods of one prepared circuit, in Method order.
  /// Performs exactly 3 decompositions and 3 activity passes.
  std::vector<FlowResult> run_circuit(const Network& prepared);

  /// Fan out (circuit × method) over the pool; result [i] holds circuit i's
  /// six methods in Method order. 3·n decompositions, 3·n activity passes.
  std::vector<std::vector<FlowResult>> run_suite(
      const std::vector<const Network*>& circuits);

  const EngineCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = EngineCounters{}; }

  /// The thread count a run will actually use (resolves 0).
  unsigned effective_threads() const;

 private:
  const Library& lib_;
  EngineOptions options_;
  EngineCounters counters_;
};

/// Serialize per-circuit six-method results (plus engine pass counters and
/// a `metrics` block snapshotting the global metrics registry) as the
/// machine-readable flow-bench schema `minpower.flow.v1` — see
/// DESIGN.md §"Flow engine" for the field list.
void write_flow_json(std::ostream& os,
                     const std::vector<std::vector<FlowResult>>& per_circuit,
                     const EngineCounters& counters, unsigned num_threads,
                     double elapsed_ms, const std::string& library_name);

}  // namespace minpower
