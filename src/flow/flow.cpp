#include "flow/flow.hpp"

#include <chrono>

#include "flow/flow_engine.hpp"
#include "opt/optimize.hpp"

namespace minpower {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kI:
      return "I";
    case Method::kII:
      return "II";
    case Method::kIII:
      return "III";
    case Method::kIV:
      return "IV";
    case Method::kV:
      return "V";
    case Method::kVI:
      return "VI";
  }
  return "?";
}

bool method_from_name(const std::string& name, Method* out) {
  for (const Method m : {Method::kI, Method::kII, Method::kIII, Method::kIV,
                         Method::kV, Method::kVI}) {
    if (name == method_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const char* task_state_name(TaskState s) {
  switch (s) {
    case TaskState::kOk:
      return "ok";
    case TaskState::kDegraded:
      return "degraded";
    case TaskState::kFailed:
      return "failed";
  }
  return "?";
}

bool task_state_from_name(const std::string& name, TaskState* out) {
  for (const TaskState s :
       {TaskState::kOk, TaskState::kDegraded, TaskState::kFailed}) {
    if (name == task_state_name(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void prepare_network(Network& net) { rugged_lite(net); }

NetworkDecompOptions decomp_options_for(Method method,
                                        const FlowOptions& options) {
  NetworkDecompOptions d;
  d.style = options.style;
  d.pi_prob1 = options.pi_prob1;
  d.pi_arrival = options.pi_arrival;
  switch (method) {
    case Method::kI:
    case Method::kIV:
      d.algorithm = DecompAlgorithm::kBalanced;
      break;
    case Method::kII:
    case Method::kV:
      d.algorithm = DecompAlgorithm::kMinPower;
      break;
    case Method::kIII:
    case Method::kVI:
      d.algorithm = DecompAlgorithm::kMinPower;
      d.bounded_height = true;
      break;
  }
  return d;
}

MapOptions map_options_for(Method method, const FlowOptions& options) {
  MapOptions m;
  m.objective = (method == Method::kI || method == Method::kII ||
                 method == Method::kIII)
                    ? MapObjective::kArea
                    : MapObjective::kPower;
  m.dag = options.dag;
  m.style = options.style;
  m.vdd = options.vdd;
  m.t_cycle = options.t_cycle;
  m.po_load = options.po_load;
  m.epsilon_t = options.epsilon_t;
  m.epsilon_c = options.epsilon_c;
  m.max_curve_points = options.max_curve_points;
  m.policy = options.policy;
  m.relax_factor = options.relax_factor;
  m.pi_prob1 = options.pi_prob1;
  m.pi_arrival = options.pi_arrival;
  return m;
}

FlowResult run_method(const Network& prepared, Method method,
                      const Library& lib, const FlowOptions& options) {
  FlowResult r;
  r.circuit = prepared.name();
  r.method = method;

  const NetworkDecompOptions d = decomp_options_for(method, options);
  auto t0 = std::chrono::steady_clock::now();
  const NetworkDecompResult nd = decompose_network(prepared, d);
  r.phases.decomp_ms = ms_since(t0);
  r.tree_activity = nd.tree_activity;
  r.nand_depth = nd.unit_depth;
  r.nand_nodes = nd.network.num_internal();
  r.redecomposed = nd.redecomposed_nodes;
  r.phases.redecomp_iterations = nd.redecomposed_nodes;
  r.phases.decomp_passes = 1;

  MapOptions m = map_options_for(method, options);
  // One BDD pass over the subject serves both mapping and scoring.
  ActivityPassStats astats;
  t0 = std::chrono::steady_clock::now();
  m.activities = switching_activities(nd.network, options.style,
                                      options.pi_prob1, &astats);
  r.phases.activity_ms = ms_since(t0);
  r.phases.bdd_nodes = astats.bdd_nodes;
  r.phases.activity_passes = 1;

  t0 = std::chrono::steady_clock::now();
  const MapResult mapped = map_network(nd.network, lib, m);
  r.phases.map_ms = ms_since(t0);
  r.phases.matches = mapped.total_matches;
  r.phases.curve_points = mapped.total_curve_points;

  t0 = std::chrono::steady_clock::now();
  const MappedReport rep =
      evaluate_mapped(mapped.mapped, PowerParams::from(m));
  r.phases.eval_ms = ms_since(t0);
  r.area = rep.area;
  r.delay = rep.delay;
  r.power_uw = rep.power_uw;
  r.gates = rep.num_gates;
  return r;
}

std::vector<FlowResult> run_all_methods(const Network& prepared,
                                        const Library& lib,
                                        const FlowOptions& options) {
  EngineOptions eo;
  eo.flow = options;
  eo.num_threads = options.num_threads;
  FlowEngine engine(lib, eo);
  return engine.run_circuit(prepared);
}

}  // namespace minpower
