#include "flow/flow.hpp"

#include "opt/optimize.hpp"

namespace minpower {

const char* method_name(Method m) {
  switch (m) {
    case Method::kI:
      return "I";
    case Method::kII:
      return "II";
    case Method::kIII:
      return "III";
    case Method::kIV:
      return "IV";
    case Method::kV:
      return "V";
    case Method::kVI:
      return "VI";
  }
  return "?";
}

void prepare_network(Network& net) { rugged_lite(net); }

FlowResult run_method(const Network& prepared, Method method,
                      const Library& lib, const FlowOptions& options) {
  FlowResult r;
  r.circuit = prepared.name();
  r.method = method;

  NetworkDecompOptions d;
  d.style = options.style;
  switch (method) {
    case Method::kI:
    case Method::kIV:
      d.algorithm = DecompAlgorithm::kBalanced;
      break;
    case Method::kII:
    case Method::kV:
      d.algorithm = DecompAlgorithm::kMinPower;
      break;
    case Method::kIII:
    case Method::kVI:
      d.algorithm = DecompAlgorithm::kMinPower;
      d.bounded_height = true;
      break;
  }
  const NetworkDecompResult nd = decompose_network(prepared, d);
  r.tree_activity = nd.tree_activity;
  r.nand_depth = nd.unit_depth;
  r.nand_nodes = nd.network.num_internal();
  r.redecomposed = nd.redecomposed_nodes;

  MapOptions m;
  m.objective = (method == Method::kI || method == Method::kII ||
                 method == Method::kIII)
                    ? MapObjective::kArea
                    : MapObjective::kPower;
  // One BDD pass over the subject serves both mapping and scoring.
  m.activities = switching_activities(nd.network, options.style);
  m.dag = options.dag;
  m.style = options.style;
  m.vdd = options.vdd;
  m.t_cycle = options.t_cycle;
  m.po_load = options.po_load;
  m.epsilon_t = options.epsilon_t;
  m.policy = options.policy;
  m.relax_factor = options.relax_factor;
  const MapResult mapped = map_network(nd.network, lib, m);

  const MappedReport rep =
      evaluate_mapped(mapped.mapped, PowerParams::from(m));
  r.area = rep.area;
  r.delay = rep.delay;
  r.power_uw = rep.power_uw;
  r.gates = rep.num_gates;
  return r;
}

std::vector<FlowResult> run_all_methods(const Network& prepared,
                                        const Library& lib,
                                        const FlowOptions& options) {
  std::vector<FlowResult> out;
  for (Method m : {Method::kI, Method::kII, Method::kIII, Method::kIV,
                   Method::kV, Method::kVI})
    out.push_back(run_method(prepared, m, lib, options));
  return out;
}

}  // namespace minpower
