#include "decomp/huffman.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <string>

#include "trace/metrics.hpp"
#include "util/budget.hpp"

namespace minpower {

namespace {

/// All tree builders funnel parent creation through here or through the
/// correlated builder's inline merge; both count into huffman.merges (for
/// the exhaustive search this includes branch-and-bound explorations —
/// still deterministic, and a direct measure of search effort).
void count_merge() {
  static metrics::Counter& merges = metrics::counter("huffman.merges");
  merges.add(1);
}

}  // namespace

namespace {

/// Shared helper: start a tree whose first n nodes are the leaves.
DecompTree init_leaves(const std::vector<double>& leaf_probs) {
  DecompTree t;
  t.num_leaves = static_cast<int>(leaf_probs.size());
  for (int i = 0; i < t.num_leaves; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    leaf.prob = leaf_probs[static_cast<std::size_t>(i)];
    t.nodes.push_back(leaf);
  }
  return t;
}

int merge_nodes(DecompTree& t, int a, int b, const DecompModel& model) {
  count_merge();
  DecompTree::TNode parent;
  parent.left = a;
  parent.right = b;
  parent.prob = model.merge_prob(t.nodes[static_cast<std::size_t>(a)].prob,
                                 t.nodes[static_cast<std::size_t>(b)].prob);
  parent.height = 1 + std::max(t.nodes[static_cast<std::size_t>(a)].height,
                               t.nodes[static_cast<std::size_t>(b)].height);
  t.nodes.push_back(parent);
  return static_cast<int>(t.nodes.size()) - 1;
}

}  // namespace

DecompTree huffman_tree(const std::vector<double>& leaf_probs,
                        const DecompModel& model) {
  MP_CHECK(!leaf_probs.empty());
  DecompTree t = init_leaves(leaf_probs);
  if (t.num_leaves == 1) {
    t.root = 0;
    return t;
  }
  // Min-heap on the model's ordering key; ties broken on node index so the
  // construction is deterministic.
  using Entry = std::pair<double, int>;  // (key, node index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (int i = 0; i < t.num_leaves; ++i)
    heap.emplace(model.huffman_key(t.nodes[static_cast<std::size_t>(i)].prob), i);
  while (heap.size() > 1) {
    const int a = heap.top().second;
    heap.pop();
    const int b = heap.top().second;
    heap.pop();
    const int p = merge_nodes(t, a, b, model);
    heap.emplace(model.huffman_key(t.nodes[static_cast<std::size_t>(p)].prob), p);
  }
  t.root = heap.top().second;
  return t;
}

DecompTree modified_huffman_tree(const std::vector<double>& leaf_probs,
                                 const DecompModel& model) {
  MP_CHECK(!leaf_probs.empty());
  DecompTree t = init_leaves(leaf_probs);
  if (t.num_leaves == 1) {
    t.root = 0;
    return t;
  }
  // Active node set plus a candidate list ordered by F(wi, wj).
  // (F-value, i, j) with i < j as node indices; deterministic tie-break.
  std::set<std::tuple<double, int, int>> candidates;
  std::vector<int> active;
  for (int i = 0; i < t.num_leaves; ++i) {
    for (int j : active)
      candidates.emplace(
          model.merge_cost(t.nodes[static_cast<std::size_t>(j)].prob,
                           t.nodes[static_cast<std::size_t>(i)].prob),
          std::min(i, j), std::max(i, j));
    active.push_back(i);
  }
  while (active.size() > 1) {
    const auto [cost, a, b] = *candidates.begin();
    (void)cost;
    // Remove all candidates touching a or b.
    for (auto it = candidates.begin(); it != candidates.end();) {
      const auto [c, i, j] = *it;
      (void)c;
      it = (i == a || i == b || j == a || j == b) ? candidates.erase(it)
                                                  : std::next(it);
    }
    std::erase(active, a);
    std::erase(active, b);
    const int p = merge_nodes(t, a, b, model);
    for (int j : active)
      candidates.emplace(
          model.merge_cost(t.nodes[static_cast<std::size_t>(j)].prob,
                           t.nodes[static_cast<std::size_t>(p)].prob),
          std::min(p, j), std::max(p, j));
    active.push_back(p);
  }
  t.root = active.front();
  return t;
}

namespace {

void exhaustive_rec(DecompTree& t, std::vector<int>& active,
                    const DecompModel& model, double cost_so_far,
                    double& best_cost, std::vector<int>& best_merges,
                    std::vector<int>& merges) {
  if (active.size() == 1) {
    if (cost_so_far < best_cost) {
      best_cost = cost_so_far;
      best_merges = merges;
    }
    return;
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      const int a = active[i];
      const int b = active[j];
      const double f =
          model.merge_cost(t.nodes[static_cast<std::size_t>(a)].prob,
                           t.nodes[static_cast<std::size_t>(b)].prob);
      if (cost_so_far + f >= best_cost) continue;  // branch & bound
      const int p = merge_nodes(t, a, b, model);
      // Replace a and b with p in the active set.
      std::vector<int> next;
      next.reserve(active.size() - 1);
      for (std::size_t k = 0; k < active.size(); ++k)
        if (k != i && k != j) next.push_back(active[k]);
      next.push_back(p);
      merges.push_back(a);
      merges.push_back(b);
      exhaustive_rec(t, next, model, cost_so_far + f, best_cost, best_merges,
                     merges);
      merges.pop_back();
      merges.pop_back();
      t.nodes.pop_back();  // undo the merge
    }
  }
}

}  // namespace

DecompTree best_tree_exhaustive(const std::vector<double>& leaf_probs,
                                const DecompModel& model) {
  MP_CHECK(!leaf_probs.empty());
  if (leaf_probs.size() > 9)
    throw ResourceExhausted(
        "exhaustive-tree", "exhaustive tree search limited to 9 leaves (got " +
                               std::to_string(leaf_probs.size()) + ")");
  DecompTree scratch = init_leaves(leaf_probs);
  if (scratch.num_leaves == 1) {
    scratch.root = 0;
    return scratch;
  }
  std::vector<int> active(static_cast<std::size_t>(scratch.num_leaves));
  for (int i = 0; i < scratch.num_leaves; ++i)
    active[static_cast<std::size_t>(i)] = i;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_merges;
  std::vector<int> merges;
  exhaustive_rec(scratch, active, model, 0.0, best_cost, best_merges, merges);
  MP_CHECK(!best_merges.empty());

  // Replay the winning merge sequence on a fresh tree.
  DecompTree t = init_leaves(leaf_probs);
  for (std::size_t m = 0; m + 1 < best_merges.size(); m += 2)
    merge_nodes(t, best_merges[m], best_merges[m + 1], model);
  t.root = static_cast<int>(t.nodes.size()) - 1;
  return t;
}


DecompTree modified_huffman_correlated(const JointProbabilities& joints,
                                       const DecompModel& model) {
  const int n = joints.size();
  MP_CHECK(n >= 1);
  std::vector<double> p1(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p1[static_cast<std::size_t>(i)] = joints.prob(i);
  DecompTree t = init_leaves(p1);
  if (n == 1) {
    t.root = 0;
    return t;
  }

  // Growable joint table indexed by tree-node id.
  const int max_nodes = 2 * n - 1;
  std::vector<double> J(static_cast<std::size_t>(max_nodes) *
                            static_cast<std::size_t>(max_nodes),
                        0.0);
  auto jref = [&](int i, int j) -> double& {
    return J[static_cast<std::size_t>(i) * static_cast<std::size_t>(max_nodes) +
             static_cast<std::size_t>(j)];
  };
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) jref(i, j) = joints.joint(i, j);

  std::vector<int> active(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) active[static_cast<std::size_t>(i)] = i;

  auto node_prob = [&](int id) {
    return t.nodes[static_cast<std::size_t>(id)].prob;
  };
  // Output 1-probability of a merge. AND (Eqs. 7/8): exactly the pairwise
  // joint. OR: inclusion-exclusion, likewise exact given the joint.
  auto merge_p = [&](int a, int b) {
    return model.gate() == GateType::kAnd
               ? jref(a, b)
               : node_prob(a) + node_prob(b) - jref(a, b);
  };
  auto pair_cost = [&](int a, int b) { return model.activity(merge_p(a, b)); };

  while (active.size() > 1) {
    // Find min-F pair.
    int bi = 0;
    int bj = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i)
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const double f = pair_cost(active[i], active[j]);
        if (f < best) {
          best = f;
          bi = active[static_cast<std::size_t>(i)];
          bj = active[static_cast<std::size_t>(j)];
        }
      }
    // Merge bi, bj. Exact parent probability from the pairwise joint
    // (Eq. 7 for AND; inclusion-exclusion for OR).
    count_merge();
    DecompTree::TNode parent;
    parent.left = bi;
    parent.right = bj;
    parent.prob = merge_p(bi, bj);
    parent.height =
        1 + std::max(t.nodes[static_cast<std::size_t>(bi)].height,
                     t.nodes[static_cast<std::size_t>(bj)].height);
    t.nodes.push_back(parent);
    const int p = static_cast<int>(t.nodes.size()) - 1;
    jref(p, p) = parent.prob;

    // Eq. 9 heuristic joint with every survivor k, clamped to the Fréchet
    // bounds [max(0, pA + pk − 1), min(pA, pk)].
    std::erase(active, bi);
    std::erase(active, bj);
    for (int k : active) {
      const double pi = node_prob(bi);
      const double pj = node_prob(bj);
      const double pk = node_prob(k);
      auto cond = [&](int x, int y) {  // P(x=1 | y=1)
        const double py = node_prob(y);
        return py <= 0.0 ? 0.0 : jref(x, y) / py;
      };
      const double w_ij = jref(bi, bj);
      const double w_ik = jref(bi, k);
      const double w_jk = jref(bj, k);
      double est;
      if (model.gate() == GateType::kAnd) {
        est = ((cond(k, bi) + cond(k, bj)) * w_ij / 2.0 +
               (cond(bj, k) + cond(bj, bi)) * w_ik / 2.0 +
               (cond(bi, bj) + cond(bi, k)) * w_jk / 2.0) /
              3.0;
      } else {
        // OR merge: P((i∨j)∧k) = P(i∧k) + P(j∧k) − P(i∧j∧k); estimate the
        // triple joint from the pairwise data.
        const double triple =
            w_ij * (cond(k, bi) + cond(k, bj)) / 2.0;
        est = w_ik + w_jk - triple;
      }
      (void)pi;
      (void)pj;
      const double pa = parent.prob;
      const double lo = std::max(0.0, pa + pk - 1.0);
      const double hi = std::min(pa, pk);
      est = std::clamp(est, lo, hi);
      jref(p, k) = est;
      jref(k, p) = est;
    }
    active.push_back(p);
  }
  t.root = active.front();
  return t;
}

}  // namespace minpower
