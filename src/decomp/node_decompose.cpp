#include "decomp/node_decompose.hpp"

#include <algorithm>

namespace minpower {

namespace {

/// Balanced level assignment for n leaves: 2n−2^h leaves at depth h,
/// 2^h−n at depth h−1 (Kraft equality).
DecompTree balanced_tree(int n) {
  MP_CHECK(n >= 1);
  if (n == 1) return DecompTree::single_leaf(0.0);
  const int h = balanced_height(n);
  const int deep = 2 * n - (1 << h);
  std::vector<int> levels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) levels[static_cast<std::size_t>(i)] = i < deep ? h : h - 1;
  return tree_from_levels(levels);
}

DecompTree build_tree(const std::vector<double>& probs,
                      const DecompModel& model, DecompAlgorithm algorithm,
                      int height_bound) {
  const int n = static_cast<int>(probs.size());
  if (algorithm == DecompAlgorithm::kBalanced) {
    DecompTree t = balanced_tree(n);
    annotate(t, model, probs);
    return t;
  }
  if (height_bound >= 0) {
    return bounded_height_minpower_tree(probs, height_bound, model);
  }
  return model.huffman_optimal() ? huffman_tree(probs, model)
                                 : modified_huffman_tree(probs, model);
}

/// Literal leaf emission depth: 0 when the fanin already has the wanted
/// polarity, 1 when an inverter is needed.
int literal_depth(bool positive_phase, bool want_value) {
  return positive_phase == want_value ? 0 : 1;
}

struct Emitter {
  Network* net = nullptr;               // null → height-only dry run
  const std::vector<NodeId>* fanins = nullptr;
  const NodeDecomp* plan = nullptr;
  // Inverter sharing: one INV per fanin polarity.
  std::vector<NodeId> inv_cache;

  NodeId literal(int local_var, bool positive_phase, bool want_value) {
    const NodeId base = (*fanins)[static_cast<std::size_t>(local_var)];
    if (positive_phase == want_value) return base;
    NodeId& inv = inv_cache[static_cast<std::size_t>(local_var)];
    if (inv == kNoNode) inv = net->add_inv(base);
    return inv;
  }

  /// Emit an AND-tree node of cube `c`; `complemented` selects NAND vs AND.
  NodeId emit_and(int cube, int tnode, bool complemented) {
    const DecompTree& t = plan->cube_trees[static_cast<std::size_t>(cube)];
    const DecompTree::TNode& n = t.nodes[static_cast<std::size_t>(tnode)];
    if (n.is_leaf()) {
      const auto [var, phase] =
          plan->cube_literals[static_cast<std::size_t>(cube)]
                             [static_cast<std::size_t>(n.leaf)];
      return literal(var, phase, !complemented);
    }
    if (complemented) {
      const NodeId l = emit_and(cube, n.left, false);
      const NodeId r = emit_and(cube, n.right, false);
      return net->add_nand2(l, r);
    }
    return net->add_inv(emit_and(cube, tnode, true));
  }

  /// Emit an OR-tree node; children that are cubes arrive complemented for
  /// free as NANDs (the NAND-of-NANDs form).
  NodeId emit_or_child_complement(int child) {
    const DecompTree::TNode& n =
        plan->or_tree.nodes[static_cast<std::size_t>(child)];
    if (n.is_leaf()) return emit_and(n.leaf, cube_root(n.leaf), true);
    return net->add_inv(emit_or(child, false));
  }

  NodeId emit_or(int tnode, bool complemented) {
    const DecompTree::TNode& n =
        plan->or_tree.nodes[static_cast<std::size_t>(tnode)];
    if (n.is_leaf()) {
      // Single cube reached through the OR tree degenerating.
      return complemented ? emit_and(n.leaf, cube_root(n.leaf), true)
                          : emit_and(n.leaf, cube_root(n.leaf), false);
    }
    if (complemented) return net->add_inv(emit_or(tnode, false));
    const NodeId l = emit_or_child_complement(n.left);
    const NodeId r = emit_or_child_complement(n.right);
    return net->add_nand2(l, r);
  }

  int cube_root(int cube) const {
    return plan->cube_trees[static_cast<std::size_t>(cube)].root;
  }
};

// ---- height-only recursion (no network) -----------------------------------

struct HeightCalc {
  const NodeDecomp* plan = nullptr;

  int and_height(int cube, int tnode, bool complemented) const {
    const DecompTree& t = plan->cube_trees[static_cast<std::size_t>(cube)];
    const DecompTree::TNode& n = t.nodes[static_cast<std::size_t>(tnode)];
    if (n.is_leaf()) {
      const auto [var, phase] =
          plan->cube_literals[static_cast<std::size_t>(cube)]
                             [static_cast<std::size_t>(n.leaf)];
      (void)var;
      return literal_depth(phase, !complemented);
    }
    if (complemented)
      return 1 + std::max(and_height(cube, n.left, false),
                          and_height(cube, n.right, false));
    return 1 + and_height(cube, tnode, true);
  }

  int or_child_complement_height(int child) const {
    const DecompTree::TNode& n =
        plan->or_tree.nodes[static_cast<std::size_t>(child)];
    if (n.is_leaf()) return and_height(n.leaf, cube_root(n.leaf), true);
    return 1 + or_height(child, false);
  }

  int or_height(int tnode, bool complemented) const {
    const DecompTree::TNode& n =
        plan->or_tree.nodes[static_cast<std::size_t>(tnode)];
    if (n.is_leaf())
      return and_height(n.leaf, cube_root(n.leaf), complemented);
    if (complemented) return 1 + or_height(tnode, false);
    return 1 + std::max(or_child_complement_height(n.left),
                        or_child_complement_height(n.right));
  }

  int cube_root(int cube) const {
    return plan->cube_trees[static_cast<std::size_t>(cube)].root;
  }

  int total(const NodeDecomp& p) const {
    if (p.cube_trees.size() == 1) return and_height(0, cube_root(0), false);
    return or_height(p.or_tree.root, false);
  }
};

NodeDecomp plan_once(const Cover& cover, const std::vector<double>& fanin_prob1,
                     CircuitStyle style, DecompAlgorithm algorithm,
                     int and_bound, int or_bound) {
  NodeDecomp plan;
  const DecompModel and_model(GateType::kAnd, style);
  const DecompModel or_model(GateType::kOr, style);

  std::vector<double> cube_probs;
  for (const Cube& c : cover.cubes()) {
    std::vector<std::pair<int, bool>> lits;
    std::vector<double> lit_probs;
    for (int v = 0; v < kMaxCubeVars; ++v) {
      if (c.has_pos(v)) {
        lits.emplace_back(v, true);
        lit_probs.push_back(fanin_prob1[static_cast<std::size_t>(v)]);
      } else if (c.has_neg(v)) {
        lits.emplace_back(v, false);
        lit_probs.push_back(1.0 - fanin_prob1[static_cast<std::size_t>(v)]);
      }
    }
    MP_CHECK_MSG(!lits.empty(), "constant cube in non-constant cover");
    DecompTree t = build_tree(lit_probs, and_model, algorithm, and_bound);
    annotate(t, and_model, lit_probs);
    cube_probs.push_back(t.nodes[static_cast<std::size_t>(t.root)].prob);
    plan.cube_literals.push_back(std::move(lits));
    plan.cube_trees.push_back(std::move(t));
  }
  if (cover.num_cubes() > 1) {
    // Bounded OR construction accounts for cube-tree heights by seeding the
    // greedy with them; the unbounded algorithms ignore heights.
    if (or_bound >= 0) {
      // Feed heights through leaf "pre-merged" trick: run the greedy on
      // probabilities but with initial heights = cube tree NAND heights.
      // We reuse bounded_height_minpower_tree by temporarily inflating: the
      // simple route is to bound the OR tree's own height so that
      // or_depth(cube) + cube_height <= total bound for the tallest cube.
      plan.or_tree = bounded_height_minpower_tree(cube_probs, or_bound, or_model);
    } else {
      plan.or_tree = build_tree(cube_probs, or_model, algorithm, -1);
    }
    annotate(plan.or_tree, or_model, cube_probs);
  } else {
    plan.or_tree = DecompTree::single_leaf(cube_probs[0]);
  }
  HeightCalc hc{&plan};
  plan.realized_height = hc.total(plan);
  plan.tree_activity = 0.0;
  for (const DecompTree& t : plan.cube_trees)
    for (const DecompTree::TNode& node : t.nodes)
      if (!node.is_leaf()) plan.tree_activity += and_model.activity(node.prob);
  if (plan.cube_trees.size() > 1)
    for (const DecompTree::TNode& node : plan.or_tree.nodes)
      if (!node.is_leaf()) plan.tree_activity += or_model.activity(node.prob);
  return plan;
}

}  // namespace

int balanced_nand_height(const Cover& cover) {
  // Balanced plan with dummy probabilities; probabilities do not affect the
  // balanced shape.
  std::vector<double> probs(64, 0.5);
  const NodeDecomp plan = plan_once(cover, probs, CircuitStyle::kStatic,
                                    DecompAlgorithm::kBalanced, -1, -1);
  return plan.realized_height;
}

NodeDecomp decompose_node(const Cover& cover,
                          const std::vector<double>& fanin_prob1,
                          CircuitStyle style, DecompAlgorithm algorithm,
                          int nand_height_bound) {
  MP_CHECK_MSG(!cover.is_zero() && !cover.is_one(),
               "cannot decompose a constant cover");
  NodeDecomp plan = plan_once(cover, fanin_prob1, style, algorithm, -1, -1);
  if (nand_height_bound < 0 || plan.realized_height <= nand_height_bound)
    return plan;

  // Tighten tree height bounds until the realized NAND height fits. The
  // AND stage and the OR stage are squeezed alternately, preferring to keep
  // the stage with more slack loose. Terminates at the balanced shape.
  int max_cube = 0;
  for (const auto& lits : plan.cube_literals)
    max_cube = std::max(max_cube, static_cast<int>(lits.size()));
  int and_bound = max_cube >= 1 ? std::max(1, max_cube - 1) : 1;
  int or_bound = static_cast<int>(plan.cube_trees.size()) >= 2
                     ? static_cast<int>(plan.cube_trees.size()) - 1
                     : -1;
  const int and_floor = balanced_height(std::max(1, max_cube));
  const int or_floor =
      balanced_height(std::max<int>(1, static_cast<int>(plan.cube_trees.size())));

  NodeDecomp best = plan;
  for (;;) {
    NodeDecomp candidate = plan_once(cover, fanin_prob1, style, algorithm,
                                     and_bound, or_bound);
    if (candidate.realized_height < best.realized_height) best = candidate;
    if (best.realized_height <= nand_height_bound) return best;
    // Squeeze the looser stage.
    const bool can_and = and_bound > and_floor;
    const bool can_or = or_bound > or_floor && or_bound >= 0;
    if (!can_and && !can_or) break;
    if (can_and && (!can_or || and_bound - and_floor >= or_bound - or_floor))
      --and_bound;
    else
      --or_bound;
  }
  // The squeezed MINPOWER shapes missed the bound (negative literals can
  // push a min-height greedy shape one level past the canonical balanced
  // realization). Fall back to the conventional balanced plan when it fits.
  NodeDecomp balanced = plan_once(cover, fanin_prob1, style,
                                  DecompAlgorithm::kBalanced, -1, -1);
  if (balanced.realized_height < best.realized_height) best = std::move(balanced);
  // If even the balanced plan misses the bound, the caller asked for less
  // than the achievable floor; the realized height reported is the truth.
  return best;
}

NodeDecomp decompose_node_correlated(const Cover& cover,
                                     const std::vector<NodeId>& node_fanins,
                                     const PatternModel& model,
                                     CircuitStyle style) {
  MP_CHECK_MSG(!cover.is_zero() && !cover.is_one(),
               "cannot decompose a constant cover");
  const DecompModel and_model(GateType::kAnd, style);
  const DecompModel or_model(GateType::kOr, style);
  NodeDecomp plan;

  for (const Cube& c : cover.cubes()) {
    std::vector<std::pair<int, bool>> lits;
    for (int v = 0; v < kMaxCubeVars; ++v) {
      if (c.has_pos(v)) lits.emplace_back(v, true);
      else if (c.has_neg(v)) lits.emplace_back(v, false);
    }
    MP_CHECK(!lits.empty());
    // Exact pairwise joints of the literals from the pattern set. A literal
    // is itself a one-literal cube over the node's fanins.
    std::vector<Cube> lit_cubes;
    for (const auto& [v, phase] : lits)
      lit_cubes.push_back(Cube::literal(v, phase));
    std::vector<double> p1;
    for (const Cube& lc : lit_cubes)
      p1.push_back(model.cube_probability(node_fanins, lc));
    JointProbabilities joints(p1);
    for (std::size_t a = 0; a < lit_cubes.size(); ++a)
      for (std::size_t b = a + 1; b < lit_cubes.size(); ++b)
        joints.set(static_cast<int>(a), static_cast<int>(b),
                   model.cube_joint(node_fanins, lit_cubes[a], lit_cubes[b]));
    DecompTree t = modified_huffman_correlated(joints, and_model);
    plan.cube_literals.push_back(std::move(lits));
    plan.cube_trees.push_back(std::move(t));
  }

  if (cover.num_cubes() > 1) {
    // Exact cube probabilities and joints for the OR stage.
    std::vector<double> cp;
    for (const Cube& c : cover.cubes())
      cp.push_back(model.cube_probability(node_fanins, c));
    JointProbabilities joints(cp);
    for (std::size_t a = 0; a < cover.num_cubes(); ++a)
      for (std::size_t b = a + 1; b < cover.num_cubes(); ++b)
        joints.set(static_cast<int>(a), static_cast<int>(b),
                   model.cube_joint(node_fanins, cover.cubes()[a],
                                    cover.cubes()[b]));
    plan.or_tree = modified_huffman_correlated(joints, or_model);
  } else {
    plan.or_tree = DecompTree::single_leaf(
        plan.cube_trees[0]
            .nodes[static_cast<std::size_t>(plan.cube_trees[0].root)]
            .prob);
  }

  HeightCalc hc{&plan};
  plan.realized_height = hc.total(plan);
  plan.tree_activity = 0.0;
  for (const DecompTree& t : plan.cube_trees)
    for (const DecompTree::TNode& node : t.nodes)
      if (!node.is_leaf()) plan.tree_activity += and_model.activity(node.prob);
  if (plan.cube_trees.size() > 1)
    for (const DecompTree::TNode& node : plan.or_tree.nodes)
      if (!node.is_leaf()) plan.tree_activity += or_model.activity(node.prob);
  return plan;
}

NodeDecomp decompose_node_transitions(
    const Cover& cover, const std::vector<SignalTransition>& fanin_states) {
  MP_CHECK_MSG(!cover.is_zero() && !cover.is_one(),
               "cannot decompose a constant cover");
  NodeDecomp plan;
  std::vector<SignalTransition> cube_states;
  for (const Cube& c : cover.cubes()) {
    std::vector<std::pair<int, bool>> lits;
    std::vector<SignalTransition> lit_states;
    for (int v = 0; v < kMaxCubeVars; ++v) {
      if (c.has_pos(v)) {
        lits.emplace_back(v, true);
        lit_states.push_back(fanin_states[static_cast<std::size_t>(v)]);
      } else if (c.has_neg(v)) {
        lits.emplace_back(v, false);
        lit_states.push_back(
            fanin_states[static_cast<std::size_t>(v)].complement());
      }
    }
    MP_CHECK(!lits.empty());
    DecompTree t = modified_huffman_transitions(lit_states, GateType::kAnd);
    plan.tree_activity +=
        tree_transition_activity(t, lit_states, GateType::kAnd);
    // Root state of this cube for the OR stage.
    SignalTransition s = lit_states[0];
    {
      // Recompute the root state by walking the tree.
      std::vector<SignalTransition> st(t.nodes.size());
      for (std::size_t i = 0; i < t.nodes.size(); ++i) {
        const DecompTree::TNode& n = t.nodes[i];
        st[i] = n.is_leaf()
                    ? lit_states[static_cast<std::size_t>(n.leaf)]
                    : merge_transitions(st[static_cast<std::size_t>(n.left)],
                                        st[static_cast<std::size_t>(n.right)],
                                        GateType::kAnd);
      }
      s = st[static_cast<std::size_t>(t.root)];
    }
    cube_states.push_back(s);
    plan.cube_literals.push_back(std::move(lits));
    plan.cube_trees.push_back(std::move(t));
  }
  if (cover.num_cubes() > 1) {
    plan.or_tree = modified_huffman_transitions(cube_states, GateType::kOr);
    plan.tree_activity +=
        tree_transition_activity(plan.or_tree, cube_states, GateType::kOr);
  } else {
    plan.or_tree = DecompTree::single_leaf(cube_states[0].p1());
  }
  HeightCalc hc{&plan};
  plan.realized_height = hc.total(plan);
  return plan;
}

NodeId emit_node_decomp(Network& net, const std::vector<NodeId>& fanins,
                        const Cover& cover, const NodeDecomp& plan) {
  (void)cover;
  Emitter em;
  em.net = &net;
  em.fanins = &fanins;
  em.plan = &plan;
  em.inv_cache.assign(fanins.size(), kNoNode);
  if (plan.cube_trees.size() == 1)
    return em.emit_and(0, em.cube_root(0), false);
  return em.emit_or(plan.or_tree.root, false);
}

double plan_tree_activity(const NodeDecomp& plan, const Cover& cover,
                          const std::vector<double>& fanin_prob1,
                          CircuitStyle style) {
  (void)cover;
  const DecompModel and_model(GateType::kAnd, style);
  const DecompModel or_model(GateType::kOr, style);
  double total = 0.0;
  std::vector<double> cube_probs;
  for (std::size_t c = 0; c < plan.cube_trees.size(); ++c) {
    std::vector<double> lit_probs;
    for (const auto& [var, phase] : plan.cube_literals[c])
      lit_probs.push_back(phase ? fanin_prob1[static_cast<std::size_t>(var)]
                                : 1.0 - fanin_prob1[static_cast<std::size_t>(var)]);
    total += plan.cube_trees[c].internal_cost(and_model, lit_probs);
    DecompTree t = plan.cube_trees[c];
    annotate(t, and_model, lit_probs);
    cube_probs.push_back(t.nodes[static_cast<std::size_t>(t.root)].prob);
  }
  if (plan.cube_trees.size() > 1)
    total += plan.or_tree.internal_cost(or_model, cube_probs);
  return total;
}

}  // namespace minpower
