#pragma once
// Static-CMOS decomposition with the *full* transition-probability merge of
// Eqs. (10)/(11), instead of the temporal-independence collapse 2p(1−p).
//
// Each tree signal carries its lag-one behaviour (w00, w01, w10, w11). For
// spatially independent inputs the output transition distribution of a
// 2-input AND is (Eq. 10/11 and their complements):
//   W_{0→1} = w_{a 0→1}·w_{b 0→1} + w_{a 1→1}·w_{b 0→1} + w_{a 0→1}·w_{b 1→1}
//   W_{1→0} = w_{a 1→1}·w_{b 1→0} + w_{a 1→0}·w_{b 1→1} + w_{a 1→0}·w_{b 1→0}
// with W_{1→1} = w_{a 1→1}·w_{b 1→1} and W_{0→0} the remainder; OR is the
// dual. The merge is not quasi-linear (Sec. 2.1.2), so the construction is
// the Modified Huffman greedy; an exhaustive oracle is provided for tests
// and for the Table-1-style optimality measurements under temporal
// correlation.

#include <vector>

#include "decomp/tree.hpp"
#include "prob/transition.hpp"

namespace minpower {

/// Lag-one distribution of one signal: joint probabilities of
/// (value_t, value_{t+1}). Always sums to 1.
struct SignalTransition {
  double w00 = 0.25;
  double w01 = 0.25;
  double w10 = 0.25;
  double w11 = 0.25;

  static SignalTransition from(const PiTemporalModel& m) {
    return {m.p00(), m.p01, m.p10(), m.p11()};
  }
  static SignalTransition from(const NodeTransition& t) {
    return {1.0 - t.p01 - t.p10 - (t.p1 - t.p10), t.p01, t.p10,
            t.p1 - t.p10};
  }
  /// Temporal independence at probability p.
  static SignalTransition independent(double p) {
    return {(1 - p) * (1 - p), (1 - p) * p, p * (1 - p), p * p};
  }

  double p1() const { return w10 + w11; }
  double activity() const { return w01 + w10; }
  /// The complemented signal (swap roles of 0 and 1).
  SignalTransition complement() const { return {w11, w10, w01, w00}; }
};

/// Output transition distribution of AND/OR over two spatially independent
/// inputs (Eqs. 10/11 and duals).
SignalTransition merge_transitions(const SignalTransition& a,
                                   const SignalTransition& b, GateType gate);

/// Modified-Huffman (Algorithm 2.2) over transition states; cost of an
/// internal node = its exact activity w01 + w10.
DecompTree modified_huffman_transitions(
    const std::vector<SignalTransition>& leaves, GateType gate);

/// Exhaustive optimum over all trees (n ≤ 9), for tests/Table-1 rates.
DecompTree best_tree_exhaustive_transitions(
    const std::vector<SignalTransition>& leaves, GateType gate);

/// Total internal activity of `tree` under the transition model.
double tree_transition_activity(const DecompTree& tree,
                                const std::vector<SignalTransition>& leaves,
                                GateType gate);

}  // namespace minpower
