#include "decomp/transition_model.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <string>

#include "util/budget.hpp"

namespace minpower {

SignalTransition merge_transitions(const SignalTransition& a,
                                   const SignalTransition& b, GateType gate) {
  if (gate == GateType::kOr) {
    // a + b = !( !a · !b )
    return merge_transitions(a.complement(), b.complement(), GateType::kAnd)
        .complement();
  }
  SignalTransition o;
  // Output is 1 at a time step iff both inputs are 1 there; the pair
  // distribution of the output follows from the independent input pairs.
  o.w11 = a.w11 * b.w11;
  o.w01 = a.w01 * b.w01 + a.w11 * b.w01 + a.w01 * b.w11;  // Eq. 10
  o.w10 = a.w11 * b.w10 + a.w10 * b.w11 + a.w10 * b.w10;  // Eq. 11
  o.w00 = 1.0 - o.w11 - o.w01 - o.w10;
  return o;
}

namespace {

struct Item {
  SignalTransition state;
  int node;  // DecompTree node index
};

DecompTree init_tree(const std::vector<SignalTransition>& leaves) {
  DecompTree t;
  t.num_leaves = static_cast<int>(leaves.size());
  for (int i = 0; i < t.num_leaves; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    leaf.prob = leaves[static_cast<std::size_t>(i)].p1();
    t.nodes.push_back(leaf);
  }
  return t;
}

int add_merge(DecompTree& t, int a, int b, const SignalTransition& s) {
  DecompTree::TNode parent;
  parent.left = a;
  parent.right = b;
  parent.prob = s.p1();
  parent.height = 1 + std::max(t.nodes[static_cast<std::size_t>(a)].height,
                               t.nodes[static_cast<std::size_t>(b)].height);
  t.nodes.push_back(parent);
  return static_cast<int>(t.nodes.size()) - 1;
}

}  // namespace

DecompTree modified_huffman_transitions(
    const std::vector<SignalTransition>& leaves, GateType gate) {
  MP_CHECK(!leaves.empty());
  DecompTree t = init_tree(leaves);
  if (t.num_leaves == 1) {
    t.root = 0;
    return t;
  }
  std::vector<Item> active;
  for (int i = 0; i < t.num_leaves; ++i)
    active.push_back({leaves[static_cast<std::size_t>(i)], i});

  while (active.size() > 1) {
    std::size_t bi = 0;
    std::size_t bj = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i)
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const double f =
            merge_transitions(active[i].state, active[j].state, gate)
                .activity();
        if (f < best) {
          best = f;
          bi = i;
          bj = j;
        }
      }
    const SignalTransition merged =
        merge_transitions(active[bi].state, active[bj].state, gate);
    const int node = add_merge(t, active[bi].node, active[bj].node, merged);
    // Erase the higher index first.
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(bi));
    active.push_back({merged, node});
  }
  t.root = active.front().node;
  return t;
}

DecompTree best_tree_exhaustive_transitions(
    const std::vector<SignalTransition>& leaves, GateType gate) {
  MP_CHECK(!leaves.empty());
  if (leaves.size() > 9)
    throw ResourceExhausted(
        "exhaustive-tree", "exhaustive search limited to 9 leaves (got " +
                               std::to_string(leaves.size()) + ")");
  DecompTree t = init_tree(leaves);
  if (t.num_leaves == 1) {
    t.root = 0;
    return t;
  }

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::pair<int, int>> best_merges;
  std::vector<std::pair<int, int>> merges;
  std::vector<Item> init;
  for (int i = 0; i < t.num_leaves; ++i)
    init.push_back({leaves[static_cast<std::size_t>(i)], i});

  // Node indices in the scratch recursion are symbolic: we track merges by
  // the pair of item positions translated to eventual tree node ids on
  // replay, so the recursion only carries states.
  const std::function<void(std::vector<Item>, double, int)> rec =
      [&](std::vector<Item> items, double acc, int next_id) {
        if (items.size() == 1) {
          if (acc < best_cost) {
            best_cost = acc;
            best_merges = merges;
          }
          return;
        }
        for (std::size_t i = 0; i < items.size(); ++i)
          for (std::size_t j = i + 1; j < items.size(); ++j) {
            const SignalTransition m =
                merge_transitions(items[i].state, items[j].state, gate);
            const double cost = acc + m.activity();
            if (cost >= best_cost) continue;
            std::vector<Item> next;
            for (std::size_t k = 0; k < items.size(); ++k)
              if (k != i && k != j) next.push_back(items[k]);
            next.push_back({m, next_id});
            merges.emplace_back(items[i].node, items[j].node);
            rec(std::move(next), cost, next_id + 1);
            merges.pop_back();
          }
      };
  rec(init, 0.0, t.num_leaves);
  MP_CHECK(!best_merges.empty());

  // Replay.
  std::vector<SignalTransition> state(leaves);
  for (const auto& [a, b] : best_merges) {
    const SignalTransition m = merge_transitions(
        state[static_cast<std::size_t>(a)], state[static_cast<std::size_t>(b)],
        gate);
    state.push_back(m);
    add_merge(t, a, b, m);
  }
  t.root = static_cast<int>(t.nodes.size()) - 1;
  return t;
}

double tree_transition_activity(const DecompTree& tree,
                                const std::vector<SignalTransition>& leaves,
                                GateType gate) {
  std::vector<SignalTransition> state(tree.nodes.size());
  double total = 0.0;
  // Postorder accumulate.
  const std::function<void(int)> walk = [&](int id) {
    const DecompTree::TNode& n = tree.nodes[static_cast<std::size_t>(id)];
    if (n.is_leaf()) {
      state[static_cast<std::size_t>(id)] =
          leaves[static_cast<std::size_t>(n.leaf)];
      return;
    }
    walk(n.left);
    walk(n.right);
    state[static_cast<std::size_t>(id)] =
        merge_transitions(state[static_cast<std::size_t>(n.left)],
                          state[static_cast<std::size_t>(n.right)], gate);
    total += state[static_cast<std::size_t>(id)].activity();
  };
  walk(tree.root);
  return total;
}

}  // namespace minpower
