#include "decomp/package_merge.hpp"

#include "decomp/huffman.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>

#include "util/budget.hpp"

namespace minpower {

int balanced_height(int n) {
  MP_CHECK(n >= 1);
  int h = 0;
  while ((1 << h) < n) ++h;
  return h;
}

std::vector<int> length_limited_levels(const std::vector<double>& weights,
                                       int max_level) {
  const int n = static_cast<int>(weights.size());
  MP_CHECK(n >= 1);
  if (n == 1) return {0};
  MP_CHECK_MSG((max_level < 63) && (1LL << max_level) >= n,
               "height bound below ceil(log2 n)");

  // Package-merge over L denomination levels. An item is either an original
  // leaf at some level (width 2^-level) or a package of two items one level
  // deeper. We carry per-item leaf multisets as count vectors — n is the
  // fanin count of one node, so this stays tiny.
  struct Item {
    double weight = 0.0;
    std::vector<int> leaves;  // leaf indices, duplicates allowed
  };

  // Leaves sorted ascending by weight (stable for determinism).
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weights[static_cast<std::size_t>(a)] <
           weights[static_cast<std::size_t>(b)];
  });

  auto leaf_items = [&]() {
    std::vector<Item> v;
    v.reserve(static_cast<std::size_t>(n));
    for (int i : order)
      v.push_back(Item{weights[static_cast<std::size_t>(i)], {i}});
    return v;
  };

  // list = items at the current level, ascending by weight.
  std::vector<Item> list = leaf_items();
  for (int level = max_level - 1; level >= 1; --level) {
    // PACKAGE: pair consecutive items.
    std::vector<Item> packages;
    for (std::size_t i = 0; i + 1 < list.size(); i += 2) {
      Item p;
      p.weight = list[i].weight + list[i + 1].weight;
      p.leaves = list[i].leaves;
      p.leaves.insert(p.leaves.end(), list[i + 1].leaves.begin(),
                      list[i + 1].leaves.end());
      packages.push_back(std::move(p));
    }
    // MERGE with the fresh leaf items of this level.
    std::vector<Item> fresh = leaf_items();
    std::vector<Item> merged;
    merged.reserve(packages.size() + fresh.size());
    std::merge(fresh.begin(), fresh.end(), packages.begin(), packages.end(),
               std::back_inserter(merged),
               [](const Item& a, const Item& b) { return a.weight < b.weight; });
    list = std::move(merged);
  }

  // Solution: the 2(n-1) cheapest items at level 1; each occurrence of a
  // leaf adds one to its code length.
  MP_CHECK(static_cast<int>(list.size()) >= 2 * (n - 1));
  std::vector<int> levels(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < 2 * (n - 1); ++i)
    for (int leaf : list[static_cast<std::size_t>(i)].leaves)
      ++levels[static_cast<std::size_t>(leaf)];
  for (int l : levels) MP_CHECK(l >= 1 && l <= max_level);
  return levels;
}

namespace {

/// Exact minimum achievable root height when combining subtrees with the
/// given heights into one binary tree: repeatedly merge the two smallest
/// heights (optimal because F(x,y)=max(x,y)+1 is quasi-linear).
int completion_height(std::vector<int> heights) {
  MP_CHECK(!heights.empty());
  std::sort(heights.begin(), heights.end());
  while (heights.size() > 1) {
    const int h = std::max(heights[0], heights[1]) + 1;
    heights.erase(heights.begin(), heights.begin() + 2);
    heights.insert(std::lower_bound(heights.begin(), heights.end(), h), h);
  }
  return heights[0];
}

}  // namespace

namespace {

/// One pass of the height-feasible greedy at a fixed bound.
DecompTree bounded_greedy_once(const std::vector<double>& leaf_probs,
                               int max_height, const DecompModel& model) {
  const int n = static_cast<int>(leaf_probs.size());
  DecompTree t;
  t.num_leaves = n;
  std::vector<int> active;
  for (int i = 0; i < n; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    leaf.prob = leaf_probs[static_cast<std::size_t>(i)];
    t.nodes.push_back(leaf);
    active.push_back(i);
  }
  if (n == 1) {
    t.root = 0;
    return t;
  }

  while (active.size() > 1) {
    // Candidate pairs ordered by F; take the cheapest that stays feasible.
    int bi = -1;
    int bj = -1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < active.size(); ++i) {
      for (std::size_t j = i + 1; j < active.size(); ++j) {
        const int a = active[i];
        const int b = active[j];
        const double f =
            model.merge_cost(t.nodes[static_cast<std::size_t>(a)].prob,
                             t.nodes[static_cast<std::size_t>(b)].prob);
        if (f >= best) continue;
        // Feasibility: heights after this merge must still complete <= L.
        std::vector<int> hs;
        hs.reserve(active.size() - 1);
        for (std::size_t k = 0; k < active.size(); ++k)
          if (k != i && k != j)
            hs.push_back(
                t.nodes[static_cast<std::size_t>(active[k])].height);
        hs.push_back(1 + std::max(t.nodes[static_cast<std::size_t>(a)].height,
                                  t.nodes[static_cast<std::size_t>(b)].height));
        if (completion_height(std::move(hs)) > max_height) continue;
        best = f;
        bi = a;
        bj = b;
      }
    }
    MP_CHECK_MSG(bi >= 0, "no feasible merge found (internal error)");
    DecompTree::TNode parent;
    parent.left = bi;
    parent.right = bj;
    parent.prob =
        model.merge_prob(t.nodes[static_cast<std::size_t>(bi)].prob,
                         t.nodes[static_cast<std::size_t>(bj)].prob);
    parent.height = 1 + std::max(t.nodes[static_cast<std::size_t>(bi)].height,
                                 t.nodes[static_cast<std::size_t>(bj)].height);
    t.nodes.push_back(parent);
    std::erase(active, bi);
    std::erase(active, bj);
    active.push_back(static_cast<int>(t.nodes.size()) - 1);
  }
  t.root = active.front();
  MP_CHECK(t.height() <= max_height);
  return t;
}

/// Per-thread count of exact bounded-height searches that overran their
/// step cap and fell back to the greedy ladder (see package_merge.hpp).
std::size_t& exact_fallback_slot() {
  thread_local std::size_t count = 0;
  return count;
}

/// Exact branch-and-bound over merge orders with a height cap; exponential,
/// used only for small n where it is instantaneous. `steps` counts explored
/// merge candidates; exceeding `step_cap` throws ResourceExhausted so the
/// caller can fall back to the heuristic ladder.
void bounded_exhaustive_rec(DecompTree& t, std::vector<int>& active,
                            int max_height, const DecompModel& model,
                            double acc, double& best_cost,
                            std::vector<std::pair<int, int>>& merges,
                            std::vector<std::pair<int, int>>& best_merges,
                            std::size_t& steps, std::size_t step_cap) {
  if (active.size() == 1) {
    if (acc < best_cost) {
      best_cost = acc;
      best_merges = merges;
    }
    return;
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      if (++steps > step_cap)
        throw ResourceExhausted(
            "exact-overrun", "exact bounded-height search exceeded " +
                                 std::to_string(step_cap) + " steps");
      const int a = active[i];
      const int b = active[j];
      const auto& na = t.nodes[static_cast<std::size_t>(a)];
      const auto& nb = t.nodes[static_cast<std::size_t>(b)];
      const int h = 1 + std::max(na.height, nb.height);
      if (h > max_height) continue;
      const double w = model.merge_prob(na.prob, nb.prob);
      const double cost = acc + model.activity(w);
      if (cost >= best_cost) continue;
      // Remaining subtrees must still complete within the bound.
      std::vector<int> next;
      std::vector<int> hs;
      for (std::size_t k = 0; k < active.size(); ++k)
        if (k != i && k != j) {
          next.push_back(active[k]);
          hs.push_back(t.nodes[static_cast<std::size_t>(active[k])].height);
        }
      hs.push_back(h);
      if (completion_height(std::move(hs)) > max_height) continue;

      DecompTree::TNode parent;
      parent.left = a;
      parent.right = b;
      parent.prob = w;
      parent.height = h;
      t.nodes.push_back(parent);
      next.push_back(static_cast<int>(t.nodes.size()) - 1);
      merges.emplace_back(a, b);
      bounded_exhaustive_rec(t, next, max_height, model, cost, best_cost,
                             merges, best_merges, steps, step_cap);
      merges.pop_back();
      t.nodes.pop_back();
    }
  }
}

}  // namespace

DecompTree bounded_height_minpower_tree(const std::vector<double>& leaf_probs,
                                        int max_height,
                                        const DecompModel& model) {
  const int n = static_cast<int>(leaf_probs.size());
  MP_CHECK(n >= 1);
  MP_CHECK_MSG(max_height >= balanced_height(n),
               "height bound below ceil(log2 n) is infeasible");
  if (n <= 2) return bounded_greedy_once(leaf_probs, max_height, model);

  if (n <= 6) {
    // Small fanins (the common case after technology-independent
    // optimization): solve exactly. The search is step-capped; an overrun
    // (or an "exact-overrun" fault injection) falls back to the heuristic
    // ladder below instead of aborting.
    std::size_t step_cap = std::size_t{1} << 20;
    if (const Budget* b = Budget::current(); b && b->injected("exact-overrun"))
      step_cap = 0;
    try {
      DecompTree t;
      t.num_leaves = n;
      std::vector<int> active;
      for (int i = 0; i < n; ++i) {
        DecompTree::TNode leaf;
        leaf.leaf = i;
        leaf.prob = leaf_probs[static_cast<std::size_t>(i)];
        t.nodes.push_back(leaf);
        active.push_back(i);
      }
      double best_cost = std::numeric_limits<double>::infinity();
      std::vector<std::pair<int, int>> merges;
      std::vector<std::pair<int, int>> best_merges;
      std::size_t steps = 0;
      bounded_exhaustive_rec(t, active, max_height, model, 0.0, best_cost,
                             merges, best_merges, steps, step_cap);
      MP_CHECK(!best_merges.empty());
      t.nodes.resize(static_cast<std::size_t>(n));
      for (const auto& [a, b] : best_merges) {
        DecompTree::TNode parent;
        parent.left = a;
        parent.right = b;
        parent.prob =
            model.merge_prob(t.nodes[static_cast<std::size_t>(a)].prob,
                             t.nodes[static_cast<std::size_t>(b)].prob);
        parent.height =
            1 + std::max(t.nodes[static_cast<std::size_t>(a)].height,
                         t.nodes[static_cast<std::size_t>(b)].height);
        t.nodes.push_back(parent);
      }
      t.root = static_cast<int>(t.nodes.size()) - 1;
      MP_CHECK(t.height() <= max_height);
      return t;
    } catch (const ResourceExhausted&) {
      ++exact_fallback_slot();
    }
  }

  // The feasibility-constrained greedy is myopic and not monotone in the
  // bound: a tighter bound occasionally blocks an early cheap merge that
  // would force expensive merges later. Since any tree of height ≤ L' is
  // also valid for L ≥ L', run the greedy at every bound up to max_height
  // and keep the best. The unbounded Modified Huffman tree is admitted too
  // whenever it fits, making the result coincide with Algorithm 2.2 for
  // loose bounds.
  DecompTree best;
  double best_cost = 0.0;
  bool have = false;
  auto consider = [&](DecompTree t) {
    if (t.height() > max_height) return;
    const double c = t.internal_cost(model, leaf_probs);
    if (!have || c < best_cost) {
      best = std::move(t);
      best_cost = c;
      have = true;
    }
  };
  for (int bound = balanced_height(n); bound <= max_height; ++bound)
    consider(bounded_greedy_once(leaf_probs, bound, model));
  consider(model.huffman_optimal() ? huffman_tree(leaf_probs, model)
                                   : modified_huffman_tree(leaf_probs, model));
  MP_CHECK(have);
  annotate(best, model, leaf_probs);
  return best;
}

std::size_t bounded_exact_fallbacks() { return exact_fallback_slot(); }

void reset_bounded_exact_fallbacks() { exact_fallback_slot() = 0; }

}  // namespace minpower
