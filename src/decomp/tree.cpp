#include "decomp/tree.hpp"

#include <algorithm>
#include <numeric>

namespace minpower {

std::vector<int> DecompTree::leaf_depths() const {
  std::vector<int> depth(static_cast<std::size_t>(num_leaves), 0);
  if (root < 0) return depth;
  // DFS with explicit depth.
  std::vector<std::pair<int, int>> stack{{root, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    const TNode& n = nodes[static_cast<std::size_t>(id)];
    if (n.is_leaf()) {
      depth[static_cast<std::size_t>(n.leaf)] = d;
    } else {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return depth;
}

double DecompTree::internal_cost(const DecompModel& model,
                                 const std::vector<double>& leaf_probs) const {
  DecompTree copy = *this;
  annotate(copy, model, leaf_probs);
  double cost = 0.0;
  for (const TNode& n : copy.nodes)
    if (!n.is_leaf()) cost += model.activity(n.prob);
  return cost;
}

DecompTree DecompTree::single_leaf(double prob) {
  DecompTree t;
  t.num_leaves = 1;
  TNode n;
  n.leaf = 0;
  n.prob = prob;
  t.nodes.push_back(n);
  t.root = 0;
  return t;
}

void annotate(DecompTree& tree, const DecompModel& model,
              const std::vector<double>& leaf_probs) {
  MP_CHECK(static_cast<int>(leaf_probs.size()) == tree.num_leaves);
  // Nodes are not guaranteed topologically ordered; do a postorder walk.
  std::vector<int> order;
  order.reserve(tree.nodes.size());
  std::vector<std::pair<int, bool>> stack{{tree.root, false}};
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    const DecompTree::TNode& n = tree.nodes[static_cast<std::size_t>(id)];
    if (expanded || n.is_leaf()) {
      order.push_back(id);
    } else {
      stack.emplace_back(id, true);
      stack.emplace_back(n.left, false);
      stack.emplace_back(n.right, false);
    }
  }
  for (int id : order) {
    DecompTree::TNode& n = tree.nodes[static_cast<std::size_t>(id)];
    if (n.is_leaf()) {
      n.prob = leaf_probs[static_cast<std::size_t>(n.leaf)];
      n.height = 0;
    } else {
      const auto& l = tree.nodes[static_cast<std::size_t>(n.left)];
      const auto& r = tree.nodes[static_cast<std::size_t>(n.right)];
      n.prob = model.merge_prob(l.prob, r.prob);
      n.height = 1 + std::max(l.height, r.height);
    }
  }
}

DecompTree tree_from_levels(const std::vector<int>& levels) {
  const int n = static_cast<int>(levels.size());
  MP_CHECK(n >= 1);
  DecompTree t;
  t.num_leaves = n;
  if (n == 1) {
    MP_CHECK(levels[0] == 0);
    return DecompTree::single_leaf(0.0);
  }
  // Kraft equality check.
  const int max_level = *std::max_element(levels.begin(), levels.end());
  long long kraft = 0;  // in units of 2^-max_level
  for (int l : levels) {
    MP_CHECK(l >= 1 && l <= max_level);
    kraft += 1LL << (max_level - l);
  }
  MP_CHECK_MSG(kraft == (1LL << max_level),
               "level assignment does not satisfy Kraft equality");

  // Bucket leaves by level, then combine pairwise from the deepest level up.
  std::vector<std::vector<int>> at_level(static_cast<std::size_t>(max_level) + 1);
  for (int i = 0; i < n; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    t.nodes.push_back(leaf);
    at_level[static_cast<std::size_t>(levels[static_cast<std::size_t>(i)])]
        .push_back(static_cast<int>(t.nodes.size()) - 1);
  }
  for (int l = max_level; l >= 1; --l) {
    auto& bucket = at_level[static_cast<std::size_t>(l)];
    MP_CHECK(bucket.size() % 2 == 0);
    for (std::size_t i = 0; i + 1 < bucket.size(); i += 2) {
      DecompTree::TNode parent;
      parent.left = bucket[i];
      parent.right = bucket[i + 1];
      parent.height =
          1 + std::max(t.nodes[static_cast<std::size_t>(bucket[i])].height,
                       t.nodes[static_cast<std::size_t>(bucket[i + 1])].height);
      t.nodes.push_back(parent);
      at_level[static_cast<std::size_t>(l) - 1].push_back(
          static_cast<int>(t.nodes.size()) - 1);
    }
    bucket.clear();
  }
  MP_CHECK(at_level[0].size() == 1);
  t.root = at_level[0][0];
  return t;
}

}  // namespace minpower
