#pragma once
// Tree-construction algorithms of Section 2.1:
//   * Algorithm 2.1 — Huffman: O(n log n); optimal for quasi-linear merge
//     functions (dynamic CMOS, uncorrelated inputs; Theorem 2.2).
//   * Algorithm 2.2 — Modified Huffman: O(n² log n) greedy that repeatedly
//     merges the pair with minimum weight-combination value; used for static
//     CMOS and for correlated inputs where F is not quasi-linear.
//   * Exhaustive enumeration over all binary trees: the oracle for Table 1
//     and for the optimality property tests (practical for n ≤ 8).
//   * The correlated-input variant of Modified Huffman using the pairwise
//     conditional-probability heuristic of Eq. 9.

#include <vector>

#include "decomp/tree.hpp"
#include "prob/joint.hpp"

namespace minpower {

/// Algorithm 2.1. `leaf_probs[i]` is the exact 1-probability of leaf i.
DecompTree huffman_tree(const std::vector<double>& leaf_probs,
                        const DecompModel& model);

/// Algorithm 2.2.
DecompTree modified_huffman_tree(const std::vector<double>& leaf_probs,
                                 const DecompModel& model);

/// Exhaustive optimum over all binary trees (merge orders). Aborts for
/// n > 9 leaves. Returns a tree minimizing internal_cost.
DecompTree best_tree_exhaustive(const std::vector<double>& leaf_probs,
                                const DecompModel& model);

/// Modified Huffman for correlated inputs (Eqs. 7–9). AND merges follow the
/// paper (Eq. 7: the pair's exact joint is the output probability); OR
/// merges extend the same idea by inclusion-exclusion. After a merge the
/// joint probability of the new node with the survivors is estimated with
/// the Eq. 9 heuristic (AND) or a pairwise triple-joint estimate (OR) and
/// clamped to its Fréchet bounds.
DecompTree modified_huffman_correlated(const JointProbabilities& joints,
                                       const DecompModel& model);

}  // namespace minpower
