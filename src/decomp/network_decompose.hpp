#pragma once
// Network-level power-efficient technology decomposition (Section 2.3):
// the `power_efficient_network_decomp(Γ, α, β)` procedure.
//
// Every internal node of the optimized network is NAND-decomposed in
// postorder with exact fanin probabilities. For the bounded-height variant,
// node slacks are computed on the original DAG under the unit-delay model
// (arrival of a node = max fanin arrival + realized NAND height of its own
// decomposition), the network slack is distributed over nodes in proportion
// to their depth_surplus (minpower height − balanced height), and nodes with
// the most negative slack are re-decomposed with tightened height bounds
// until the delay requirement is met or no node can be flattened further.

#include <optional>
#include <vector>

#include "decomp/node_decompose.hpp"
#include "netlist/network.hpp"
#include "prob/probability.hpp"

namespace minpower {

struct NetworkDecompOptions {
  CircuitStyle style = CircuitStyle::kStatic;
  DecompAlgorithm algorithm = DecompAlgorithm::kMinPower;

  /// Enable the Section 2.2/2.3 bounded-height refinement loop.
  bool bounded_height = false;

  /// Arrival time per PI (Network::pis() order); empty → all zero.
  std::vector<double> pi_arrival;

  /// Required time per PO (Network::pos() order). Empty with
  /// bounded_height=true → the conventional (balanced) decomposition depth
  /// is used as the target, i.e. "no performance degradation" mode.
  std::vector<double> po_required;

  /// PI 1-probabilities; empty → 0.5 everywhere. Ignored when
  /// `correlations` is set.
  std::vector<double> pi_prob1;

  /// Correlated-input model (Sec. 2.1.1, Eqs. 7–9): when set, node
  /// probabilities and all pairwise joints come from this pattern model
  /// (which must be built over the same network) and every node is
  /// decomposed with the correlated Modified Huffman. The bounded-height
  /// refinement, when also enabled, re-decomposes flagged nodes with the
  /// marginal-probability machinery.
  const PatternModel* correlations = nullptr;

  /// Lag-one temporal input model (one entry per PI): when non-empty and
  /// style is static, exact node transition probabilities replace the
  /// Eq. 3 temporal-independence collapse and nodes are decomposed with the
  /// full Eq. 10/11 merge. Mutually exclusive with `correlations`.
  std::vector<PiTemporalModel> temporal;

  /// Precomputed per-node 1-probabilities (indexed by NodeId up to
  /// Network::capacity()): when non-empty, the internal BDD probability
  /// pass is skipped entirely. This is the degradation hook — the engine
  /// re-runs a decomposition whose exact pass blew its BDD budget with
  /// Monte-Carlo probabilities instead. Ignored when `correlations` or
  /// `temporal` drive the probabilities.
  std::vector<double> node_prob;
};

struct NetworkDecompResult {
  Network network;           // the NAND2/INV-decomposed network
  double tree_activity = 0;  // Σ of per-node decomposition-tree activities
  int unit_depth = 0;        // unit-delay depth of the decomposed network
  int redecomposed_nodes = 0;  // bounded-height loop iterations
};

NetworkDecompResult decompose_network(const Network& net,
                                      const NetworkDecompOptions& options);

}  // namespace minpower
