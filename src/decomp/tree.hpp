#pragma once
// Decomposition trees: the binary-tree objects produced by the Huffman-style
// algorithms of Section 2, prior to NAND/INV realization.

#include <vector>

#include "decomp/model.hpp"

namespace minpower {

/// A binary tree over `num_leaves` leaves. Leaves are identified by their
/// index in the weight list handed to the construction algorithm.
struct DecompTree {
  struct TNode {
    int leaf = -1;   // >= 0 for leaves
    int left = -1;   // child node indices for internal nodes
    int right = -1;
    double prob = 0.0;  // exact 1-probability under the model used to build
    int height = 0;     // leaf = 0
    bool is_leaf() const { return leaf >= 0; }
  };

  std::vector<TNode> nodes;
  int root = -1;
  int num_leaves = 0;

  int height() const { return root < 0 ? 0 : nodes[static_cast<std::size_t>(root)].height; }

  /// Depth of each leaf (root at depth 0).
  std::vector<int> leaf_depths() const;

  /// Sum of internal-node switching activities: the G of Section 2.1,
  /// recomputed from scratch for the given model and leaf probabilities.
  double internal_cost(const DecompModel& model,
                       const std::vector<double>& leaf_probs) const;

  /// A single-leaf tree (degenerate; no internal nodes).
  static DecompTree single_leaf(double prob);
};

/// Rebuild node probabilities/heights bottom-up (after structural surgery).
void annotate(DecompTree& tree, const DecompModel& model,
              const std::vector<double>& leaf_probs);

/// Canonical tree for a feasible level assignment (Kraft sum exactly 1):
/// leaf i is placed at depth levels[i]. Aborts if the levels are infeasible.
DecompTree tree_from_levels(const std::vector<int>& levels);

}  // namespace minpower
