#pragma once
// Per-node technology decomposition: turn one SOP node into a NAND2/INV
// subnetwork (Section 2.1/2.2 applied to a single node).
//
// The SOP is decomposed in two stages — an AND tree per cube over its
// literals and an OR tree over the cubes — each built by the algorithm
// selected for the circuit style:
//   * balanced (the conventional SIS-style tech_decomp baseline),
//   * MINPOWER  (Huffman when quasi-linear, Modified Huffman otherwise),
//   * MINPOWER with a NAND-level height bound (Section 2.2).
// NAND/INV realization is polarity-aware: a sum of cubes becomes the classic
// NAND-of-NANDs form, so no inverter is spent between the OR level and its
// cubes; inverters appear only for negative literals and for AND-tree
// internal edges, where NAND2-only logic forces them.

#include <utility>
#include <vector>

#include "decomp/huffman.hpp"
#include "decomp/package_merge.hpp"
#include "decomp/transition_model.hpp"
#include "netlist/network.hpp"
#include "prob/pattern_model.hpp"

namespace minpower {

enum class DecompAlgorithm {
  kBalanced,  // conventional: balanced trees, ignores probabilities
  kMinPower,  // Section 2.1 (Huffman / Modified Huffman by style)
};

/// A decomposition plan for one node: the shape of every tree plus the
/// literal bindings, independent of any target network.
struct NodeDecomp {
  /// Literals of cube c: (local fanin index, positive phase).
  std::vector<std::vector<std::pair<int, bool>>> cube_literals;
  /// AND tree per cube (leaf i of the tree = cube_literals[c][i]).
  std::vector<DecompTree> cube_trees;
  /// OR tree over cubes (leaf i = cube i); unused when there is one cube.
  DecompTree or_tree;
  /// Realized NAND/INV height (levels from any fanin to the root).
  int realized_height = 0;
  /// Σ switching activity of the internal tree nodes as computed by the
  /// construction (exact probabilities in the correlated path; independence
  /// assumption otherwise).
  double tree_activity = 0.0;
};

/// Plan the decomposition of `cover` whose local variable i has exact
/// 1-probability `fanin_prob1[i]`. `nand_height_bound` < 0 means unbounded;
/// otherwise the plan's realized height is forced ≤ the bound (which must be
/// ≥ the balanced realization height). The cover must be non-constant.
NodeDecomp decompose_node(const Cover& cover,
                          const std::vector<double>& fanin_prob1,
                          CircuitStyle style, DecompAlgorithm algorithm,
                          int nand_height_bound = -1);

/// Materialize a plan inside `net`, reading from the given fanin nodes.
/// Returns the root of the emitted NAND2/INV subnetwork (which may be an
/// existing node, e.g. for a single positive-literal cover).
NodeId emit_node_decomp(Network& net, const std::vector<NodeId>& fanins,
                        const Cover& cover, const NodeDecomp& plan);

/// Correlation-aware MINPOWER decomposition (Eqs. 7–9 with exact pairwise
/// joints from a PatternModel). `node_fanins` are the fanin node ids inside
/// the model's network; literal and cube joints are computed exactly from
/// the pattern set, and the correlated Modified Huffman shapes both tree
/// stages. Height bounds are not supported on this path (the bounded
/// machinery falls back to marginal probabilities).
NodeDecomp decompose_node_correlated(const Cover& cover,
                                     const std::vector<NodeId>& node_fanins,
                                     const PatternModel& model,
                                     CircuitStyle style);

/// Temporal-aware MINPOWER decomposition: leaves carry full lag-one
/// transition states and both tree stages use the Eq. 10/11 merge instead
/// of the 2p(1−p) collapse. `fanin_states` are the fanins' exact transition
/// behaviours (from transition_probabilities). Static CMOS semantics.
NodeDecomp decompose_node_transitions(
    const Cover& cover, const std::vector<SignalTransition>& fanin_states);

/// Height of the balanced (minimum-height) NAND realization of `cover` —
/// the H_n of Section 2.3's depth_surplus.
int balanced_nand_height(const Cover& cover);

/// Total switching activity of the plan's internal AND/OR tree nodes: the
/// objective G the decomposition minimizes (leaf activities excluded — they
/// are decomposition-invariant).
double plan_tree_activity(const NodeDecomp& plan, const Cover& cover,
                          const std::vector<double>& fanin_prob1,
                          CircuitStyle style);

}  // namespace minpower
