#pragma once
// Weight-combination models for MINPOWER tree decomposition (Section 2.1).
//
// A decomposition tree combines signals with a fixed associative gate type
// (AND while decomposing a cube, OR while decomposing a sum of cubes). The
// state carried per tree node is its exact 1-probability, assuming spatially
// independent leaves. The model supplies:
//   * merge_prob  — the 1-probability of the combined signal (Eqs. 5/6 are
//                   this merge expressed for domino p/n circuits),
//   * activity    — the node's switching contribution under a circuit style
//                   (p, 1−p, or 2p(1−p); Eqs. 3/10/11 collapse to the last
//                   form under temporal independence),
//   * merge_cost  — activity(merge_prob(a, b)), the F of Algorithm 2.2,
//   * huffman_key — an ordering key such that the pair with the two extreme
//                   keys minimizes merge_cost when the merge function is
//                   quasi-linear (dynamic styles; Lemma 2.1), enabling the
//                   O(n log n) Huffman construction of Algorithm 2.1.

#include "prob/probability.hpp"
#include "util/check.hpp"

namespace minpower {

enum class GateType { kAnd, kOr };

class DecompModel {
 public:
  DecompModel(GateType gate, CircuitStyle style) : gate_(gate), style_(style) {}

  GateType gate() const { return gate_; }
  CircuitStyle style() const { return style_; }

  /// 1-probability of the gate output from independent input 1-probabilities.
  double merge_prob(double a, double b) const {
    MP_DCHECK(a >= -1e-9 && a <= 1.0 + 1e-9);
    MP_DCHECK(b >= -1e-9 && b <= 1.0 + 1e-9);
    return gate_ == GateType::kAnd ? a * b : 1.0 - (1.0 - a) * (1.0 - b);
  }

  /// Switching contribution of a node with 1-probability p.
  double activity(double p) const { return switching_activity(p, style_); }

  /// Algorithm 2.2's F: the cost of the internal node created by merging.
  double merge_cost(double a, double b) const {
    return activity(merge_prob(a, b));
  }

  /// True when plain Huffman (Algorithm 2.1) is provably optimal
  /// (Theorem 2.2: dynamic styles, uncorrelated inputs).
  bool huffman_optimal() const { return style_ != CircuitStyle::kStatic; }

  /// Key such that merging the two smallest keys minimizes F for the
  /// quasi-linear (dynamic) merges:
  ///   p-type: F increasing in both probs     → merge two smallest p.
  ///   n-type: F decreasing in both probs     → merge two largest p.
  /// For OR gates the monotonicity is the same in p; only the merge differs.
  double huffman_key(double p) const {
    return style_ == CircuitStyle::kDynamicN ? -p : p;
  }

 private:
  GateType gate_;
  CircuitStyle style_;
};

}  // namespace minpower
