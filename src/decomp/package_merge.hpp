#pragma once
// BOUNDED-HEIGHT decomposition (Section 2.2).
//
//   * `length_limited_levels` — the Larmore–Hirschberg package-merge
//     algorithm (Algorithm 2.3): exact O(nL) minimizer of Σ w_i·l_i subject
//     to l_i ≤ L (the BOUNDED-HEIGHT MINSUM problem). The returned level
//     assignment satisfies Kraft equality and converts to a tree with
//     `tree_from_levels`.
//   * `bounded_height_minpower_tree` — the paper's *modified* algorithm for
//     general (non-quasi-linear) merge functions. The paper sketches
//     replacing the PACKAGE step with an Algorithm 2.2-style minimum-F
//     pairing; we realize the same idea as a height-feasible greedy: merge
//     the minimum-F pair whose merge still admits a completion of height ≤ L
//     (feasibility is decided exactly by the max(x,y)+1 Huffman argument the
//     paper itself notes is quasi-linear). For L ≥ height of the unbounded
//     Modified-Huffman tree the result coincides with Algorithm 2.2.

#include <cstddef>
#include <vector>

#include "decomp/tree.hpp"

namespace minpower {

/// Exact BOUNDED-HEIGHT MINSUM level assignment (Larmore–Hirschberg).
/// Requires 2^L >= n. Weights must be non-negative.
std::vector<int> length_limited_levels(const std::vector<double>& weights,
                                       int max_level);

/// Heuristic BOUNDED-HEIGHT MINPOWER for a general merge model
/// (modified Larmore–Hirschberg in the sense of Section 2.2).
DecompTree bounded_height_minpower_tree(const std::vector<double>& leaf_probs,
                                        int max_height,
                                        const DecompModel& model);

/// Smallest achievable height for `n` leaves: ceil(log2 n).
int balanced_height(int n);

/// Number of exact bounded-height searches on the calling thread that
/// overran their step cap (or hit an "exact-overrun" fault injection) and
/// fell back to the heuristic ladder. Thread-local so a FlowEngine task can
/// reset before decomposing and read after to attribute fallbacks to itself.
std::size_t bounded_exact_fallbacks();
void reset_bounded_exact_fallbacks();

}  // namespace minpower
