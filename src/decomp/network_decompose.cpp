#include "decomp/network_decompose.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/budget.hpp"

namespace minpower {

namespace {

struct NodePlanState {
  NodeDecomp plan;
  int balanced_h = 0;
  int bound = -1;          // active NAND height bound (-1 = unbounded)
  bool redecomposed = false;
};

/// Arrival/required/slack over the *original* DAG where each internal node
/// contributes its realized decomposition height (unit-delay model).
struct Timing {
  std::vector<double> arrival;
  std::vector<double> required;
  std::vector<double> slack;
};

Timing compute_timing(const Network& net,
                      const std::unordered_map<NodeId, NodePlanState>& plans,
                      const std::vector<double>& pi_arrival,
                      const std::vector<double>& po_required) {
  Timing t;
  t.arrival.assign(net.capacity(), 0.0);
  t.required.assign(net.capacity(),
                    std::numeric_limits<double>::infinity());
  const std::vector<NodeId> order = net.topo_order();

  for (std::size_t i = 0; i < net.pis().size(); ++i)
    t.arrival[static_cast<std::size_t>(net.pis()[i])] =
        pi_arrival.empty() ? 0.0 : pi_arrival[i];

  auto height_of = [&](NodeId id) -> double {
    const auto it = plans.find(id);
    return it == plans.end() ? 0.0
                             : static_cast<double>(it->second.plan.realized_height);
  };

  for (NodeId id : order) {
    const Node& n = net.node(id);
    if (!n.is_internal()) continue;
    double a = 0.0;
    for (NodeId f : n.fanins)
      a = std::max(a, t.arrival[static_cast<std::size_t>(f)]);
    t.arrival[static_cast<std::size_t>(id)] = a + height_of(id);
  }

  for (std::size_t i = 0; i < net.pos().size(); ++i) {
    auto& req = t.required[static_cast<std::size_t>(net.pos()[i].driver)];
    req = std::min(req, po_required[i]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const Node& n = net.node(id);
    for (NodeId f : n.fanins) {
      const double req_f =
          t.required[static_cast<std::size_t>(id)] - height_of(id);
      auto& req = t.required[static_cast<std::size_t>(f)];
      req = std::min(req, req_f);
    }
  }
  t.slack.assign(net.capacity(), std::numeric_limits<double>::infinity());
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id)
    if (!net.node(id).is_dead())
      t.slack[static_cast<std::size_t>(id)] =
          t.required[static_cast<std::size_t>(id)] -
          t.arrival[static_cast<std::size_t>(id)];
  return t;
}

/// Sum of depth_surpluses along the most critical path through `target`:
/// walk backwards along max-arrival fanins and forwards along min-slack
/// fanouts.
double critical_path_surplus(const Network& net, NodeId target,
                             const Timing& t,
                             const std::unordered_map<NodeId, NodePlanState>& plans) {
  auto surplus = [&](NodeId id) -> double {
    const auto it = plans.find(id);
    if (it == plans.end()) return 0.0;
    return std::max(0, it->second.plan.realized_height - it->second.balanced_h);
  };
  double total = surplus(target);
  // Backwards.
  NodeId cur = target;
  for (;;) {
    const Node& n = net.node(cur);
    if (n.fanins.empty()) break;
    NodeId worst = n.fanins[0];
    for (NodeId f : n.fanins)
      if (t.arrival[static_cast<std::size_t>(f)] >
          t.arrival[static_cast<std::size_t>(worst)])
        worst = f;
    cur = worst;
    if (!net.node(cur).is_internal()) break;
    total += surplus(cur);
  }
  // Forwards.
  cur = target;
  for (;;) {
    const Node& n = net.node(cur);
    if (n.fanouts.empty()) break;
    NodeId worst = n.fanouts[0];
    for (NodeId f : n.fanouts)
      if (t.slack[static_cast<std::size_t>(f)] <
          t.slack[static_cast<std::size_t>(worst)])
        worst = f;
    cur = worst;
    total += surplus(cur);
  }
  return total;
}

}  // namespace

NetworkDecompResult decompose_network(const Network& net,
                                      const NetworkDecompOptions& options) {
  trace::Span span("decomp", "decomp");
  span.arg("network", net.name());
  metrics::counter("decomp.passes").add(1);
  // Exact probabilities of every original node: the Eq. 2 BDD traversal for
  // independent PIs, or the pattern distribution when correlations are
  // given.
  if (options.correlations != nullptr) {
    MP_CHECK_MSG(&options.correlations->network() == &net,
                 "pattern model must be built over the decomposed network");
    MP_CHECK_MSG(options.temporal.empty(),
                 "correlations and temporal models are mutually exclusive");
  }
  std::vector<NodeTransition> transitions;
  if (!options.temporal.empty()) {
    MP_CHECK_MSG(options.style == CircuitStyle::kStatic,
                 "the temporal model applies to static CMOS");
    transitions = transition_probabilities(net, options.temporal);
  }
  std::vector<double> prob;
  if (options.correlations != nullptr) {
    prob = options.correlations->all_probabilities();
  } else if (!transitions.empty()) {
    prob.resize(net.capacity(), 0.0);
    for (std::size_t i = 0; i < transitions.size(); ++i)
      prob[i] = transitions[i].p1;
  } else if (!options.node_prob.empty()) {
    MP_CHECK_MSG(options.node_prob.size() == net.capacity(),
                 "node_prob must cover the network capacity");
    prob = options.node_prob;
  } else {
    prob = signal_probabilities(net, options.pi_prob1);
  }

  // Phase 1: per-node plans, unrestricted (postorder is irrelevant here
  // because fanin probabilities come from the original network, exactly as
  // calculate_switching_and_correlation_probabilities(Γ) prescribes).
  std::unordered_map<NodeId, NodePlanState> plans;
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    const Node& n = net.node(id);
    if (!n.is_internal()) continue;
    budget_checkpoint("decomp");
    NodePlanState st;
    if (options.correlations != nullptr &&
        options.algorithm == DecompAlgorithm::kMinPower) {
      st.plan = decompose_node_correlated(n.cover, n.fanins,
                                          *options.correlations, options.style);
    } else if (!transitions.empty() &&
               options.algorithm == DecompAlgorithm::kMinPower) {
      std::vector<SignalTransition> fanin_states;
      fanin_states.reserve(n.fanins.size());
      for (NodeId f : n.fanins)
        fanin_states.push_back(SignalTransition::from(
            transitions[static_cast<std::size_t>(f)]));
      st.plan = decompose_node_transitions(n.cover, fanin_states);
    } else {
      std::vector<double> fanin_p;
      fanin_p.reserve(n.fanins.size());
      for (NodeId f : n.fanins)
        fanin_p.push_back(prob[static_cast<std::size_t>(f)]);
      st.plan = decompose_node(n.cover, fanin_p, options.style,
                               options.algorithm, -1);
    }
    st.balanced_h = balanced_nand_height(n.cover);
    plans.emplace(id, std::move(st));
  }
  metrics::counter("decomp.nodes_planned").add(plans.size());

  int redecomposed = 0;
  if (options.bounded_height) {
    // Required times: user-specified, or the conventional balanced depth.
    std::vector<double> po_required = options.po_required;
    if (po_required.empty()) {
      std::unordered_map<NodeId, NodePlanState> balanced;
      for (const auto& [id, st] : plans) {
        NodePlanState b;
        b.plan.realized_height = st.balanced_h;  // only the height is read
        balanced.emplace(id, std::move(b));
      }
      const Timing bt =
          compute_timing(net, balanced, options.pi_arrival,
                         std::vector<double>(net.pos().size(), 0.0));
      double depth = 0.0;
      for (const PrimaryOutput& po : net.pos())
        depth = std::max(depth,
                         bt.arrival[static_cast<std::size_t>(po.driver)]);
      po_required.assign(net.pos().size(), depth);
    }

    for (;;) {
      budget_checkpoint("decomp");
      const Timing t =
          compute_timing(net, plans, options.pi_arrival, po_required);
      // Most negative slack among nodes not yet redecomposed and with
      // surplus to give; ties broken by fanout count (path sharing).
      NodeId pick = kNoNode;
      double pick_slack = 0.0;
      for (auto& [id, st] : plans) {
        if (st.redecomposed) continue;
        if (st.plan.realized_height <= st.balanced_h) continue;
        const double s = t.slack[static_cast<std::size_t>(id)];
        if (s >= 0.0) continue;
        if (pick == kNoNode || s < pick_slack ||
            (s == pick_slack &&
             net.fanout_count(id) > net.fanout_count(pick))) {
          pick = id;
          pick_slack = s;
        }
      }
      if (pick == kNoNode) break;

      NodePlanState& st = plans.at(pick);
      const double surplus_total = critical_path_surplus(net, pick, t, plans);
      const double own_surplus =
          std::max(0, st.plan.realized_height - st.balanced_h);
      const double share =
          surplus_total > 0.0 ? pick_slack * own_surplus / surplus_total
                              : pick_slack;
      // L_n = H_n + distributed slack; slack is negative, so this shrinks
      // the node's height toward (and at most to) the balanced height.
      int bound = st.plan.realized_height +
                  static_cast<int>(std::floor(share));
      bound = std::max(bound, st.balanced_h);
      if (bound >= st.plan.realized_height) bound = st.plan.realized_height - 1;
      bound = std::max(bound, st.balanced_h);

      const Node& n = net.node(pick);
      std::vector<double> fanin_p;
      for (NodeId f : n.fanins)
        fanin_p.push_back(prob[static_cast<std::size_t>(f)]);
      st.plan = decompose_node(n.cover, fanin_p, options.style,
                               options.algorithm, bound);
      st.bound = bound;
      st.redecomposed = true;
      ++redecomposed;
    }
  }

  // Phase 2: emit Γ'.
  NetworkDecompResult result;
  Network& out = result.network;
  out.set_name(net.name() + "_nand");
  std::unordered_map<NodeId, NodeId> map;  // original → decomposed root
  for (NodeId pi : net.pis()) map[pi] = out.add_pi(net.node(pi).name);
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.is_const()) {
      // Fresh name: the original's auto-generated constant names can collide
      // with names emit_node_decomp generates in `out`.
      map[id] = out.add_constant(n.kind == NodeKind::kConstant1);
      continue;
    }
    if (!n.is_internal()) continue;
    std::vector<NodeId> fanins;
    fanins.reserve(n.fanins.size());
    for (NodeId f : n.fanins) fanins.push_back(map.at(f));
    const NodePlanState& st = plans.at(id);
    map[id] = emit_node_decomp(out, fanins, n.cover, st.plan);
    result.tree_activity += st.plan.tree_activity;
  }
  for (const PrimaryOutput& po : net.pos())
    out.add_po(po.name, map.at(po.driver));
  out.sweep();
  out.check();
  MP_CHECK(out.is_nand_network());
  result.unit_depth = out.depth();
  result.redecomposed_nodes = redecomposed;
  metrics::counter("decomp.redecomp_iterations")
      .add(static_cast<std::uint64_t>(redecomposed));
  span.arg("nodes_planned", static_cast<unsigned long long>(plans.size()));
  span.arg("redecomposed", redecomposed);
  return result;
}

}  // namespace minpower
