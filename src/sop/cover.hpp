#pragma once
// Cover: a sum-of-products over local variables, the function representation
// attached to every internal node of a Boolean network.

#include <cstdint>
#include <string>
#include <vector>

#include "sop/cube.hpp"

namespace minpower {

class Cover {
 public:
  Cover() = default;
  explicit Cover(std::vector<Cube> cubes) : cubes_(std::move(cubes)) {}

  /// Constant covers.
  static Cover zero() { return Cover{}; }
  static Cover one() { return Cover{{Cube::one()}}; }

  /// f = single literal.
  static Cover literal(int var, bool positive) {
    return Cover{{Cube::literal(var, positive)}};
  }

  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  std::size_t num_cubes() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  bool is_zero() const { return cubes_.empty(); }
  bool is_one() const {
    for (const Cube& c : cubes_)
      if (c.is_one()) return true;
    return false;
  }

  /// Bitmask of variables mentioned anywhere in the cover.
  std::uint64_t support() const {
    std::uint64_t s = 0;
    for (const Cube& c : cubes_) s |= c.support();
    return s;
  }

  int num_literals() const {
    int n = 0;
    for (const Cube& c : cubes_) n += c.size();
    return n;
  }

  void add(const Cube& c) { cubes_.push_back(c); }

  bool eval(std::uint64_t assignment) const {
    for (const Cube& c : cubes_)
      if (c.eval(assignment)) return true;
    return false;
  }

  /// Drop contradictory cubes and cubes contained in other cubes; dedup.
  /// This is single-cube containment minimization, not full two-level
  /// minimization (which the BDD layer provides when needed).
  void normalize();

  /// OR of two covers (normalized).
  static Cover disjunction(const Cover& a, const Cover& b);

  /// AND of two covers (normalized; cross product of cubes).
  static Cover conjunction(const Cover& a, const Cover& b);

  /// Complement by Shannon expansion; exact. Intended for the small node
  /// functions seen during synthesis (support is checked <= 24 vars).
  Cover complement() const;

  /// Cofactor with respect to literal (var = value).
  Cover cofactor(int var, bool value) const;

  /// True iff the two covers denote the same function (exhaustive over the
  /// union support; supports up to 24 variables).
  static bool equivalent(const Cover& a, const Cover& b);

  /// Rewrite the cover after a change of variable numbering: new_var[i] is
  /// the new index for old index i, or -1 when the variable must be unused.
  Cover remap(const std::vector<int>& new_var) const;

  std::string to_string() const;

  bool operator==(const Cover&) const = default;

 private:
  std::vector<Cube> cubes_;
};

}  // namespace minpower
