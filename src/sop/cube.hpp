#pragma once
// Cube: a product term over up to 64 local variables (node fanins).
//
// A cube stores two bitmasks: `pos` (variables appearing positively) and
// `neg` (variables appearing complemented). A variable present in both masks
// makes the cube the constant-0 product; such cubes are never stored in a
// normalized cover.

#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace minpower {

/// Maximum local variable count per node function. Technology-independent
/// optimization keeps node supports far below this.
inline constexpr int kMaxCubeVars = 64;

class Cube {
 public:
  constexpr Cube() = default;
  constexpr Cube(std::uint64_t pos, std::uint64_t neg) : pos_(pos), neg_(neg) {}

  /// The cube containing a single literal of variable `var`.
  static Cube literal(int var, bool positive) {
    MP_CHECK(var >= 0 && var < kMaxCubeVars);
    const std::uint64_t bit = std::uint64_t{1} << var;
    return positive ? Cube{bit, 0} : Cube{0, bit};
  }

  /// The empty product (constant 1).
  static constexpr Cube one() { return Cube{}; }

  std::uint64_t pos() const { return pos_; }
  std::uint64_t neg() const { return neg_; }
  std::uint64_t support() const { return pos_ | neg_; }

  bool has_pos(int var) const { return (pos_ >> var) & 1; }
  bool has_neg(int var) const { return (neg_ >> var) & 1; }
  bool mentions(int var) const { return has_pos(var) || has_neg(var); }

  /// Number of literals in the cube.
  int size() const {
    return __builtin_popcountll(pos_) + __builtin_popcountll(neg_);
  }

  bool is_one() const { return pos_ == 0 && neg_ == 0; }

  /// True when some variable appears in both phases (constant-0 product).
  bool is_contradictory() const { return (pos_ & neg_) != 0; }

  /// AND of two cubes (may be contradictory).
  Cube operator&(const Cube& o) const { return Cube{pos_ | o.pos_, neg_ | o.neg_}; }

  /// True if this cube implies `o`, i.e. o's literal set ⊆ this one's.
  /// (Every minterm of `this` is a minterm of `o`.)
  bool implies(const Cube& o) const {
    return (o.pos_ & ~pos_) == 0 && (o.neg_ & ~neg_) == 0;
  }

  /// Remove all literals of `var` (existential on the product's literal set).
  Cube drop(int var) const {
    const std::uint64_t bit = std::uint64_t{1} << var;
    return Cube{pos_ & ~bit, neg_ & ~bit};
  }

  /// Remove every literal mentioned by cube `c` (algebraic co-factor step).
  Cube without(const Cube& c) const {
    return Cube{pos_ & ~c.pos_, neg_ & ~c.neg_};
  }

  /// Evaluate under the assignment bitmask (bit v = value of variable v).
  bool eval(std::uint64_t assignment) const {
    return (pos_ & ~assignment) == 0 && (neg_ & assignment) == 0;
  }

  bool operator==(const Cube&) const = default;
  auto operator<=>(const Cube&) const = default;

  /// Printable form, e.g. "a !c d" with variables named v0, v1, ...
  std::string to_string() const;

 private:
  std::uint64_t pos_ = 0;
  std::uint64_t neg_ = 0;
};

struct CubeHash {
  std::size_t operator()(const Cube& c) const {
    std::uint64_t h = c.pos() * 0x9e3779b97f4a7c15ULL;
    h ^= c.neg() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace minpower
