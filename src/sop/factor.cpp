#include "sop/factor.hpp"

#include <algorithm>
#include <map>

#include "sop/algebra.hpp"

namespace minpower {

std::unique_ptr<FactorNode> FactorNode::literal(int var, bool phase) {
  auto n = std::make_unique<FactorNode>();
  n->kind = Kind::kLiteral;
  n->var = var;
  n->phase = phase;
  return n;
}

std::unique_ptr<FactorNode> FactorNode::nary(
    Kind kind, std::vector<std::unique_ptr<FactorNode>> children) {
  MP_CHECK(kind != Kind::kLiteral);
  MP_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children[0]);
  auto n = std::make_unique<FactorNode>();
  n->kind = kind;
  // Flatten nested same-kind children.
  for (auto& c : children) {
    if (c->kind == kind) {
      for (auto& gc : c->children) n->children.push_back(std::move(gc));
    } else {
      n->children.push_back(std::move(c));
    }
  }
  return n;
}

int FactorNode::num_literals() const {
  if (kind == Kind::kLiteral) return 1;
  int n = 0;
  for (const auto& c : children) n += c->num_literals();
  return n;
}

Cover FactorNode::to_cover() const {
  switch (kind) {
    case Kind::kLiteral:
      return Cover::literal(var, phase);
    case Kind::kAnd: {
      Cover out = Cover::one();
      for (const auto& c : children)
        out = Cover::conjunction(out, c->to_cover());
      return out;
    }
    case Kind::kOr: {
      Cover out = Cover::zero();
      for (const auto& c : children)
        out = Cover::disjunction(out, c->to_cover());
      return out;
    }
  }
  return Cover::zero();
}

std::string FactorNode::to_string() const {
  switch (kind) {
    case Kind::kLiteral:
      return (phase ? "" : "!") + std::string("v") + std::to_string(var);
    case Kind::kAnd: {
      std::string out;
      for (const auto& c : children) {
        if (!out.empty()) out += ' ';
        if (c->kind == Kind::kOr) out += "(" + c->to_string() + ")";
        else out += c->to_string();
      }
      return out;
    }
    case Kind::kOr: {
      std::string out;
      for (const auto& c : children) {
        if (!out.empty()) out += " + ";
        out += c->to_string();
      }
      return out;
    }
  }
  return "?";
}

namespace {

std::unique_ptr<FactorNode> cube_to_and(const Cube& c) {
  std::vector<std::unique_ptr<FactorNode>> lits;
  for (int v = 0; v < kMaxCubeVars; ++v) {
    if (c.has_pos(v)) lits.push_back(FactorNode::literal(v, true));
    if (c.has_neg(v)) lits.push_back(FactorNode::literal(v, false));
  }
  MP_CHECK(!lits.empty());
  return FactorNode::nary(FactorNode::Kind::kAnd, std::move(lits));
}

std::unique_ptr<FactorNode> factor_rec(Cover f) {
  f.normalize();
  MP_CHECK(!f.is_zero() && !f.is_one());

  // Pull out the common cube.
  const Cube cc = common_cube(f);
  if (!cc.is_one()) {
    Cover rest;
    for (const Cube& c : f.cubes()) rest.add(c.without(cc));
    rest.normalize();
    std::vector<std::unique_ptr<FactorNode>> parts;
    parts.push_back(cube_to_and(cc));
    if (!rest.is_one()) parts.push_back(factor_rec(std::move(rest)));
    return FactorNode::nary(FactorNode::Kind::kAnd, std::move(parts));
  }

  if (f.num_cubes() == 1) return cube_to_and(f.cubes()[0]);

  // Most frequent literal (quick_factor's divisor).
  std::map<std::pair<int, bool>, int> count;
  for (const Cube& c : f.cubes())
    for (int v = 0; v < kMaxCubeVars; ++v) {
      if (c.has_pos(v)) ++count[{v, true}];
      if (c.has_neg(v)) ++count[{v, false}];
    }
  std::pair<int, bool> best{-1, true};
  int best_count = 1;
  for (const auto& [lit, n] : count)
    if (n > best_count) {
      best_count = n;
      best = lit;
    }
  if (best.first < 0) {
    // No shared literal: plain OR of cube ANDs.
    std::vector<std::unique_ptr<FactorNode>> cubes;
    for (const Cube& c : f.cubes()) cubes.push_back(cube_to_and(c));
    return FactorNode::nary(FactorNode::Kind::kOr, std::move(cubes));
  }

  const Cube lit = Cube::literal(best.first, best.second);
  Cover quotient = divide_by_cube(f, lit);
  Cover remainder;
  for (const Cube& c : f.cubes())
    if (!((lit.pos() & ~c.pos()) == 0 && (lit.neg() & ~c.neg()) == 0))
      remainder.add(c);
  remainder.normalize();

  std::vector<std::unique_ptr<FactorNode>> and_parts;
  and_parts.push_back(FactorNode::literal(best.first, best.second));
  MP_CHECK(!quotient.is_zero());
  if (!quotient.is_one())
    and_parts.push_back(factor_rec(std::move(quotient)));
  auto head = FactorNode::nary(FactorNode::Kind::kAnd, std::move(and_parts));

  if (remainder.is_zero()) return head;
  std::vector<std::unique_ptr<FactorNode>> or_parts;
  or_parts.push_back(std::move(head));
  or_parts.push_back(factor_rec(std::move(remainder)));
  return FactorNode::nary(FactorNode::Kind::kOr, std::move(or_parts));
}

}  // namespace

std::unique_ptr<FactorNode> factor(const Cover& f) {
  MP_CHECK_MSG(!f.is_zero() && !f.is_one(), "cannot factor a constant");
  return factor_rec(f);
}

int factored_literals(const Cover& f) {
  if (f.is_zero() || f.is_one()) return 0;
  return factor(f)->num_literals();
}

}  // namespace minpower
