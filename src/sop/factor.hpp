#pragma once
// Algebraic factoring (SIS quick_factor work-alike).
//
// Factored forms are how SIS counts literals (its eliminate/extract values
// are factored-literal deltas) and how mapped-area is traditionally
// estimated before mapping. The factoring here is the standard greedy:
// pull the common cube, then recursively divide by the most frequent
// literal.

#include <memory>
#include <string>
#include <vector>

#include "sop/cover.hpp"

namespace minpower {

struct FactorNode {
  enum class Kind { kLiteral, kAnd, kOr };
  Kind kind = Kind::kLiteral;
  int var = -1;       // kLiteral
  bool phase = true;  // kLiteral
  std::vector<std::unique_ptr<FactorNode>> children;

  static std::unique_ptr<FactorNode> literal(int var, bool phase);
  static std::unique_ptr<FactorNode> nary(
      Kind kind, std::vector<std::unique_ptr<FactorNode>> children);

  /// Literal count of the factored form.
  int num_literals() const;

  /// Expansion back to SOP (for verification).
  Cover to_cover() const;

  /// e.g. "a (b + !c) + d".
  std::string to_string() const;
};

/// Factored form of a non-constant cover.
std::unique_ptr<FactorNode> factor(const Cover& f);

/// Literal count of the factored form of `f` (constants count 0).
int factored_literals(const Cover& f);

}  // namespace minpower
