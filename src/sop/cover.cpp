#include "sop/cover.hpp"

#include <algorithm>
#include <bit>

namespace minpower {

std::string Cube::to_string() const {
  if (is_one()) return "1";
  std::string out;
  for (int v = 0; v < kMaxCubeVars; ++v) {
    if (!mentions(v)) continue;
    if (!out.empty()) out += ' ';
    if (has_neg(v)) out += '!';
    out += 'v';
    out += std::to_string(v);
  }
  return out;
}

void Cover::normalize() {
  std::erase_if(cubes_, [](const Cube& c) { return c.is_contradictory(); });
  std::sort(cubes_.begin(), cubes_.end());
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
  // Single-cube containment: remove cube i if some other cube j absorbs it
  // (every minterm of i is covered by j, i.e. i implies j).
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool absorbed = false;
    for (std::size_t j = 0; j < cubes_.size() && !absorbed; ++j) {
      if (i == j) continue;
      if (cubes_[i].implies(cubes_[j]) && cubes_[i] != cubes_[j]) absorbed = true;
      // Equal cubes were deduplicated above.
    }
    if (!absorbed) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
  // A cover containing the "1" cube is the constant 1.
  for (const Cube& c : cubes_) {
    if (c.is_one()) {
      cubes_ = {Cube::one()};
      return;
    }
  }
}

Cover Cover::disjunction(const Cover& a, const Cover& b) {
  Cover out;
  out.cubes_.reserve(a.num_cubes() + b.num_cubes());
  out.cubes_.insert(out.cubes_.end(), a.cubes_.begin(), a.cubes_.end());
  out.cubes_.insert(out.cubes_.end(), b.cubes_.begin(), b.cubes_.end());
  out.normalize();
  return out;
}

Cover Cover::conjunction(const Cover& a, const Cover& b) {
  Cover out;
  out.cubes_.reserve(a.num_cubes() * b.num_cubes());
  for (const Cube& ca : a.cubes_)
    for (const Cube& cb : b.cubes_) {
      const Cube c = ca & cb;
      if (!c.is_contradictory()) out.cubes_.push_back(c);
    }
  out.normalize();
  return out;
}

Cover Cover::cofactor(int var, bool value) const {
  Cover out;
  for (const Cube& c : cubes_) {
    if (value ? c.has_neg(var) : c.has_pos(var)) continue;  // cube dies
    out.cubes_.push_back(c.drop(var));
  }
  out.normalize();
  return out;
}

Cover Cover::complement() const {
  if (is_zero()) return one();
  if (is_one()) return zero();
  const std::uint64_t sup = support();
  MP_CHECK_MSG(std::popcount(sup) <= 24,
               "complement() limited to 24-variable node functions");
  // Shannon: !f = !x·!f_{!x} + x·!f_x on the lowest support variable.
  const int var = std::countr_zero(sup);
  const Cover f0 = cofactor(var, false).complement();
  const Cover f1 = cofactor(var, true).complement();
  Cover out = disjunction(conjunction(Cover::literal(var, false), f0),
                          conjunction(Cover::literal(var, true), f1));
  out.normalize();
  return out;
}

bool Cover::equivalent(const Cover& a, const Cover& b) {
  const std::uint64_t sup = a.support() | b.support();
  const int n = std::popcount(sup);
  MP_CHECK_MSG(n <= 24, "equivalent() limited to 24-variable functions");
  // Map the k-th set bit of sup to position k of the enumeration counter.
  int vars[24];
  int k = 0;
  for (int v = 0; v < kMaxCubeVars; ++v)
    if ((sup >> v) & 1) vars[k++] = v;
  const std::uint64_t count = std::uint64_t{1} << n;
  for (std::uint64_t m = 0; m < count; ++m) {
    std::uint64_t assignment = 0;
    for (int i = 0; i < n; ++i)
      if ((m >> i) & 1) assignment |= std::uint64_t{1} << vars[i];
    if (a.eval(assignment) != b.eval(assignment)) return false;
  }
  return true;
}

Cover Cover::remap(const std::vector<int>& new_var) const {
  Cover out;
  out.cubes_.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    std::uint64_t pos = 0;
    std::uint64_t neg = 0;
    for (int v = 0; v < kMaxCubeVars; ++v) {
      if (!c.mentions(v)) continue;
      MP_CHECK(v < static_cast<int>(new_var.size()) && new_var[v] >= 0);
      const std::uint64_t bit = std::uint64_t{1} << new_var[v];
      if (c.has_pos(v)) pos |= bit;
      if (c.has_neg(v)) neg |= bit;
    }
    out.cubes_.push_back(Cube{pos, neg});
  }
  out.normalize();
  return out;
}

std::string Cover::to_string() const {
  if (is_zero()) return "0";
  std::string out;
  for (const Cube& c : cubes_) {
    if (!out.empty()) out += " + ";
    out += c.to_string();
  }
  return out;
}

}  // namespace minpower
