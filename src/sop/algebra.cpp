#include "sop/algebra.hpp"

#include <algorithm>

namespace minpower {

Cube common_cube(const Cover& f) {
  if (f.empty()) return Cube::one();
  std::uint64_t pos = ~std::uint64_t{0};
  std::uint64_t neg = ~std::uint64_t{0};
  for (const Cube& c : f.cubes()) {
    pos &= c.pos();
    neg &= c.neg();
  }
  return Cube{pos, neg};
}

bool is_cube_free(const Cover& f) { return common_cube(f).is_one(); }

Cover divide_by_cube(const Cover& f, const Cube& d) {
  Cover q;
  for (const Cube& c : f.cubes())
    if ((d.pos() & ~c.pos()) == 0 && (d.neg() & ~c.neg()) == 0)  // d ⊆ c
      q.add(c.without(d));
  q.normalize();
  return q;
}

DivisionResult algebraic_divide(const Cover& f, const Cover& d) {
  MP_CHECK(!d.empty());
  // Classic weak division: quotient = intersection over cubes di of
  // (f / di); remainder = f - quotient*d.
  Cover q = divide_by_cube(f, d.cubes().front());
  for (std::size_t i = 1; i < d.num_cubes() && !q.empty(); ++i) {
    const Cover qi = divide_by_cube(f, d.cubes()[i]);
    // Intersect cube lists (algebraic intersection = set intersection).
    Cover next;
    for (const Cube& c : q.cubes())
      if (std::find(qi.cubes().begin(), qi.cubes().end(), c) != qi.cubes().end())
        next.add(c);
    q = std::move(next);
  }
  q.normalize();
  DivisionResult out;
  out.quotient = q;
  if (q.empty()) {
    out.remainder = f;
    return out;
  }
  // remainder = cubes of f not produced by q*d.
  Cover qd = Cover::conjunction(q, d);
  for (const Cube& c : f.cubes())
    if (std::find(qd.cubes().begin(), qd.cubes().end(), c) == qd.cubes().end())
      out.remainder.add(c);
  out.remainder.normalize();
  return out;
}

namespace {

void kernels_rec(const Cover& f, const Cube& co_kernel, int min_var,
                 std::size_t max_kernels, std::vector<Kernel>& out) {
  if (out.size() >= max_kernels) return;
  const std::uint64_t sup = f.support();
  for (int v = min_var; v < kMaxCubeVars; ++v) {
    if (out.size() >= max_kernels) return;
    if (!((sup >> v) & 1)) continue;
    for (const bool phase : {true, false}) {
      const Cube lit = Cube::literal(v, phase);
      // Count cubes divisible by this literal.
      int hits = 0;
      for (const Cube& c : f.cubes())
        if ((lit.pos() & ~c.pos()) == 0 && (lit.neg() & ~c.neg()) == 0) ++hits;
      if (hits < 2) continue;
      Cover q = divide_by_cube(f, lit);
      const Cube cc = common_cube(q);
      // Skip if a variable below v divides the quotient: that kernel is
      // found through the other variable (standard duplicate pruning).
      bool dominated = false;
      for (int u = 0; u < v && !dominated; ++u)
        if (cc.mentions(u)) dominated = true;
      if (dominated) continue;
      // Make cube-free.
      Cover k;
      for (const Cube& c : q.cubes()) k.add(c.without(cc));
      k.normalize();
      const Cube new_co = co_kernel & lit & cc;
      out.push_back(Kernel{k, new_co});
      kernels_rec(k, new_co, v + 1, max_kernels, out);
    }
  }
}

}  // namespace

std::vector<Kernel> kernels(const Cover& f, std::size_t max_kernels) {
  std::vector<Kernel> out;
  if (f.num_cubes() < 2) return out;
  const Cube cc = common_cube(f);
  Cover base;
  for (const Cube& c : f.cubes()) base.add(c.without(cc));
  base.normalize();
  out.push_back(Kernel{base, cc});  // the top-level (cube-free) kernel
  kernels_rec(base, cc, 0, max_kernels, out);
  // Deduplicate identical kernels.
  std::sort(out.begin(), out.end(), [](const Kernel& a, const Kernel& b) {
    if (a.kernel.cubes() != b.kernel.cubes())
      return a.kernel.cubes() < b.kernel.cubes();
    return std::pair{a.co_kernel.pos(), a.co_kernel.neg()} <
           std::pair{b.co_kernel.pos(), b.co_kernel.neg()};
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Kernel& a, const Kernel& b) {
                          return a.kernel.cubes() == b.kernel.cubes();
                        }),
            out.end());
  return out;
}

}  // namespace minpower
