#pragma once
// Algebraic (weak-division) operations on covers: the machinery behind the
// technology-independent optimization substrate (eliminate / fast-extract).
//
// All functions treat covers as algebraic expressions: cubes are products of
// literals and no Boolean identities beyond commutativity/absorption are used.

#include <utility>
#include <vector>

#include "sop/cover.hpp"

namespace minpower {

/// Largest cube dividing every cube of `f` (the product of common literals).
/// Returns the "1" cube when f has no common literal or is constant.
Cube common_cube(const Cover& f);

/// Quotient of f by a single cube d: { c without d : c in f, d ⊆ c }.
Cover divide_by_cube(const Cover& f, const Cube& d);

/// Weak (algebraic) division f = q·d + r.
/// q is the largest cover with q·d algebraically contained in f; r collects
/// the remaining cubes. d must be non-empty.
struct DivisionResult {
  Cover quotient;
  Cover remainder;
};
DivisionResult algebraic_divide(const Cover& f, const Cover& d);

/// A kernel of f together with its co-kernel cube.
struct Kernel {
  Cover kernel;
  Cube co_kernel;
};

/// All kernels of f (cube-free quotients of f by cubes), computed by the
/// classic recursive kerneling procedure. `max_kernels` caps the output for
/// very large covers. The trivial kernel (f itself, when cube-free) is
/// included.
std::vector<Kernel> kernels(const Cover& f, std::size_t max_kernels = 256);

/// True when no single literal divides every cube of f.
bool is_cube_free(const Cover& f);

}  // namespace minpower
