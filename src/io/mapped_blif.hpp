#pragma once
// Mapped-netlist interchange: the SIS ".gate" BLIF dialect.
//
//   .model name
//   .inputs ...
//   .outputs ...
//   .gate <cell> <pin>=<signal> ... <output-pin>=<signal>
//   .end
//
// The writer names each signal after its subject-graph node; the reader
// resolves cells against a Library and reconstructs a MappedNetwork over a
// freshly built subject network whose nodes carry the gates' SOPs (so the
// result can be re-verified, re-timed and re-scored like any other mapping).

#include <memory>
#include <ostream>
#include <string>

#include "map/mapped.hpp"

namespace minpower {

void write_mapped_blif(const MappedNetwork& mn, std::ostream& out);
std::string write_mapped_blif_string(const MappedNetwork& mn);

/// Parse a .gate-style mapped BLIF. The returned bundle owns the subject
/// network the MappedNetwork points into.
struct ParsedMappedNetwork {
  std::unique_ptr<Network> subject;
  MappedNetwork mapped;
};
ParsedMappedNetwork read_mapped_blif_string(const std::string& text,
                                            const Library& lib);

}  // namespace minpower
