#include "io/mapped_blif.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/strings.hpp"

namespace minpower {

void write_mapped_blif(const MappedNetwork& mn, std::ostream& out) {
  const Network& subject = *mn.subject;
  out << ".model "
      << (subject.name().empty() ? "mapped" : subject.name() + "_mapped")
      << "\n.inputs";
  for (NodeId pi : subject.pis()) out << ' ' << subject.node(pi).name;
  out << "\n.outputs";
  for (std::size_t i = 0; i < subject.pos().size(); ++i)
    out << ' ' << subject.pos()[i].name;
  out << "\n";
  // Constant signals referenced by POs (gates never read constants after
  // sweep, but a PO can be tied off). Emit each once.
  {
    std::vector<NodeId> consts;
    for (NodeId s : mn.po_signal)
      if (subject.node(s).is_const()) consts.push_back(s);
    std::sort(consts.begin(), consts.end());
    consts.erase(std::unique(consts.begin(), consts.end()), consts.end());
    for (NodeId s : consts) {
      const Node& n = subject.node(s);
      out << ".names " << n.name << "\n";
      if (n.kind == NodeKind::kConstant1) out << "1\n";
    }
  }
  for (const MappedGateInst& g : mn.gates) {
    out << ".gate " << g.gate->name;
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
      out << ' ' << g.gate->pins[i].name << '='
          << subject.node(g.pin_nodes[i]).name;
    out << ' ' << g.gate->output << '=' << subject.node(g.root).name << "\n";
  }
  // PO aliases.
  for (std::size_t i = 0; i < subject.pos().size(); ++i) {
    const std::string& sig = subject.node(mn.po_signal[i]).name;
    if (sig != subject.pos()[i].name)
      out << ".names " << sig << ' ' << subject.pos()[i].name << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_mapped_blif_string(const MappedNetwork& mn) {
  std::ostringstream out;
  write_mapped_blif(mn, out);
  return out.str();
}

ParsedMappedNetwork read_mapped_blif_string(const std::string& text,
                                            const Library& lib) {
  ParsedMappedNetwork result;
  result.subject = std::make_unique<Network>();
  Network& net = *result.subject;

  struct RawGate {
    const Gate* gate;
    std::vector<std::string> pin_signal;  // per gate pin
    std::string out_signal;
  };
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<RawGate> gates;
  std::vector<std::pair<std::string, std::string>> aliases;  // src → po name
  std::vector<std::pair<std::string, bool>> constants;       // name, value

  std::istringstream in(text);
  std::string line;
  bool expect_alias_row = false;
  std::string pending_const;  // .names with one signal: constant definition
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    if (expect_alias_row) {
      MP_CHECK_MSG(fields.size() == 2 && fields[0] == "1" && fields[1] == "1",
                   "mapped BLIF .names must be a buffer");
      expect_alias_row = false;
      continue;
    }
    if (!pending_const.empty()) {
      if (fields.size() == 1 && fields[0] == "1") {
        constants.emplace_back(pending_const, true);
        pending_const.clear();
        continue;
      }
      constants.emplace_back(pending_const, false);
      pending_const.clear();
      // fall through: the current line still needs processing
    }
    if (fields[0] == ".model") continue;
    if (fields[0] == ".end") break;
    if (fields[0] == ".inputs") {
      for (std::size_t i = 1; i < fields.size(); ++i)
        input_names.emplace_back(fields[i]);
    } else if (fields[0] == ".outputs") {
      for (std::size_t i = 1; i < fields.size(); ++i)
        output_names.emplace_back(fields[i]);
    } else if (fields[0] == ".gate") {
      MP_CHECK_MSG(fields.size() >= 3, ".gate needs cell and bindings");
      RawGate g;
      g.gate = lib.find(std::string(fields[1]));
      MP_CHECK_MSG(g.gate != nullptr,
                   ("unknown cell: " + std::string(fields[1])).c_str());
      g.pin_signal.resize(g.gate->pins.size());
      for (std::size_t i = 2; i < fields.size(); ++i) {
        const auto eq = fields[i].find('=');
        MP_CHECK_MSG(eq != std::string_view::npos, ".gate binding needs '='");
        const std::string pin(fields[i].substr(0, eq));
        const std::string sig(fields[i].substr(eq + 1));
        if (pin == g.gate->output) {
          g.out_signal = sig;
        } else {
          bool found = false;
          for (std::size_t p = 0; p < g.gate->pins.size(); ++p)
            if (g.gate->pins[p].name == pin) {
              g.pin_signal[p] = sig;
              found = true;
            }
          MP_CHECK_MSG(found, ("unknown pin: " + pin).c_str());
        }
      }
      MP_CHECK_MSG(!g.out_signal.empty(), ".gate output binding missing");
      for (const std::string& s : g.pin_signal)
        MP_CHECK_MSG(!s.empty(), ".gate input binding missing");
      gates.push_back(std::move(g));
    } else if (fields[0] == ".names") {
      if (fields.size() == 2) {
        pending_const = std::string(fields[1]);
      } else {
        MP_CHECK_MSG(fields.size() == 3,
                     "mapped BLIF .names may only alias a PO or define a "
                     "constant");
        aliases.emplace_back(std::string(fields[1]), std::string(fields[2]));
        expect_alias_row = true;
      }
    }
  }
  if (!pending_const.empty()) constants.emplace_back(pending_const, false);

  for (const std::string& name : input_names) net.add_pi(name);
  for (const auto& [name, value] : constants) net.add_constant(value, name);

  // Place gates in dependency order; each becomes one node carrying the
  // cell's SOP over its pin signals.
  std::vector<bool> placed(gates.size(), false);
  std::size_t remaining = gates.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
      if (placed[gi]) continue;
      const RawGate& g = gates[gi];
      bool ready = true;
      for (const std::string& s : g.pin_signal)
        if (net.find(s) == kNoNode) ready = false;
      if (!ready) continue;
      std::vector<NodeId> fanins;
      for (const std::string& s : g.pin_signal) fanins.push_back(net.find(s));
      const Cover cover =
          cover_from_expr(*g.gate->function, g.gate->function->variables());
      const NodeId root = net.add_node(fanins, cover, g.out_signal);
      MappedGateInst inst;
      inst.gate = g.gate;
      inst.root = root;
      inst.pin_nodes = std::move(fanins);
      result.mapped.gates.push_back(std::move(inst));
      placed[gi] = true;
      --remaining;
      progress = true;
    }
    MP_CHECK_MSG(progress, "mapped BLIF gates form a cycle");
  }

  std::unordered_map<std::string, std::string> alias_of;  // po name → src
  for (const auto& [src, po] : aliases) alias_of[po] = src;
  for (const std::string& po : output_names) {
    const std::string& sig = alias_of.contains(po) ? alias_of[po] : po;
    const NodeId driver = net.find(sig);
    MP_CHECK_MSG(driver != kNoNode, ("undriven output: " + po).c_str());
    net.add_po(po, driver);
    result.mapped.po_signal.push_back(driver);
  }
  net.check();
  result.mapped.subject = result.subject.get();
  result.mapped.lib = &lib;
  result.mapped.check();
  return result;
}

}  // namespace minpower
