#pragma once
// Berkeley Logic Interchange Format (BLIF) reader and writer.
//
// Supported subset: .model/.inputs/.outputs/.names/.end, '-' don't-cares,
// single-output covers in either ON-set (output column 1) or OFF-set
// (output column 0) form, '\' line continuation, '#' comments, and .latch
// (converted to a pseudo-PI for the latch output plus a pseudo-PO for the
// latch input — the standard combinational-core view of sequential
// benchmarks, which is how the paper evaluates ISCAS-89 circuits).

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "netlist/network.hpp"

namespace minpower {

/// Diagnostic for a malformed BLIF model. `line` is the 1-based physical
/// line where the problem was detected (the first line of a continued
/// logical line; 0 for model-level problems like an undriven output).
struct BlifError {
  std::string message;
  int line = 0;

  /// "line 12: BLIF cover row width mismatch" (or just the message when no
  /// line applies).
  std::string to_string() const;
};

/// Parse a BLIF model, reporting malformed input as a structured error
/// instead of aborting: returns std::nullopt and fills `error` (when
/// non-null) on any syntax or structural problem — truncated/empty .names,
/// rows outside .names, width or polarity violations, oversized cube lines,
/// duplicate or twice-driven signals, cycles, undriven outputs. A missing
/// .end is tolerated (EOF ends the model), matching common BLIF emitters.
std::optional<Network> try_read_blif(std::istream& in,
                                     BlifError* error = nullptr);
std::optional<Network> try_read_blif_string(const std::string& text,
                                            BlifError* error = nullptr);

/// Parse a BLIF model. Aborts with a diagnostic on malformed input
/// (try_read_blif with the error turned into an MP_CHECK failure).
Network read_blif(std::istream& in);
Network read_blif_string(const std::string& text);
Network read_blif_file(const std::string& path);

/// Serialize as BLIF (ON-set covers).
void write_blif(const Network& net, std::ostream& out);
std::string write_blif_string(const Network& net);

}  // namespace minpower
