#pragma once
// Berkeley Logic Interchange Format (BLIF) reader and writer.
//
// Supported subset: .model/.inputs/.outputs/.names/.end, '-' don't-cares,
// single-output covers in either ON-set (output column 1) or OFF-set
// (output column 0) form, '\' line continuation, '#' comments, and .latch
// (converted to a pseudo-PI for the latch output plus a pseudo-PO for the
// latch input — the standard combinational-core view of sequential
// benchmarks, which is how the paper evaluates ISCAS-89 circuits).

#include <istream>
#include <ostream>
#include <string>

#include "netlist/network.hpp"

namespace minpower {

/// Parse a BLIF model. Aborts with a diagnostic on malformed input.
Network read_blif(std::istream& in);
Network read_blif_string(const std::string& text);
Network read_blif_file(const std::string& path);

/// Serialize as BLIF (ON-set covers).
void write_blif(const Network& net, std::ostream& out);
std::string write_blif_string(const Network& net);

}  // namespace minpower
