#include "io/blif.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace minpower {

std::string BlifError::to_string() const {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ": " + message;
}

namespace {

/// OFF-set covers are realized through Cover::complement, whose Shannon
/// expansion supports at most this many variables.
constexpr std::size_t kMaxOffsetVars = 24;

struct RawGate {
  std::vector<std::string> signals;  // inputs..., output
  std::vector<std::string> rows;     // cover rows "pattern value"
  int line = 0;                      // physical line of the .names header
  std::vector<int> row_lines;        // physical line per cover row
};

bool fail(BlifError* error, int line, std::string message) {
  if (error) {
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

/// Reads logical BLIF lines: strips comments, joins '\' continuations, and
/// reports the physical line number where each logical line starts.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// False at end of input. A backslash continuation that runs into EOF is
  /// reported through `truncated()` after the final next() returns.
  bool next(std::string& out, int& start_line) {
    out.clear();
    start_line = 0;
    std::string line;
    bool continued = false;
    while (std::getline(in_, line)) {
      ++line_no_;
      if (const auto hash = line.find('#'); hash != std::string::npos)
        line.erase(hash);
      std::string_view t = trim(line);
      continued = !t.empty() && t.back() == '\\';
      if (continued) t = trim(t.substr(0, t.size() - 1));
      if (!t.empty() || continued) {
        if (start_line == 0) start_line = line_no_;
        if (!out.empty() && !t.empty()) out += ' ';
        out += std::string(t);
      }
      if (!continued && !out.empty()) return true;
    }
    if (continued) {  // sticky: a later (empty) next() must not clear it
      truncated_ = true;
      truncated_line_ = start_line;
    }
    return !out.empty();
  }

  bool truncated() const { return truncated_; }
  int truncated_line() const { return truncated_line_; }

 private:
  std::istream& in_;
  int line_no_ = 0;
  bool truncated_ = false;
  int truncated_line_ = 0;
};

bool cover_from_rows(const RawGate& g, std::size_t num_inputs, Cover& out,
                     BlifError* error) {
  // Determine polarity from the output column (all rows must agree; SIS
  // enforces the same restriction).
  bool has_on = false;
  bool has_off = false;
  for (std::size_t r = 0; r < g.rows.size(); ++r) {
    const auto fields = split_ws(g.rows[r]);
    if (fields.empty())
      return fail(error, g.row_lines[r], "empty BLIF cover row");
    const std::string_view value = fields.back();
    if (value == "1") has_on = true;
    else if (value == "0") has_off = true;
    else
      return fail(error, g.row_lines[r],
                  "BLIF cover output column must be 0 or 1");
  }
  if (has_on && has_off)
    return fail(error, g.line, "BLIF cover mixes ON-set and OFF-set rows");
  if (has_off && num_inputs > kMaxOffsetVars)
    return fail(error, g.line,
                "BLIF OFF-set cover over " + std::to_string(num_inputs) +
                    " inputs exceeds the " + std::to_string(kMaxOffsetVars) +
                    "-variable complement limit");

  Cover cover;
  for (std::size_t r = 0; r < g.rows.size(); ++r) {
    const auto fields = split_ws(g.rows[r]);
    const int row_line = g.row_lines[r];
    std::string_view pattern;
    if (num_inputs == 0) {
      if (fields.size() != 1)
        return fail(error, row_line,
                    "BLIF cover row of a 0-input .names takes only the "
                    "output value");
    } else {
      if (fields.size() != 2)
        return fail(error, row_line, "BLIF cover row needs pattern + value");
      pattern = fields[0];
      if (pattern.size() != num_inputs)
        return fail(error, row_line,
                    "BLIF cover row width mismatch: " +
                        std::to_string(pattern.size()) + " literals for " +
                        std::to_string(num_inputs) + " inputs");
    }
    std::uint64_t pos = 0;
    std::uint64_t neg = 0;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      const char ch = pattern[i];
      if (ch == '1') pos |= std::uint64_t{1} << i;
      else if (ch == '0') neg |= std::uint64_t{1} << i;
      else if (ch != '-')
        return fail(error, row_line, "BLIF cover literal must be 0/1/-");
    }
    cover.add(Cube{pos, neg});
  }
  cover.normalize();
  if (has_off) cover = cover.complement();
  out = std::move(cover);
  return true;
}

bool parse_blif(std::istream& in, Network& net, BlifError* error) {
  std::vector<std::string> input_names;
  std::vector<int> input_lines;
  std::vector<std::string> output_names;
  std::vector<RawGate> gates;
  std::vector<std::pair<std::string, std::string>> latches;  // in, out
  RawGate* current = nullptr;

  LineReader reader(in);
  std::string line;
  int line_no = 0;
  bool saw_end = false;
  while (!saw_end && reader.next(line, line_no)) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    const std::string_view head = fields[0];
    if (head == ".model") {
      if (fields.size() > 1) net.set_name(std::string(fields[1]));
      current = nullptr;
    } else if (head == ".inputs") {
      for (std::size_t i = 1; i < fields.size(); ++i) {
        input_names.emplace_back(fields[i]);
        input_lines.push_back(line_no);
      }
      current = nullptr;
    } else if (head == ".outputs") {
      for (std::size_t i = 1; i < fields.size(); ++i)
        output_names.emplace_back(fields[i]);
      current = nullptr;
    } else if (head == ".names") {
      RawGate g;
      for (std::size_t i = 1; i < fields.size(); ++i)
        g.signals.emplace_back(fields[i]);
      if (g.signals.empty())
        return fail(error, line_no, ".names needs at least an output");
      if (g.signals.size() - 1 > static_cast<std::size_t>(kMaxCubeVars))
        return fail(error, line_no,
                    ".names has " + std::to_string(g.signals.size() - 1) +
                        " inputs; at most " + std::to_string(kMaxCubeVars) +
                        " are supported");
      g.line = line_no;
      gates.push_back(std::move(g));
      current = &gates.back();
    } else if (head == ".latch") {
      if (fields.size() < 3)
        return fail(error, line_no, ".latch needs input and output");
      latches.emplace_back(std::string(fields[1]), std::string(fields[2]));
      current = nullptr;
    } else if (head == ".end") {
      saw_end = true;  // missing .end is tolerated: EOF also ends the model
    } else if (head[0] == '.') {
      // Ignore unsupported directives (.default_input_arrival etc.).
      current = nullptr;
    } else {
      if (current == nullptr)
        return fail(error, line_no, "BLIF cover row outside .names");
      current->rows.push_back(line);
      current->row_lines.push_back(line_no);
    }
  }
  if (reader.truncated())
    return fail(error, reader.truncated_line(),
                "backslash continuation runs into end of file");

  // Create PIs (declared inputs + latch outputs).
  for (std::size_t i = 0; i < input_names.size(); ++i) {
    if (net.find(input_names[i]) != kNoNode)
      return fail(error, input_lines[i],
                  "BLIF input declared twice: " + input_names[i]);
    net.add_pi(input_names[i]);
  }
  for (const auto& [li, lo] : latches)
    if (net.find(lo) == kNoNode) net.add_pi(lo);

  // Create internal nodes in dependency order: iterate until all placed.
  std::vector<bool> placed(gates.size(), false);
  std::size_t remaining = gates.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
      if (placed[gi]) continue;
      const RawGate& g = gates[gi];
      const std::size_t num_inputs = g.signals.size() - 1;
      bool ready = true;
      for (std::size_t i = 0; i < num_inputs && ready; ++i)
        if (net.find(g.signals[i]) == kNoNode) ready = false;
      if (!ready) continue;

      const std::string& out_name = g.signals.back();
      if (net.find(out_name) != kNoNode)
        return fail(error, g.line, "BLIF signal driven twice: " + out_name);
      Cover cover;
      if (!cover_from_rows(g, num_inputs, cover, error)) return false;
      if (num_inputs == 0 || cover.is_zero() || cover.is_one()) {
        net.add_constant(cover.is_one(), out_name);
      } else {
        std::vector<NodeId> fanins;
        fanins.reserve(num_inputs);
        for (std::size_t i = 0; i < num_inputs; ++i)
          fanins.push_back(net.find(g.signals[i]));
        // Drop fanins the normalized cover no longer mentions? Keep as-is;
        // sweep handles redundancy later.
        net.add_node(std::move(fanins), std::move(cover), out_name);
      }
      placed[gi] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      // Report the first stuck gate: its line pinpoints the cycle/typo.
      for (std::size_t gi = 0; gi < gates.size(); ++gi)
        if (!placed[gi])
          return fail(error, gates[gi].line,
                      "BLIF gates form a cycle or use undefined signals "
                      "(first stuck output: " + gates[gi].signals.back() +
                          ")");
      return fail(error, 0,
                  "BLIF gates form a cycle or use undefined signals");
    }
  }

  for (const std::string& name : output_names) {
    const NodeId driver = net.find(name);
    if (driver == kNoNode)
      return fail(error, 0, "BLIF output is undriven: " + name);
    net.add_po(name, driver);
  }
  for (const auto& [li, lo] : latches) {
    const NodeId driver = net.find(li);
    if (driver == kNoNode)
      return fail(error, 0, "BLIF latch input is undriven: " + li);
    // Pseudo-PO named after the latch *output*: "<state>__next" is the next
    // value of pseudo-PI <state>, which is what sequential analysis pairs.
    net.add_po(lo + "__next", driver);
  }
  net.check();
  return true;
}

}  // namespace

std::optional<Network> try_read_blif(std::istream& in, BlifError* error) {
  Network net;
  if (!parse_blif(in, net, error)) return std::nullopt;
  return net;
}

std::optional<Network> try_read_blif_string(const std::string& text,
                                            BlifError* error) {
  std::istringstream in(text);
  return try_read_blif(in, error);
}

Network read_blif(std::istream& in) {
  BlifError error;
  std::optional<Network> net = try_read_blif(in, &error);
  MP_CHECK_MSG(net.has_value(),
               ("BLIF parse error: " + error.to_string()).c_str());
  return std::move(*net);
}

Network read_blif_string(const std::string& text) {
  std::istringstream in(text);
  return read_blif(in);
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  MP_CHECK_MSG(in.good(), ("cannot open BLIF file: " + path).c_str());
  return read_blif(in);
}

void write_blif(const Network& net, std::ostream& out) {
  out << ".model " << (net.name().empty() ? "top" : net.name()) << "\n";
  out << ".inputs";
  for (NodeId pi : net.pis()) out << ' ' << net.node(pi).name;
  out << "\n.outputs";
  for (const PrimaryOutput& po : net.pos()) out << ' ' << po.name;
  out << "\n";

  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kConstant0) {
      out << ".names " << n.name << "\n";  // empty cover = constant 0
    } else if (n.kind == NodeKind::kConstant1) {
      out << ".names " << n.name << "\n1\n";
    } else if (n.is_internal()) {
      out << ".names";
      for (NodeId f : n.fanins) out << ' ' << net.node(f).name;
      out << ' ' << n.name << "\n";
      for (const Cube& c : n.cover.cubes()) {
        for (std::size_t i = 0; i < n.fanins.size(); ++i) {
          if (c.has_pos(static_cast<int>(i))) out << '1';
          else if (c.has_neg(static_cast<int>(i))) out << '0';
          else out << '-';
        }
        out << " 1\n";
      }
    }
  }
  // POs whose name differs from the driver need a buffer in BLIF.
  for (const PrimaryOutput& po : net.pos()) {
    const std::string& dn = net.node(po.driver).name;
    if (dn != po.name)
      out << ".names " << dn << ' ' << po.name << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& net) {
  std::ostringstream out;
  write_blif(net, out);
  return out.str();
}

}  // namespace minpower
