#include "io/blif.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace minpower {

namespace {

struct RawGate {
  std::vector<std::string> signals;  // inputs..., output
  std::vector<std::string> rows;     // cover rows "pattern value"
};

/// Read one logical BLIF line: strips comments, joins '\' continuations.
bool next_logical_line(std::istream& in, std::string& out) {
  out.clear();
  std::string line;
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::string_view t = trim(line);
    const bool continued = !t.empty() && t.back() == '\\';
    if (continued) t.remove_suffix(1);
    if (!t.empty()) {
      if (!out.empty()) out += ' ';
      out += std::string(t);
    }
    if (!continued && !out.empty()) return true;
    if (!continued && out.empty()) continue;
  }
  return !out.empty();
}

Cover cover_from_rows(const RawGate& g, std::size_t num_inputs) {
  // Determine polarity from the output column (all rows must agree; SIS
  // enforces the same restriction).
  bool has_on = false;
  bool has_off = false;
  for (const std::string& row : g.rows) {
    const auto fields = split_ws(row);
    MP_CHECK_MSG(!fields.empty(), "empty BLIF cover row");
    const std::string_view value = fields.back();
    if (value == "1") has_on = true;
    else if (value == "0") has_off = true;
    else MP_CHECK_MSG(false, "BLIF cover output column must be 0 or 1");
  }
  MP_CHECK_MSG(!(has_on && has_off),
               "BLIF cover mixes ON-set and OFF-set rows");

  Cover cover;
  for (const std::string& row : g.rows) {
    const auto fields = split_ws(row);
    std::string_view pattern;
    if (num_inputs == 0) {
      MP_CHECK(fields.size() == 1);
    } else {
      MP_CHECK_MSG(fields.size() == 2, "BLIF cover row needs pattern + value");
      pattern = fields[0];
      MP_CHECK_MSG(pattern.size() == num_inputs,
                   "BLIF cover row width mismatch");
    }
    std::uint64_t pos = 0;
    std::uint64_t neg = 0;
    for (std::size_t i = 0; i < pattern.size(); ++i) {
      const char ch = pattern[i];
      if (ch == '1') pos |= std::uint64_t{1} << i;
      else if (ch == '0') neg |= std::uint64_t{1} << i;
      else MP_CHECK_MSG(ch == '-', "BLIF cover literal must be 0/1/-");
    }
    cover.add(Cube{pos, neg});
  }
  cover.normalize();
  if (has_off) cover = cover.complement();
  return cover;
}

}  // namespace

Network read_blif(std::istream& in) {
  Network net;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<RawGate> gates;
  std::vector<std::pair<std::string, std::string>> latches;  // in, out
  RawGate* current = nullptr;

  std::string line;
  while (next_logical_line(in, line)) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    const std::string_view head = fields[0];
    if (head == ".model") {
      if (fields.size() > 1) net.set_name(std::string(fields[1]));
      current = nullptr;
    } else if (head == ".inputs") {
      for (std::size_t i = 1; i < fields.size(); ++i)
        input_names.emplace_back(fields[i]);
      current = nullptr;
    } else if (head == ".outputs") {
      for (std::size_t i = 1; i < fields.size(); ++i)
        output_names.emplace_back(fields[i]);
      current = nullptr;
    } else if (head == ".names") {
      RawGate g;
      for (std::size_t i = 1; i < fields.size(); ++i)
        g.signals.emplace_back(fields[i]);
      MP_CHECK_MSG(!g.signals.empty(), ".names needs at least an output");
      gates.push_back(std::move(g));
      current = &gates.back();
    } else if (head == ".latch") {
      MP_CHECK_MSG(fields.size() >= 3, ".latch needs input and output");
      latches.emplace_back(std::string(fields[1]), std::string(fields[2]));
      current = nullptr;
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Ignore unsupported directives (.default_input_arrival etc.).
      current = nullptr;
    } else {
      MP_CHECK_MSG(current != nullptr, "BLIF cover row outside .names");
      current->rows.push_back(line);
    }
  }

  // Create PIs (declared inputs + latch outputs).
  for (const std::string& name : input_names) net.add_pi(name);
  for (const auto& [li, lo] : latches)
    if (net.find(lo) == kNoNode) net.add_pi(lo);

  // Create internal nodes in dependency order: iterate until all placed.
  std::vector<bool> placed(gates.size(), false);
  std::size_t remaining = gates.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
      if (placed[gi]) continue;
      const RawGate& g = gates[gi];
      const std::size_t num_inputs = g.signals.size() - 1;
      bool ready = true;
      for (std::size_t i = 0; i < num_inputs && ready; ++i)
        if (net.find(g.signals[i]) == kNoNode) ready = false;
      if (!ready) continue;

      const std::string& out_name = g.signals.back();
      MP_CHECK_MSG(net.find(out_name) == kNoNode,
                   ("BLIF signal driven twice: " + out_name).c_str());
      Cover cover = cover_from_rows(g, num_inputs);
      if (num_inputs == 0 || cover.is_zero() || cover.is_one()) {
        net.add_constant(cover.is_one(), out_name);
      } else {
        std::vector<NodeId> fanins;
        fanins.reserve(num_inputs);
        for (std::size_t i = 0; i < num_inputs; ++i)
          fanins.push_back(net.find(g.signals[i]));
        // Drop fanins the normalized cover no longer mentions? Keep as-is;
        // sweep handles redundancy later.
        net.add_node(std::move(fanins), std::move(cover), out_name);
      }
      placed[gi] = true;
      --remaining;
      progress = true;
    }
    MP_CHECK_MSG(progress, "BLIF gates form a cycle or use undefined signals");
  }

  for (const std::string& name : output_names) {
    const NodeId driver = net.find(name);
    MP_CHECK_MSG(driver != kNoNode,
                 ("BLIF output is undriven: " + name).c_str());
    net.add_po(name, driver);
  }
  for (const auto& [li, lo] : latches) {
    const NodeId driver = net.find(li);
    MP_CHECK_MSG(driver != kNoNode,
                 ("BLIF latch input is undriven: " + li).c_str());
    // Pseudo-PO named after the latch *output*: "<state>__next" is the next
    // value of pseudo-PI <state>, which is what sequential analysis pairs.
    net.add_po(lo + "__next", driver);
  }
  net.check();
  return net;
}

Network read_blif_string(const std::string& text) {
  std::istringstream in(text);
  return read_blif(in);
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  MP_CHECK_MSG(in.good(), ("cannot open BLIF file: " + path).c_str());
  return read_blif(in);
}

void write_blif(const Network& net, std::ostream& out) {
  out << ".model " << (net.name().empty() ? "top" : net.name()) << "\n";
  out << ".inputs";
  for (NodeId pi : net.pis()) out << ' ' << net.node(pi).name;
  out << "\n.outputs";
  for (const PrimaryOutput& po : net.pos()) out << ' ' << po.name;
  out << "\n";

  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kConstant0) {
      out << ".names " << n.name << "\n";  // empty cover = constant 0
    } else if (n.kind == NodeKind::kConstant1) {
      out << ".names " << n.name << "\n1\n";
    } else if (n.is_internal()) {
      out << ".names";
      for (NodeId f : n.fanins) out << ' ' << net.node(f).name;
      out << ' ' << n.name << "\n";
      for (const Cube& c : n.cover.cubes()) {
        for (std::size_t i = 0; i < n.fanins.size(); ++i) {
          if (c.has_pos(static_cast<int>(i))) out << '1';
          else if (c.has_neg(static_cast<int>(i))) out << '0';
          else out << '-';
        }
        out << " 1\n";
      }
    }
  }
  // POs whose name differs from the driver need a buffer in BLIF.
  for (const PrimaryOutput& po : net.pos()) {
    const std::string& dn = net.node(po.driver).name;
    if (dn != po.name)
      out << ".names " << dn << ' ' << po.name << "\n1 1\n";
  }
  out << ".end\n";
}

std::string write_blif_string(const Network& net) {
  std::ostringstream out;
  write_blif(net, out);
  return out.str();
}

}  // namespace minpower
