#pragma once
// Technology-independent optimization substrate ("rugged-lite").
//
// The paper starts from circuits "optimized by the SIS rugged script" and
// notes that fast-extract and quick decomposition leave the network's nodes
// relatively simple before technology decomposition. This module provides
// the equivalent preconditioning from scratch:
//   * sweep        — dead logic, constants, buffer chains (Network::sweep)
//   * eliminate    — collapse low-value nodes into their readers
//   * fx-lite      — greedy extraction of common 2-literal cube divisors and
//                    of shared kernels (the fast_extract work-alikes)
//   * quick_decomp — break very wide SOPs into an OR tree of smaller nodes
//   * rugged_lite  — the combined script
//
// All passes preserve network function (verified by BDD in the test suite)
// and never grow node supports beyond the Cover limits.

#include "netlist/network.hpp"
#include "prob/probability.hpp"

namespace minpower {

struct OptStats {
  int eliminated = 0;
  int cube_divisors = 0;
  int kernel_divisors = 0;
  int split_nodes = 0;
  int simplified = 0;
  int swept = 0;
};

/// Collapse every internal, non-PO-driving node whose SIS-style value
/// (readers−1)·(literals−1) − 1 is ≤ `value_threshold` into its readers.
/// Returns the number of nodes eliminated.
int eliminate(Network& net, int value_threshold = 0);

/// Repeatedly extract the most frequent 2-literal cube divisor while its
/// gain is positive. Returns divisors created.
int extract_cube_divisors(Network& net, int max_rounds = 1000);

/// Repeatedly extract the best shared kernel while its gain is positive.
/// Returns divisors created.
int extract_kernel_divisors(Network& net, int max_rounds = 200);

/// Split nodes with more than `max_cubes` cubes into an OR of sub-nodes.
int quick_decompose(Network& net, int max_cubes = 12);

/// Replace each node's cover with an irredundant SOP of its local function
/// (Minato–Morreale ISOP from the local BDD) when that shrinks it — the
/// "node simplification" pass. Returns nodes improved.
int simplify_nodes(Network& net);

/// The full preconditioning script.
OptStats rugged_lite(Network& net);

// ---- power-aware extraction (the paper's Sec. 5 future-work direction) ----
//
// "The idea of generating nodes with minimum switching activity can be
// extended to the technology independent phase of logic synthesis …
// common sub-expression extraction … is still needed."
//
// The power-aware extractor scores a candidate divisor not only by literal
// savings but also by the switching activity of the net the extraction
// exposes: a shared cube with near-rail probability costs almost nothing to
// expose, while a p≈0.5 divisor adds half a transition per cycle to every
// clock. Score = (occurrences − 2) − beta · E(divisor).

struct PowerOptOptions {
  CircuitStyle style = CircuitStyle::kStatic;
  std::vector<double> pi_prob1;  // empty → 0.5
  double beta = 2.0;             // activity penalty weight
  int max_rounds = 200;
};

/// Greedy power-aware 2-literal cube extraction. Returns divisors created.
int extract_cube_divisors_power(Network& net, const PowerOptOptions& options);

/// rugged-lite with the power-aware extractor in place of the plain one.
OptStats rugged_lite_power(Network& net, const PowerOptOptions& options = {});

}  // namespace minpower
