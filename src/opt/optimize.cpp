#include "opt/optimize.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <optional>

#include "bdd/isop.hpp"
#include "prob/probability.hpp"
#include "sop/algebra.hpp"

namespace minpower {

namespace {

/// A literal in network-global terms.
using GlobalLit = std::pair<NodeId, bool>;  // (driver, positive phase)

/// Remap `cover` (over `from` fanins) onto the variable space of `to`
/// fanins. Returns nullopt if some fanin of `from` is absent in `to`.
std::optional<Cover> remap_onto(const Cover& cover,
                                const std::vector<NodeId>& from,
                                const std::vector<NodeId>& to) {
  std::vector<int> new_var(kMaxCubeVars, -1);
  for (std::size_t i = 0; i < from.size(); ++i) {
    const auto it = std::find(to.begin(), to.end(), from[i]);
    if (it == to.end()) return std::nullopt;
    new_var[i] = static_cast<int>(it - to.begin());
  }
  // remap() requires a mapping for every *mentioned* variable only.
  const std::uint64_t sup = cover.support();
  for (int v = 0; v < kMaxCubeVars; ++v)
    if (((sup >> v) & 1) && new_var[static_cast<std::size_t>(v)] < 0)
      return std::nullopt;
  return cover.remap(new_var);
}

/// Substitute node `sub` (a fanin of `host`) by its function, producing the
/// collapsed cover and fanin list. Returns false when limits would be hit.
bool collapse_fanin(const Network& net, const Node& host, NodeId sub,
                    std::vector<NodeId>& new_fanins, Cover& new_cover) {
  const Node& s = net.node(sub);
  MP_CHECK(s.is_internal());
  // Merged fanin list: host's fanins minus sub, plus sub's fanins.
  new_fanins.clear();
  for (NodeId f : host.fanins)
    if (f != sub) new_fanins.push_back(f);
  for (NodeId f : s.fanins)
    if (std::find(new_fanins.begin(), new_fanins.end(), f) == new_fanins.end())
      new_fanins.push_back(f);
  if (new_fanins.size() > kMaxCubeVars) return false;

  const auto v_of = [&](NodeId f) {
    return static_cast<int>(
        std::find(new_fanins.begin(), new_fanins.end(), f) -
        new_fanins.begin());
  };
  // sub's function and complement in the merged space.
  std::vector<int> sub_map(kMaxCubeVars, -1);
  for (std::size_t i = 0; i < s.fanins.size(); ++i)
    sub_map[i] = v_of(s.fanins[i]);
  const Cover sub_pos = s.cover.remap(sub_map);
  if (std::popcount(s.cover.support()) > 20) return false;  // complement cap
  const Cover sub_neg = s.cover.complement().remap(sub_map);

  // `sub` may occupy several fanin slots (sweep's buffer collapse aliases
  // slots); every occurrence must be substituted.
  std::vector<int> host_map(kMaxCubeVars, -1);
  std::vector<int> sub_slots;
  for (std::size_t i = 0; i < host.fanins.size(); ++i) {
    if (host.fanins[i] == sub) {
      sub_slots.push_back(static_cast<int>(i));
      host_map[i] = 0;  // never used: the slot is dropped below
    } else {
      host_map[i] = v_of(host.fanins[i]);
    }
  }

  new_cover = Cover::zero();
  for (const Cube& c : host.cover.cubes()) {
    Cube rest = c;
    bool need_pos = false;
    bool need_neg = false;
    for (int slot : sub_slots) {
      need_pos |= c.has_pos(slot);
      need_neg |= c.has_neg(slot);
      rest = rest.drop(slot);
    }
    Cover remapped = Cover{{rest}}.remap(host_map);
    if (need_pos) remapped = Cover::conjunction(remapped, sub_pos);
    if (need_neg) remapped = Cover::conjunction(remapped, sub_neg);
    new_cover = Cover::disjunction(new_cover, remapped);
  }
  if (new_cover.num_cubes() > 256) return false;  // keep nodes simple
  return true;
}

}  // namespace

int eliminate(Network& net, int value_threshold) {
  int eliminated = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& n = net.node(id);
      if (!n.is_internal()) continue;
      if (net.po_refs(id) > 0) continue;  // keep PO drivers
      if (n.fanouts.empty()) continue;    // sweep's job

      // Compute the actual substitutions, then decide by the realized
      // value: literals added at the readers minus the literals the node
      // itself retires (the SIS eliminate criterion with exact costs — the
      // (fanouts−1)(lits−1)−1 formula over-collapses when substitution
      // makes covers blow up).
      struct Patch {
        NodeId reader;
        std::vector<NodeId> fanins;
        Cover cover;
      };
      std::vector<Patch> patches;
      bool ok = true;
      std::vector<NodeId> readers = n.fanouts;
      std::sort(readers.begin(), readers.end());
      readers.erase(std::unique(readers.begin(), readers.end()), readers.end());
      int value = -n.cover.num_literals();
      for (NodeId r : readers) {
        Patch p;
        p.reader = r;
        if (!collapse_fanin(net, net.node(r), id, p.fanins, p.cover)) {
          ok = false;
          break;
        }
        value += p.cover.num_literals() -
                 net.node(r).cover.num_literals();
        patches.push_back(std::move(p));
      }
      if (!ok || value > value_threshold) continue;

      for (Patch& p : patches) {
        // Rebuild the reader in place.
        Node& r = net.node(p.reader);
        // Detach old fanins.
        std::vector<NodeId> old = r.fanins;
        for (NodeId f : old) {
          auto& fo = net.node(f).fanouts;
          fo.erase(std::find(fo.begin(), fo.end(), p.reader));
        }
        r.fanins = p.fanins;
        r.cover = std::move(p.cover);
        for (NodeId f : r.fanins) net.node(f).fanouts.push_back(p.reader);
      }
      if (net.fanout_count(id) == 0) net.remove_node(id);
      ++eliminated;
      changed = true;
    }
  }
  net.sweep();
  return eliminated;
}

int extract_cube_divisors(Network& net, int max_rounds) {
  int created = 0;
  for (int round = 0; round < max_rounds; ++round) {
    // Count occurrences of every 2-literal global cube across all cubes.
    std::map<std::pair<GlobalLit, GlobalLit>, int> count;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& n = net.node(id);
      if (!n.is_internal()) continue;
      for (const Cube& c : n.cover.cubes()) {
        std::vector<GlobalLit> lits;
        for (std::size_t v = 0; v < n.fanins.size(); ++v) {
          if (c.has_pos(static_cast<int>(v))) lits.emplace_back(n.fanins[v], true);
          if (c.has_neg(static_cast<int>(v))) lits.emplace_back(n.fanins[v], false);
        }
        std::sort(lits.begin(), lits.end());
        for (std::size_t i = 0; i < lits.size(); ++i)
          for (std::size_t j = i + 1; j < lits.size(); ++j)
            ++count[{lits[i], lits[j]}];
      }
    }
    auto best = count.end();
    for (auto it = count.begin(); it != count.end(); ++it)
      if (best == count.end() || it->second > best->second) best = it;
    if (best == count.end() || best->second < 3) return created;

    const auto [la, lb] = best->first;
    // New divisor node d = la · lb.
    Cube cube = Cube::literal(0, la.second) & Cube::literal(1, lb.second);
    const NodeId d = net.add_node({la.first, lb.first}, Cover{{cube}},
                                  net.fresh_name("fx"));
    // Rewrite every cube containing both literals.
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      Node& n = net.node(id);
      if (!n.is_internal() || id == d) continue;
      const auto ia = std::find(n.fanins.begin(), n.fanins.end(), la.first);
      const auto ib = std::find(n.fanins.begin(), n.fanins.end(), lb.first);
      if (ia == n.fanins.end() || ib == n.fanins.end()) continue;
      const int va = static_cast<int>(ia - n.fanins.begin());
      const int vb = static_cast<int>(ib - n.fanins.begin());
      auto has = [&](const Cube& c, int v, bool pos) {
        return pos ? c.has_pos(v) : c.has_neg(v);
      };
      bool any = false;
      for (const Cube& c : n.cover.cubes())
        if (has(c, va, la.second) && has(c, vb, lb.second)) any = true;
      if (!any) continue;
      if (n.fanins.size() + 1 > kMaxCubeVars) continue;

      // Add d as a fanin and rewrite.
      std::vector<NodeId> old_fanins = n.fanins;
      n.fanins.push_back(d);
      net.node(d).fanouts.push_back(id);
      const int vd = static_cast<int>(n.fanins.size()) - 1;
      Cover rewritten;
      for (Cube c : n.cover.cubes()) {
        if (has(c, va, la.second) && has(c, vb, lb.second)) {
          c = c.drop(va).drop(vb) & Cube::literal(vd, true);
        }
        rewritten.add(c);
      }
      rewritten.normalize();
      // Detach fanins the rewritten cover no longer mentions.
      n.cover = rewritten;
    }
    ++created;
  }
  net.sweep();
  return created;
}

namespace {

/// Global signature of a cover over a node's fanins: cube list of sorted
/// global literals; used to match kernels across nodes.
using GlobalCover = std::vector<std::vector<GlobalLit>>;

GlobalCover global_signature(const Cover& cover,
                             const std::vector<NodeId>& fanins) {
  GlobalCover sig;
  for (const Cube& c : cover.cubes()) {
    std::vector<GlobalLit> lits;
    for (std::size_t v = 0; v < fanins.size(); ++v) {
      if (c.has_pos(static_cast<int>(v))) lits.emplace_back(fanins[v], true);
      if (c.has_neg(static_cast<int>(v))) lits.emplace_back(fanins[v], false);
    }
    std::sort(lits.begin(), lits.end());
    sig.push_back(std::move(lits));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

int extract_kernel_divisors(Network& net, int max_rounds) {
  int created = 0;
  for (int round = 0; round < max_rounds; ++round) {
    // Gather kernels of every node, keyed by global signature.
    std::map<GlobalCover, std::vector<NodeId>> by_sig;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& n = net.node(id);
      if (!n.is_internal() || n.cover.num_cubes() < 2) continue;
      for (const Kernel& k : kernels(n.cover, 64)) {
        if (k.kernel.num_cubes() < 2) continue;
        by_sig[global_signature(k.kernel, n.fanins)].push_back(id);
      }
    }
    // Best kernel by (occurrences−1)·(literals−1) − literals gain proxy.
    const GlobalCover* best = nullptr;
    int best_gain = 0;
    for (const auto& [sig, ids] : by_sig) {
      std::vector<NodeId> uniq = ids;
      std::sort(uniq.begin(), uniq.end());
      uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
      int lits = 0;
      for (const auto& cube : sig) lits += static_cast<int>(cube.size());
      const int m = static_cast<int>(uniq.size());
      // Extracting a kernel with `lits` literals shared by m nodes replaces
      // its expansion in m−1 of them; the divisor node itself costs `lits`.
      const int gain = (m - 1) * lits - 1;
      if (m >= 2 && gain > best_gain) {
        best_gain = gain;
        best = &sig;
      }
    }
    if (best == nullptr) return created;

    // Materialize the kernel as a node.
    std::vector<NodeId> k_fanins;
    for (const auto& cube : *best)
      for (const auto& [nid, phase] : cube) {
        (void)phase;
        if (std::find(k_fanins.begin(), k_fanins.end(), nid) == k_fanins.end())
          k_fanins.push_back(nid);
      }
    if (k_fanins.size() > kMaxCubeVars) return created;
    Cover k_cover;
    for (const auto& cube : *best) {
      Cube c;
      for (const auto& [nid, phase] : cube) {
        const int v = static_cast<int>(
            std::find(k_fanins.begin(), k_fanins.end(), nid) -
            k_fanins.begin());
        c = c & Cube::literal(v, phase);
      }
      k_cover.add(c);
    }
    k_cover.normalize();
    const GlobalCover want = *best;  // copy before the map dies below
    const NodeId knode =
        net.add_node(k_fanins, k_cover, net.fresh_name("kx"));

    // Divide every node by the kernel and rewrite on success.
    int rewrites = 0;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      Node& n = net.node(id);
      if (!n.is_internal() || id == knode) continue;
      // Kernel must be expressible over n's fanins.
      std::vector<int> to_local(k_fanins.size(), -1);
      bool ok = true;
      for (std::size_t i = 0; i < k_fanins.size() && ok; ++i) {
        const auto it =
            std::find(n.fanins.begin(), n.fanins.end(), k_fanins[i]);
        if (it == n.fanins.end()) ok = false;
        else to_local[i] = static_cast<int>(it - n.fanins.begin());
      }
      if (!ok) continue;
      const auto opt_local = remap_onto(
          k_cover, k_fanins, n.fanins);
      if (!opt_local) continue;
      const DivisionResult div = algebraic_divide(n.cover, *opt_local);
      if (div.quotient.empty()) continue;
      if (n.fanins.size() + 1 > kMaxCubeVars) continue;

      std::vector<NodeId> fanins = n.fanins;
      fanins.push_back(knode);
      const int vk = static_cast<int>(fanins.size()) - 1;
      Cover rewritten = Cover::conjunction(
          div.quotient, Cover::literal(vk, true));
      rewritten = Cover::disjunction(rewritten, div.remainder);
      // Only accept when it actually shrinks the node.
      if (rewritten.num_literals() >= n.cover.num_literals()) continue;
      for (NodeId f : n.fanins) {
        auto& fo = net.node(f).fanouts;
        fo.erase(std::find(fo.begin(), fo.end(), id));
      }
      n.fanins = fanins;
      n.cover = rewritten;
      for (NodeId f : n.fanins) net.node(f).fanouts.push_back(id);
      ++rewrites;
    }
    if (rewrites < 2) {
      // Not actually shared; undo by sweeping the orphan (or collapse back).
      if (net.fanout_count(knode) == 0) {
        net.remove_node(knode);
        return created;
      }
    }
    ++created;
  }
  net.sweep();
  return created;
}

int quick_decompose(Network& net, int max_cubes) {
  int split = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      if (!net.node(id).is_internal()) continue;
      if (static_cast<int>(net.node(id).cover.num_cubes()) <= max_cubes)
        continue;
      // Copy before add_node: growing the node table invalidates references.
      const std::vector<NodeId> fanins = net.node(id).fanins;
      const std::vector<Cube>& cubes = net.node(id).cover.cubes();
      // OR-split: first half of the cubes into a fresh node.
      const std::size_t half = cubes.size() / 2;
      Cover first(std::vector<Cube>(
          cubes.begin(), cubes.begin() + static_cast<std::ptrdiff_t>(half)));
      Cover second(std::vector<Cube>(
          cubes.begin() + static_cast<std::ptrdiff_t>(half), cubes.end()));
      const NodeId a = net.add_node(fanins, first, net.fresh_name("qd"));
      const NodeId b = net.add_node(fanins, second, net.fresh_name("qd"));
      // n becomes a + b.
      Node& n2 = net.node(id);  // re-fetch: add_node may reallocate
      for (NodeId f : std::vector<NodeId>(n2.fanins)) {
        auto& fo = net.node(f).fanouts;
        fo.erase(std::find(fo.begin(), fo.end(), id));
      }
      n2.fanins = {a, b};
      n2.cover = or2_cover();
      net.node(a).fanouts.push_back(id);
      net.node(b).fanouts.push_back(id);
      ++split;
      changed = true;
    }
  }
  net.sweep();
  return split;
}

int extract_cube_divisors_power(Network& net,
                                const PowerOptOptions& options) {
  int created = 0;
  for (int round = 0; round < options.max_rounds; ++round) {
    // Exact probabilities of the current network (they change as divisors
    // are introduced, so recompute per round).
    const std::vector<double> prob =
        signal_probabilities(net, options.pi_prob1);

    // Count occurrences of every 2-literal global cube and compute its
    // output probability from the (independent-fanin) product.
    std::map<std::pair<GlobalLit, GlobalLit>, int> count;
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      const Node& n = net.node(id);
      if (!n.is_internal()) continue;
      for (const Cube& c : n.cover.cubes()) {
        std::vector<GlobalLit> lits;
        for (std::size_t v = 0; v < n.fanins.size(); ++v) {
          if (c.has_pos(static_cast<int>(v))) lits.emplace_back(n.fanins[v], true);
          if (c.has_neg(static_cast<int>(v))) lits.emplace_back(n.fanins[v], false);
        }
        std::sort(lits.begin(), lits.end());
        for (std::size_t i = 0; i < lits.size(); ++i)
          for (std::size_t j = i + 1; j < lits.size(); ++j)
            ++count[{lits[i], lits[j]}];
      }
    }

    auto lit_prob = [&](const GlobalLit& l) {
      const double p = prob[static_cast<std::size_t>(l.first)];
      return l.second ? p : 1.0 - p;
    };
    const std::pair<GlobalLit, GlobalLit>* best = nullptr;
    double best_score = 0.0;
    for (const auto& [pair, m] : count) {
      if (m < 3) continue;
      const double pd = lit_prob(pair.first) * lit_prob(pair.second);
      const double score = static_cast<double>(m - 2) -
                           options.beta * switching_activity(pd, options.style);
      if (best == nullptr || score > best_score) {
        best = &pair;
        best_score = score;
      }
    }
    if (best == nullptr || best_score <= 0.0) return created;

    const auto [la, lb] = *best;
    const Cube cube = Cube::literal(0, la.second) & Cube::literal(1, lb.second);
    const NodeId d = net.add_node({la.first, lb.first}, Cover{{cube}},
                                  net.fresh_name("px"));
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
      Node& n = net.node(id);
      if (!n.is_internal() || id == d) continue;
      const auto ia = std::find(n.fanins.begin(), n.fanins.end(), la.first);
      const auto ib = std::find(n.fanins.begin(), n.fanins.end(), lb.first);
      if (ia == n.fanins.end() || ib == n.fanins.end()) continue;
      const int va = static_cast<int>(ia - n.fanins.begin());
      const int vb = static_cast<int>(ib - n.fanins.begin());
      auto has = [&](const Cube& c, int v, bool pos) {
        return pos ? c.has_pos(v) : c.has_neg(v);
      };
      bool any = false;
      for (const Cube& c : n.cover.cubes())
        if (has(c, va, la.second) && has(c, vb, lb.second)) any = true;
      if (!any) continue;
      if (n.fanins.size() + 1 > kMaxCubeVars) continue;
      n.fanins.push_back(d);
      net.node(d).fanouts.push_back(id);
      const int vd = static_cast<int>(n.fanins.size()) - 1;
      Cover rewritten;
      for (Cube c : n.cover.cubes()) {
        if (has(c, va, la.second) && has(c, vb, lb.second))
          c = c.drop(va).drop(vb) & Cube::literal(vd, true);
        rewritten.add(c);
      }
      rewritten.normalize();
      n.cover = rewritten;
    }
    ++created;
  }
  net.sweep();
  return created;
}

int simplify_nodes(Network& net) {
  int improved = 0;
  BddManager mgr;
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id) {
    Node& n = net.node(id);
    if (!n.is_internal()) continue;
    if (n.cover.num_cubes() < 2) continue;  // nothing to gain
    // Local BDD over the node's own variables.
    BddRef f = BddManager::kFalse;
    for (const Cube& c : n.cover.cubes()) {
      BddRef cube = BddManager::kTrue;
      for (std::size_t v = 0; v < n.fanins.size(); ++v) {
        if (c.has_pos(static_cast<int>(v)))
          cube = mgr.and_(cube, mgr.var(static_cast<int>(v)));
        if (c.has_neg(static_cast<int>(v)))
          cube = mgr.and_(cube, mgr.not_(mgr.var(static_cast<int>(v))));
      }
      f = mgr.or_(f, cube);
    }
    Cover simplified = isop(mgr, f);
    simplified.normalize();
    if (simplified.num_literals() < n.cover.num_literals()) {
      n.cover = std::move(simplified);
      ++improved;
    }
  }
  net.sweep();  // the simplified cover may have dropped fanins
  return improved;
}

OptStats rugged_lite_power(Network& net, const PowerOptOptions& options) {
  OptStats stats;
  stats.swept += net.sweep();
  stats.eliminated += eliminate(net, 0);
  stats.cube_divisors += extract_cube_divisors_power(net, options);
  stats.kernel_divisors += extract_kernel_divisors(net);
  stats.eliminated += eliminate(net, 0);
  stats.simplified += simplify_nodes(net);
  stats.split_nodes += quick_decompose(net);
  stats.swept += net.sweep();
  net.check();
  return stats;
}

OptStats rugged_lite(Network& net) {
  OptStats stats;
  stats.swept += net.sweep();
  // Threshold 6 over SOP literals approximates SIS's eliminate over factored
  // literals (a factored form is smaller than its SOP, so the SOP delta of a
  // worthwhile collapse is positive).
  stats.eliminated += eliminate(net, 6);
  stats.cube_divisors += extract_cube_divisors(net);
  stats.kernel_divisors += extract_kernel_divisors(net);
  stats.eliminated += eliminate(net, 6);
  stats.simplified += simplify_nodes(net);
  stats.split_nodes += quick_decompose(net);
  stats.swept += net.sweep();
  net.check();
  return stats;
}

}  // namespace minpower
