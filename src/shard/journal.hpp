#pragma once
// Append-only journal of completed flow cells for crash-isolated sharded
// runs (shard/supervisor.hpp, DESIGN.md §14).
//
// Format: JSON Lines, one compact (single-line) JSON document per record.
// The first line is a header binding the journal to a specific suite:
//
//   {"schema":"minpower.shard.v1","library":"<name>",
//    "suite_hash":"<32 hex>","circuits":["<name>",...]}
//
// Every later line is one completed (circuit × method) cell:
//
//   {"ci":<circuit index>,"mi":<method index>,"cell":{<methods[] object>}}
//
// The cell payload is rendered by write_flow_result_json and parsed back by
// parse_flow_result_json — the exact same serialization the merged
// minpower.flow.v1 report uses — so a journaled cell re-renders
// byte-identically in a resumed report (%.17g doubles round-trip exactly
// through strtod).
//
// Only ok/degraded cells are journaled: a failed cell is crash- or
// budget-specific and is recomputed on resume. The supervisor is the single
// writer and flushes after every line; a torn trailing line (supervisor
// died mid-write) is tolerated by the loader and simply dropped.

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace minpower::shard {

struct JournalCell {
  std::size_t ci = 0;  // global circuit index (suite order)
  std::size_t mi = 0;  // method index (Method order, 0..5)
  FlowResult result;
};

struct Journal {
  std::string library;
  std::string suite_hash;  // hex suite fingerprint (see suite_fingerprint)
  std::vector<std::string> circuits;  // suite circuit names, in order
  std::vector<JournalCell> cells;
};

/// Hex fingerprint binding a journal to the exact suite that produced it:
/// per-circuit structural hash ⊕ option fingerprint, folded in order.
std::string suite_fingerprint(const std::vector<const Network*>& circuits,
                              const FlowOptions& flow);

/// Load a journal, tolerating a truncated final line. False (with `error`)
/// on unreadable file, bad header, or a *well-formed* line that fails to
/// parse (a corrupt middle line is data loss, not a torn tail).
bool load_journal(const std::string& path, Journal* out, std::string* error);

/// Single-writer append handle. Lines are flushed as written so a crash of
/// the supervisor itself loses at most the line in flight.
class JournalWriter {
 public:
  /// Truncate/create `path` and write the header. False on I/O failure.
  bool create(const std::string& path, const std::string& library,
              const std::string& suite_hash,
              const std::vector<std::string>& circuits, std::string* error);

  /// Open `path` for append without writing a header (resume onto an
  /// existing journal whose header was already validated).
  bool open_append(const std::string& path, std::string* error);

  bool is_open() const { return out_.is_open(); }

  /// Append one completed cell (compact, one line, flushed).
  void append_cell(std::size_t ci, std::size_t mi, const FlowResult& r);

 private:
  std::ofstream out_;
};

}  // namespace minpower::shard
