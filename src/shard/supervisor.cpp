#include "shard/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>

#include "shard/journal.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/wire.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"
#include "util/log.hpp"
#include "util/meminfo.hpp"

namespace minpower::shard {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMethodsPerCircuit = 6;
constexpr Method kMethods[kMethodsPerCircuit] = {
    Method::kI, Method::kII, Method::kIII,
    Method::kIV, Method::kV, Method::kVI};

/// Restart floor for the halved-per-restart BDD cap: low enough that a
/// genuine blowup degrades through the engine's ladder, high enough that
/// suite-sized circuits still complete on the primary path (byte-exact
/// cells after a restart).
constexpr std::size_t kMinWorkerBddLimit = 1u << 20;

bool is_worker_site(const std::string& site) {
  return site == "worker-abort" || site == "worker-hang" ||
         site == "worker-oom" || site == "worker-bloat";
}

/// One compact MEM protocol line from an OS memory sample.
std::string mem_record(const MemSample& m) {
  return "MEM {\"rss_kb\":" + std::to_string(m.rss_kb) +
         ",\"hwm_kb\":" + std::to_string(m.hwm_kb) + "}\n";
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Child-side pipe writer; the heartbeat thread and the compute loop share
/// the fd, so lines are written whole under a mutex.
class PipeWriter {
 public:
  explicit PipeWriter(int fd) : fd_(fd) {}

  bool write_line(std::string_view line) {
    std::lock_guard<std::mutex> lock(mu_);
    while (!line.empty()) {
      const ssize_t n = ::write(fd_, line.data(), line.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // supervisor gone
      }
      line.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

 private:
  int fd_;
  std::mutex mu_;
};

/// Body of a forked worker. Streams START/CELL/BEAT/MEM/DONE lines to the
/// supervisor and leaves only via _exit() — no static destructors, no
/// stdio flush of buffers inherited from the parent.
[[noreturn]] void worker_main(int pipe_fd,
                              const std::vector<std::size_t>& assigned,
                              const std::vector<const Network*>& circuits,
                              const Library& lib, const FlowOptions& flow,
                              const ShardOptions& options,
                              const std::vector<char>& skip_injection) {
  ::signal(SIGPIPE, SIG_IGN);
  // fork() copied the parent's span buffers and metrics registry; drop the
  // inherited values so this worker ships only its own work. The tracer
  // origin survives the clear — that shared CLOCK_MONOTONIC zero is what
  // keeps worker timestamps on the supervisor's timebase.
  trace::clear();
  metrics::Registry::global().reset();
  PipeWriter out(pipe_fd);
  std::atomic<bool> beating{true};
  std::thread heartbeat;
  if (options.heartbeat_ms > 0) {
    heartbeat = std::thread([&] {
      while (beating.load(std::memory_order_relaxed)) {
        if (!out.write_line("BEAT\n")) ::_exit(1);
        // Memory self-sample on the heartbeat tick: the kernel's view of
        // this worker (VmRSS/VmHWM) rides the same liveness cadence, so the
        // supervisor sees pressure building while the worker still lives.
        MemSample m;
        if (sample_self_memory(&m) && !out.write_line(mem_record(m)))
          ::_exit(1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.heartbeat_ms));
      }
    });
  }

  // worker-* sites are consumed below; everything else reaches the engine
  // with its usual in-process semantics. The env var must NOT leak into the
  // worker's engine: the engine disables result sharing whenever any
  // injection is armed, which would change the surviving cells' shared_*
  // flags and break byte-exactness against un-injected runs.
  ::unsetenv("MINPOWER_INJECT_FAULT");
  std::vector<FaultInjection> engine_injections;
  for (const FaultInjection& f : options.injections)
    if (!is_worker_site(f.site)) engine_injections.push_back(f);
  FlowSession session(
      lib, EngineOptions{flow, options.worker_threads, engine_injections,
                         /*verbose=*/false});

  int code = 0;
  try {
    for (const std::size_t ci : assigned) {
      if (!out.write_line("START " + std::to_string(ci) + "\n")) ::_exit(1);
      if (!skip_injection[ci]) {
        for (const FaultInjection& f : options.injections) {
          if (f.ordinal != static_cast<long>(ci) || !is_worker_site(f.site))
            continue;
          if (f.site == "worker-abort") std::abort();
          if (f.site == "worker-oom") ::raise(SIGKILL);
          if (f.site == "worker-hang") {
            beating.store(false, std::memory_order_relaxed);
            for (;;) ::pause();  // silent until the supervisor SIGKILLs us
          }
          if (f.site == "worker-bloat") {
            // Allocate and touch a ~160 MiB ballast, then hold it across
            // several heartbeat periods so shipped MEM samples cross the
            // supervisor's watermarks while BEATs keep flowing — any kill
            // under --mem-limit-mb must come from memory governance, not
            // the heartbeat reaper. Without a limit the ballast is simply
            // released and the circuit computes normally.
            std::vector<char> ballast(std::size_t{160} << 20);
            for (std::size_t off = 0; off < ballast.size(); off += 4096)
              ballast[off] = 1;
            const int tick =
                options.heartbeat_ms > 0 ? options.heartbeat_ms : 50;
            std::this_thread::sleep_for(std::chrono::milliseconds(tick * 8));
          }
        }
      }
      const std::vector<FlowResult> results =
          session.run_circuit(*circuits[ci]);
      for (std::size_t mi = 0; mi < results.size(); ++mi) {
        std::ostringstream cell;
        {
          JsonWriter w(cell, /*pretty=*/false);
          write_flow_result_json(w, results[mi]);
        }
        if (!out.write_line("CELL " + std::to_string(ci) + " " +
                            std::to_string(mi) + " " + cell.str() + "\n"))
          ::_exit(1);
      }
    }
    // Ship the observability snapshots before DONE: run_circuit has joined
    // all engine tasks, so the buffers/registry are quiescent here.
    if (trace::enabled()) {
      std::ostringstream events;
      trace::write_events_json(events, trace::snapshot_events());
      if (!out.write_line("TRACE " + events.str() + "\n")) ::_exit(1);
    }
    {
      std::ostringstream snap;
      {
        JsonWriter w(snap, /*pretty=*/false);
        metrics::write_metrics_json(w, metrics::Registry::global().snapshot());
      }
      if (!out.write_line("METRICS " + snap.str() + "\n")) ::_exit(1);
    }
    // Final memory sample: VmHWM here is the incarnation's true peak even
    // when the heartbeat cadence missed a short-lived spike.
    {
      MemSample m;
      if (sample_self_memory(&m) && !out.write_line(mem_record(m)))
        ::_exit(1);
    }
    out.write_line("DONE\n");
  } catch (const std::exception&) {
    // Engine tasks are individually fault-isolated, so an escaping
    // exception is unexpected; die visibly and let the supervisor restart.
    code = 3;
  }
  beating.store(false, std::memory_order_relaxed);
  ::_exit(code);
}

std::string describe_death(int status) {
  if (WIFEXITED(status))
    return "exited with status " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    return "killed by signal " + std::to_string(sig) + " (" +
           strsignal(sig) + ")";
  }
  return "died with wait status " + std::to_string(status);
}

struct WorkerState {
  pid_t pid = -1;
  int fd = -1;  // pipe read end (nonblocking); -1 when not running
  std::string buf;
  std::vector<std::size_t> queue;  // owned circuits not yet complete
  long current = -1;               // circuit last STARTed, -1 between
  int restarts = 0;
  bool restart_pending = false;
  bool kill_sent = false;      // reaper/mem SIGKILL already delivered
  bool mem_soft_seen = false;  // soft watermark instant already raised
  Clock::time_point last_activity;
  Clock::time_point restart_at;

  bool live() const { return pid >= 0; }
  bool finished() const { return !live() && !restart_pending; }
};

}  // namespace

bool run_sharded_suite(const std::vector<const Network*>& circuits,
                       const Library& lib, const FlowOptions& flow,
                       const ShardOptions& options, ShardRun* out,
                       std::string* error) {
  // Construct the tracer singleton before any fork so every worker inherits
  // this process's CLOCK_MONOTONIC origin (shared timebase for the merged
  // trace).
  trace::ensure_origin();
  const std::size_t n = circuits.size();
  ShardRun run;
  run.mem_limit_mb = options.mem_limit_mb;
  run.per_circuit.assign(n, std::vector<FlowResult>(kMethodsPerCircuit));
  std::vector<std::string> names(n);
  for (std::size_t ci = 0; ci < n; ++ci) {
    names[ci] = circuits[ci]->name();
    for (std::size_t mi = 0; mi < kMethodsPerCircuit; ++mi) {
      run.per_circuit[ci][mi].circuit = names[ci];
      run.per_circuit[ci][mi].method = kMethods[mi];
    }
  }
  std::vector<std::vector<char>> done(n,
                                      std::vector<char>(kMethodsPerCircuit, 0));
  const std::string fingerprint = suite_fingerprint(circuits, flow);

  // Resume: validate the journal against this exact suite, then seed the
  // merged report with its cells.
  Journal resumed;
  bool have_resume = false;
  if (!options.resume_path.empty()) {
    if (!load_journal(options.resume_path, &resumed, error)) return false;
    if (resumed.library != lib.name())
      return fail(error, "journal " + options.resume_path + " was written "
                         "for library '" + resumed.library + "', not '" +
                         lib.name() + "'");
    if (resumed.suite_hash != fingerprint || resumed.circuits != names)
      return fail(error, "journal " + options.resume_path + " does not match "
                         "this suite (different circuits or flow options)");
    for (const JournalCell& c : resumed.cells) {
      if (done[c.ci][c.mi]) continue;  // duplicate line: first wins
      run.per_circuit[c.ci][c.mi] = c.result;
      done[c.ci][c.mi] = 1;
      ++run.stats.cells_resumed;
    }
    have_resume = true;
  }

  JournalWriter journal;
  if (!options.journal_path.empty()) {
    if (have_resume && options.journal_path == options.resume_path) {
      if (!journal.open_append(options.journal_path, error)) return false;
    } else {
      if (!journal.create(options.journal_path, lib.name(), fingerprint,
                          names, error))
        return false;
      // Re-journal resumed cells so the new journal stands on its own.
      for (const JournalCell& c : resumed.cells)
        if (done[c.ci][c.mi]) journal.append_cell(c.ci, c.mi, c.result);
    }
  }

  // Circuits still needing work, partitioned round-robin across shards.
  std::vector<std::size_t> pending;
  for (std::size_t ci = 0; ci < n; ++ci)
    for (std::size_t mi = 0; mi < kMethodsPerCircuit; ++mi)
      if (!done[ci][mi]) {
        pending.push_back(ci);
        break;
      }
  const unsigned shards = std::max(
      1u, std::min<unsigned>(std::max(options.shards, 1u),
                             static_cast<unsigned>(
                                 std::max<std::size_t>(pending.size(), 1))));

  std::vector<WorkerState> workers(shards);
  for (std::size_t i = 0; i < pending.size(); ++i)
    workers[i % shards].queue.push_back(pending[i]);

  std::vector<int> crash_count(n, 0);

  // Supervisor diagnostics: verbose runs speak at info, quiet runs keep the
  // same lines available at debug (MINPOWER_LOG_LEVEL=debug).
  const auto log = [&](const char* fmt, auto... args) {
    logging::logf(
        options.verbose ? logging::Level::kInfo : logging::Level::kDebug,
        "shard", fmt, args...);
  };

  const auto spawn = [&](WorkerState& w) -> bool {
    int fds[2];
    if (::pipe(fds) != 0)
      return fail(error, std::string("pipe: ") + std::strerror(errno));
    // Restarted workers skip the one-shot process faults of circuits that
    // already crashed (otherwise recovery could never be observed) and run
    // under a halved BDD cap per restart, handing a genuine blowup to the
    // engine's degradation ladder instead of crashing again.
    std::vector<char> skip(n, 0);
    for (std::size_t ci = 0; ci < n; ++ci) skip[ci] = crash_count[ci] > 0;
    FlowOptions tightened = flow;
    const int shift = std::min(w.restarts, 20);
    tightened.bdd_node_limit =
        std::max(flow.bdd_node_limit >> shift, kMinWorkerBddLimit);
    if (shift > 0 && tightened.bdd_node_limit < flow.bdd_node_limit) {
      trace::Instant i("budget-tighten", "shard");
      i.arg("restarts", w.restarts);
      i.arg("bdd_node_limit", tightened.bdd_node_limit);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return fail(error, std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      ::close(fds[0]);
      worker_main(fds[1], w.queue, circuits, lib, tightened, options, skip);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    w.pid = pid;
    w.fd = fds[0];
    w.buf.clear();
    w.current = -1;
    w.restart_pending = false;
    w.kill_sent = false;
    w.mem_soft_seen = false;
    w.last_activity = Clock::now();
    ++run.stats.workers_spawned;
    {
      trace::Instant i("worker-start", "shard");
      i.arg("pid", static_cast<long long>(pid));
      i.arg("circuits", w.queue.size());
      i.arg("bdd_node_limit", tightened.bdd_node_limit);
      i.arg("restarts", w.restarts);
    }
    log("spawned worker pid %d (%zu circuits, bdd cap %zu)",
        static_cast<int>(pid), w.queue.size(), tightened.bdd_node_limit);
    return true;
  };

  const auto mark_cell = [&](std::size_t ci, std::size_t mi,
                             FlowResult result) {
    if (done[ci][mi]) return;  // journaled/earlier value wins
    result.circuit = names[ci];
    result.method = kMethods[mi];
    if (result.status.state != TaskState::kFailed)
      journal.append_cell(ci, mi, result);
    run.per_circuit[ci][mi] = std::move(result);
    done[ci][mi] = 1;
    ++run.stats.cells_computed;
  };

  const auto circuit_complete = [&](std::size_t ci) {
    for (std::size_t mi = 0; mi < kMethodsPerCircuit; ++mi)
      if (!done[ci][mi]) return false;
    return true;
  };

  const auto fail_circuit = [&](std::size_t ci, const std::string& death) {
    for (std::size_t mi = 0; mi < kMethodsPerCircuit; ++mi) {
      if (done[ci][mi]) continue;
      FlowResult& r = run.per_circuit[ci][mi];
      r.status.state = TaskState::kFailed;
      r.status.reason = "shard worker " + death + " while computing " +
                        names[ci] + "; " +
                        std::to_string(options.max_circuit_retries) +
                        " retries exhausted";
      r.status.retries = options.max_circuit_retries;
      done[ci][mi] = 1;
      ++run.stats.cells_failed;
    }
    {
      trace::Instant i("retry-exhausted", "shard");
      i.arg("circuit", names[ci]);
      i.arg("crashes", crash_count[ci]);
    }
    log("circuit %s abandoned after %d crashes", names[ci].c_str(),
        crash_count[ci]);
  };

  // One OS memory sample for a worker (MEM record or direct /proc read):
  // fold it into the per-incarnation peaks, mirror it into the merged trace
  // as a ph:"C" counter series on the supervisor lane, and enforce the
  // mem-limit watermarks. The sample value itself never reaches the
  // canonical merged report — it is not deterministic.
  const auto note_worker_memory = [&](WorkerState& w, std::size_t rss_kb,
                                      std::size_t hwm_kb) {
    const int idx = static_cast<int>(&w - workers.data());
    WorkerMemory* slot = nullptr;
    for (auto it = run.worker_memory.rbegin(); it != run.worker_memory.rend();
         ++it)
      if (it->pid == static_cast<int>(w.pid)) {
        slot = &*it;
        break;
      }
    if (slot == nullptr) {
      run.worker_memory.push_back(
          WorkerMemory{idx, static_cast<int>(w.pid), 0, 0});
      slot = &run.worker_memory.back();
    }
    slot->peak_rss_kb = std::max(slot->peak_rss_kb, rss_kb);
    slot->peak_hwm_kb = std::max(slot->peak_hwm_kb, hwm_kb);
    if (trace::enabled()) {
      trace::Event e;
      e.name = "mem.worker-" + std::to_string(idx);
      e.cat = "shard";
      e.ph = 'C';
      e.ts_us = trace::detail::to_us(trace::Tracer::Clock::now() -
                                     trace::Tracer::instance().origin());
      trace::detail::add_arg(e, "rss_kb",
                             static_cast<unsigned long long>(rss_kb));
      trace::detail::add_arg(e, "hwm_kb",
                             static_cast<unsigned long long>(hwm_kb));
      trace::Tracer::instance().record(std::move(e));
    }
    if (options.mem_limit_mb == 0 || !w.live() || w.kill_sent) return;
    const std::size_t limit_kb = options.mem_limit_mb * 1024;
    const std::size_t soft_kb = limit_kb - limit_kb / 5;  // ~80%
    if (rss_kb >= limit_kb) {
      ++run.stats.mem_pressure_events;
      {
        trace::Instant i("mem-pressure", "shard");
        i.arg("level", "hard");
        i.arg("pid", static_cast<long long>(w.pid));
        i.arg("rss_kb", static_cast<unsigned long long>(rss_kb));
        i.arg("limit_mb",
              static_cast<unsigned long long>(options.mem_limit_mb));
      }
      {
        trace::Instant i("sigkill", "shard");
        i.arg("pid", static_cast<long long>(w.pid));
        i.arg("reason", "mem-limit");
      }
      log("worker pid %d rss %zu kB breached the %zu MiB limit; SIGKILL",
          static_cast<int>(w.pid), rss_kb, options.mem_limit_mb);
      ::kill(w.pid, SIGKILL);
      w.kill_sent = true;
      ++run.stats.mem_kills;
    } else if (rss_kb >= soft_kb && !w.mem_soft_seen) {
      w.mem_soft_seen = true;
      ++run.stats.mem_pressure_events;
      trace::Instant i("mem-pressure", "shard");
      i.arg("level", "soft");
      i.arg("pid", static_cast<long long>(w.pid));
      i.arg("rss_kb", static_cast<unsigned long long>(rss_kb));
      i.arg("limit_mb", static_cast<unsigned long long>(options.mem_limit_mb));
      log("worker pid %d rss %zu kB crossed the soft watermark (%zu kB)",
          static_cast<int>(w.pid), rss_kb, soft_kb);
    }
  };

  // One complete protocol line from a worker. False on a protocol breach
  // (the worker is then killed and handled through the crash path).
  const auto handle_line = [&](WorkerState& w,
                               const std::string& line) -> bool {
    if (line == "BEAT" || line == "DONE") return true;
    if (line.rfind("MEM ", 0) == 0) {
      std::string parse_error;
      const std::optional<JsonValue> v =
          parse_json(line.substr(4), &parse_error);
      if (!v || v->kind != JsonValue::Kind::kObject) return false;
      std::size_t rss_kb = 0;
      std::size_t hwm_kb = 0;
      if (const JsonValue* r = v->find("rss_kb"))
        rss_kb = r->number > 0 ? static_cast<std::size_t>(r->number) : 0;
      if (const JsonValue* h = v->find("hwm_kb"))
        hwm_kb = h->number > 0 ? static_cast<std::size_t>(h->number) : 0;
      note_worker_memory(w, rss_kb, hwm_kb);
      return true;
    }
    if (line.rfind("TRACE ", 0) == 0) {
      std::string parse_error;
      std::optional<std::vector<trace::ThreadEvents>> threads =
          trace::parse_events_json(line.substr(6), &parse_error);
      if (!threads) return false;
      trace::ProcessLane lane;
      lane.pid = static_cast<int>(w.pid);
      lane.name = "worker-" +
                  std::to_string(static_cast<std::size_t>(&w - workers.data())) +
                  " (pid " + std::to_string(static_cast<int>(w.pid)) + ")";
      lane.threads = std::move(*threads);
      run.worker_lanes.push_back(std::move(lane));
      return true;
    }
    if (line.rfind("METRICS ", 0) == 0) {
      std::string parse_error;
      std::optional<metrics::Snapshot> snap =
          trace::parse_metrics_json(line.substr(8), &parse_error);
      if (!snap) return false;
      run.worker_metrics.push_back(std::move(*snap));
      return true;
    }
    if (line.rfind("START ", 0) == 0) {
      char* end = nullptr;
      const long ci = std::strtol(line.c_str() + 6, &end, 10);
      if (end == line.c_str() + 6 || ci < 0 ||
          ci >= static_cast<long>(n))
        return false;
      w.current = ci;
      return true;
    }
    if (line.rfind("CELL ", 0) == 0) {
      std::istringstream head(line.substr(5));
      std::size_t ci = 0;
      std::size_t mi = 0;
      if (!(head >> ci >> mi) || ci >= n || mi >= kMethodsPerCircuit)
        return false;
      std::string payload;
      std::getline(head, payload);
      std::string parse_error;
      std::optional<JsonValue> v = parse_json(payload, &parse_error);
      if (!v) return false;
      FlowResult result;
      if (!parse_flow_result_json(*v, &result, &parse_error)) return false;
      mark_cell(ci, mi, std::move(result));
      if (circuit_complete(ci)) {
        w.queue.erase(std::remove(w.queue.begin(), w.queue.end(), ci),
                      w.queue.end());
        if (w.current == static_cast<long>(ci)) w.current = -1;
      }
      return true;
    }
    return false;
  };

  const auto handle_death = [&](WorkerState& w) -> bool {
    ::close(w.fd);
    w.fd = -1;
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    const std::string death = describe_death(status);
    w.pid = -1;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (w.queue.empty() && clean) {
      log("worker finished cleanly");
      return true;
    }
    // Crash (or a clean exit that abandoned work, which is the same breach).
    ++run.stats.worker_crashes;
    const std::size_t victim = w.current >= 0
                                   ? static_cast<std::size_t>(w.current)
                                   : (w.queue.empty() ? n : w.queue.front());
    {
      trace::Instant i("worker-crash", "shard");
      i.arg("death", death);
      if (victim < n) i.arg("circuit", names[victim]);
    }
    log("worker %s (current circuit: %s)", death.c_str(),
        victim < n ? names[victim].c_str() : "none");
    if (victim < n) {
      ++crash_count[victim];
      if (crash_count[victim] > options.max_circuit_retries) {
        fail_circuit(victim, death);
        w.queue.erase(std::remove(w.queue.begin(), w.queue.end(), victim),
                      w.queue.end());
      }
    }
    w.current = -1;
    if (w.queue.empty()) return true;  // nothing left worth restarting for
    const int shift = std::min(w.restarts, 20);
    const long long delay =
        std::min<long long>(static_cast<long long>(options.backoff_ms)
                                << shift,
                            options.max_backoff_ms);
    w.restart_at = Clock::now() + std::chrono::milliseconds(delay);
    w.restart_pending = true;
    ++w.restarts;
    ++run.stats.worker_restarts;
    {
      trace::Instant i("worker-restart", "shard");
      i.arg("backoff_ms", delay);
      i.arg("circuits_left", w.queue.size());
      i.arg("restarts", w.restarts);
    }
    log("restarting in %lld ms (%zu circuits left)", delay, w.queue.size());
    return true;
  };

  for (WorkerState& w : workers) {
    if (w.queue.empty()) continue;
    if (!spawn(w)) return false;
  }

  const auto all_finished = [&] {
    for (const WorkerState& w : workers)
      if (!w.finished()) return false;
    return true;
  };

  // The supervise span wraps the whole multiplex loop; its args feed the
  // profiler's supervisor-blocking breakdown (blocked-in-poll vs draining
  // pipes / lifecycle handling).
  trace::Span supervise_span("supervise", "shard");
  std::uint64_t poll_wait_us = 0;
  std::uint64_t poll_calls = 0;
  const auto charge_wait = [&](const Clock::time_point t0) {
    poll_wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0)
            .count());
  };

  Clock::time_point last_mem_sample{};  // epoch → first loop samples

  while (!all_finished()) {
    const Clock::time_point now = Clock::now();

    // Due restarts.
    for (WorkerState& w : workers)
      if (w.restart_pending && now >= w.restart_at)
        if (!spawn(w)) return false;

    // Memory governance: under a limit the supervisor also samples each
    // live worker's /proc/<pid>/status directly at heartbeat cadence — a
    // worker wedged inside a huge allocation ships no MEM records, but the
    // kernel still tells the truth about it.
    if (options.mem_limit_mb > 0 &&
        now - last_mem_sample >= std::chrono::milliseconds(
                                     std::max(options.heartbeat_ms, 1))) {
      last_mem_sample = now;
      for (WorkerState& w : workers) {
        if (!w.live() || w.kill_sent) continue;
        MemSample m;
        if (sample_process_memory(static_cast<long>(w.pid), &m))
          note_worker_memory(w, m.rss_kb, m.hwm_kb);
      }
    }

    // Heartbeat reaper.
    if (options.heartbeat_timeout_ms > 0) {
      for (WorkerState& w : workers) {
        if (!w.live() || w.kill_sent) continue;
        if (now - w.last_activity >
            std::chrono::milliseconds(options.heartbeat_timeout_ms)) {
          {
            trace::Instant i("heartbeat-timeout", "shard");
            i.arg("pid", static_cast<long long>(w.pid));
          }
          {
            trace::Instant i("sigkill", "shard");
            i.arg("pid", static_cast<long long>(w.pid));
            i.arg("reason", "heartbeat-timeout");
          }
          log("worker pid %d missed heartbeat deadline; SIGKILL",
              static_cast<int>(w.pid));
          ::kill(w.pid, SIGKILL);
          w.kill_sent = true;
          ++run.stats.heartbeat_kills;
        }
      }
    }

    std::vector<pollfd> fds;
    std::vector<WorkerState*> owners;
    for (WorkerState& w : workers) {
      if (!w.live()) continue;
      fds.push_back(pollfd{w.fd, POLLIN, 0});
      owners.push_back(&w);
    }
    if (fds.empty()) {
      // Only pending restarts remain; sleep toward the nearest one.
      const Clock::time_point t0 = Clock::now();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      charge_wait(t0);
      continue;
    }
    const Clock::time_point poll_start = Clock::now();
    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
    charge_wait(poll_start);
    ++poll_calls;
    if (rc < 0 && errno != EINTR)
      return fail(error, std::string("poll: ") + std::strerror(errno));

    for (std::size_t i = 0; i < fds.size(); ++i) {
      WorkerState& w = *owners[i];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      bool eof = false;
      char chunk[4096];
      for (;;) {
        const ssize_t got = ::read(w.fd, chunk, sizeof(chunk));
        if (got > 0) {
          w.buf.append(chunk, static_cast<std::size_t>(got));
          continue;
        }
        if (got == 0) {
          eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        eof = true;  // unexpected read error: treat as worker loss
        break;
      }
      std::size_t start = 0;
      bool breach = false;
      for (;;) {
        const std::size_t nl = w.buf.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string line = w.buf.substr(start, nl - start);
        start = nl + 1;
        w.last_activity = now;
        if (!handle_line(w, line)) {
          log("protocol breach from pid %d: '%s'", static_cast<int>(w.pid),
              line.c_str());
          breach = true;
          break;
        }
      }
      w.buf.erase(0, start);
      if (breach && w.live() && !w.kill_sent) {
        {
          trace::Instant i("sigkill", "shard");
          i.arg("pid", static_cast<long long>(w.pid));
          i.arg("reason", "protocol-breach");
        }
        ::kill(w.pid, SIGKILL);
        w.kill_sent = true;
        continue;  // EOF (and the crash path) follows on the next poll
      }
      if (eof && !handle_death(w)) return false;
    }
  }
  supervise_span.arg("poll_wait_us", static_cast<long long>(poll_wait_us));
  supervise_span.arg("polls", static_cast<long long>(poll_calls));

  // Defensive: every cell must be accounted for (computed, resumed, or
  // failed). A hole here is a supervisor bug; surface it as failed cells
  // rather than an incomplete document.
  for (std::size_t ci = 0; ci < n; ++ci)
    for (std::size_t mi = 0; mi < kMethodsPerCircuit; ++mi)
      if (!done[ci][mi]) {
        FlowResult& r = run.per_circuit[ci][mi];
        r.status.state = TaskState::kFailed;
        r.status.reason = "shard supervisor lost this cell";
        ++run.stats.cells_failed;
      }

  *out = std::move(run);
  return true;
}

void write_sharded_flow_json(std::ostream& os, const ShardRun& run,
                             unsigned shards,
                             const std::string& library_name) {
  // The canonical cold per-circuit pass counts (3 decomp + 3 activity + 6
  // map), independent of worker placement, restarts, or resume — counter
  // drift would break resumed-vs-uninterrupted byte identity.
  EngineCounters counters;
  const int n = static_cast<int>(run.per_circuit.size());
  counters.decomp_passes = 3 * n;
  counters.activity_passes = 3 * n;
  counters.map_passes = 6 * n;
  FlowJsonPolicy policy;
  policy.include_metrics = false;
  policy.zero_wall_times = true;
  write_flow_json(os, run.per_circuit, counters, shards, /*elapsed_ms=*/0.0,
                  library_name, policy);
}

void write_shard_trace(std::ostream& os, const ShardRun& run) {
  std::vector<trace::ProcessLane> lanes;
  trace::ProcessLane sup;
  sup.pid = static_cast<int>(::getpid());
  sup.name = "supervisor (pid " + std::to_string(sup.pid) + ")";
  sup.threads = trace::snapshot_events();
  lanes.push_back(std::move(sup));
  lanes.insert(lanes.end(), run.worker_lanes.begin(), run.worker_lanes.end());
  trace::write_merged_chrome_trace(os, lanes);
}

void write_shard_metrics_json(std::ostream& os, const ShardRun& run,
                              unsigned shards) {
  // The supervisor's own registry joins the fold: circuit preparation
  // (rugged_lite BDD work) runs in this process before the forks, and
  // workers reset the inherited copy — without this lane the merged
  // counters would undercount exactly that prep work relative to a
  // single-process run.
  std::vector<metrics::Snapshot> parts = run.worker_metrics;
  parts.push_back(metrics::Registry::global().snapshot());
  const metrics::Snapshot merged = trace::merge_snapshots(parts);
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("schema", "minpower.shard_metrics.v1");
  w.field("shards", static_cast<unsigned long long>(shards));
  w.field("workers_reporting",
          static_cast<unsigned long long>(run.worker_metrics.size()));
  w.key("metrics");
  metrics::write_metrics_json(w, merged);
  w.key("shard");
  w.begin_object();
  w.field("workers_spawned",
          static_cast<unsigned long long>(run.stats.workers_spawned));
  w.field("worker_crashes",
          static_cast<unsigned long long>(run.stats.worker_crashes));
  w.field("worker_restarts",
          static_cast<unsigned long long>(run.stats.worker_restarts));
  w.field("heartbeat_kills",
          static_cast<unsigned long long>(run.stats.heartbeat_kills));
  w.field("mem_kills", static_cast<unsigned long long>(run.stats.mem_kills));
  w.field("mem_pressure_events",
          static_cast<unsigned long long>(run.stats.mem_pressure_events));
  w.field("cells_resumed",
          static_cast<unsigned long long>(run.stats.cells_resumed));
  w.field("cells_computed",
          static_cast<unsigned long long>(run.stats.cells_computed));
  w.field("cells_failed",
          static_cast<unsigned long long>(run.stats.cells_failed));
  w.end_object();
  // OS memory peaks per worker incarnation (kB, kernel-reported). These are
  // observational, not deterministic — which is exactly why they live here
  // and never in the canonical merged report.
  w.key("memory");
  w.begin_object();
  w.field("limit_mb", static_cast<unsigned long long>(run.mem_limit_mb));
  w.key("workers");
  w.begin_array();
  for (const WorkerMemory& m : run.worker_memory) {
    w.begin_object();
    w.field("worker", m.worker);
    w.field("pid", m.pid);
    w.field("peak_rss_kb", static_cast<unsigned long long>(m.peak_rss_kb));
    w.field("peak_hwm_kb", static_cast<unsigned long long>(m.peak_hwm_kb));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace minpower::shard
