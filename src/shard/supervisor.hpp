#pragma once
// Crash-isolated multi-process sharded flow runs (DESIGN.md §14).
//
// `run_sharded_suite` forks N worker processes, each owning a partition of
// the suite's circuits (round-robin over the circuits still pending, so
// every worker gets a similar mix). A worker runs its circuits one at a
// time through a private FlowSession and streams results back over a pipe,
// one '\n'-framed line per message:
//
//   START <ci>                — beginning circuit ci (global suite index)
//   CELL <ci> <mi> <json>     — one completed (circuit × method) cell; the
//                               payload is the compact methods[] object of
//                               minpower.flow.v1 (write_flow_result_json)
//   BEAT                      — heartbeat (liveness, no payload)
//   MEM <json>                — OS memory self-sample taken on the heartbeat
//                               tick: {"rss_kb":N,"hwm_kb":N} from
//                               /proc/self/status (VmRSS/VmHWM); one final
//                               sample is shipped before DONE
//   TRACE <json>              — span snapshot (trace/wire.hpp), sent once
//                               right before DONE when tracing is enabled
//   METRICS <json>            — the worker's metrics-registry snapshot
//                               (write_metrics_json), sent once before DONE
//   DONE                      — partition complete; the worker exits 0
//
// Observability (DESIGN.md §15): workers inherit the supervisor's tracer
// origin through fork(), so their span timestamps share its timebase; the
// shipped snapshots become one pid lane per worker incarnation in
// `ShardRun::worker_lanes`, and `write_shard_trace` merges them with the
// supervisor's own lane — including `ph:"i"` lifecycle instants
// (worker-start, heartbeat-timeout, sigkill, worker-restart,
// budget-tighten, retry-exhausted). Worker registries land in
// `worker_metrics` and `write_shard_metrics_json` folds them into one
// merged block (counters sum, gauges max, histograms add): on a clean run
// the merged counters equal a single-process run's registry for the same
// suite. Both sidecars stay out of the canonical merged report, so
// journal/resume byte-determinism is untouched.
//
// The supervisor multiplexes the pipes with poll() and treats a worker as
// dead on nonzero exit, a fatal signal (including SIGKILL), or a missed
// heartbeat deadline (the worker is then SIGKILLed). A dead worker is
// restarted with exponential backoff and a tightened budget — the BDD node
// cap halves per restart (floored), so a genuine blowup lands in the
// engine's PR-3 degradation ladder (halved-cap retry → MC activities)
// instead of crashing forever. Only the dead worker's unfinished circuits
// are re-enqueued; the crash is attributed to the circuit the worker had
// STARTed, and after `max_circuit_retries` crashes on the same circuit its
// remaining cells are marked `failed` in the merged report and excluded
// from further attempts. The run therefore always completes: exit-0/2
// semantics are decided by the caller from the merged task states.
//
// Journaling & resume: every completed ok/degraded cell is appended to a
// JSONL journal (shard/journal.hpp) as it arrives. A later run with
// `resume_path` set validates the journal's suite fingerprint, seeds the
// merged report with the journaled cells, and schedules only circuits with
// missing cells — producing a merged document byte-identical to an
// uninterrupted run (cells are deterministic; rendering is canonical).
//
// Memory governance (DESIGN.md §16): workers self-sample VmRSS/VmHWM on
// every heartbeat tick and ship MEM records; when `mem_limit_mb` is set the
// supervisor additionally samples each live worker's /proc/<pid>/status
// directly at heartbeat cadence (a worker wedged inside an allocation stops
// shipping anything). Every sample updates `ShardRun::worker_memory` and,
// when tracing, lands as a `ph:"C"` counter event on the supervisor lane.
// Crossing ~80% of the limit raises a structured `mem-pressure` instant
// (level "soft", once per incarnation); reaching the limit raises a "hard"
// instant and a controlled SIGKILL (`mem_kills`), so the restart path
// tightens the BDD cap pre-emptively (budget-tighten) instead of letting
// the kernel OOM killer fire at an arbitrary moment.
//
// Fault injection: `worker-abort`, `worker-oom`, `worker-hang` and
// `worker-bloat` sites (util/budget.hpp) fire in the worker that owns the
// circuit whose global index matches the injection ordinal, after START is
// sent — deterministic crash-recovery testing (`worker-bloat` allocates and
// holds a ~160 MiB ballast across several heartbeat periods so the memory
// watermarks trip). Each fires at most once per run: restarted workers are
// told which circuits already crashed and skip their faults.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "flow/session.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace minpower::shard {

struct ShardOptions {
  /// Worker process count (clamped to [1, circuit count]).
  unsigned shards = 2;
  /// Threads inside each worker's flow engine.
  unsigned worker_threads = 1;
  /// Worker heartbeat period. Any pipe traffic counts as liveness.
  int heartbeat_ms = 250;
  /// Silence longer than this SIGKILLs the worker; 0 disables the reaper
  /// (death is then detected by pipe EOF only).
  int heartbeat_timeout_ms = 10'000;
  /// Crashes tolerated per circuit before its cells are marked failed.
  int max_circuit_retries = 2;
  /// Restart backoff: backoff_ms << restarts, capped at max_backoff_ms.
  int backoff_ms = 100;
  int max_backoff_ms = 2'000;
  /// Append completed cells here ("" = no journal).
  std::string journal_path;
  /// Resume from this journal ("" = fresh run). When journal_path is also
  /// set the resumed cells are re-journaled there, so the new journal is
  /// complete on its own.
  std::string resume_path;
  /// Armed faults (env + CLI merged). worker-* sites are consumed here;
  /// everything else is forwarded to the workers' engines.
  std::vector<FaultInjection> injections;
  /// Per-worker resident-set watermark in MiB; 0 disables memory
  /// governance (MEM records are still collected as telemetry). A worker
  /// crossing ~80% raises a soft `mem-pressure` instant; reaching the limit
  /// is a hard breach: the worker is SIGKILLed in a controlled way and
  /// restarted under a tightened BDD budget.
  std::size_t mem_limit_mb = 0;
  /// One stderr line per supervisor event (spawn/crash/restart/kill).
  bool verbose = false;
};

struct ShardStats {
  unsigned workers_spawned = 0;    // initial forks + restarts
  unsigned worker_crashes = 0;     // nonzero exit / signal / protocol break
  unsigned worker_restarts = 0;    // crashes that led to a restart
  unsigned heartbeat_kills = 0;    // SIGKILLs for missed heartbeats
  unsigned mem_kills = 0;          // SIGKILLs for hard mem-limit breaches
  unsigned mem_pressure_events = 0;  // soft+hard watermark crossings
  std::size_t cells_resumed = 0;   // seeded from the journal
  std::size_t cells_computed = 0;  // received from workers this run
  std::size_t cells_failed = 0;    // marked failed after retry exhaustion
};

/// Peak OS memory observed for one worker incarnation (MEM records plus
/// direct /proc sampling under mem_limit_mb). kB units, as reported by the
/// kernel; inherently non-deterministic, so this never reaches the
/// canonical merged report — sidecar/trace/trajectory only.
struct WorkerMemory {
  int worker = 0;  // shard index
  int pid = 0;     // incarnation pid
  std::size_t peak_rss_kb = 0;
  std::size_t peak_hwm_kb = 0;
};

struct ShardRun {
  /// [circuit][method] in suite/Method order — same shape as
  /// FlowSession::run_suite, always fully populated.
  std::vector<std::vector<FlowResult>> per_circuit;
  ShardStats stats;
  /// One pid lane per worker incarnation that shipped a TRACE record
  /// (crashed workers lose their unshipped spans; their replacement ships
  /// under its own pid). Empty when tracing is disabled.
  std::vector<trace::ProcessLane> worker_lanes;
  /// One registry snapshot per worker incarnation that shipped METRICS.
  std::vector<metrics::Snapshot> worker_metrics;
  /// Peak RSS/HWM per worker incarnation that was ever sampled (empty on
  /// platforms without /proc).
  std::vector<WorkerMemory> worker_memory;
  /// Echo of ShardOptions::mem_limit_mb for the sidecar's memory block.
  std::size_t mem_limit_mb = 0;
};

/// Run the suite across worker processes. False (with `error`) only on
/// supervisor-level failures (journal mismatch, fork/pipe failure) — worker
/// crashes never fail the run, they degrade it (failed cells in `out`).
bool run_sharded_suite(const std::vector<const Network*>& circuits,
                       const Library& lib, const FlowOptions& flow,
                       const ShardOptions& options, ShardRun* out,
                       std::string* error);

/// Canonical merged-report rendering: zeroed wall times, no metrics block,
/// engine counters fixed at the cold per-circuit values (3/3/6) — so a
/// resumed run, an uninterrupted sharded run, and a serve response for the
/// same cells are all byte-identical. Shard statistics deliberately stay
/// out of the document (they vary run to run); callers print them to
/// stderr.
void write_sharded_flow_json(std::ostream& os, const ShardRun& run,
                             unsigned shards, const std::string& library_name);

/// Merged Chrome-trace file: the calling (supervisor) process's own lane —
/// engine spans plus lifecycle instants — followed by every worker lane
/// shipped over the pipe. Call with tracing enabled after run_sharded_suite.
void write_shard_trace(std::ostream& os, const ShardRun& run);

/// Metrics sidecar (`minpower.shard_metrics.v1`): the merged worker
/// registries as a standard metrics block plus a `shard` object with the
/// supervisor's own lifecycle statistics and a `memory` object with the
/// per-worker peak RSS/HWM samples. Kept out of the canonical merged
/// report on purpose — it varies run to run under restarts.
void write_shard_metrics_json(std::ostream& os, const ShardRun& run,
                              unsigned shards);

}  // namespace minpower::shard
