#include "shard/journal.hpp"

#include <cstdio>
#include <sstream>

#include "flow/session.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower::shard {

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

const JsonValue* member(const JsonValue& obj, const char* key,
                        JsonValue::Kind kind) {
  const JsonValue* v = obj.find(key);
  return (v != nullptr && v->kind == kind) ? v : nullptr;
}

}  // namespace

std::string suite_fingerprint(const std::vector<const Network*>& circuits,
                              const FlowOptions& flow) {
  StreamHash h;
  h.u64(circuits.size());
  for (const Network* net : circuits) {
    const Hash128 s = structural_hash(*net);
    const Hash128 o = option_fingerprint(flow, *net);
    h.u64(s.a ^ o.a);
    h.u64(s.b ^ o.b);
  }
  const Hash128 d = h.digest();
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(d.a),
                static_cast<unsigned long long>(d.b));
  return buf;
}

bool load_journal(const std::string& path, Journal* out, std::string* error) {
  *out = Journal{};
  std::ifstream in(path);
  if (!in) return fail(error, "cannot open journal " + path);
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    const bool torn_tail = in.eof();  // no trailing '\n': write was cut short
    if (line.empty()) continue;
    std::string parse_error;
    std::optional<JsonValue> v = parse_json(line, &parse_error);
    if (!v) {
      if (torn_tail) break;  // torn trailing line: drop it
      return fail(error, path + ":" + std::to_string(lineno) + ": " +
                             parse_error);
    }
    if (!saw_header) {
      const JsonValue* schema = member(*v, "schema", JsonValue::Kind::kString);
      if (schema == nullptr || schema->string != "minpower.shard.v1")
        return fail(error, path + ": not a minpower.shard.v1 journal");
      const JsonValue* lib = member(*v, "library", JsonValue::Kind::kString);
      const JsonValue* hash =
          member(*v, "suite_hash", JsonValue::Kind::kString);
      const JsonValue* circuits =
          member(*v, "circuits", JsonValue::Kind::kArray);
      if (lib == nullptr || hash == nullptr || circuits == nullptr)
        return fail(error, path + ": malformed journal header");
      out->library = lib->string;
      out->suite_hash = hash->string;
      for (const JsonValue& c : circuits->items) {
        if (c.kind != JsonValue::Kind::kString)
          return fail(error, path + ": non-string circuit name in header");
        out->circuits.push_back(c.string);
      }
      saw_header = true;
      continue;
    }
    const JsonValue* ci = member(*v, "ci", JsonValue::Kind::kNumber);
    const JsonValue* mi = member(*v, "mi", JsonValue::Kind::kNumber);
    const JsonValue* cell = member(*v, "cell", JsonValue::Kind::kObject);
    if (ci == nullptr || mi == nullptr || cell == nullptr)
      return fail(error,
                  path + ":" + std::to_string(lineno) + ": malformed cell");
    JournalCell jc;
    jc.ci = static_cast<std::size_t>(ci->number);
    jc.mi = static_cast<std::size_t>(mi->number);
    if (jc.ci >= out->circuits.size() || jc.mi >= 6)
      return fail(error, path + ":" + std::to_string(lineno) +
                             ": cell index out of range");
    std::string cell_error;
    if (!parse_flow_result_json(*cell, &jc.result, &cell_error))
      return fail(error,
                  path + ":" + std::to_string(lineno) + ": " + cell_error);
    jc.result.circuit = out->circuits[jc.ci];
    out->cells.push_back(std::move(jc));
  }
  if (!saw_header) return fail(error, path + ": empty journal (no header)");
  return true;
}

bool JournalWriter::create(const std::string& path, const std::string& library,
                           const std::string& suite_hash,
                           const std::vector<std::string>& circuits,
                           std::string* error) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) return fail(error, "cannot create journal " + path);
  std::ostringstream line;
  {
    JsonWriter w(line, /*pretty=*/false);
    w.begin_object();
    w.field("schema", "minpower.shard.v1");
    w.field("library", library);
    w.field("suite_hash", suite_hash);
    w.key("circuits");
    w.begin_array();
    for (const std::string& c : circuits) w.value(c);
    w.end_array();
    w.end_object();
  }
  out_ << line.str() << '\n' << std::flush;
  return out_.good() || fail(error, "cannot write journal header to " + path);
}

bool JournalWriter::open_append(const std::string& path, std::string* error) {
  out_.open(path, std::ios::out | std::ios::app);
  if (!out_) return fail(error, "cannot append to journal " + path);
  return true;
}

void JournalWriter::append_cell(std::size_t ci, std::size_t mi,
                                const FlowResult& r) {
  if (!out_.is_open()) return;
  std::ostringstream line;
  {
    JsonWriter w(line, /*pretty=*/false);
    w.begin_object();
    w.field("ci", ci);
    w.field("mi", mi);
    w.key("cell");
    write_flow_result_json(w, r);
    w.end_object();
  }
  out_ << line.str() << '\n' << std::flush;
}

}  // namespace minpower::shard
