#include "trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower::trace {

namespace {

/// Decomposition group of an engine method label ("I".."VI"); mirrors
/// flow_engine.cpp's group_of. Returns -1 for anything unrecognized.
int group_of_method(const std::string& m) {
  if (m == "I" || m == "IV") return 0;
  if (m == "II" || m == "V") return 1;
  if (m == "III" || m == "VI") return 2;
  return -1;
}

std::uint64_t to_u64(double d) {
  return d > 0.0 ? static_cast<std::uint64_t>(d) : 0;
}

/// Exact q-quantile of an ascending sample vector (nearest-rank).
std::uint64_t quantile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

WaitStats wait_stats(std::vector<std::uint64_t> samples) {
  WaitStats w;
  if (samples.empty()) return w;
  std::sort(samples.begin(), samples.end());
  w.count = samples.size();
  w.min_us = samples.front();
  w.max_us = samples.back();
  std::uint64_t sum = 0;
  for (const std::uint64_t s : samples) sum += s;
  w.mean_us = static_cast<double>(sum) / static_cast<double>(samples.size());
  w.p50_us = quantile(samples, 0.50);
  w.p90_us = quantile(samples, 0.90);
  w.p99_us = quantile(samples, 0.99);
  return w;
}

void extract_args(const JsonValue& ev,
                  std::vector<std::pair<std::string, std::string>>* str_args,
                  std::vector<std::pair<std::string, double>>* num_args) {
  const JsonValue* args = ev.find("args");
  if (args == nullptr || args->kind != JsonValue::Kind::kObject) return;
  for (const auto& [key, v] : args->members) {
    if (v.kind == JsonValue::Kind::kString)
      str_args->emplace_back(key, v.string);
    else if (v.kind == JsonValue::Kind::kNumber)
      num_args->emplace_back(key, v.number);
  }
}

/// Optional "pid" field; the in-process exporter historically wrote pid 1,
/// so that stays the default for flat traces.
int extract_pid(const JsonValue& ev) {
  const JsonValue* pid = ev.find("pid");
  if (pid != nullptr && pid->kind == JsonValue::Kind::kNumber)
    return static_cast<int>(pid->number);
  return 1;
}

bool extract_event(const JsonValue& ev, SpanRecord* out, std::string* error) {
  const JsonValue* name = ev.find("name");
  const JsonValue* ts = ev.find("ts");
  const JsonValue* dur = ev.find("dur");
  const JsonValue* tid = ev.find("tid");
  if (name == nullptr || name->kind != JsonValue::Kind::kString ||
      ts == nullptr || ts->kind != JsonValue::Kind::kNumber || dur == nullptr ||
      dur->kind != JsonValue::Kind::kNumber || tid == nullptr ||
      tid->kind != JsonValue::Kind::kNumber) {
    *error = "complete event missing name/ts/dur/tid";
    return false;
  }
  out->name = name->string;
  if (const JsonValue* cat = ev.find("cat");
      cat != nullptr && cat->kind == JsonValue::Kind::kString)
    out->cat = cat->string;
  out->ts_us = to_u64(ts->number);
  out->dur_us = to_u64(dur->number);
  out->pid = extract_pid(ev);
  out->tid = static_cast<int>(tid->number);
  extract_args(ev, &out->str_args, &out->num_args);
  return true;
}

bool extract_instant(const JsonValue& ev, InstantRecord* out,
                     std::string* error) {
  const JsonValue* name = ev.find("name");
  const JsonValue* ts = ev.find("ts");
  if (name == nullptr || name->kind != JsonValue::Kind::kString ||
      ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
    *error = "instant event missing name/ts";
    return false;
  }
  out->name = name->string;
  if (const JsonValue* cat = ev.find("cat");
      cat != nullptr && cat->kind == JsonValue::Kind::kString)
    out->cat = cat->string;
  out->ts_us = to_u64(ts->number);
  out->pid = extract_pid(ev);
  if (const JsonValue* tid = ev.find("tid");
      tid != nullptr && tid->kind == JsonValue::Kind::kNumber)
    out->tid = static_cast<int>(tid->number);
  extract_args(ev, &out->str_args, &out->num_args);
  return true;
}

/// Critical path of one process's engine stage1/stage2 spans (barrier and
/// dependency models — see the header comment).
CriticalPath engine_critical_path(
    const std::map<std::pair<std::string, int>, const SpanRecord*>& stage1,
    const std::vector<const SpanRecord*>& stage2) {
  CriticalPath cp;
  if (stage1.empty() && stage2.empty()) return cp;
  cp.available = true;
  auto label_of = [](const SpanRecord& s) {
    const std::string* task = s.find_str("task");
    return task != nullptr ? *task : s.name;
  };
  const SpanRecord* worst1 = nullptr;
  for (const auto& [key, s] : stage1)
    if (worst1 == nullptr || s->dur_us > worst1->dur_us) worst1 = s;
  const SpanRecord* worst2 = nullptr;
  for (const SpanRecord* s : stage2)
    if (worst2 == nullptr || s->dur_us > worst2->dur_us) worst2 = s;
  if (worst1 != nullptr) {
    cp.barrier_chain.push_back({"stage1", label_of(*worst1), worst1->dur_us});
    cp.barrier_us += worst1->dur_us;
  }
  if (worst2 != nullptr) {
    cp.barrier_chain.push_back({"stage2", label_of(*worst2), worst2->dur_us});
    cp.barrier_us += worst2->dur_us;
  }
  // Dependency model: chain each stage-2 task to its own circuit's
  // stage-1 group only.
  for (const SpanRecord* s2 : stage2) {
    const std::string* circuit = s2->find_str("circuit");
    const std::string* method = s2->find_str("method");
    std::uint64_t chain = s2->dur_us;
    const SpanRecord* dep = nullptr;
    if (circuit != nullptr && method != nullptr) {
      const int g = group_of_method(*method);
      const auto it = g >= 0 ? stage1.find({*circuit, g}) : stage1.end();
      if (it != stage1.end()) {
        dep = it->second;
        chain += dep->dur_us;
      }
    }
    if (chain > cp.dependency_us) {
      cp.dependency_us = chain;
      cp.dependency_chain.clear();
      if (dep != nullptr)
        cp.dependency_chain.push_back({"stage1", label_of(*dep), dep->dur_us});
      cp.dependency_chain.push_back({"stage2", label_of(*s2), s2->dur_us});
    }
  }
  // A stage-1-only trace (no stage 2 ran): its path is the slowest task.
  if (stage2.empty() && worst1 != nullptr) {
    cp.dependency_us = worst1->dur_us;
    cp.dependency_chain = {{"stage1", label_of(*worst1), worst1->dur_us}};
  }
  return cp;
}

}  // namespace

const std::string* SpanRecord::find_str(std::string_view key) const {
  for (const auto& [k, v] : str_args)
    if (k == key) return &v;
  return nullptr;
}

const double* SpanRecord::find_num(std::string_view key) const {
  for (const auto& [k, v] : num_args)
    if (k == key) return &v;
  return nullptr;
}

const std::string* InstantRecord::find_str(std::string_view key) const {
  for (const auto& [k, v] : str_args)
    if (k == key) return &v;
  return nullptr;
}

const double* InstantRecord::find_num(std::string_view key) const {
  for (const auto& [k, v] : num_args)
    if (k == key) return &v;
  return nullptr;
}

bool analyze_chrome_trace(std::string_view json, TraceProfile* out,
                          std::string* error) {
  *out = TraceProfile{};
  std::string parse_error;
  const auto doc = parse_json(json, &parse_error);
  if (!doc) {
    if (error != nullptr) *error = "invalid JSON: " + parse_error;
    return false;
  }
  const JsonValue* events = doc->kind == JsonValue::Kind::kObject
                                ? doc->find("traceEvents")
                                : nullptr;
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) *error = "no traceEvents array in the document";
    return false;
  }

  std::vector<SpanRecord> raw;
  std::map<int, std::string> process_names;  // from process_name metadata
  for (const JsonValue& ev : events->items) {
    if (ev.kind != JsonValue::Kind::kObject) continue;
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr) continue;
    if (ph->string == "X") {
      SpanRecord s;
      std::string ev_error;
      if (!extract_event(ev, &s, &ev_error)) {
        if (error != nullptr) *error = ev_error;
        return false;
      }
      raw.push_back(std::move(s));
    } else if (ph->string == "i") {
      InstantRecord ir;
      std::string ev_error;
      if (!extract_instant(ev, &ir, &ev_error)) {
        if (error != nullptr) *error = ev_error;
        return false;
      }
      out->lifecycle.push_back(std::move(ir));
    } else if (ph->string == "M") {
      const JsonValue* name = ev.find("name");
      if (name != nullptr && name->string == "process_name") {
        const JsonValue* args = ev.find("args");
        const JsonValue* label =
            args != nullptr ? args->find("name") : nullptr;
        if (label != nullptr && label->kind == JsonValue::Kind::kString)
          process_names[extract_pid(ev)] = label->string;
      }
    }
  }
  std::sort(out->lifecycle.begin(), out->lifecycle.end(),
            [](const InstantRecord& a, const InstantRecord& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.name < b.name;
            });

  // Rebuild the forest per (pid, tid) lane: sort by (start, −duration) so
  // a parent precedes the children it contains, then nest with an
  // open-span stack.
  std::map<std::pair<int, int>, std::vector<std::size_t>> by_lane;
  for (std::size_t i = 0; i < raw.size(); ++i)
    by_lane[{raw[i].pid, raw[i].tid}].push_back(i);

  out->num_events = raw.size();
  out->spans.reserve(raw.size());
  std::uint64_t min_ts = UINT64_MAX;
  std::uint64_t max_end = 0;

  for (auto& [lane, indices] : by_lane) {
    const int tid = lane.second;
    std::sort(indices.begin(), indices.end(),
              [&raw](std::size_t a, std::size_t b) {
                if (raw[a].ts_us != raw[b].ts_us)
                  return raw[a].ts_us < raw[b].ts_us;
                if (raw[a].dur_us != raw[b].dur_us)
                  return raw[a].dur_us > raw[b].dur_us;
                return a < b;
              });
    ThreadTotals tt;
    tt.pid = lane.first;
    tt.tid = tid;
    tt.first_ts_us = UINT64_MAX;
    std::vector<int> stack;  // indices into out->spans
    for (const std::size_t ri : indices) {
      SpanRecord s = std::move(raw[ri]);
      const std::uint64_t end = s.ts_us + s.dur_us;
      while (!stack.empty()) {
        const SpanRecord& top = out->spans[static_cast<std::size_t>(
            stack.back())];
        if (s.ts_us < top.ts_us + top.dur_us && end <= top.ts_us + top.dur_us)
          break;  // contained: top is the parent
        stack.pop_back();
      }
      s.self_us = s.dur_us;
      if (!stack.empty()) {
        s.parent = stack.back();
        s.depth = out->spans[static_cast<std::size_t>(s.parent)].depth + 1;
        SpanRecord& parent = out->spans[static_cast<std::size_t>(s.parent)];
        // Direct-child time comes off the parent's self time. Containment
        // plus per-thread sequencing guarantees this never underflows.
        parent.self_us -= std::min(parent.self_us, s.dur_us);
      } else {
        tt.busy_us += s.dur_us;
      }
      tt.events += 1;
      tt.first_ts_us = std::min(tt.first_ts_us, s.ts_us);
      tt.last_end_us = std::max(tt.last_end_us, end);
      min_ts = std::min(min_ts, s.ts_us);
      max_end = std::max(max_end, end);
      const int index = static_cast<int>(out->spans.size());
      out->spans.push_back(std::move(s));
      stack.push_back(index);
    }
    if (tt.first_ts_us == UINT64_MAX) tt.first_ts_us = 0;
    for (std::size_t i = out->spans.size() - tt.events; i < out->spans.size();
         ++i)
      tt.self_us += out->spans[i].self_us;
    out->threads.push_back(tt);
  }
  out->wall_us = max_end >= min_ts && min_ts != UINT64_MAX ? max_end - min_ts
                                                           : 0;

  // Per-process rollups over the thread lanes; instants count toward the
  // owning pid so a lane that only crashed (no shipped spans) still shows.
  std::map<int, ProcessTotals> procs;
  for (const ThreadTotals& t : out->threads) {
    ProcessTotals& pr = procs[t.pid];
    if (pr.num_threads == 0) {
      pr.pid = t.pid;
      pr.first_ts_us = t.first_ts_us;
      pr.last_end_us = t.last_end_us;
    }
    pr.num_threads += 1;
    pr.events += t.events;
    pr.busy_us += t.busy_us;
    pr.self_us += t.self_us;
    pr.first_ts_us = std::min(pr.first_ts_us, t.first_ts_us);
    pr.last_end_us = std::max(pr.last_end_us, t.last_end_us);
  }
  for (const InstantRecord& ir : out->lifecycle) {
    if (procs.find(ir.pid) == procs.end()) {
      ProcessTotals& pr = procs[ir.pid];
      pr.pid = ir.pid;
      pr.first_ts_us = ir.ts_us;
      pr.last_end_us = ir.ts_us;
    }
  }
  for (auto& [pid, pr] : procs) {
    if (const auto it = process_names.find(pid); it != process_names.end())
      pr.name = it->second;
  }

  // Per-phase aggregation over (name, cat).
  std::map<std::pair<std::string, std::string>, PhaseTotals> phases;
  for (const SpanRecord& s : out->spans) {
    PhaseTotals& p = phases[{s.name, s.cat}];
    if (p.count == 0) {
      p.name = s.name;
      p.cat = s.cat;
      p.min_us = s.dur_us;
    }
    p.count += 1;
    p.total_us += s.dur_us;
    p.self_us += s.self_us;
    p.min_us = std::min(p.min_us, s.dur_us);
    p.max_us = std::max(p.max_us, s.dur_us);
  }
  for (auto& [key, p] : phases) out->phases.push_back(std::move(p));
  std::sort(out->phases.begin(), out->phases.end(),
            [](const PhaseTotals& a, const PhaseTotals& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });

  // Engine-stage analysis: queue waits (global) + a critical path per
  // process — merged worker lanes each ran their own engine.
  std::vector<std::uint64_t> wait1;
  std::vector<std::uint64_t> wait2;
  std::map<int, std::map<std::pair<std::string, int>, const SpanRecord*>>
      stage1_by_pid;  // pid → (circuit × group) → slowest attempt
  std::map<int, std::vector<const SpanRecord*>> stage2_by_pid;
  for (const SpanRecord& s : out->spans) {
    if (s.cat == "shard" && s.name == "supervise") {
      out->supervisor.available = true;
      out->supervisor.supervise_us += s.dur_us;
      if (const double* w = s.find_num("poll_wait_us"))
        out->supervisor.poll_wait_us += to_u64(*w);
      if (const double* n = s.find_num("polls"))
        out->supervisor.polls += to_u64(*n);
      continue;
    }
    if (s.cat != "engine") continue;
    if (s.name == "stage1") {
      if (const double* w = s.find_num("queue_wait_us"))
        wait1.push_back(to_u64(*w));
      const std::string* circuit = s.find_str("circuit");
      const double* group = s.find_num("group");
      if (circuit != nullptr && group != nullptr) {
        // Keep the slowest attempt if a (circuit, group) repeats (e.g. two
        // run_suite calls in one trace) — conservative for the path.
        const SpanRecord*& slot =
            stage1_by_pid[s.pid][{*circuit, static_cast<int>(*group)}];
        if (slot == nullptr || s.dur_us > slot->dur_us) slot = &s;
      }
    } else if (s.name == "stage2") {
      if (const double* w = s.find_num("queue_wait_us"))
        wait2.push_back(to_u64(*w));
      stage2_by_pid[s.pid].push_back(&s);
    }
  }
  out->stage1_wait = wait_stats(std::move(wait1));
  out->stage2_wait = wait_stats(std::move(wait2));

  std::vector<int> engine_pids;
  for (const auto& [pid, m] : stage1_by_pid) engine_pids.push_back(pid);
  for (const auto& [pid, v] : stage2_by_pid)
    if (stage1_by_pid.find(pid) == stage1_by_pid.end())
      engine_pids.push_back(pid);
  std::sort(engine_pids.begin(), engine_pids.end());
  static const std::map<std::pair<std::string, int>, const SpanRecord*>
      kNoStage1;
  static const std::vector<const SpanRecord*> kNoStage2;
  for (const int pid : engine_pids) {
    const auto it1 = stage1_by_pid.find(pid);
    const auto it2 = stage2_by_pid.find(pid);
    CriticalPath cp = engine_critical_path(
        it1 != stage1_by_pid.end() ? it1->second : kNoStage1,
        it2 != stage2_by_pid.end() ? it2->second : kNoStage2);
    // The dominant per-process path becomes the trace-level one — for a
    // flat single-pid trace this is exactly the old single-forest answer.
    if (!out->critical.available || cp.barrier_us > out->critical.barrier_us)
      out->critical = cp;
    if (const auto pit = procs.find(pid); pit != procs.end())
      pit->second.critical = std::move(cp);
  }

  out->processes.reserve(procs.size());
  for (auto& [pid, pr] : procs) out->processes.push_back(std::move(pr));
  return true;
}

namespace {

void write_phase_row(JsonWriter& w, const PhaseTotals& p) {
  w.begin_object();
  w.field("name", p.name);
  w.field("cat", p.cat);
  w.field("count", p.count);
  w.field("total_us", p.total_us);
  w.field("self_us", p.self_us);
  w.field("min_us", p.min_us);
  w.field("max_us", p.max_us);
  w.field("mean_us",
          p.count ? static_cast<double>(p.total_us) /
                        static_cast<double>(p.count)
                  : 0.0);
  w.end_object();
}

void write_wait(JsonWriter& w, const char* key, const WaitStats& s) {
  w.key(key);
  w.begin_object();
  w.field("count", s.count);
  w.field("min_us", s.min_us);
  w.field("mean_us", s.mean_us);
  w.field("p50_us", s.p50_us);
  w.field("p90_us", s.p90_us);
  w.field("p99_us", s.p99_us);
  w.field("max_us", s.max_us);
  w.end_object();
}

void write_chain(JsonWriter& w, const char* key,
                 const std::vector<PathStep>& chain) {
  w.key(key);
  w.begin_array();
  for (const PathStep& step : chain) {
    w.begin_object();
    w.field("stage", step.stage);
    w.field("task", step.task);
    w.field("dur_us", step.dur_us);
    w.end_object();
  }
  w.end_array();
}

void write_critical(JsonWriter& w, const char* key, const CriticalPath& cp) {
  w.key(key);
  w.begin_object();
  w.field("available", cp.available);
  w.field("barrier_us", cp.barrier_us);
  write_chain(w, "barrier_chain", cp.barrier_chain);
  w.field("dependency_us", cp.dependency_us);
  write_chain(w, "dependency_chain", cp.dependency_chain);
  w.field("barrier_slack_us", cp.barrier_us > cp.dependency_us
                                  ? cp.barrier_us - cp.dependency_us
                                  : 0);
  w.end_object();
}

double ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

}  // namespace

void write_profile_json(std::ostream& os, const TraceProfile& p,
                        const std::string& source, int top_n) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "minpower.profile.v1");
  w.field("source", source);
  w.field("num_events", static_cast<unsigned long long>(p.num_events));
  w.field("wall_us", p.wall_us);
  w.field("num_threads", static_cast<unsigned long long>(p.threads.size()));
  w.field("num_processes",
          static_cast<unsigned long long>(p.processes.size()));
  w.key("phases");
  w.begin_array();
  for (const PhaseTotals& ph : p.phases) write_phase_row(w, ph);
  w.end_array();
  w.key("hotspots");
  w.begin_array();
  for (std::size_t i = 0;
       i < p.phases.size() && i < static_cast<std::size_t>(top_n); ++i)
    write_phase_row(w, p.phases[i]);
  w.end_array();
  w.key("threads");
  w.begin_array();
  for (const ThreadTotals& t : p.threads) {
    w.begin_object();
    w.field("pid", t.pid);
    w.field("tid", t.tid);
    w.field("events", t.events);
    w.field("busy_us", t.busy_us);
    w.field("self_us", t.self_us);
    w.field("first_ts_us", t.first_ts_us);
    w.field("last_end_us", t.last_end_us);
    w.field("wall_us", t.wall_us());
    w.field("utilization",
            p.wall_us ? static_cast<double>(t.busy_us) /
                            static_cast<double>(p.wall_us)
                      : 0.0);
    w.end_object();
  }
  w.end_array();
  w.key("processes");
  w.begin_array();
  for (const ProcessTotals& pr : p.processes) {
    w.begin_object();
    w.field("pid", pr.pid);
    w.field("name", pr.name);
    w.field("num_threads", static_cast<unsigned long long>(pr.num_threads));
    w.field("events", pr.events);
    w.field("busy_us", pr.busy_us);
    w.field("self_us", pr.self_us);
    w.field("first_ts_us", pr.first_ts_us);
    w.field("last_end_us", pr.last_end_us);
    w.field("wall_us", pr.wall_us());
    w.field("utilization",
            p.wall_us ? static_cast<double>(pr.busy_us) /
                            static_cast<double>(p.wall_us)
                      : 0.0);
    write_critical(w, "critical_path", pr.critical);
    w.end_object();
  }
  w.end_array();
  w.key("lifecycle");
  w.begin_array();
  for (const InstantRecord& ir : p.lifecycle) {
    w.begin_object();
    w.field("ts_us", ir.ts_us);
    w.field("name", ir.name);
    w.field("cat", ir.cat);
    w.field("pid", ir.pid);
    w.key("args");
    w.begin_object();
    for (const auto& [k, v] : ir.str_args) w.field(k.c_str(), v);
    for (const auto& [k, v] : ir.num_args) w.field(k.c_str(), v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("queue_wait");
  w.begin_object();
  write_wait(w, "stage1", p.stage1_wait);
  write_wait(w, "stage2", p.stage2_wait);
  w.end_object();
  write_critical(w, "critical_path", p.critical);
  w.key("supervisor");
  w.begin_object();
  w.field("available", p.supervisor.available);
  w.field("supervise_us", p.supervisor.supervise_us);
  w.field("poll_wait_us", p.supervisor.poll_wait_us);
  w.field("busy_us", p.supervisor.busy_us());
  w.field("polls", p.supervisor.polls);
  w.end_object();
  w.end_object();
  os << '\n';
}

void print_profile(std::ostream& os, const TraceProfile& p, int top_n) {
  char buf[320];
  if (p.processes.size() > 1) {
    std::snprintf(buf, sizeof(buf),
                  "trace: %zu spans on %zu threads across %zu processes, "
                  "wall %.3f ms\n",
                  p.num_events, p.threads.size(), p.processes.size(),
                  ms(p.wall_us));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "trace: %zu spans on %zu threads, wall %.3f ms\n",
                  p.num_events, p.threads.size(), ms(p.wall_us));
  }
  os << buf;
  if (p.spans.empty() && p.lifecycle.empty()) return;

  if (!p.phases.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "\n%-12s %-8s %6s %12s %12s %10s %10s %8s\n", "phase", "cat",
                  "count", "total ms", "self ms", "min ms", "max ms",
                  "self %");
    os << buf;
    os << std::string(86, '-') << '\n';
    std::uint64_t self_sum = 0;
    for (const PhaseTotals& ph : p.phases) self_sum += ph.self_us;
    int rows = 0;
    for (const PhaseTotals& ph : p.phases) {
      if (rows++ >= top_n) break;
      std::snprintf(buf, sizeof(buf),
                    "%-12s %-8s %6llu %12.3f %12.3f %10.3f %10.3f %7.1f%%\n",
                    ph.name.c_str(), ph.cat.c_str(),
                    static_cast<unsigned long long>(ph.count), ms(ph.total_us),
                    ms(ph.self_us), ms(ph.min_us), ms(ph.max_us),
                    self_sum ? 100.0 * static_cast<double>(ph.self_us) /
                                   static_cast<double>(self_sum)
                             : 0.0);
      os << buf;
    }
    if (p.phases.size() > static_cast<std::size_t>(top_n)) {
      std::snprintf(buf, sizeof(buf), "(%zu more phases; see --json)\n",
                    p.phases.size() - static_cast<std::size_t>(top_n));
      os << buf;
    }
  }

  const bool multi = p.processes.size() > 1;
  if (!p.threads.empty()) {
    if (multi) {
      os << "\npid      thread   events    busy ms    self ms  utilization\n";
      os << std::string(61, '-') << '\n';
    } else {
      os << "\nthread   events    busy ms    self ms  utilization\n";
      os << std::string(52, '-') << '\n';
    }
    for (const ThreadTotals& t : p.threads) {
      const double util = p.wall_us ? 100.0 * static_cast<double>(t.busy_us) /
                                          static_cast<double>(p.wall_us)
                                    : 0.0;
      if (multi) {
        std::snprintf(buf, sizeof(buf),
                      "%-8d %-8d %6llu %10.3f %10.3f %11.1f%%\n", t.pid,
                      t.tid, static_cast<unsigned long long>(t.events),
                      ms(t.busy_us), ms(t.self_us), util);
      } else {
        std::snprintf(buf, sizeof(buf), "%-8d %6llu %10.3f %10.3f %11.1f%%\n",
                      t.tid, static_cast<unsigned long long>(t.events),
                      ms(t.busy_us), ms(t.self_us), util);
      }
      os << buf;
    }
  }

  if (multi) {
    os << "\nprocess lanes:\n";
    for (const ProcessTotals& pr : p.processes) {
      std::snprintf(buf, sizeof(buf),
                    "  pid %-7d %-28s threads=%zu events=%llu busy=%.3f ms "
                    "wall=%.3f ms util=%.1f%%\n",
                    pr.pid, pr.name.empty() ? "?" : pr.name.c_str(),
                    pr.num_threads,
                    static_cast<unsigned long long>(pr.events), ms(pr.busy_us),
                    ms(pr.wall_us()),
                    p.wall_us ? 100.0 * static_cast<double>(pr.busy_us) /
                                    static_cast<double>(p.wall_us)
                              : 0.0);
      os << buf;
      if (pr.critical.available) {
        std::snprintf(buf, sizeof(buf),
                      "    critical path %.3f ms (dependency bound %.3f ms)",
                      ms(pr.critical.barrier_us), ms(pr.critical.dependency_us));
        os << buf;
        for (const PathStep& step : pr.critical.barrier_chain) {
          std::snprintf(buf, sizeof(buf), "  %s:%s %.3f ms",
                        step.stage.c_str(), step.task.c_str(),
                        ms(step.dur_us));
          os << buf;
        }
        os << '\n';
      }
    }
  }

  if (!p.lifecycle.empty()) {
    os << "\nlifecycle events:\n";
    for (const InstantRecord& ir : p.lifecycle) {
      std::snprintf(buf, sizeof(buf), "  %12.3f ms  %-18s pid=%d", ms(ir.ts_us),
                    ir.name.c_str(), ir.pid);
      os << buf;
      for (const auto& [k, v] : ir.str_args) os << ' ' << k << '=' << v;
      for (const auto& [k, v] : ir.num_args) {
        std::snprintf(buf, sizeof(buf), " %s=%.0f", k.c_str(), v);
        os << buf;
      }
      os << '\n';
    }
  }

  if (p.supervisor.available) {
    const std::uint64_t su = p.supervisor.supervise_us;
    std::snprintf(buf, sizeof(buf),
                  "\nsupervisor: supervise %.3f ms, blocked in poll %.3f ms "
                  "(%.1f%%), busy %.3f ms, %llu polls\n",
                  ms(su), ms(p.supervisor.poll_wait_us),
                  su ? 100.0 * static_cast<double>(p.supervisor.poll_wait_us) /
                           static_cast<double>(su)
                     : 0.0,
                  ms(p.supervisor.busy_us()),
                  static_cast<unsigned long long>(p.supervisor.polls));
    os << buf;
  }

  auto print_wait = [&](const char* stage, const WaitStats& s) {
    if (s.count == 0) return;
    std::snprintf(buf, sizeof(buf),
                  "%s queue wait: n=%llu mean=%.3f ms p50=%.3f p90=%.3f "
                  "p99=%.3f max=%.3f\n",
                  stage, static_cast<unsigned long long>(s.count),
                  s.mean_us / 1000.0, ms(s.p50_us), ms(s.p90_us), ms(s.p99_us),
                  ms(s.max_us));
    os << buf;
  };
  os << '\n';
  print_wait("stage1", p.stage1_wait);
  print_wait("stage2", p.stage2_wait);

  if (p.critical.available) {
    os << "\ncritical path (barrier schedule):\n";
    for (const PathStep& step : p.critical.barrier_chain) {
      std::snprintf(buf, sizeof(buf), "  %-7s %-24s %10.3f ms\n",
                    step.stage.c_str(), step.task.c_str(), ms(step.dur_us));
      os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  total %.3f ms  (dependency-only bound %.3f ms, barrier "
                  "slack %.3f ms)\n",
                  ms(p.critical.barrier_us), ms(p.critical.dependency_us),
                  ms(p.critical.barrier_us > p.critical.dependency_us
                         ? p.critical.barrier_us - p.critical.dependency_us
                         : 0));
    os << buf;
  }
}

}  // namespace minpower::trace
