#pragma once
// Out-of-line annotations for the header-only observability layer. Without
// them every slow path (span recording, registry lookups, JSON export) is
// inlined into its call sites, interleaving instrumentation bytes with the
// synthesis hot loops.
//
// Two flavors, and the distinction matters:
//
//  - MP_TRACE_OUTLINE (`noinline`): for helpers invoked *unconditionally*
//    from hot functions (registry accessors, span args). Plain noinline
//    keeps the call site small without biasing the caller.
//  - MP_TRACE_COLD (`noinline, cold`): only for paths guarded by a branch
//    that is false in normal runs (span begin/finish when tracing is off,
//    checkpoint-cache misses) or for one-shot export/reset code. `cold`
//    moves the body to .text.unlikely and marks the guarding branch
//    not-taken. Never put it on an unconditional call from hot code: GCC
//    treats regions dominated by a cold call as cold and size-optimizes the
//    whole calling function.

#if defined(__GNUC__) || defined(__clang__)
#define MP_TRACE_OUTLINE __attribute__((noinline))
#define MP_TRACE_COLD __attribute__((noinline, cold))
#else
#define MP_TRACE_OUTLINE
#define MP_TRACE_COLD
#endif
