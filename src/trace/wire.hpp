#pragma once
// Wire format for shipping observability data across processes
// (DESIGN.md §15). Two payloads ride the shard pipe protocol as single-line
// JSON, one per record:
//
//   TRACE <json>    — write_events_json / parse_events_json: a worker's
//                     span+instant snapshot grouped per thread, timestamps
//                     already in the shared CLOCK_MONOTONIC timebase.
//   METRICS <json>  — metrics::write_metrics_json (the minpower.flow.v1
//                     metrics block) / parse_metrics_json here.
//
// merge_snapshots() folds worker registries into one: counters sum (event
// counts over disjoint circuit partitions are additive), gauges take the max
// (high-water marks), histograms add bucket-wise. On a clean run the merged
// result equals the registry a single process would have produced for the
// same suite — the acceptance check test_shard_observability relies on.
// Restarted circuits re-run work, so equality is only guaranteed without
// fault injection.
//
// Numbers survive the round trip through the double-typed JSON parser
// exactly up to 2^53; span args and metric values in practice stay far
// below that, and ts/dur microsecond stamps overflow 2^53 only after ~285
// years of uptime.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace minpower::trace {

/// Emit a per-thread event snapshot as one compact JSON object:
/// {"threads":[{"tid":N,"events":[{name,cat,ph,ts,dur,args}...]}...]}.
/// No newlines — the result is safe as a single pipe-protocol line.
MP_TRACE_COLD inline void write_events_json(
    std::ostream& os, const std::vector<ThreadEvents>& threads) {
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.key("threads");
  w.begin_array();
  for (const ThreadEvents& t : threads) {
    w.begin_object();
    w.field("tid", t.tid);
    w.key("events");
    w.begin_array();
    for (const Event& e : t.events) {
      w.begin_object();
      w.field("name", e.name);
      w.field("cat", e.cat);
      w.field("ph", e.ph == 'i'   ? "i"
                    : e.ph == 'C' ? "C"
                                  : "X");
      w.field("ts", static_cast<unsigned long long>(e.ts_us));
      if (e.ph != 'i' && e.ph != 'C')
        w.field("dur", static_cast<unsigned long long>(e.dur_us));
      w.key("args");
      w.begin_object();
      for (const Arg& a : e.args) {
        w.key(a.key);
        switch (a.kind) {
          case Arg::Kind::kString: w.value(a.s); break;
          case Arg::Kind::kDouble: w.value(a.d); break;
          case Arg::Kind::kInt: w.value(a.i); break;
          case Arg::Kind::kUint: w.value(a.u); break;
        }
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace wire_detail {

inline std::uint64_t as_u64(const JsonValue& v) {
  return v.number <= 0 ? 0 : static_cast<std::uint64_t>(v.number);
}

inline void parse_arg(Event& e, const std::string& key, const JsonValue& v) {
  if (v.kind == JsonValue::Kind::kString) {
    detail::add_arg(e, key, std::string_view(v.string));
  } else if (v.kind == JsonValue::Kind::kNumber) {
    const double d = v.number;
    if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
      if (d < 0)
        detail::add_arg(e, key, static_cast<long long>(d));
      else
        detail::add_arg(e, key, static_cast<unsigned long long>(d));
    } else {
      detail::add_arg(e, key, d);
    }
  }
  // Other kinds (bool/null/array/object) never appear in span args; drop.
}

}  // namespace wire_detail

/// Inverse of write_events_json. Returns std::nullopt and fills `error`
/// (when non-null) on malformed input or a schema mismatch.
MP_TRACE_COLD inline std::optional<std::vector<ThreadEvents>>
parse_events_json(std::string_view text, std::string* error = nullptr) {
  const std::optional<JsonValue> doc = parse_json(text, error);
  if (!doc) return std::nullopt;
  const JsonValue* threads = doc->find("threads");
  if (!threads || threads->kind != JsonValue::Kind::kArray) {
    if (error && error->empty()) *error = "missing 'threads' array";
    return std::nullopt;
  }
  std::vector<ThreadEvents> out;
  for (const JsonValue& tj : threads->items) {
    if (tj.kind != JsonValue::Kind::kObject) continue;
    ThreadEvents t;
    if (const JsonValue* tid = tj.find("tid"))
      t.tid = static_cast<int>(tid->number);
    if (const JsonValue* events = tj.find("events");
        events && events->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& ej : events->items) {
        if (ej.kind != JsonValue::Kind::kObject) continue;
        Event e;
        if (const JsonValue* v = ej.find("name")) e.name = v->string;
        if (const JsonValue* v = ej.find("cat")) e.cat = v->string;
        if (const JsonValue* v = ej.find("ph"))
          e.ph = v->string == "i"   ? 'i'
                 : v->string == "C" ? 'C'
                                    : 'X';
        if (const JsonValue* v = ej.find("ts"))
          e.ts_us = wire_detail::as_u64(*v);
        if (const JsonValue* v = ej.find("dur"))
          e.dur_us = wire_detail::as_u64(*v);
        if (const JsonValue* args = ej.find("args");
            args && args->kind == JsonValue::Kind::kObject)
          for (const auto& [k, v] : args->members)
            wire_detail::parse_arg(e, k, v);
        t.events.push_back(std::move(e));
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

/// Parse a metrics block produced by metrics::write_metrics_json (either a
/// standalone document or an already-located JSON object value).
MP_TRACE_COLD inline std::optional<metrics::Snapshot> parse_metrics_value(
    const JsonValue& doc, std::string* error = nullptr) {
  if (doc.kind != JsonValue::Kind::kObject) {
    if (error && error->empty()) *error = "metrics block is not an object";
    return std::nullopt;
  }
  metrics::Snapshot s;
  if (const JsonValue* arr = doc.find("counters");
      arr && arr->kind == JsonValue::Kind::kArray)
    for (const JsonValue& c : arr->items) {
      const JsonValue* name = c.find("name");
      const JsonValue* value = c.find("value");
      if (name && value)
        s.counters.emplace_back(name->string, wire_detail::as_u64(*value));
    }
  if (const JsonValue* arr = doc.find("gauges");
      arr && arr->kind == JsonValue::Kind::kArray)
    for (const JsonValue& g : arr->items) {
      const JsonValue* name = g.find("name");
      const JsonValue* value = g.find("value");
      if (name && value)
        s.gauges.emplace_back(name->string, wire_detail::as_u64(*value));
    }
  if (const JsonValue* arr = doc.find("histograms");
      arr && arr->kind == JsonValue::Kind::kArray)
    for (const JsonValue& h : arr->items) {
      const JsonValue* name = h.find("name");
      if (!name) continue;
      metrics::Snapshot::Hist out;
      out.name = name->string;
      if (const JsonValue* v = h.find("count"))
        out.count = wire_detail::as_u64(*v);
      if (const JsonValue* v = h.find("sum")) out.sum = wire_detail::as_u64(*v);
      if (const JsonValue* buckets = h.find("buckets");
          buckets && buckets->kind == JsonValue::Kind::kArray)
        for (const JsonValue& b : buckets->items) {
          const JsonValue* lo = b.find("lo");
          const JsonValue* n = b.find("count");
          if (lo && n)
            out.buckets.emplace_back(wire_detail::as_u64(*lo),
                                     wire_detail::as_u64(*n));
        }
      s.histograms.push_back(std::move(out));
    }
  return s;
}

MP_TRACE_COLD inline std::optional<metrics::Snapshot> parse_metrics_json(
    std::string_view text, std::string* error = nullptr) {
  const std::optional<JsonValue> doc = parse_json(text, error);
  if (!doc) return std::nullopt;
  return parse_metrics_value(*doc, error);
}

/// Fold per-process snapshots into one, sorted by name: counters sum,
/// gauges max, histogram counts/sums/buckets add. The result of merging N
/// clean disjoint partitions equals a single process's registry for the
/// same total workload (see header comment).
MP_TRACE_COLD inline metrics::Snapshot merge_snapshots(
    const std::vector<metrics::Snapshot>& parts) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  struct HistAcc {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::map<std::uint64_t, std::uint64_t> buckets;
  };
  std::map<std::string, HistAcc> hists;
  for (const metrics::Snapshot& s : parts) {
    for (const auto& [name, value] : s.counters) counters[name] += value;
    for (const auto& [name, value] : s.gauges) {
      auto& slot = gauges[name];
      slot = std::max(slot, value);
    }
    for (const metrics::Snapshot::Hist& h : s.histograms) {
      HistAcc& acc = hists[h.name];
      acc.count += h.count;
      acc.sum += h.sum;
      for (const auto& [lo, n] : h.buckets) acc.buckets[lo] += n;
    }
  }
  metrics::Snapshot out;
  for (const auto& [name, value] : counters)
    out.counters.emplace_back(name, value);
  for (const auto& [name, value] : gauges) out.gauges.emplace_back(name, value);
  for (const auto& [name, acc] : hists) {
    metrics::Snapshot::Hist h;
    h.name = name;
    h.count = acc.count;
    h.sum = acc.sum;
    for (const auto& [lo, n] : acc.buckets) h.buckets.emplace_back(lo, n);
    out.histograms.push_back(std::move(h));
  }
  return out;
}

}  // namespace minpower::trace
