#pragma once
// Metrics registry: named counters, max-gauges, and log-scale histograms for
// the synthesis pipeline (DESIGN.md §10).
//
// The determinism contract: every metric records *event counts* — BDD
// unique-table probes, Huffman merges, curve points kept/pruned, checkpoint
// hits — never timings, so the registry snapshot is byte-identical across
// thread counts and repeated runs (integer addition and max commute; the
// FlowEngine performs the same work regardless of scheduling). Wall-clock
// measurements belong to the span tracer (trace/trace.hpp), not here.
//
// Hot-path cost: an increment is one relaxed atomic add. The hottest
// producers (BddManager) accumulate in plain members and flush once per
// manager lifetime, so per-operation instrumentation cost there is zero.
// BDD engine names (DESIGN.md §12): bdd.unique_lookups (unique-table
// probes), bdd.ite_calls / bdd.ite_cache_hits (tagged computed-table ops —
// ITE and the one-call XOR — and their cache hits), bdd.not_calls /
// bdd.not_cache_hits (complement ops against the dense NOT memo), the
// bdd.unique_table_peak gauge, and the bdd.final_nodes histogram.
// Handles returned by `counter()/gauge()/histogram()` stay valid for the
// process lifetime — `reset()` zeroes values but never invalidates them —
// so call sites may cache them in function-local statics.

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "trace/cold.hpp"
#include "util/json_writer.hpp"

namespace minpower::metrics {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// High-water-mark gauge: keeps the maximum value ever recorded.
class Gauge {
 public:
  void record_max(std::uint64_t v) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log-scale (powers-of-two) histogram of non-negative integer samples.
/// Bucket 0 holds the value 0; bucket i ≥ 1 holds [2^(i-1), 2^i − 1].
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    int b = 1;
    while (v >>= 1) ++b;
    return b;  // 1 + floor(log2(v)), ≤ 64
  }

  /// Inclusive lower bound of a bucket.
  static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of every registered metric, sorted by name — the unit
/// the determinism tests byte-compare and write_flow_json serializes.
struct Snapshot {
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Non-empty buckets only: (inclusive lower bound, sample count).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<Hist> histograms;
};

class Registry {
 public:
  static Registry& global() {
    static Registry r;
    return r;
  }

  MP_TRACE_OUTLINE Counter& counter(std::string_view name) {
    return fetch(counters_, name);
  }
  MP_TRACE_OUTLINE Gauge& gauge(std::string_view name) {
    return fetch(gauges_, name);
  }
  MP_TRACE_OUTLINE Histogram& histogram(std::string_view name) {
    return fetch(histograms_, name);
  }

  /// Sorted-by-name copy of all values (std::map iteration order).
  MP_TRACE_COLD Snapshot snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    for (const auto& [name, c] : counters_)
      s.counters.emplace_back(name, c->value());
    for (const auto& [name, g] : gauges_)
      s.gauges.emplace_back(name, g->value());
    for (const auto& [name, h] : histograms_) {
      Snapshot::Hist out;
      out.name = name;
      out.count = h->count();
      out.sum = h->sum();
      for (int b = 0; b < Histogram::kBuckets; ++b)
        if (const std::uint64_t n = h->bucket(b))
          out.buckets.emplace_back(Histogram::bucket_lo(b), n);
      s.histograms.push_back(std::move(out));
    }
    return s;
  }

  /// Zero every value. Registered metrics (and cached handles) stay valid.
  MP_TRACE_COLD void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
  }

 private:
  Registry() = default;

  template <typename M>
  M& fetch(std::map<std::string, std::unique_ptr<M>, std::less<>>& table,
           std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = table.find(name);
    if (it != table.end()) return *it->second;
    auto& slot = table[std::string(name)];
    slot = std::make_unique<M>();
    return *slot;
  }

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

MP_TRACE_OUTLINE inline Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}
MP_TRACE_OUTLINE inline Gauge& gauge(std::string_view name) {
  return Registry::global().gauge(name);
}
MP_TRACE_OUTLINE inline Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

/// Cache-miss path of count_checkpoint: name materialization + registry
/// lookup, out of line so the call sites only inline the cache hit.
MP_TRACE_COLD inline Counter& checkpoint_counter_slow(const char* site) {
  return Registry::global().counter(std::string("budget.checkpoint.") + site);
}

/// Per-site checkpoint accounting for budget_checkpoint (util/budget.hpp).
/// Sites arrive as string literals from tight loops, so a one-entry
/// thread-local cache keyed on the literal's address makes the repeat hit
/// a pointer compare plus one relaxed add.
inline void count_checkpoint(const char* site) {
  thread_local const char* cached_site = nullptr;
  thread_local Counter* cached_counter = nullptr;
  if (site != cached_site) {
    cached_site = site;
    cached_counter = &checkpoint_counter_slow(site);
  }
  cached_counter->add(1);
}

/// Emit a snapshot as one JSON object value (the `metrics` block of
/// `minpower.flow.v1`): arrays of {name, value} plus histogram objects, so
/// the schema skeleton is stable no matter which metrics are registered.
MP_TRACE_COLD inline void write_metrics_json(JsonWriter& w, const Snapshot& s) {
  w.begin_object();
  w.key("counters");
  w.begin_array();
  for (const auto& [name, value] : s.counters) {
    w.begin_object();
    w.field("name", name);
    w.field("value", value);
    w.end_object();
  }
  w.end_array();
  w.key("gauges");
  w.begin_array();
  for (const auto& [name, value] : s.gauges) {
    w.begin_object();
    w.field("name", name);
    w.field("value", value);
    w.end_object();
  }
  w.end_array();
  w.key("histograms");
  w.begin_array();
  for (const Snapshot::Hist& h : s.histograms) {
    w.begin_object();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.key("buckets");
    w.begin_array();
    for (const auto& [lo, n] : h.buckets) {
      w.begin_object();
      w.field("lo", lo);
      w.field("count", n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace minpower::metrics
