#pragma once
// Trace profiler: turns the Chrome trace-event JSON exported by
// trace/trace.hpp back into an analyzable span forest and aggregates it
// (DESIGN.md §11).
//
// The exporter writes flat `ph:"X"` complete events; nesting is not
// recorded. Because spans are RAII scopes, events on one thread are
// strictly nested, so the forest is rebuilt per (pid, tid) lane from
// interval containment: sort by (start asc, duration desc) and maintain an
// open-span stack. Both endpoints were floored against the same origin at
// export time, so a child interval is always contained in its parent's and
// the child-duration sum never exceeds the parent duration — self time
// (duration minus direct children) is non-negative by construction.
//
// Multi-process traces (DESIGN.md §15): the sharded supervisor merges its
// own lane with one lane per worker incarnation, all on a shared
// monotonic timebase. The profiler keys the forest on (pid, tid), carries
// `process_name` metadata through to per-process totals, recovers
// `ph:"i"` lifecycle instants (worker-start, sigkill, worker-restart, …)
// into a timeline, and computes a critical path per process — the
// top-level `critical` is the dominant one, which for a single-process
// trace is exactly the old single-forest answer.
//
// On top of the forest the profiler computes:
//   - per-phase (span name × category) totals: count, total vs self time,
//     min/max — total time double-counts nested phases, self time never
//     does, so self sums to ≤ wall per thread;
//   - top-N hotspots by self time;
//   - per-(pid, tid) utilization (busy = top-level span time; wall =
//     global trace extent) and stage1/stage2 queue-wait statistics from
//     the engine's `queue_wait_us` span args;
//   - per-process critical paths through the FlowEngine's two fan-out
//     stages, under the engine's actual barrier schedule (slowest stage-1
//     task + slowest stage-2 task) and under the pure dependency model (a
//     stage-2 task needs only its own circuit's stage-1 group), whose gap
//     quantifies what removing the barrier could save;
//   - the supervisor-blocking breakdown from the `supervise` shard span:
//     how much of the supervise loop was spent blocked in poll() versus
//     draining pipes and handling lifecycle.
//
// Consumed by `minpower profile <trace.json>`, which renders the text
// tables and the machine-readable `minpower.profile.v1` document.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace minpower::trace {

/// One recovered `ph:"X"` span with its forest position and self time.
struct SpanRecord {
  std::string name;
  std::string cat;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint64_t self_us = 0;  // dur minus direct children
  int pid = 1;
  int tid = 0;
  int parent = -1;  // index into TraceProfile::spans, -1 = top level
  int depth = 0;
  /// Span args, split by JSON type (strings vs numbers).
  std::vector<std::pair<std::string, std::string>> str_args;
  std::vector<std::pair<std::string, double>> num_args;

  const std::string* find_str(std::string_view key) const;
  const double* find_num(std::string_view key) const;
};

/// Aggregation over all spans sharing a (name, cat) pair.
struct PhaseTotals {
  std::string name;
  std::string cat;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;  // inclusive (children double-counted)
  std::uint64_t self_us = 0;   // exclusive
  std::uint64_t min_us = 0;    // min/max of per-span inclusive duration
  std::uint64_t max_us = 0;
};

struct ThreadTotals {
  int pid = 1;
  int tid = 0;
  std::uint64_t events = 0;
  std::uint64_t busy_us = 0;  // top-level span durations
  std::uint64_t self_us = 0;  // Σ self over every span of the thread
  std::uint64_t first_ts_us = 0;
  std::uint64_t last_end_us = 0;
  std::uint64_t wall_us() const { return last_end_us - first_ts_us; }
};

/// One recovered `ph:"i"` lifecycle instant (worker-start, sigkill, …).
struct InstantRecord {
  std::string name;
  std::string cat;
  std::uint64_t ts_us = 0;
  int pid = 1;
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> str_args;
  std::vector<std::pair<std::string, double>> num_args;

  const std::string* find_str(std::string_view key) const;
  const double* find_num(std::string_view key) const;
};

/// Order statistics of the per-task `queue_wait_us` samples of one stage.
struct WaitStats {
  std::uint64_t count = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p90_us = 0;
  std::uint64_t p99_us = 0;
  double mean_us = 0.0;
};

struct PathStep {
  std::string stage;  // "stage1" / "stage2"
  std::string task;   // engine task label, e.g. "ex2/map[V]"
  std::uint64_t dur_us = 0;
};

struct CriticalPath {
  bool available = false;  // engine stage1/stage2 spans were present
  /// Barrier model — what the engine executes today: every stage-1 task
  /// finishes before any stage-2 task starts, so the path is the slowest
  /// task of each stage.
  std::uint64_t barrier_us = 0;
  std::vector<PathStep> barrier_chain;
  /// Dependency model — the lower bound with the barrier removed: a
  /// stage-2 (circuit, method) task needs only stage-1 (circuit, group).
  std::uint64_t dependency_us = 0;
  std::vector<PathStep> dependency_chain;
};

/// Per-process rollup of a multi-pid trace: one entry per pid lane.
struct ProcessTotals {
  int pid = 1;
  std::string name;  // from process_name metadata, may be empty
  std::size_t num_threads = 0;
  std::uint64_t events = 0;
  std::uint64_t busy_us = 0;  // Σ top-level span time over its threads
  std::uint64_t self_us = 0;
  std::uint64_t first_ts_us = 0;
  std::uint64_t last_end_us = 0;
  std::uint64_t wall_us() const { return last_end_us - first_ts_us; }
  /// This process's own engine critical path (stage1/stage2 spans with
  /// this pid). `available` is false for lanes without engine spans.
  CriticalPath critical;
};

/// Where the shard supervisor's supervise loop spent its time, from the
/// `supervise` (cat "shard") span's args. Absent for non-sharded traces.
struct SupervisorBreakdown {
  bool available = false;
  std::uint64_t supervise_us = 0;  // supervise span duration
  std::uint64_t poll_wait_us = 0;  // blocked in poll() waiting on workers
  std::uint64_t polls = 0;         // poll() calls
  std::uint64_t busy_us() const {
    return supervise_us > poll_wait_us ? supervise_us - poll_wait_us : 0;
  }
};

struct TraceProfile {
  std::size_t num_events = 0;  // recovered ph:"X" spans
  std::uint64_t wall_us = 0;   // max end − min start over all spans
  std::vector<SpanRecord> spans;      // grouped by (pid, tid), start order
  std::vector<PhaseTotals> phases;    // sorted by self_us descending
  std::vector<ThreadTotals> threads;  // sorted by (pid, tid)
  std::vector<ProcessTotals> processes;  // sorted by pid; 1 entry if flat
  std::vector<InstantRecord> lifecycle;  // ph:"i" instants, ts order
  WaitStats stage1_wait;
  WaitStats stage2_wait;
  /// Dominant per-process critical path (max barrier time). Identical to
  /// the single forest's path when the trace has one pid.
  CriticalPath critical;
  SupervisorBreakdown supervisor;
};

/// Parse a Chrome trace-event JSON document (the object form the tracer
/// writes) and build the full profile. Returns false and fills `error` on
/// malformed JSON or a document without a traceEvents array. A trace with
/// zero spans is valid and yields an empty profile.
bool analyze_chrome_trace(std::string_view json, TraceProfile* out,
                          std::string* error);

/// Emit the `minpower.profile.v1` document. `source` names the input
/// trace; `top_n` bounds the hotspot list (the full per-phase table is
/// always included).
void write_profile_json(std::ostream& os, const TraceProfile& p,
                        const std::string& source, int top_n);

/// Human-readable hotspot/utilization/critical-path tables.
void print_profile(std::ostream& os, const TraceProfile& p, int top_n);

}  // namespace minpower::trace
