#pragma once
// Prometheus text exposition (version 0.0.4) rendering of a metrics
// Snapshot — the payload behind serve's `METRICS` verb (DESIGN.md §15).
//
// Mapping: registry names use dots (`bdd.ite_calls`); Prometheus names
// must match [a-zA-Z_:][a-zA-Z0-9_:]*, so every invalid character becomes
// `_` (and a leading digit gets a `_` prefix). Counters render with a
// `_total` suffix per convention, gauges as-is, and the log-2 histograms
// become native Prometheus histograms: our bucket [lo, 2*lo-1] contributes
// an `le="2*lo-1"` cumulative bound (bucket {0} → le="0"), capped by the
// mandatory `le="+Inf"` line equal to `_count`. Buckets are cumulative and
// monotone by construction — test_observability checks both the charset
// and the monotonicity contract.

#include <ostream>
#include <string>
#include <string_view>

#include "trace/metrics.hpp"

namespace minpower::trace {

/// Mangle a registry name into the Prometheus name charset.
inline std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

/// Render a snapshot as Prometheus text exposition. Deterministic: the
/// snapshot is already name-sorted and rendering adds nothing stateful.
MP_TRACE_COLD inline void write_prometheus(std::ostream& os,
                                           const metrics::Snapshot& s) {
  for (const auto& [name, value] : s.counters) {
    const std::string n = prometheus_name(name) + "_total";
    os << "# TYPE " << n << " counter\n";
    os << n << ' ' << value << '\n';
  }
  for (const auto& [name, value] : s.gauges) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << ' ' << value << '\n';
  }
  for (const metrics::Snapshot::Hist& h : s.histograms) {
    const std::string n = prometheus_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [lo, count] : h.buckets) {
      cumulative += count;
      // Inclusive upper bound of the log-2 bucket starting at lo.
      const std::uint64_t hi = lo == 0 ? 0 : 2 * lo - 1;
      os << n << "_bucket{le=\"" << hi << "\"} " << cumulative << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << n << "_sum " << h.sum << '\n';
    os << n << "_count " << h.count << '\n';
  }
}

}  // namespace minpower::trace
