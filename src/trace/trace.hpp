#pragma once
// RAII span tracer with Chrome trace-event / Perfetto JSON export
// (DESIGN.md §10).
//
//   trace::set_enabled(true);
//   {
//     trace::Span s("map", "map");
//     s.arg("circuit", net.name());
//     ... work ...
//   }  // span recorded on scope exit
//   std::ofstream os("out.trace.json");
//   trace::write_chrome_trace(os);
//
// Cost model: when tracing is off a Span constructor is one relaxed atomic
// load and a branch — no strings are materialized, no clock is read. When
// on, each thread appends finished spans to its own buffer (registered once
// under a mutex, then written lock-free by its owning thread), so there is
// no cross-thread contention on the hot path.
//
// Export contract: call write_chrome_trace()/clear()/num_events()/
// snapshot_events() only after the traced worker threads have been joined
// and all spans have closed (thread join is the synchronization point that
// makes the buffers safe to read). The FlowEngine joins its pool before
// returning, so exporting after run_suite() is always safe.
//
// The emitted file is the Chrome trace-event JSON object form
// ({"traceEvents":[...]}): `ph:"X"` complete events carrying ts/dur in
// microseconds plus pid/tid and an args object, `ph:"i"` process-scoped
// instant events (trace::Instant — supervisor lifecycle marks), and
// `ph:"M"` metadata naming the process and threads. Open it at
// chrome://tracing or https://ui.perfetto.dev.
//
// Multi-process lanes (DESIGN.md §15): the exported pid defaults to 1 and
// is settable via set_pid() — the shard supervisor stamps its real pid and
// each forked worker its own, so merged traces get one lane per process.
// Cross-process timestamps share one timebase for free: the tracer origin
// is sampled from CLOCK_MONOTONIC (system-wide) and fork() inherits the
// already-constructed singleton, so a worker's microseconds are directly
// comparable to the supervisor's as long as the parent touched
// Tracer::instance() before forking (`ensure_origin()`).
// write_merged_chrome_trace() renders a set of ProcessLane event lists —
// the supervisor's own buffers plus the span snapshots workers ship over
// the pipe protocol — into one file.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/cold.hpp"
#include "util/json_writer.hpp"

namespace minpower::trace {

inline std::atomic<bool> g_enabled{false};

inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

/// One span argument; the value keeps its native type so the exporter can
/// emit JSON numbers as numbers.
struct Arg {
  enum class Kind { kString, kDouble, kInt, kUint };
  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  double d = 0.0;
  long long i = 0;
  unsigned long long u = 0;
};

/// A finished span (`ph:"X"`), instant mark (`ph:"i"`, dur ignored), or
/// counter sample (`ph:"C"`, numeric args become the counter series): times
/// are microseconds since the tracer origin.
struct Event {
  std::string name;
  std::string cat;
  char ph = 'X';
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::vector<Arg> args;
};

namespace detail {

inline void add_arg(Event& e, std::string_view key, std::string_view value) {
  Arg a;
  a.key.assign(key.data(), key.size());
  a.kind = Arg::Kind::kString;
  a.s.assign(value.data(), value.size());
  e.args.push_back(std::move(a));
}
inline void add_arg(Event& e, std::string_view key, double value) {
  Arg a;
  a.key.assign(key.data(), key.size());
  a.kind = Arg::Kind::kDouble;
  a.d = value;
  e.args.push_back(std::move(a));
}
inline void add_arg(Event& e, std::string_view key, long long value) {
  Arg a;
  a.key.assign(key.data(), key.size());
  a.kind = Arg::Kind::kInt;
  a.i = value;
  e.args.push_back(std::move(a));
}
inline void add_arg(Event& e, std::string_view key,
                    unsigned long long value) {
  Arg a;
  a.key.assign(key.data(), key.size());
  a.kind = Arg::Kind::kUint;
  a.u = value;
  e.args.push_back(std::move(a));
}

inline std::uint64_t to_us(std::chrono::steady_clock::duration d) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace detail

/// One thread's lane of a (possibly remote) process: `tid` is the exporting
/// tracer's thread id, events are in record order.
struct ThreadEvents {
  int tid = 0;
  std::vector<Event> events;
};

/// Everything one process contributes to a merged trace.
struct ProcessLane {
  int pid = 1;
  std::string name;  // process_name metadata, e.g. "worker-2 (pid 714)"
  std::vector<ThreadEvents> threads;
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  Clock::time_point origin() const { return origin_; }

  MP_TRACE_COLD void record(Event e) {
    local_buffer().events.push_back(std::move(e));
  }

  /// Total recorded events; see the export contract above.
  MP_TRACE_COLD std::size_t num_events() {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b->events.size();
    return n;
  }

  /// Drop all recorded events (buffers stay registered).
  MP_TRACE_COLD void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) b->events.clear();
  }

  /// Exported pid lane (default 1). Multi-process runs stamp the real pid
  /// so merged traces keep one lane per process.
  int pid() const { return pid_.load(std::memory_order_relaxed); }
  void set_pid(int pid) { pid_.store(pid, std::memory_order_relaxed); }

  /// Copy of every recorded event, grouped per thread in tid order — the
  /// unit a shard worker serializes over the pipe and the supervisor merges
  /// into one file. Same export contract as write_chrome_trace.
  MP_TRACE_COLD std::vector<ThreadEvents> snapshot_events() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ThreadEvents> out;
    for (const auto& b : buffers_)
      if (!b->events.empty()) out.push_back(ThreadEvents{b->tid, b->events});
    std::sort(out.begin(), out.end(),
              [](const ThreadEvents& a, const ThreadEvents& b) {
                return a.tid < b.tid;
              });
    return out;
  }

  /// One Chrome trace-event object (`ph:"X"` complete, `ph:"i"` instant at
  /// process scope, or `ph:"C"` counter sample) under the given pid/tid
  /// lane.
  static void write_event_json(JsonWriter& w, const Event& e, int pid,
                               int tid) {
    w.begin_object();
    w.field("name", e.name);
    w.field("cat", e.cat);
    if (e.ph == 'i') {
      w.field("ph", "i");
      w.field("s", "p");
      w.field("ts", static_cast<unsigned long long>(e.ts_us));
    } else if (e.ph == 'C') {
      w.field("ph", "C");
      w.field("ts", static_cast<unsigned long long>(e.ts_us));
    } else {
      w.field("ph", "X");
      w.field("ts", static_cast<unsigned long long>(e.ts_us));
      w.field("dur", static_cast<unsigned long long>(e.dur_us));
    }
    w.field("pid", pid);
    w.field("tid", tid);
    w.key("args");
    w.begin_object();
    for (const Arg& a : e.args) {
      w.key(a.key);
      switch (a.kind) {
        case Arg::Kind::kString: w.value(a.s); break;
        case Arg::Kind::kDouble: w.value(a.d); break;
        case Arg::Kind::kInt: w.value(a.i); break;
        case Arg::Kind::kUint: w.value(a.u); break;
      }
    }
    w.end_object();
    w.end_object();
  }

  static void write_metadata(JsonWriter& w, const char* name, int pid,
                             int tid, const std::string& value) {
    w.begin_object();
    w.field("name", name);
    w.field("ph", "M");
    w.field("pid", pid);
    w.field("tid", tid);
    w.key("args");
    w.begin_object();
    w.field("name", value);
    w.end_object();
    w.end_object();
  }

  /// Emit everything recorded so far as Chrome trace-event JSON.
  MP_TRACE_COLD void write_chrome_trace(std::ostream& os) {
    const int pid = this->pid();
    const std::vector<ThreadEvents> lanes = snapshot_events();
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.begin_array();
    write_metadata(w, "process_name", pid, /*tid=*/0, "minpower");
    for (const ThreadEvents& t : lanes)
      write_metadata(w, "thread_name", pid, t.tid,
                     "thread-" + std::to_string(t.tid));
    for (const ThreadEvents& t : lanes)
      for (const Event& e : t.events) write_event_json(w, e, pid, t.tid);
    w.end_array();
    w.end_object();
    os << '\n';
  }

 private:
  struct ThreadBuffer {
    int tid = 0;
    std::vector<Event> events;
  };

  Tracer() : origin_(Clock::now()) {}

  /// The calling thread's buffer, registered on first use. The registry
  /// holds a shared_ptr so events survive thread exit until export.
  MP_TRACE_COLD ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buf;
    if (!buf) {
      buf = std::make_shared<ThreadBuffer>();
      std::lock_guard<std::mutex> lock(mu_);
      buf->tid = next_tid_++;
      buffers_.push_back(buf);
    }
    return *buf;
  }

  Clock::time_point origin_;
  std::mutex mu_;
  std::atomic<int> pid_{1};
  int next_tid_ = 1;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: times the enclosing scope and records a `ph:"X"` event on
/// destruction. A no-op (one relaxed load, no allocation) when tracing is
/// disabled; the enabled check happens once, at construction.
class Span {
 public:
  Span(std::string_view name, std::string_view cat) : active_(enabled()) {
    if (active_) begin(name, cat);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) finish();
  }

  bool active() const { return active_; }

  MP_TRACE_OUTLINE void arg(std::string_view key, std::string_view value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  void arg(std::string_view key, const std::string& value) {
    arg(key, std::string_view(value));
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, double value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, long long value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, unsigned long long value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  void arg(std::string_view key, int value) {
    arg(key, static_cast<long long>(value));
  }
  void arg(std::string_view key, long value) {
    arg(key, static_cast<long long>(value));
  }
  void arg(std::string_view key, unsigned value) {
    arg(key, static_cast<unsigned long long>(value));
  }
  void arg(std::string_view key, unsigned long value) {
    arg(key, static_cast<unsigned long long>(value));
  }

 private:
  MP_TRACE_COLD void begin(std::string_view name, std::string_view cat) {
    event_.name.assign(name.data(), name.size());
    event_.cat.assign(cat.data(), cat.size());
    start_ = Tracer::Clock::now();
  }

  MP_TRACE_COLD void finish() {
    const auto end = Tracer::Clock::now();
    Tracer& t = Tracer::instance();
    // Floor both endpoints against the origin and difference them: flooring
    // is monotonic, so a child span can never appear to outlive its parent
    // by a truncated microsecond.
    event_.ts_us = detail::to_us(start_ - t.origin());
    event_.dur_us = detail::to_us(end - t.origin()) - event_.ts_us;
    t.record(std::move(event_));
  }

  bool active_;
  Tracer::Clock::time_point start_{};
  Event event_;
};

/// RAII instant mark: records a process-scoped `ph:"i"` event stamped at
/// construction time; args may be attached before the scope closes. Used
/// for supervisor lifecycle marks (worker start, heartbeat timeout,
/// restart, …). Same disabled-cost contract as Span.
class Instant {
 public:
  Instant(std::string_view name, std::string_view cat) : active_(enabled()) {
    if (active_) begin(name, cat);
  }

  Instant(const Instant&) = delete;
  Instant& operator=(const Instant&) = delete;

  ~Instant() {
    if (active_) Tracer::instance().record(std::move(event_));
  }

  bool active() const { return active_; }

  MP_TRACE_OUTLINE void arg(std::string_view key, std::string_view value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  void arg(std::string_view key, const std::string& value) {
    arg(key, std::string_view(value));
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, double value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, long long value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, unsigned long long value) {
    if (active_) detail::add_arg(event_, key, value);
  }
  void arg(std::string_view key, int value) {
    arg(key, static_cast<long long>(value));
  }
  void arg(std::string_view key, unsigned value) {
    arg(key, static_cast<unsigned long long>(value));
  }
  void arg(std::string_view key, unsigned long value) {
    arg(key, static_cast<unsigned long long>(value));
  }

 private:
  MP_TRACE_COLD void begin(std::string_view name, std::string_view cat) {
    event_.name.assign(name.data(), name.size());
    event_.cat.assign(cat.data(), cat.size());
    event_.ph = 'i';
    event_.ts_us =
        detail::to_us(Tracer::Clock::now() - Tracer::instance().origin());
  }

  bool active_;
  Event event_;
};

inline std::size_t num_events() { return Tracer::instance().num_events(); }
inline void clear() { Tracer::instance().clear(); }
inline int pid() { return Tracer::instance().pid(); }
inline void set_pid(int pid) { Tracer::instance().set_pid(pid); }
inline std::vector<ThreadEvents> snapshot_events() {
  return Tracer::instance().snapshot_events();
}
/// Construct the tracer singleton now so that fork() children inherit this
/// process's CLOCK_MONOTONIC origin — the shared timebase that makes worker
/// timestamps directly comparable to the supervisor's in a merged trace.
inline void ensure_origin() { (void)Tracer::instance().origin(); }
inline void write_chrome_trace(std::ostream& os) {
  Tracer::instance().write_chrome_trace(os);
}

/// Render a set of per-process event lists (the local tracer's snapshot
/// plus lanes shipped from remote workers) into one Chrome trace-event
/// file: per-lane process_name/thread_name metadata, then every event under
/// its owning pid/tid.
MP_TRACE_COLD inline void write_merged_chrome_trace(
    std::ostream& os, const std::vector<ProcessLane>& lanes) {
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();
  for (const ProcessLane& p : lanes) {
    Tracer::write_metadata(w, "process_name", p.pid, /*tid=*/0,
                           p.name.empty() ? "minpower" : p.name);
    for (const ThreadEvents& t : p.threads)
      Tracer::write_metadata(w, "thread_name", p.pid, t.tid,
                             "thread-" + std::to_string(t.tid));
  }
  for (const ProcessLane& p : lanes)
    for (const ThreadEvents& t : p.threads)
      for (const Event& e : t.events)
        Tracer::write_event_json(w, e, p.pid, t.tid);
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace minpower::trace
