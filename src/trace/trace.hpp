#pragma once
// RAII span tracer with Chrome trace-event / Perfetto JSON export
// (DESIGN.md §10).
//
//   trace::set_enabled(true);
//   {
//     trace::Span s("map", "map");
//     s.arg("circuit", net.name());
//     ... work ...
//   }  // span recorded on scope exit
//   std::ofstream os("out.trace.json");
//   trace::write_chrome_trace(os);
//
// Cost model: when tracing is off a Span constructor is one relaxed atomic
// load and a branch — no strings are materialized, no clock is read. When
// on, each thread appends finished spans to its own buffer (registered once
// under a mutex, then written lock-free by its owning thread), so there is
// no cross-thread contention on the hot path.
//
// Export contract: call write_chrome_trace()/clear()/num_events() only
// after the traced worker threads have been joined and all spans have
// closed (thread join is the synchronization point that makes the buffers
// safe to read). The FlowEngine joins its pool before returning, so
// exporting after run_suite() is always safe.
//
// The emitted file is the Chrome trace-event JSON object form
// ({"traceEvents":[...]}): `ph:"X"` complete events carrying ts/dur in
// microseconds plus pid/tid and an args object, with `ph:"M"` metadata
// naming the process and threads. Open it at chrome://tracing or
// https://ui.perfetto.dev.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/cold.hpp"
#include "util/json_writer.hpp"

namespace minpower::trace {

inline std::atomic<bool> g_enabled{false};

inline bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

/// One span argument; the value keeps its native type so the exporter can
/// emit JSON numbers as numbers.
struct Arg {
  enum class Kind { kString, kDouble, kInt, kUint };
  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  double d = 0.0;
  long long i = 0;
  unsigned long long u = 0;
};

/// A finished span: times are microseconds since the tracer origin.
struct Event {
  std::string name;
  std::string cat;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::vector<Arg> args;
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  Clock::time_point origin() const { return origin_; }

  MP_TRACE_COLD void record(Event e) {
    local_buffer().events.push_back(std::move(e));
  }

  /// Total recorded events; see the export contract above.
  MP_TRACE_COLD std::size_t num_events() {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b->events.size();
    return n;
  }

  /// Drop all recorded events (buffers stay registered).
  MP_TRACE_COLD void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& b : buffers_) b->events.clear();
  }

  /// Emit everything recorded so far as Chrome trace-event JSON.
  MP_TRACE_COLD void write_chrome_trace(std::ostream& os) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ThreadBuffer*> bufs;
    for (const auto& b : buffers_) bufs.push_back(b.get());
    std::sort(bufs.begin(), bufs.end(),
              [](const ThreadBuffer* a, const ThreadBuffer* b) {
                return a->tid < b->tid;
              });

    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.begin_array();
    write_metadata(w, "process_name", /*tid=*/0, "minpower");
    for (const ThreadBuffer* b : bufs)
      write_metadata(w, "thread_name", b->tid,
                     "thread-" + std::to_string(b->tid));
    for (const ThreadBuffer* b : bufs) {
      for (const Event& e : b->events) {
        w.begin_object();
        w.field("name", e.name);
        w.field("cat", e.cat);
        w.field("ph", "X");
        w.field("ts", static_cast<unsigned long long>(e.ts_us));
        w.field("dur", static_cast<unsigned long long>(e.dur_us));
        w.field("pid", kPid);
        w.field("tid", b->tid);
        w.key("args");
        w.begin_object();
        for (const Arg& a : e.args) {
          w.key(a.key);
          switch (a.kind) {
            case Arg::Kind::kString: w.value(a.s); break;
            case Arg::Kind::kDouble: w.value(a.d); break;
            case Arg::Kind::kInt: w.value(a.i); break;
            case Arg::Kind::kUint: w.value(a.u); break;
          }
        }
        w.end_object();
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();
    os << '\n';
  }

 private:
  static constexpr int kPid = 1;

  struct ThreadBuffer {
    int tid = 0;
    std::vector<Event> events;
  };

  Tracer() : origin_(Clock::now()) {}

  /// The calling thread's buffer, registered on first use. The registry
  /// holds a shared_ptr so events survive thread exit until export.
  MP_TRACE_COLD ThreadBuffer& local_buffer() {
    thread_local std::shared_ptr<ThreadBuffer> buf;
    if (!buf) {
      buf = std::make_shared<ThreadBuffer>();
      std::lock_guard<std::mutex> lock(mu_);
      buf->tid = next_tid_++;
      buffers_.push_back(buf);
    }
    return *buf;
  }

  static void write_metadata(JsonWriter& w, const char* name, int tid,
                             const std::string& value) {
    w.begin_object();
    w.field("name", name);
    w.field("ph", "M");
    w.field("pid", kPid);
    w.field("tid", tid);
    w.key("args");
    w.begin_object();
    w.field("name", value);
    w.end_object();
    w.end_object();
  }

  Clock::time_point origin_;
  std::mutex mu_;
  int next_tid_ = 1;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: times the enclosing scope and records a `ph:"X"` event on
/// destruction. A no-op (one relaxed load, no allocation) when tracing is
/// disabled; the enabled check happens once, at construction.
class Span {
 public:
  Span(std::string_view name, std::string_view cat) : active_(enabled()) {
    if (active_) begin(name, cat);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (active_) finish();
  }

  bool active() const { return active_; }

  MP_TRACE_OUTLINE void arg(std::string_view key, std::string_view value) {
    if (!active_) return;
    Arg a;
    a.key.assign(key.data(), key.size());
    a.kind = Arg::Kind::kString;
    a.s.assign(value.data(), value.size());
    event_.args.push_back(std::move(a));
  }
  void arg(std::string_view key, const char* value) {
    arg(key, std::string_view(value));
  }
  void arg(std::string_view key, const std::string& value) {
    arg(key, std::string_view(value));
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, double value) {
    if (!active_) return;
    Arg a;
    a.key.assign(key.data(), key.size());
    a.kind = Arg::Kind::kDouble;
    a.d = value;
    event_.args.push_back(std::move(a));
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, long long value) {
    if (!active_) return;
    Arg a;
    a.key.assign(key.data(), key.size());
    a.kind = Arg::Kind::kInt;
    a.i = value;
    event_.args.push_back(std::move(a));
  }
  MP_TRACE_OUTLINE void arg(std::string_view key, unsigned long long value) {
    if (!active_) return;
    Arg a;
    a.key.assign(key.data(), key.size());
    a.kind = Arg::Kind::kUint;
    a.u = value;
    event_.args.push_back(std::move(a));
  }
  void arg(std::string_view key, int value) {
    arg(key, static_cast<long long>(value));
  }
  void arg(std::string_view key, long value) {
    arg(key, static_cast<long long>(value));
  }
  void arg(std::string_view key, unsigned value) {
    arg(key, static_cast<unsigned long long>(value));
  }
  void arg(std::string_view key, unsigned long value) {
    arg(key, static_cast<unsigned long long>(value));
  }

 private:
  MP_TRACE_COLD void begin(std::string_view name, std::string_view cat) {
    event_.name.assign(name.data(), name.size());
    event_.cat.assign(cat.data(), cat.size());
    start_ = Tracer::Clock::now();
  }

  MP_TRACE_COLD void finish() {
    const auto end = Tracer::Clock::now();
    Tracer& t = Tracer::instance();
    // Floor both endpoints against the origin and difference them: flooring
    // is monotonic, so a child span can never appear to outlive its parent
    // by a truncated microsecond.
    event_.ts_us = to_us(start_ - t.origin());
    event_.dur_us = to_us(end - t.origin()) - event_.ts_us;
    t.record(std::move(event_));
  }

  static std::uint64_t to_us(Tracer::Clock::duration d) {
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
  }

  bool active_;
  Tracer::Clock::time_point start_{};
  Event event_;
};

inline std::size_t num_events() { return Tracer::instance().num_events(); }
inline void clear() { Tracer::instance().clear(); }
inline void write_chrome_trace(std::ostream& os) {
  Tracer::instance().write_chrome_trace(os);
}

}  // namespace minpower::trace
