#include "bdd/isop.hpp"

#include <cstdint>
#include <unordered_map>

namespace minpower {

namespace {

struct IsopResult {
  Cover cover;
  BddRef function;  // BDD of `cover`
};

class IsopBuilder {
 public:
  explicit IsopBuilder(BddManager& mgr) : mgr_(mgr) {}

  IsopResult run(BddRef lower, BddRef upper) {
    if (lower == BddManager::kFalse) return {Cover::zero(), BddManager::kFalse};
    if (upper == BddManager::kTrue) return {Cover::one(), BddManager::kTrue};
    const std::uint64_t key =
        (static_cast<std::uint64_t>(lower) << 32) | upper;
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    // Top variable of the pair.
    const int vl = mgr_.is_const(lower) ? 0x7fffffff : mgr_.top_var(lower);
    const int vu = mgr_.is_const(upper) ? 0x7fffffff : mgr_.top_var(upper);
    const int v = std::min(vl, vu);
    MP_CHECK(v < kMaxCubeVars);

    const BddRef l0 = mgr_.cofactor(lower, v, false);
    const BddRef l1 = mgr_.cofactor(lower, v, true);
    const BddRef u0 = mgr_.cofactor(upper, v, false);
    const BddRef u1 = mgr_.cofactor(upper, v, true);

    // Cubes that need the literal ¬v / v.
    const IsopResult r0 = run(mgr_.and_(l0, mgr_.not_(u1)), u0);
    const IsopResult r1 = run(mgr_.and_(l1, mgr_.not_(u0)), u1);

    // What remains must be covered by cubes without a v literal.
    const BddRef ld = mgr_.or_(mgr_.and_(l0, mgr_.not_(r0.function)),
                               mgr_.and_(l1, mgr_.not_(r1.function)));
    const IsopResult rd = run(ld, mgr_.and_(u0, u1));

    IsopResult out;
    out.cover = rd.cover;
    for (const Cube& c : r0.cover.cubes())
      out.cover.add(c & Cube::literal(v, false));
    for (const Cube& c : r1.cover.cubes())
      out.cover.add(c & Cube::literal(v, true));
    const BddRef x = mgr_.var(v);
    out.function = mgr_.or_(
        rd.function, mgr_.or_(mgr_.and_(mgr_.not_(x), r0.function),
                              mgr_.and_(x, r1.function)));
    memo_.emplace(key, out);
    return out;
  }

 private:
  struct KeyHash {
    std::size_t operator()(std::uint64_t k) const {
      k *= 0xff51afd7ed558ccdULL;
      return static_cast<std::size_t>(k ^ (k >> 33));
    }
  };

  BddManager& mgr_;
  std::unordered_map<std::uint64_t, IsopResult, KeyHash> memo_;
};

}  // namespace

Cover isop(BddManager& mgr, BddRef lower, BddRef upper) {
  IsopBuilder builder(mgr);
  const IsopResult r = builder.run(lower, upper);
  // Contract: L ≤ g ≤ U.
  MP_CHECK(mgr.and_(lower, mgr.not_(r.function)) == BddManager::kFalse);
  MP_CHECK(mgr.and_(r.function, mgr.not_(upper)) == BddManager::kFalse);
  return r.cover;
}

}  // namespace minpower
