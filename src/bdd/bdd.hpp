#pragma once
// Reduced Ordered Binary Decision Diagram package.
//
// Used for (a) exact signal-probability computation at every network node by
// the linear BDD traversal of Eq. 2 (Najm / Ghosh et al.), and (b) functional
// equivalence checking of synthesis transformations in the test suite.
//
// The implementation is a classic hash-consed ROBDD without complement
// edges: a unique table guarantees canonicity, a computed table caches
// subresults. Variable order is the creation order of variables.
//
// Engine layout (DESIGN.md §12 "BDD engine internals"):
//   - Unique table: open-addressed, power-of-two, linear probing. Slots hold
//     node ids only; keys are read back from the dense node array, so a probe
//     is one indexed load plus a triple compare. Growth rebuilds the slot
//     array from the node vector at ~0.7 load.
//   - Computed table: lossy direct-mapped cache of tagged (op, f, g, h)
//     entries under a fixed byte budget; it grows geometrically toward the
//     budget and then overwrites on collision, CUDD-style.
//   - Canonical ITE: terminal and normalization rules (ite(f,f,h)→ite(f,1,h),
//     ite(f,g,f)→ite(f,g,0), commutative AND/OR argument reordering,
//     ite(f,0,1) through a dedicated complement memo, XNOR triples routed to
//     a one-call XOR) so equivalent triples share one computed-table entry.
//   - Traversals (probability, support, dag_size, cofactor) use dense
//     epoch-stamped scratch arrays indexed by BddRef — refs are dense vector
//     indices, so hashing them is pure waste.
//
// All normalizations preserve ROBDD canonicity: the same Boolean function
// always maps to the same node, so results are bit-identical to the
// pre-overhaul engine (locked by `minpower compare` against the committed
// baseline).

#include <cstdint>
#include <vector>

#include "util/budget.hpp"
#include "util/check.hpp"

namespace minpower {

using BddRef = std::uint32_t;

class BddManager {
 public:
  /// `node_limit` bounds total allocated BDD nodes; exceeding it throws
  /// ResourceExhausted (site "bdd-limit") with the current node count and
  /// the owning phase — a recoverable failure, not an abort. When a Budget
  /// is current on the constructing thread, its (possibly smaller)
  /// `bdd_node_limit` applies instead, and a "bdd-limit" fault injection
  /// armed on that budget forces a tiny cap so the limit machinery fires.
  explicit BddManager(std::size_t node_limit = kDefaultBddNodeLimit);

  /// Flushes this manager's operation counts into the global metrics
  /// registry (bdd.unique_lookups, bdd.ite_calls, bdd.ite_cache_hits,
  /// bdd.not_calls, bdd.not_cache_hits, the bdd.unique_table_peak gauge,
  /// and the bdd.final_nodes histogram), plus the byte-accounted arena
  /// gauges (bdd.mem.live_node_bytes, bdd.mem.{node,unique,cache,scratch,
  /// arena}_bytes_peak and the per-phase bdd.mem.phase_peak_bytes.<phase>
  /// high-water marks, attributed through the owning Budget label). Byte
  /// gauges derive from vector capacities — a pure function of the
  /// deterministic operation sequence — so they are byte-identical across
  /// thread counts; OS-level RSS never enters the registry. The hot loops
  /// accumulate in plain members so per-operation instrumentation cost is
  /// zero; the one-time flush also runs on exception unwind, so a blown
  /// node budget still reports its work.
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  /// Create (or fetch) the projection function of a new/existing variable.
  BddRef var(int index);
  int num_vars() const { return num_vars_; }

  /// Complement, memoized densely by ref in both directions (¬ is an
  /// involution). Linear in the result DAG on first computation, O(1) after.
  BddRef not_(BddRef f);
  BddRef and_(BddRef f, BddRef g) { return ite(f, g, kFalse); }
  BddRef or_(BddRef f, BddRef g) { return ite(f, kTrue, g); }
  /// One-call XOR through its own tagged computed-table op (no intermediate
  /// complement BDD as the old ite(f, ¬g, g) formulation built).
  BddRef xor_(BddRef f, BddRef g);
  BddRef nand_(BddRef f, BddRef g) { return not_(and_(f, g)); }
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Shannon cofactor with respect to variable `var` fixed to `value`.
  /// Memoized per call through a dense epoch-stamped table, so shared
  /// subgraphs are expanded once (linear in |BDD|, not exponential).
  BddRef cofactor(BddRef f, int var, bool value);

  bool is_const(BddRef f) const { return f <= kTrue; }
  int top_var(BddRef f) const { return nodes_[f].var; }
  BddRef low(BddRef f) const { return nodes_[f].lo; }
  BddRef high(BddRef f) const { return nodes_[f].hi; }

  /// Evaluate under a variable assignment (indexed by variable).
  bool eval(BddRef f, const std::vector<bool>& assignment) const;

  /// Exact probability that f = 1 when variable v independently equals 1
  /// with probability `p1[v]` (the Eq. 2 linear traversal; O(|BDD|)).
  double probability(BddRef f, const std::vector<double>& p1) const;

  /// Batch form of `probability`: evaluates every ref against the same `p1`
  /// sharing one memo across the whole batch, so subgraphs common to many
  /// roots (the per-node activity pass) are traversed once, not per root.
  /// Each value is bit-identical to the corresponding single-ref call.
  std::vector<double> probabilities(const std::vector<BddRef>& fs,
                                    const std::vector<double>& p1) const;

  /// Variables in the support of f.
  std::vector<int> support(BddRef f) const;

  /// Number of distinct internal nodes reachable from f.
  std::size_t dag_size(BddRef f) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  // Byte accounting for the arena gauges (capacities, not sizes: the
  // allocated footprint is what memory pressure sees). Deterministic for a
  // given operation sequence.
  std::size_t node_bytes() const;          // dense node array
  std::size_t unique_table_bytes() const;  // open-addressed slot array
  std::size_t cache_bytes() const;         // computed table + tags
  std::size_t scratch_bytes() const;       // traversal memos/stacks/stamps
  std::size_t arena_bytes() const;         // sum of the above

  /// Drop the operation caches (unique table is kept; refs stay valid).
  void clear_op_cache();

  // Per-manager operation counters, exposed so tests can lock the ITE
  // normalization rules via deltas (same function → fewer calls, more hits).
  std::size_t ite_calls() const { return ite_calls_; }
  std::size_t ite_cache_hits() const { return ite_cache_hits_; }
  std::size_t not_calls() const { return not_calls_; }
  std::size_t not_cache_hits() const { return not_cache_hits_; }
  std::size_t unique_lookups() const { return unique_lookups_; }

 private:
  struct BddNode {
    int var;  // kLeafVar for terminals
    BddRef lo;
    BddRef hi;
  };
  static constexpr int kLeafVar = 0x7fffffff;
  static constexpr BddRef kInvalid = 0xffffffffu;

  // Computed-table operation tags (0 marks an empty slot).
  static constexpr std::uint32_t kOpIte = 1;
  static constexpr std::uint32_t kOpXor = 2;

  struct CacheEntry {
    std::uint32_t tag = 0;
    BddRef f = 0, g = 0, h = 0;
    BddRef result = 0;
  };

  BddRef make(int var, BddRef lo, BddRef hi);
  void grow_unique();

  const BddRef* cache_find(std::uint32_t tag, BddRef f, BddRef g, BddRef h);
  void cache_store(std::uint32_t tag, BddRef f, BddRef g, BddRef h, BddRef r);
  void grow_cache();

  /// True when ¬a is known (via the complement memo) to be b.
  bool is_not_pair(BddRef a, BddRef b) const {
    return a < not_memo_.size() && not_memo_[a] == b;
  }
  /// Canonical argument order for commutative ops: by top variable, ties by
  /// ref. Both arguments must be non-constant.
  bool before(BddRef a, BddRef b) const {
    const int va = nodes_[a].var;
    const int vb = nodes_[b].var;
    return va != vb ? va < vb : a < b;
  }

  void ensure_scratch() const;
  void next_epoch() const;
  double prob_eval(BddRef f, const std::vector<double>& p1) const;
  BddRef cofactor_rec(BddRef f, int var, bool value);

  std::size_t node_limit_;
  std::size_t unique_lookups_ = 0;
  std::size_t ite_calls_ = 0;
  std::size_t ite_cache_hits_ = 0;
  std::size_t not_calls_ = 0;
  std::size_t not_cache_hits_ = 0;
  int num_vars_ = 0;
  std::vector<BddNode> nodes_;
  std::vector<BddRef> var_nodes_;

  // Open-addressed unique table: power-of-two slot array of node ids.
  std::vector<BddRef> unique_slots_;
  std::size_t unique_mask_ = 0;

  // Lossy direct-mapped computed table (fixed byte budget, grows toward it).
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_ = 0;
  std::size_t cache_inserts_ = 0;

  // Dense complement memo: not_memo_[f] == ¬f (kInvalid when unknown).
  std::vector<BddRef> not_memo_;

  // Epoch-stamped dense scratch for traversals. A traversal bumps epoch_ and
  // treats stamp_[r] == epoch_ as "memo valid", so no per-call clearing or
  // allocation. Mutable: traversals are logically const; the manager is not
  // thread-safe for concurrent use either way (each pipeline task owns its
  // manager).
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::vector<double> prob_memo_;
  mutable std::vector<BddRef> ref_memo_;
  mutable std::vector<BddRef> scratch_stack_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace minpower
