#pragma once
// Reduced Ordered Binary Decision Diagram package.
//
// Used for (a) exact signal-probability computation at every network node by
// the linear BDD traversal of Eq. 2 (Najm / Ghosh et al.), and (b) functional
// equivalence checking of synthesis transformations in the test suite.
//
// The implementation is a classic hash-consed ROBDD without complement
// edges: a unique table guarantees canonicity, an ITE computed table caches
// subresults. Variable order is the creation order of variables.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/budget.hpp"
#include "util/check.hpp"

namespace minpower {

using BddRef = std::uint32_t;

class BddManager {
 public:
  /// `node_limit` bounds total allocated BDD nodes; exceeding it throws
  /// ResourceExhausted (site "bdd-limit") with the current node count and
  /// the owning phase — a recoverable failure, not an abort. When a Budget
  /// is current on the constructing thread, its (possibly smaller)
  /// `bdd_node_limit` applies instead, and a "bdd-limit" fault injection
  /// armed on that budget forces a tiny cap so the limit machinery fires.
  explicit BddManager(std::size_t node_limit = kDefaultBddNodeLimit);

  /// Flushes this manager's operation counts into the global metrics
  /// registry (bdd.unique_lookups, bdd.ite_calls, bdd.ite_cache_hits, the
  /// bdd.unique_table_peak gauge, and the bdd.final_nodes histogram). The
  /// hot loops accumulate in plain members so per-operation instrumentation
  /// cost is zero; the one-time flush also runs on exception unwind, so a
  /// blown node budget still reports its work.
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  /// Create (or fetch) the projection function of a new/existing variable.
  BddRef var(int index);
  int num_vars() const { return num_vars_; }

  BddRef not_(BddRef f) { return ite(f, kFalse, kTrue); }
  BddRef and_(BddRef f, BddRef g) { return ite(f, g, kFalse); }
  BddRef or_(BddRef f, BddRef g) { return ite(f, kTrue, g); }
  BddRef xor_(BddRef f, BddRef g) { return ite(f, not_(g), g); }
  BddRef nand_(BddRef f, BddRef g) { return not_(and_(f, g)); }
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Shannon cofactor with respect to variable `var` fixed to `value`.
  BddRef cofactor(BddRef f, int var, bool value);

  bool is_const(BddRef f) const { return f <= kTrue; }
  int top_var(BddRef f) const { return nodes_[f].var; }
  BddRef low(BddRef f) const { return nodes_[f].lo; }
  BddRef high(BddRef f) const { return nodes_[f].hi; }

  /// Evaluate under a variable assignment (indexed by variable).
  bool eval(BddRef f, const std::vector<bool>& assignment) const;

  /// Exact probability that f = 1 when variable v independently equals 1
  /// with probability `p1[v]` (the Eq. 2 linear traversal; O(|BDD|)).
  double probability(BddRef f, const std::vector<double>& p1) const;

  /// Variables in the support of f.
  std::vector<int> support(BddRef f) const;

  /// Number of distinct internal nodes reachable from f.
  std::size_t dag_size(BddRef f) const;

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Drop the operation cache (unique table is kept; refs stay valid).
  void clear_op_cache() { ite_cache_.clear(); }

 private:
  struct BddNode {
    int var;  // kLeafVar for terminals
    BddRef lo;
    BddRef hi;
  };
  static constexpr int kLeafVar = 0x7fffffff;

  struct UniqueKey {
    int var;
    BddRef lo;
    BddRef hi;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.var) * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<std::uint64_t>(k.lo) << 32 | k.hi) + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h * 0xff51afd7ed558ccdULL);
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f * 0x9e3779b97f4a7c15ULL;
      h = (h ^ k.g) * 0xff51afd7ed558ccdULL;
      h = (h ^ k.h) * 0xc4ceb9fe1a85ec53ULL;
      return static_cast<std::size_t>(h);
    }
  };

  BddRef make(int var, BddRef lo, BddRef hi);

  std::size_t node_limit_;
  std::size_t unique_lookups_ = 0;
  std::size_t ite_calls_ = 0;
  std::size_t ite_cache_hits_ = 0;
  int num_vars_ = 0;
  std::vector<BddNode> nodes_;
  std::vector<BddRef> var_nodes_;
  std::unordered_map<UniqueKey, BddRef, UniqueKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
};

}  // namespace minpower
