#include "bdd/bdd.hpp"

#include <algorithm>
#include <string>
#include <string_view>

#include "trace/metrics.hpp"

namespace minpower {

namespace {

// Initial table sizes (powers of two) and the computed-table byte budget.
// The cache is lossy, so the budget caps memory without affecting results:
// 2^19 entries × 20 bytes = 10 MiB per manager at full growth.
constexpr std::size_t kUniqueInitSlots = std::size_t{1} << 11;
constexpr std::size_t kCacheInitEntries = std::size_t{1} << 12;
constexpr std::size_t kCacheMaxEntries = std::size_t{1} << 19;

inline std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL;
  x = (x ^ b) * 0xff51afd7ed558ccdULL;
  x = (x ^ c) * 0xc4ceb9fe1a85ec53ULL;
  return x ^ (x >> 29);
}

}  // namespace

BddManager::BddManager(std::size_t node_limit) : node_limit_(node_limit) {
  if (const Budget* b = Budget::current()) {
    node_limit_ = std::min(node_limit_, b->bdd_node_limit);
    if (b->injected("bdd-limit")) node_limit_ = kInjectedBddNodeLimit;
  }
  nodes_.push_back(BddNode{kLeafVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back(BddNode{kLeafVar, kTrue, kTrue});    // 1 = true
  unique_slots_.assign(kUniqueInitSlots, kInvalid);
  unique_mask_ = kUniqueInitSlots - 1;
  cache_.assign(kCacheInitEntries, CacheEntry{});
  cache_mask_ = kCacheInitEntries - 1;
}

namespace {

/// Phase kind of a budget label ("<circuit>/decomp[0]" → "decomp"). Labels
/// come from the flow engine (session.cpp); anything unlabelled or foreign
/// (tests, verify oracles) lands in "other".
const char* phase_of_label(const std::string& label) {
  const std::size_t slash = label.rfind('/');
  const std::string_view tail =
      slash == std::string::npos
          ? std::string_view(label)
          : std::string_view(label).substr(slash + 1);
  if (tail.rfind("decomp[", 0) == 0) return "decomp";
  if (tail.rfind("activity[", 0) == 0) return "activity";
  if (tail.rfind("map[", 0) == 0) return "map";
  return "other";
}

}  // namespace

std::size_t BddManager::node_bytes() const {
  return nodes_.capacity() * sizeof(BddNode);
}

std::size_t BddManager::unique_table_bytes() const {
  return unique_slots_.capacity() * sizeof(BddRef);
}

std::size_t BddManager::cache_bytes() const {
  return cache_.capacity() * sizeof(CacheEntry);
}

std::size_t BddManager::scratch_bytes() const {
  return not_memo_.capacity() * sizeof(BddRef) +
         stamp_.capacity() * sizeof(std::uint32_t) +
         prob_memo_.capacity() * sizeof(double) +
         ref_memo_.capacity() * sizeof(BddRef) +
         scratch_stack_.capacity() * sizeof(BddRef) +
         var_nodes_.capacity() * sizeof(BddRef);
}

std::size_t BddManager::arena_bytes() const {
  return node_bytes() + unique_table_bytes() + cache_bytes() +
         scratch_bytes();
}

BddManager::~BddManager() {
  static metrics::Counter& lookups = metrics::counter("bdd.unique_lookups");
  static metrics::Counter& ites = metrics::counter("bdd.ite_calls");
  static metrics::Counter& hits = metrics::counter("bdd.ite_cache_hits");
  static metrics::Counter& nots = metrics::counter("bdd.not_calls");
  static metrics::Counter& not_hits = metrics::counter("bdd.not_cache_hits");
  static metrics::Gauge& peak = metrics::gauge("bdd.unique_table_peak");
  static metrics::Histogram& final_nodes =
      metrics::histogram("bdd.final_nodes");
  // Byte-accounted arena gauges (DESIGN.md §16). All values derive from
  // vector *capacities*, which are a pure function of the deterministic
  // operation sequence this manager executed — never from the allocator or
  // the OS — so the gauges stay byte-identical across thread counts and
  // across the sharded/in-process split. RSS never enters the registry.
  static metrics::Gauge& live_bytes = metrics::gauge("bdd.mem.live_node_bytes");
  static metrics::Gauge& node_peak = metrics::gauge("bdd.mem.node_bytes_peak");
  static metrics::Gauge& unique_peak =
      metrics::gauge("bdd.mem.unique_bytes_peak");
  static metrics::Gauge& cache_peak =
      metrics::gauge("bdd.mem.cache_bytes_peak");
  static metrics::Gauge& scratch_peak =
      metrics::gauge("bdd.mem.scratch_bytes_peak");
  static metrics::Gauge& arena_peak =
      metrics::gauge("bdd.mem.arena_bytes_peak");
  lookups.add(unique_lookups_);
  ites.add(ite_calls_);
  hits.add(ite_cache_hits_);
  nots.add(not_calls_);
  not_hits.add(not_cache_hits_);
  peak.record_max(nodes_.size());
  final_nodes.record(nodes_.size());
  live_bytes.record_max(nodes_.size() * sizeof(BddNode));
  node_peak.record_max(node_bytes());
  unique_peak.record_max(unique_table_bytes());
  cache_peak.record_max(cache_bytes());
  scratch_peak.record_max(scratch_bytes());
  arena_peak.record_max(arena_bytes());
  // Per-phase high-water mark, attributed through the owning Budget label
  // ("<circuit>/decomp[g]" → phase "decomp"). Phase names are a small fixed
  // set, so the handle lookup stays off every hot path (dtor only).
  const Budget* b = Budget::current();
  const char* phase =
      b != nullptr ? phase_of_label(b->label) : phase_of_label(std::string());
  metrics::gauge(std::string("bdd.mem.phase_peak_bytes.") + phase)
      .record_max(arena_bytes());
}

BddRef BddManager::var(int index) {
  MP_CHECK(index >= 0);
  while (num_vars_ <= index) {
    var_nodes_.push_back(make(num_vars_, kFalse, kTrue));
    ++num_vars_;
  }
  return var_nodes_[static_cast<std::size_t>(index)];
}

BddRef BddManager::make(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  ++unique_lookups_;
  std::size_t slot = mix3(static_cast<std::uint64_t>(var), lo, hi) &
                     unique_mask_;
  for (;;) {
    const BddRef id = unique_slots_[slot];
    if (id == kInvalid) break;
    const BddNode& n = nodes_[id];
    if (n.lo == lo && n.hi == hi && n.var == var) return id;
    slot = (slot + 1) & unique_mask_;
  }
  if (nodes_.size() >= node_limit_) {
    const Budget* b = Budget::current();
    throw ResourceExhausted(
        "bdd-limit",
        "BDD node limit exceeded: " + std::to_string(nodes_.size()) +
            " nodes (limit " + std::to_string(node_limit_) + ") in phase " +
            (b && !b->label.empty() ? b->label : std::string("<unbudgeted>")));
  }
  const BddRef id = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(BddNode{var, lo, hi});
  unique_slots_[slot] = id;
  // Keep load below ~0.7; every internal node lives in the table, so the
  // fill count is just the node count.
  if ((nodes_.size() - 2) * 10 >= unique_slots_.size() * 7) grow_unique();
  return id;
}

void BddManager::grow_unique() {
  const std::size_t cap = unique_slots_.size() * 2;
  unique_slots_.assign(cap, kInvalid);
  unique_mask_ = cap - 1;
  // Rebuild from the dense node array — cheaper and more cache-friendly
  // than migrating slots, and terminals (ids 0, 1) are never table members.
  for (BddRef id = 2; id < static_cast<BddRef>(nodes_.size()); ++id) {
    const BddNode& n = nodes_[id];
    std::size_t slot = mix3(static_cast<std::uint64_t>(n.var), n.lo, n.hi) &
                       unique_mask_;
    while (unique_slots_[slot] != kInvalid) slot = (slot + 1) & unique_mask_;
    unique_slots_[slot] = id;
  }
}

const BddRef* BddManager::cache_find(std::uint32_t tag, BddRef f, BddRef g,
                                     BddRef h) {
  const CacheEntry& e =
      cache_[mix3(f | (static_cast<std::uint64_t>(tag) << 32), g, h) &
             cache_mask_];
  if (e.tag == tag && e.f == f && e.g == g && e.h == h) return &e.result;
  return nullptr;
}

void BddManager::cache_store(std::uint32_t tag, BddRef f, BddRef g, BddRef h,
                             BddRef r) {
  // Grow geometrically toward the byte budget once inserts outnumber slots;
  // past the budget the table stays fixed and overwrites on collision.
  if (++cache_inserts_ > cache_.size() && cache_.size() < kCacheMaxEntries)
    grow_cache();
  CacheEntry& e =
      cache_[mix3(f | (static_cast<std::uint64_t>(tag) << 32), g, h) &
             cache_mask_];
  e = CacheEntry{tag, f, g, h, r};
}

void BddManager::grow_cache() {
  std::vector<CacheEntry> old = std::move(cache_);
  cache_.assign(old.size() * 2, CacheEntry{});
  cache_mask_ = cache_.size() - 1;
  cache_inserts_ = 0;
  for (const CacheEntry& e : old) {
    if (e.tag == 0) continue;
    cache_[mix3(e.f | (static_cast<std::uint64_t>(e.tag) << 32), e.g, e.h) &
           cache_mask_] = e;
  }
}

void BddManager::clear_op_cache() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  cache_inserts_ = 0;
  std::fill(not_memo_.begin(), not_memo_.end(), kInvalid);
}

BddRef BddManager::not_(BddRef f) {
  if (f <= kTrue) return f ^ 1u;
  ++not_calls_;
  if (f < not_memo_.size() && not_memo_[f] != kInvalid) {
    ++not_cache_hits_;
    return not_memo_[f];
  }
  const BddNode n = nodes_[f];  // copy: make() below may reallocate nodes_
  const BddRef lo = not_(n.lo);
  const BddRef hi = not_(n.hi);
  const BddRef r = make(n.var, lo, hi);
  if (not_memo_.size() < nodes_.size()) not_memo_.resize(nodes_.size(), kInvalid);
  // ¬ is an involution: record both directions so ite can recognize
  // complement pairs no matter which side was computed first.
  not_memo_[f] = r;
  not_memo_[r] = f;
  return r;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  // In the then-branch f is true, in the else-branch false:
  // ite(f,f,h) = ite(f,1,h) and ite(f,g,f) = ite(f,g,0).
  if (g == f) g = kTrue;
  if (h == f) h = kFalse;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return not_(f);  // cached complement
  // Commutative normalization so equivalent triples share one entry:
  //   ite(f,1,h) = f + h = ite(h,1,f)   and   ite(f,g,0) = f·g = ite(g,f,0).
  if (g == kTrue) {
    if (before(h, f)) std::swap(f, h);
  } else if (h == kFalse) {
    if (before(g, f)) std::swap(f, g);
  } else if (is_not_pair(g, h)) {
    // ite(f,g,¬g) = ¬(f⊕g) = f⊕¬g: route through the canonical XOR op.
    return xor_(f, h);
  }

  ++ite_calls_;
  if (const BddRef* r = cache_find(kOpIte, f, g, h)) {
    ++ite_cache_hits_;
    return *r;
  }

  const int vf = nodes_[f].var;
  const int vg = is_const(g) ? kLeafVar : nodes_[g].var;
  const int vh = is_const(h) ? kLeafVar : nodes_[h].var;
  const int v = std::min({vf, vg, vh});

  const BddRef f0 = (vf == v) ? nodes_[f].lo : f;
  const BddRef f1 = (vf == v) ? nodes_[f].hi : f;
  const BddRef g0 = (vg == v) ? nodes_[g].lo : g;
  const BddRef g1 = (vg == v) ? nodes_[g].hi : g;
  const BddRef h0 = (vh == v) ? nodes_[h].lo : h;
  const BddRef h1 = (vh == v) ? nodes_[h].hi : h;

  const BddRef lo = ite(f0, g0, h0);
  const BddRef hi = ite(f1, g1, h1);
  const BddRef out = make(v, lo, hi);
  cache_store(kOpIte, f, g, h, out);
  return out;
}

BddRef BddManager::xor_(BddRef f, BddRef g) {
  if (f == g) return kFalse;
  if (f == kFalse) return g;
  if (g == kFalse) return f;
  if (f == kTrue) return not_(g);
  if (g == kTrue) return not_(f);
  if (is_not_pair(f, g)) return kTrue;
  if (before(g, f)) std::swap(f, g);  // XOR is commutative

  ++ite_calls_;
  if (const BddRef* r = cache_find(kOpXor, f, g, kFalse)) {
    ++ite_cache_hits_;
    return *r;
  }

  const int vf = nodes_[f].var;
  const int vg = nodes_[g].var;
  const int v = std::min(vf, vg);
  const BddRef f0 = (vf == v) ? nodes_[f].lo : f;
  const BddRef f1 = (vf == v) ? nodes_[f].hi : f;
  const BddRef g0 = (vg == v) ? nodes_[g].lo : g;
  const BddRef g1 = (vg == v) ? nodes_[g].hi : g;

  const BddRef lo = xor_(f0, g0);
  const BddRef hi = xor_(f1, g1);
  const BddRef out = make(v, lo, hi);
  cache_store(kOpXor, f, g, kFalse, out);
  return out;
}

BddRef BddManager::cofactor(BddRef f, int var, bool value) {
  if (is_const(f)) return f;
  const int v = nodes_[f].var;
  if (v > var) return f;
  if (v == var) return value ? nodes_[f].hi : nodes_[f].lo;
  ensure_scratch();
  if (ref_memo_.size() < nodes_.size()) ref_memo_.resize(nodes_.size());
  next_epoch();
  return cofactor_rec(f, var, value);
}

BddRef BddManager::cofactor_rec(BddRef f, int var, bool value) {
  if (is_const(f)) return f;
  const BddNode n = nodes_[f];  // copy: make() below may reallocate nodes_
  if (n.var > var) return f;
  if (n.var == var) return value ? n.hi : n.lo;
  // Memo keyed by f alone: (var, value) are fixed for the whole call. Only
  // nodes that existed at entry are keys, so the scratch sized at entry
  // covers them even though make() appends new nodes.
  if (stamp_[f] == epoch_) return ref_memo_[f];
  const BddRef lo = cofactor_rec(n.lo, var, value);
  const BddRef hi = cofactor_rec(n.hi, var, value);
  const BddRef r = make(n.var, lo, hi);
  stamp_[f] = epoch_;
  ref_memo_[f] = r;
  return r;
}

bool BddManager::eval(BddRef f, const std::vector<bool>& assignment) const {
  while (!is_const(f)) {
    const BddNode& n = nodes_[f];
    MP_CHECK(n.var < static_cast<int>(assignment.size()));
    f = assignment[static_cast<std::size_t>(n.var)] ? n.hi : n.lo;
  }
  return f == kTrue;
}

void BddManager::ensure_scratch() const {
  if (stamp_.size() < nodes_.size()) stamp_.resize(nodes_.size(), 0);
}

void BddManager::next_epoch() const {
  if (++epoch_ == 0) {  // wrapped: every stale stamp must be invalidated
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

double BddManager::prob_eval(BddRef f, const std::vector<double>& p1) const {
  if (stamp_[f] == epoch_) return prob_memo_[f];
  // Iterative DFS to avoid deep recursion on path-like BDDs. Post-order:
  // P(node) = p(var)·P(hi) + (1−p(var))·P(lo). Eq. 2.
  std::vector<BddRef>& stack = scratch_stack_;
  stack.clear();
  stack.push_back(f);
  while (!stack.empty()) {
    const BddRef r = stack.back();
    if (stamp_[r] == epoch_) {
      stack.pop_back();
      continue;
    }
    const BddNode& n = nodes_[r];
    const bool lo_ready = n.lo <= kTrue || stamp_[n.lo] == epoch_;
    const bool hi_ready = n.hi <= kTrue || stamp_[n.hi] == epoch_;
    if (lo_ready && hi_ready) {
      const double plo =
          n.lo <= kTrue ? static_cast<double>(n.lo) : prob_memo_[n.lo];
      const double phi =
          n.hi <= kTrue ? static_cast<double>(n.hi) : prob_memo_[n.hi];
      MP_CHECK(n.var < static_cast<int>(p1.size()));
      const double pv = p1[static_cast<std::size_t>(n.var)];
      prob_memo_[r] = pv * phi + (1.0 - pv) * plo;
      stamp_[r] = epoch_;
      stack.pop_back();
    } else {
      if (!lo_ready) stack.push_back(n.lo);
      if (!hi_ready) stack.push_back(n.hi);
    }
  }
  return prob_memo_[f];
}

double BddManager::probability(BddRef f, const std::vector<double>& p1) const {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  ensure_scratch();
  if (prob_memo_.size() < nodes_.size()) prob_memo_.resize(nodes_.size());
  next_epoch();
  return prob_eval(f, p1);
}

std::vector<double> BddManager::probabilities(
    const std::vector<BddRef>& fs, const std::vector<double>& p1) const {
  ensure_scratch();
  if (prob_memo_.size() < nodes_.size()) prob_memo_.resize(nodes_.size());
  next_epoch();  // one epoch for the whole batch: the memo is shared
  std::vector<double> out;
  out.reserve(fs.size());
  for (const BddRef f : fs) {
    if (f <= kTrue)
      out.push_back(static_cast<double>(f));
    else
      out.push_back(prob_eval(f, p1));
  }
  return out;
}

std::vector<int> BddManager::support(BddRef f) const {
  std::vector<bool> seen_var(static_cast<std::size_t>(num_vars_), false);
  ensure_scratch();
  next_epoch();
  std::vector<BddRef>& stack = scratch_stack_;
  stack.clear();
  if (!is_const(f)) stack.push_back(f);
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (stamp_[r] == epoch_) continue;
    stamp_[r] = epoch_;
    const BddNode& n = nodes_[r];
    seen_var[static_cast<std::size_t>(n.var)] = true;
    if (n.lo > kTrue) stack.push_back(n.lo);
    if (n.hi > kTrue) stack.push_back(n.hi);
  }
  std::vector<int> out;
  for (int v = 0; v < num_vars_; ++v)
    if (seen_var[static_cast<std::size_t>(v)]) out.push_back(v);
  return out;
}

std::size_t BddManager::dag_size(BddRef f) const {
  ensure_scratch();
  next_epoch();
  std::vector<BddRef>& stack = scratch_stack_;
  stack.clear();
  if (!is_const(f)) stack.push_back(f);
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (stamp_[r] == epoch_) continue;
    stamp_[r] = epoch_;
    ++count;
    const BddNode& n = nodes_[r];
    if (n.lo > kTrue) stack.push_back(n.lo);
    if (n.hi > kTrue) stack.push_back(n.hi);
  }
  return count;
}

}  // namespace minpower
