#include "bdd/bdd.hpp"

#include <algorithm>
#include <string>

#include "trace/metrics.hpp"

namespace minpower {

BddManager::BddManager(std::size_t node_limit) : node_limit_(node_limit) {
  if (const Budget* b = Budget::current()) {
    node_limit_ = std::min(node_limit_, b->bdd_node_limit);
    if (b->injected("bdd-limit")) node_limit_ = kInjectedBddNodeLimit;
  }
  nodes_.push_back(BddNode{kLeafVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back(BddNode{kLeafVar, kTrue, kTrue});    // 1 = true
}

BddManager::~BddManager() {
  static metrics::Counter& lookups = metrics::counter("bdd.unique_lookups");
  static metrics::Counter& ites = metrics::counter("bdd.ite_calls");
  static metrics::Counter& hits = metrics::counter("bdd.ite_cache_hits");
  static metrics::Gauge& peak = metrics::gauge("bdd.unique_table_peak");
  static metrics::Histogram& final_nodes =
      metrics::histogram("bdd.final_nodes");
  lookups.add(unique_lookups_);
  ites.add(ite_calls_);
  hits.add(ite_cache_hits_);
  peak.record_max(nodes_.size());
  final_nodes.record(nodes_.size());
}

BddRef BddManager::var(int index) {
  MP_CHECK(index >= 0);
  while (num_vars_ <= index) {
    var_nodes_.push_back(make(num_vars_, kFalse, kTrue));
    ++num_vars_;
  }
  return var_nodes_[static_cast<std::size_t>(index)];
}

BddRef BddManager::make(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  ++unique_lookups_;
  const UniqueKey key{var, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) {
    const Budget* b = Budget::current();
    throw ResourceExhausted(
        "bdd-limit",
        "BDD node limit exceeded: " + std::to_string(nodes_.size()) +
            " nodes (limit " + std::to_string(node_limit_) + ") in phase " +
            (b && !b->label.empty() ? b->label : std::string("<unbudgeted>")));
  }
  const BddRef id = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(BddNode{var, lo, hi});
  unique_.emplace(key, id);
  return id;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  ++ite_calls_;
  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) {
    ++ite_cache_hits_;
    return it->second;
  }

  const int vf = nodes_[f].var;
  const int vg = is_const(g) ? kLeafVar : nodes_[g].var;
  const int vh = is_const(h) ? kLeafVar : nodes_[h].var;
  const int v = std::min({vf, vg, vh});

  const BddRef f0 = (vf == v) ? nodes_[f].lo : f;
  const BddRef f1 = (vf == v) ? nodes_[f].hi : f;
  const BddRef g0 = (vg == v) ? nodes_[g].lo : g;
  const BddRef g1 = (vg == v) ? nodes_[g].hi : g;
  const BddRef h0 = (vh == v) ? nodes_[h].lo : h;
  const BddRef h1 = (vh == v) ? nodes_[h].hi : h;

  const BddRef lo = ite(f0, g0, h0);
  const BddRef hi = ite(f1, g1, h1);
  const BddRef out = make(v, lo, hi);
  ite_cache_.emplace(key, out);
  return out;
}

BddRef BddManager::cofactor(BddRef f, int var, bool value) {
  if (is_const(f)) return f;
  const int v = nodes_[f].var;
  if (v > var) return f;
  if (v == var) return value ? nodes_[f].hi : nodes_[f].lo;
  // v < var: recurse on both branches. Memoize through ite by building with
  // a local cache; depth is bounded by variable count.
  const BddRef lo = cofactor(nodes_[f].lo, var, value);
  const BddRef hi = cofactor(nodes_[f].hi, var, value);
  return make(v, lo, hi);
}

bool BddManager::eval(BddRef f, const std::vector<bool>& assignment) const {
  while (!is_const(f)) {
    const BddNode& n = nodes_[f];
    MP_CHECK(n.var < static_cast<int>(assignment.size()));
    f = assignment[static_cast<std::size_t>(n.var)] ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::probability(BddRef f, const std::vector<double>& p1) const {
  // Post-order evaluation: P(node) = p(var)·P(hi) + (1−p(var))·P(lo). Eq. 2.
  std::unordered_map<BddRef, double> memo;
  memo.reserve(64);
  // Iterative DFS to avoid deep recursion on path-like BDDs.
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef r = stack.back();
    if (r == kFalse || r == kTrue || memo.contains(r)) {
      stack.pop_back();
      continue;
    }
    const BddNode& n = nodes_[r];
    const bool lo_ready = n.lo <= kTrue || memo.contains(n.lo);
    const bool hi_ready = n.hi <= kTrue || memo.contains(n.hi);
    if (lo_ready && hi_ready) {
      const double plo = n.lo <= kTrue ? static_cast<double>(n.lo) : memo[n.lo];
      const double phi = n.hi <= kTrue ? static_cast<double>(n.hi) : memo[n.hi];
      MP_CHECK(n.var < static_cast<int>(p1.size()));
      const double pv = p1[static_cast<std::size_t>(n.var)];
      memo[r] = pv * phi + (1.0 - pv) * plo;
      stack.pop_back();
    } else {
      if (!lo_ready) stack.push_back(n.lo);
      if (!hi_ready) stack.push_back(n.hi);
    }
  }
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  return memo[f];
}

std::vector<int> BddManager::support(BddRef f) const {
  std::vector<bool> seen_var(static_cast<std::size_t>(num_vars_), false);
  std::unordered_map<BddRef, bool> visited;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r <= kTrue || visited[r]) continue;
    visited[r] = true;
    seen_var[static_cast<std::size_t>(nodes_[r].var)] = true;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  std::vector<int> out;
  for (int v = 0; v < num_vars_; ++v)
    if (seen_var[static_cast<std::size_t>(v)]) out.push_back(v);
  return out;
}

std::size_t BddManager::dag_size(BddRef f) const {
  std::unordered_map<BddRef, bool> visited;
  std::vector<BddRef> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef r = stack.back();
    stack.pop_back();
    if (r <= kTrue || visited[r]) continue;
    visited[r] = true;
    ++count;
    stack.push_back(nodes_[r].lo);
    stack.push_back(nodes_[r].hi);
  }
  return count;
}

}  // namespace minpower
