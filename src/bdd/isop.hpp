#pragma once
// Irredundant sum-of-products from a BDD interval (Minato–Morreale).
//
// isop(L, U) returns a cover g with L ≤ g ≤ U in which no cube is redundant
// (dropping any cube breaks L ≤ g). With L = U = f this is an irredundant
// SOP of f — the node simplification step of the technology-independent
// phase ("node simplification" in the paper's Sec. 5 and in the SIS rugged
// script our substrate mirrors).

#include "bdd/bdd.hpp"
#include "sop/cover.hpp"

namespace minpower {

/// BDD variables index cover variables directly (var v ↦ Cube literal v);
/// all support variables must be < kMaxCubeVars.
Cover isop(BddManager& mgr, BddRef lower, BddRef upper);

/// Irredundant SOP of a function.
inline Cover isop(BddManager& mgr, BddRef f) { return isop(mgr, f, f); }

}  // namespace minpower
