#pragma once
// Glitch-aware average-power estimation by timed gate-level simulation.
//
// The paper's algorithms use the zero-delay model (Sec. 1.4), but its
// *evaluation* uses the estimator of Ghosh et al. [6], whose general delay
// model "correctly computes the Boolean conditions that cause glitchings".
// This module provides the equivalent measurement from scratch: an
// event-driven transport-delay simulation of a mapped netlist under the
// pin-dependent library delay model, averaging all output transitions —
// functional and spurious — over seeded random vector pairs.

#include "power/report.hpp"

namespace minpower {

struct SimPowerParams {
  PowerParams base;
  int num_vector_pairs = 256;  // Monte-Carlo sample size
  std::uint64_t seed = 0x5eedULL;
};

struct SimPowerReport {
  double power_uw = 0.0;        // glitch-inclusive average power
  double zero_delay_uw = 0.0;   // same netlist under the zero-delay model
  double avg_transitions = 0.0; // mean transitions per net per cycle
  double glitch_factor = 1.0;   // power_uw / zero_delay_uw
};

/// Estimate glitch-inclusive average power of a mapped netlist.
/// Deterministic in the seed.
SimPowerReport simulate_power(const MappedNetwork& mn,
                              const SimPowerParams& params);

}  // namespace minpower
