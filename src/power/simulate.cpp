#include "power/simulate.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/rng.hpp"

namespace minpower {

namespace {

struct Event {
  double time;
  NodeId signal;
  bool value;
  long long order;  // FIFO tie-break for determinism
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return order > o.order;
  }
};

}  // namespace

SimPowerReport simulate_power(const MappedNetwork& mn,
                              const SimPowerParams& params) {
  const Network& subject = *mn.subject;
  const std::size_t cap = subject.capacity();

  // Loads and per-(gate,pin) propagation delays.
  std::vector<double> load(cap, 0.0);
  for (const MappedGateInst& g : mn.gates)
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
      load[static_cast<std::size_t>(g.pin_nodes[i])] += g.gate->pins[i].cap;
  for (NodeId s : mn.po_signal)
    load[static_cast<std::size_t>(s)] += params.base.po_load;

  // Readers of each signal: (gate index, pin index).
  std::vector<std::vector<std::pair<int, int>>> readers(cap);
  for (std::size_t gi = 0; gi < mn.gates.size(); ++gi)
    for (std::size_t pi = 0; pi < mn.gates[gi].pin_nodes.size(); ++pi)
      readers[static_cast<std::size_t>(mn.gates[gi].pin_nodes[pi])]
          .emplace_back(static_cast<int>(gi), static_cast<int>(pi));

  // Cached variable-name order per gate for Expr::eval.
  std::vector<std::vector<std::string>> gate_vars;
  gate_vars.reserve(mn.gates.size());
  for (const MappedGateInst& g : mn.gates)
    gate_vars.push_back(g.gate->function->variables());

  auto gate_out = [&](std::size_t gi, const std::vector<char>& value) {
    const MappedGateInst& g = mn.gates[gi];
    std::vector<bool> in;
    in.reserve(g.pin_nodes.size());
    for (NodeId s : g.pin_nodes)
      in.push_back(value[static_cast<std::size_t>(s)] != 0);
    return g.gate->function->eval(gate_vars[gi], in);
  };

  Rng rng(params.seed);
  const std::size_t npi = subject.pis().size();
  std::vector<double> pi_p = params.base.pi_prob1;
  if (pi_p.empty()) pi_p.assign(npi, 0.5);

  std::vector<long long> transitions(cap, 0);
  std::vector<char> value(cap, 0);

  // Gate evaluation order for settling: producers before consumers. The
  // stored gate order is documented as topological, but nothing upstream
  // enforces it (hand-built or deserialized netlists may violate it), and
  // evaluating out of order silently yields wrong initial values — so
  // derive a topological order here (Kahn's algorithm over the
  // gate-reads-gate relation) and abort on combinational cycles.
  std::vector<std::size_t> eval_order;
  {
    std::vector<int> driver(cap, -1);
    for (std::size_t gi = 0; gi < mn.gates.size(); ++gi)
      driver[static_cast<std::size_t>(mn.gates[gi].root)] =
          static_cast<int>(gi);
    std::vector<int> pending(mn.gates.size(), 0);
    for (std::size_t gi = 0; gi < mn.gates.size(); ++gi)
      for (NodeId s : mn.gates[gi].pin_nodes)
        if (driver[static_cast<std::size_t>(s)] >= 0)
          ++pending[gi];
    eval_order.reserve(mn.gates.size());
    for (std::size_t gi = 0; gi < mn.gates.size(); ++gi)
      if (pending[gi] == 0) eval_order.push_back(gi);
    for (std::size_t head = 0; head < eval_order.size(); ++head) {
      const std::size_t gi = eval_order[head];
      for (const auto& [ri, pin] :
           readers[static_cast<std::size_t>(mn.gates[gi].root)]) {
        (void)pin;
        if (--pending[static_cast<std::size_t>(ri)] == 0)
          eval_order.push_back(static_cast<std::size_t>(ri));
      }
    }
    MP_CHECK_MSG(eval_order.size() == mn.gates.size(),
                 "mapped netlist has a combinational cycle");
  }

  auto settle = [&](const std::vector<bool>& pi_vals) {
    for (std::size_t i = 0; i < npi; ++i)
      value[static_cast<std::size_t>(subject.pis()[i])] = pi_vals[i] ? 1 : 0;
    for (NodeId id = 0; id < static_cast<NodeId>(cap); ++id)
      if (subject.node(id).is_const())
        value[static_cast<std::size_t>(id)] =
            subject.node(id).kind == NodeKind::kConstant1;
    for (const std::size_t gi : eval_order)
      value[static_cast<std::size_t>(mn.gates[gi].root)] =
          gate_out(gi, value) ? 1 : 0;
  };

  for (int trial = 0; trial < params.num_vector_pairs; ++trial) {
    std::vector<bool> v0(npi);
    std::vector<bool> v1(npi);
    for (std::size_t i = 0; i < npi; ++i) {
      v0[i] = rng.coin(pi_p[i]);
      v1[i] = rng.coin(pi_p[i]);
    }
    settle(v0);

    // Apply v1 at time 0 and propagate (transport delay: every scheduled
    // change that differs from the then-current value is applied).
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
    long long order = 0;
    for (std::size_t i = 0; i < npi; ++i) {
      if (v1[i] != v0[i])
        queue.push(Event{0.0, subject.pis()[i], v1[i], order++});
    }
    int guard = 0;
    while (!queue.empty()) {
      const Event e = queue.top();
      queue.pop();
      auto& v = value[static_cast<std::size_t>(e.signal)];
      if ((v != 0) == e.value) continue;  // superseded change
      v = e.value ? 1 : 0;
      ++transitions[static_cast<std::size_t>(e.signal)];
      MP_CHECK_MSG(++guard < 1'000'000, "simulation did not settle");
      for (const auto& [gi, pin] : readers[static_cast<std::size_t>(e.signal)]) {
        const MappedGateInst& g = mn.gates[static_cast<std::size_t>(gi)];
        const bool out = gate_out(static_cast<std::size_t>(gi), value);
        const GatePin& p = g.gate->pins[static_cast<std::size_t>(pin)];
        const double d =
            p.intrinsic + p.drive * load[static_cast<std::size_t>(g.root)];
        queue.push(Event{e.time + d, g.root, out, order++});
      }
    }
  }

  // Average transitions → power.
  SimPowerReport rep;
  const double n = static_cast<double>(params.num_vector_pairs);
  double total_e = 0.0;
  std::size_t nets = 0;
  auto add_net = [&](NodeId s) {
    const double e = static_cast<double>(transitions[static_cast<std::size_t>(s)]) / n;
    rep.power_uw += load_power_uw(load[static_cast<std::size_t>(s)], e,
                                  params.base.vdd, params.base.t_cycle);
    total_e += e;
    ++nets;
  };
  for (const MappedGateInst& g : mn.gates) add_net(g.root);
  for (NodeId pi : subject.pis()) add_net(pi);
  rep.avg_transitions = nets ? total_e / static_cast<double>(nets) : 0.0;

  rep.zero_delay_uw = evaluate_mapped(mn, params.base).power_uw;
  rep.glitch_factor =
      rep.zero_delay_uw > 0.0 ? rep.power_uw / rep.zero_delay_uw : 1.0;
  return rep;
}

}  // namespace minpower
