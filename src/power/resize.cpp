#include "power/resize.hpp"

#include <algorithm>
#include <numeric>

namespace minpower {

std::vector<const Gate*> equivalent_cells(const Library& lib, const Gate& g) {
  std::vector<const Gate*> out;
  const auto g_vars = g.function->variables();
  const int k = g.num_inputs();
  if (k > 10) return {&g};
  for (const Gate& h : lib.gates()) {
    if (h.num_inputs() != k) continue;
    const auto h_vars = h.function->variables();
    bool equal = true;
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << k) && equal; ++m) {
      std::vector<bool> in(static_cast<std::size_t>(k));
      for (int i = 0; i < k; ++i)
        in[static_cast<std::size_t>(i)] = (m >> i) & 1;
      if (g.function->eval(g_vars, in) != h.function->eval(h_vars, in))
        equal = false;
    }
    if (equal) out.push_back(&h);
  }
  return out;
}

namespace {

struct TimingView {
  std::vector<double> load;     // per subject signal
  std::vector<double> arrival;  // per subject signal
};

TimingView analyze(const MappedNetwork& mn, const PowerParams& p) {
  const Network& subject = *mn.subject;
  TimingView t;
  t.load.assign(subject.capacity(), 0.0);
  for (const MappedGateInst& g : mn.gates)
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
      t.load[static_cast<std::size_t>(g.pin_nodes[i])] += g.gate->pins[i].cap;
  for (NodeId s : mn.po_signal)
    t.load[static_cast<std::size_t>(s)] += p.po_load;

  t.arrival.assign(subject.capacity(), 0.0);
  for (std::size_t i = 0; i < subject.pis().size(); ++i)
    t.arrival[static_cast<std::size_t>(subject.pis()[i])] =
        p.pi_arrival.empty() ? 0.0 : p.pi_arrival[i];
  for (const MappedGateInst& g : mn.gates) {
    double a = 0.0;
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i) {
      const GatePin& pin = g.gate->pins[i];
      a = std::max(a,
                   pin.intrinsic +
                       pin.drive * t.load[static_cast<std::size_t>(g.root)] +
                       t.arrival[static_cast<std::size_t>(g.pin_nodes[i])]);
    }
    t.arrival[static_cast<std::size_t>(g.root)] = a;
  }
  return t;
}

bool meets_required(const MappedNetwork& mn, const PowerParams& p,
                    const std::vector<double>& po_required) {
  const TimingView t = analyze(mn, p);
  for (std::size_t i = 0; i < mn.po_signal.size(); ++i) {
    const double a =
        t.arrival[static_cast<std::size_t>(mn.po_signal[i])];
    if (a > po_required[i] + 1e-9) return false;
  }
  return true;
}

/// Power cost attributable to one gate choice: its input pins' capacitance
/// weighted by the driving signals' activities.
double gate_power_cost(const MappedGateInst& g,
                       const std::vector<double>& activity,
                       const PowerParams& p) {
  double cost = 0.0;
  for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
    cost += load_power_uw(g.gate->pins[i].cap,
                          activity[static_cast<std::size_t>(g.pin_nodes[i])],
                          p.vdd, p.t_cycle);
  return cost;
}

}  // namespace

ResizeResult downsize_gates(MappedNetwork& mn, const ResizeOptions& options) {
  const Network& subject = *mn.subject;
  const PowerParams& p = options.power;

  const std::vector<double> activity =
      p.activities.empty()
          ? switching_activities(subject, p.style, p.pi_prob1)
          : p.activities;

  ResizeResult result;
  {
    const MappedReport before = evaluate_mapped(mn, p);
    result.power_before = before.power_uw;
    result.delay_before = before.delay;
  }

  // Required times: explicit, or freeze the starting arrivals.
  std::vector<double> po_required = options.po_required;
  if (po_required.empty()) {
    const TimingView t = analyze(mn, p);
    for (NodeId s : mn.po_signal)
      po_required.push_back(t.arrival[static_cast<std::size_t>(s)]);
  }
  MP_CHECK(po_required.size() == mn.po_signal.size());

  for (int pass = 0; pass < options.max_passes; ++pass) {
    int swaps_this_pass = 0;
    for (std::size_t gi = 0; gi < mn.gates.size(); ++gi) {
      MappedGateInst& inst = mn.gates[gi];
      const Gate* original = inst.gate;
      const double original_cost = gate_power_cost(inst, activity, p);
      const Gate* best = original;
      double best_cost = original_cost;
      for (const Gate* candidate : equivalent_cells(*mn.lib, *original)) {
        if (candidate == original) continue;
        inst.gate = candidate;
        const double cost = gate_power_cost(inst, activity, p);
        if (cost + 1e-12 < best_cost &&
            meets_required(mn, p, po_required)) {
          best = candidate;
          best_cost = cost;
        }
      }
      inst.gate = best;
      if (best != original) ++swaps_this_pass;
    }
    result.swaps += swaps_this_pass;
    if (swaps_this_pass == 0) break;
  }

  const MappedReport after = evaluate_mapped(mn, p);
  result.power_after = after.power_uw;
  result.delay_after = after.delay;
  return result;
}

}  // namespace minpower
