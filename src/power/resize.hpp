#pragma once
// Post-mapping gate resizing: swap gates for functionally identical,
// lower-power library cells wherever timing slack allows.
//
// The mapper's curves choose gate *shapes*; drive-strength selection inside
// a cell family (inv1/inv2/inv4, …) is a classic post-pass. For each mapped
// gate, in order of decreasing slack, try every library cell with the same
// function and pin count; accept the swap that lowers the power cost
// (input-capacitance × fanin activity) if the whole netlist still meets its
// required times. The pass is greedy, timing-safe by re-analysis, and
// always terminates (each accepted swap strictly lowers total power cost).

#include "map/mapped.hpp"
#include "power/report.hpp"

namespace minpower {

struct ResizeOptions {
  PowerParams power;
  /// Required time per PO; empty → the netlist's own initial arrival times
  /// (resizing may not slow any output past its starting arrival).
  std::vector<double> po_required;
  int max_passes = 4;
};

struct ResizeResult {
  int swaps = 0;
  double power_before = 0.0;
  double power_after = 0.0;
  double delay_before = 0.0;
  double delay_after = 0.0;
};

/// Resize gates of `mn` in place.
ResizeResult downsize_gates(MappedNetwork& mn, const ResizeOptions& options);

/// Library cells computing the same function as `g` over the same pin count
/// (including `g` itself). Functions are compared by truth table with the
/// pin order of each candidate aligned to `g`'s variable order.
std::vector<const Gate*> equivalent_cells(const Library& lib, const Gate& g);

}  // namespace minpower
