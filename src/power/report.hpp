#pragma once
// Evaluation of a mapped netlist: total cell area, pin-dependent critical
// path delay (Eq. 14 with actual loads), and average power (Eq. 1 with
// exact zero-delay switching activities) — the quantities of Tables 2/3.

#include <vector>

#include "map/mapper.hpp"

namespace minpower {

struct PowerParams {
  double vdd = 5.0;
  double t_cycle = 50e-9;  // 20 MHz
  double po_load = 2.0;    // unit loads on each primary output
  CircuitStyle style = CircuitStyle::kStatic;
  std::vector<double> pi_prob1;   // empty → 0.5
  std::vector<double> pi_arrival; // empty → 0

  /// Precomputed per-subject-node activities (indexed by NodeId); empty →
  /// computed from the BDDs.
  std::vector<double> activities;

  static PowerParams from(const MapOptions& o) {
    PowerParams p;
    p.vdd = o.vdd;
    p.t_cycle = o.t_cycle;
    p.po_load = o.po_load;
    p.style = o.style;
    p.pi_prob1 = o.pi_prob1;
    p.pi_arrival = o.pi_arrival;
    p.activities = o.activities;
    return p;
  }
};

struct MappedReport {
  double area = 0.0;
  double delay = 0.0;      // ns, worst PO arrival
  double power_uw = 0.0;   // average power, micro-Watts
  std::size_t num_gates = 0;
  std::vector<double> po_arrival;
};

/// Evaluate with exact loads: C(signal) = Σ reader pin caps + PO loads.
/// Power sums over every driven net (gate outputs and primary inputs).
MappedReport evaluate_mapped(const MappedNetwork& mn,
                             const PowerParams& params);

}  // namespace minpower
