#include "power/report.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace minpower {

MappedReport evaluate_mapped(const MappedNetwork& mn,
                             const PowerParams& params) {
  trace::Span span("eval", "power");
  span.arg("network", mn.subject->name());
  span.arg("gates", static_cast<unsigned long long>(mn.gates.size()));
  metrics::counter("power.evals").add(1);
  const Network& subject = *mn.subject;
  MappedReport rep;
  rep.num_gates = mn.gates.size();
  rep.area = mn.total_area();

  // Actual load per signal.
  std::vector<double> load(subject.capacity(), 0.0);
  for (const MappedGateInst& g : mn.gates)
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i)
      load[static_cast<std::size_t>(g.pin_nodes[i])] += g.gate->pins[i].cap;
  for (NodeId s : mn.po_signal)
    load[static_cast<std::size_t>(s)] += params.po_load;

  // Exact switching activities of the subject functions (zero-delay model).
  const std::vector<double> activity =
      params.activities.empty()
          ? switching_activities(subject, params.style, params.pi_prob1)
          : params.activities;
  MP_CHECK(activity.size() == subject.capacity());

  // Average power: every driven net (gate outputs and PIs). Eq. 1.
  for (const MappedGateInst& g : mn.gates)
    rep.power_uw +=
        load_power_uw(load[static_cast<std::size_t>(g.root)],
                      activity[static_cast<std::size_t>(g.root)], params.vdd,
                      params.t_cycle);
  for (NodeId pi : subject.pis())
    rep.power_uw += load_power_uw(load[static_cast<std::size_t>(pi)],
                                  activity[static_cast<std::size_t>(pi)],
                                  params.vdd, params.t_cycle);

  // Arrival times (Eq. 14 with actual loads). Gates are topo-ordered.
  std::vector<double> arrival(subject.capacity(), 0.0);
  for (std::size_t i = 0; i < subject.pis().size(); ++i)
    arrival[static_cast<std::size_t>(subject.pis()[i])] =
        params.pi_arrival.empty() ? 0.0 : params.pi_arrival[i];
  for (const MappedGateInst& g : mn.gates) {
    double a = 0.0;
    for (std::size_t i = 0; i < g.pin_nodes.size(); ++i) {
      const GatePin& pin = g.gate->pins[i];
      a = std::max(a, pin.intrinsic +
                          pin.drive * load[static_cast<std::size_t>(g.root)] +
                          arrival[static_cast<std::size_t>(g.pin_nodes[i])]);
    }
    arrival[static_cast<std::size_t>(g.root)] = a;
  }
  for (NodeId s : mn.po_signal) {
    rep.po_arrival.push_back(arrival[static_cast<std::size_t>(s)]);
    rep.delay = std::max(rep.delay, arrival[static_cast<std::size_t>(s)]);
  }
  return rep;
}

}  // namespace minpower
