// Correlated-input scenario from the paper's introduction and Sec. 5: an
// instruction decoder whose inputs are opcode bits, "the correlations can
// be obtained from the opcode/state assignment".
//
// We build a small one-hot decoder over a 4-bit opcode field plus a mode
// bit, specify the opcode mix as a weighted pattern set (a realistic ISA
// profile: loads/stores dominate), and compare:
//   * independent-model MINPOWER decomposition using only the marginal bit
//     probabilities, vs.
//   * correlation-aware decomposition (Eqs. 7–9 with exact pairwise joints
//     from the pattern distribution),
// both scored under the true distribution.

#include <cstdio>

#include "decomp/network_decompose.hpp"
#include "prob/pattern_model.hpp"
#include "prob/probability.hpp"

using namespace minpower;

namespace {

Network build_decoder() {
  Network net("decoder");
  std::vector<NodeId> op;
  for (int i = 0; i < 4; ++i) op.push_back(net.add_pi("op" + std::to_string(i)));
  const NodeId mode = net.add_pi("mode");

  // One-hot select lines for 6 instruction classes + an illegal-op trap.
  auto minterm = [&](int code, bool with_mode) {
    Cube c;
    for (int b = 0; b < 4; ++b)
      c = c & Cube::literal(b, ((code >> b) & 1) != 0);
    if (with_mode) c = c & Cube::literal(4, true);
    return c;
  };
  struct Def {
    const char* name;
    std::vector<int> codes;  // one cube per opcode in the class
    bool uses_mode;
  };
  const std::vector<Def> defs = {
      {"sel_load", {0b0001}, false},
      {"sel_store", {0b0010}, false},
      {"sel_mem", {0b0001, 0b0010}, false},          // load | store
      {"sel_ctl", {0b1000, 0b1111}, false},          // branch | sys
      {"sel_exec", {0b0100, 0b1000, 0b1111}, false}, // alu | branch | sys
      {"sel_sys", {0b1111}, true},
      {"sel_nop", {0b0000}, false},
  };
  for (const Def& d : defs) {
    std::vector<NodeId> fanins = op;
    fanins.push_back(mode);
    Cover cover;
    for (int code : d.codes) cover.add(minterm(code, d.uses_mode));
    cover.normalize();
    net.add_po(d.name, net.add_node(fanins, cover,
                                    std::string("n_") + d.name));
  }
  return net;
}

PatternModel isa_profile(const Network& net) {
  // Opcode mix: loads 30%, stores 20%, alu 25%, branch 15%, sys 4%, nop 6%.
  // Bits are strongly correlated: only 6 of the 32 input vectors ever occur.
  auto pattern = [&](int code, bool mode, double w) {
    InputPattern p;
    p.weight = w;
    for (int b = 0; b < 4; ++b) p.values.push_back(((code >> b) & 1) != 0);
    p.values.push_back(mode);
    return p;
  };
  std::vector<InputPattern> ps;
  ps.push_back(pattern(0b0001, false, 0.30));
  ps.push_back(pattern(0b0010, false, 0.20));
  ps.push_back(pattern(0b0100, false, 0.25));
  ps.push_back(pattern(0b1000, false, 0.15));
  ps.push_back(pattern(0b1111, true, 0.04));
  ps.push_back(pattern(0b0000, false, 0.06));
  return PatternModel(net, std::move(ps));
}

double true_activity(const Network& nand_net, const PatternModel& src) {
  std::vector<InputPattern> ps;
  for (const InputPattern& p : src.patterns()) ps.push_back(p);
  const PatternModel m(nand_net, std::move(ps));
  const auto probs = m.all_probabilities();
  double total = 0.0;
  for (NodeId id = 0; id < static_cast<NodeId>(nand_net.capacity()); ++id)
    if (nand_net.node(id).is_internal())
      total += switching_activity(probs[static_cast<std::size_t>(id)],
                                  CircuitStyle::kStatic);
  return total;
}

}  // namespace

int main() {
  Network net = build_decoder();
  const PatternModel model = isa_profile(net);

  std::printf("instruction decoder: %zu PIs, %zu select lines\n",
              net.pis().size(), net.pos().size());
  std::printf("opcode bit marginals under the ISA profile:");
  for (NodeId pi : net.pis()) std::printf(" %.2f", model.probability(pi));
  std::printf("\n\n");

  NetworkDecompOptions ind;
  ind.style = CircuitStyle::kStatic;
  for (NodeId pi : net.pis()) ind.pi_prob1.push_back(model.probability(pi));
  const auto r_ind = decompose_network(net, ind);

  NetworkDecompOptions corr = ind;
  corr.pi_prob1.clear();
  corr.correlations = &model;
  const auto r_corr = decompose_network(net, corr);

  const double a_ind = true_activity(r_ind.network, model);
  const double a_corr = true_activity(r_corr.network, model);
  std::printf("%-34s %10s %12s\n", "decomposition", "NAND nodes",
              "activity*");
  std::printf("%-34s %10zu %12.4f\n", "independent marginals",
              r_ind.network.num_internal(), a_ind);
  std::printf("%-34s %10zu %12.4f\n", "correlation-aware (Eqs. 7-9)",
              r_corr.network.num_internal(), a_corr);
  std::printf("\n* total switching activity of the NAND network under the "
              "true opcode distribution\n");
  if (a_corr <= a_ind)
    std::printf("correlation-aware decomposition saves %.1f%% activity\n",
                100.0 * (a_ind - a_corr) / a_ind);
  else
    std::printf("note: heuristic joint propagation lost %.1f%% on this "
                "instance\n",
                100.0 * (a_corr - a_ind) / a_ind);
  return 0;
}
