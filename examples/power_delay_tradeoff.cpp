// Sweep the required time at the primary outputs and print the resulting
// power-delay tradeoff of the mapped circuit — the curve a designer reads
// to pick an operating point (Sec. 3.2.2: "the user is allowed to select
// the arrival time - average power tradeoff which is most suitable").
//
// Usage: power_delay_tradeoff [circuit-name]   (default: ttt2)

#include <cstdio>
#include <string>

#include "benchgen/benchgen.hpp"
#include "decomp/network_decompose.hpp"
#include "flow/flow.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"

using namespace minpower;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "ttt2";
  Network net = make_benchmark(name);
  prepare_network(net);

  NetworkDecompOptions d;
  d.algorithm = DecompAlgorithm::kMinPower;
  const Network subject = decompose_network(net, d).network;
  const Library& lib = standard_library();

  // Find the fastest achievable delay first.
  MapOptions fastest;
  fastest.objective = MapObjective::kPower;
  fastest.policy = RequiredTimePolicy::kMinDelay;
  const MapResult fast = map_network(subject, lib, fastest);
  const double d_min =
      evaluate_mapped(fast.mapped, PowerParams::from(fastest)).delay;

  std::printf("circuit %s: fastest mapped delay %.2f ns\n\n", name.c_str(),
              d_min);
  std::printf("%-14s %-12s %-10s %-8s\n", "required (ns)", "power (uW)",
              "delay (ns)", "area");
  std::printf("--------------------------------------------------\n");
  for (double relax : {1.0, 1.05, 1.1, 1.2, 1.3, 1.5, 2.0, 3.0}) {
    MapOptions o;
    o.objective = MapObjective::kPower;
    o.po_required.assign(subject.pos().size(), d_min * relax);
    const MapResult r = map_network(subject, lib, o);
    const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(o));
    std::printf("%-14.2f %-12.1f %-10.2f %-8.0f\n", d_min * relax,
                rep.power_uw, rep.delay, rep.area);
  }
  std::printf("--------------------------------------------------\n");
  std::printf("power is monotone non-increasing as the constraint relaxes "
              "(Lemma 3.1 at the circuit level)\n");
  return 0;
}
