// Domino (dynamic CMOS) walkthrough: the setting where the paper's
// decomposition theory is *provably optimal* (Theorem 2.2). A p-type domino
// gate precharges low and switches exactly when its output evaluates to 1,
// so a node's switching activity is its 1-probability and the AND-tree
// merge w = w1·w2 is quasi-linear — plain Huffman (Algorithm 2.1) wins.
//
// The example decomposes an 8-input AND-accumulator (address-decoder-like
// logic) under skewed input probabilities, comparing conventional balanced
// decomposition against MINPOWER, and showing the bounded-height tradeoff
// curve the paper's Section 2.2 describes.

#include <cstdio>

#include "decomp/huffman.hpp"
#include "decomp/network_decompose.hpp"
#include "prob/probability.hpp"

using namespace minpower;

int main() {
  // Address-match logic: f = every bit matches; partial matches feed other
  // logic, so intermediate nodes are primary outputs too.
  Network net("domino");
  std::vector<NodeId> bits;
  for (int i = 0; i < 8; ++i) bits.push_back(net.add_pi("m" + std::to_string(i)));
  Cover and8;
  {
    Cube c;
    for (int i = 0; i < 8; ++i) c = c & Cube::literal(i, true);
    and8.add(c);
  }
  const NodeId match = net.add_node(bits, and8, "match");
  net.add_po("hit", match);

  // Match-bit probabilities: low bits almost always match (cache-line
  // locality), high bits rarely.
  const std::vector<double> p{0.95, 0.95, 0.9, 0.85, 0.5, 0.3, 0.15, 0.05};

  std::printf("p-type domino 8-input match logic, P(bit match) =");
  for (double x : p) std::printf(" %.2f", x);
  std::printf("\n\n");

  for (const auto algo :
       {DecompAlgorithm::kBalanced, DecompAlgorithm::kMinPower}) {
    NetworkDecompOptions o;
    o.style = CircuitStyle::kDynamicP;
    o.algorithm = algo;
    o.pi_prob1 = p;
    const auto r = decompose_network(net, o);
    std::printf("%-14s tree activity %.4f   NAND depth %d\n",
                algo == DecompAlgorithm::kBalanced ? "conventional"
                                                   : "minpower",
                r.tree_activity, r.unit_depth);
  }

  std::printf("\nbounded-height tradeoff (Sec. 2.2, Algorithm 2.3 family):\n");
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  const DecompTree free_tree = huffman_tree(p, model);
  std::printf("  %-12s cost %.4f  height %d   (Huffman, Theorem 2.2)\n",
              "unbounded", free_tree.internal_cost(model, p),
              free_tree.height());
  for (int L = free_tree.height() - 1; L >= balanced_height(8); --L) {
    const DecompTree t = bounded_height_minpower_tree(p, L, model);
    std::printf("  %-12s cost %.4f  height %d\n",
                ("L = " + std::to_string(L)).c_str(),
                t.internal_cost(model, p), t.height());
  }
  std::printf("\nthe curve is the paper's power/performance dial: each level "
              "of height bought back costs switching activity\n");
  return 0;
}
