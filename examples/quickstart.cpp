// Quickstart: read a BLIF circuit, run the full low-power synthesis flow
// (technology-independent cleanup → MINPOWER NAND decomposition →
// power-delay technology mapping), and print the mapped netlist report.
//
// Usage: quickstart [file.blif]
// With no argument a built-in example circuit is used.

#include <cstdio>
#include <string>

#include "decomp/network_decompose.hpp"
#include "flow/flow.hpp"
#include "io/blif.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"

using namespace minpower;

namespace {

const char kExampleBlif[] = R"(
.model majority5
.inputs a b c d e
.outputs maj carry
.names a b c d e maj
111-- 1
11-1- 1
11--1 1
1-11- 1
1-1-1 1
1--11 1
-111- 1
-11-1 1
-1-11 1
--111 1
.names a b carry
11 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
  // 1. Load a circuit.
  Network net = argc > 1 ? read_blif_file(argv[1])
                         : read_blif_string(kExampleBlif);
  std::printf("circuit %-12s: %zu PIs, %zu POs, %zu nodes, %d literals\n",
              net.name().c_str(), net.pis().size(), net.pos().size(),
              net.num_internal(), net.num_literals());

  // 2. Technology-independent preconditioning (rugged-lite).
  prepare_network(net);
  std::printf("after rugged-lite   : %zu nodes, %d literals, depth %d\n",
              net.num_internal(), net.num_literals(), net.depth());

  // 3. Power-efficient NAND decomposition (Section 2 of the paper).
  NetworkDecompOptions d;
  d.style = CircuitStyle::kStatic;
  d.algorithm = DecompAlgorithm::kMinPower;
  d.bounded_height = true;  // keep the conventional decomposition's depth
  const NetworkDecompResult nd = decompose_network(net, d);
  std::printf("NAND decomposition  : %zu NAND2/INV nodes, depth %d, "
              "tree activity %.3f\n",
              nd.network.num_internal(), nd.unit_depth, nd.tree_activity);

  // 4. Power-delay technology mapping (Section 3).
  MapOptions m;
  m.objective = MapObjective::kPower;
  const MapResult mapped = map_network(nd.network, standard_library(), m);

  // 5. Report.
  const MappedReport rep =
      evaluate_mapped(mapped.mapped, PowerParams::from(m));
  std::printf("mapped              : %zu gates, area %.0f, delay %.2f ns, "
              "average power %.1f uW (20 MHz, 5 V)\n",
              rep.num_gates, rep.area, rep.delay, rep.power_uw);
  std::printf("\ngate assignment:\n");
  for (const MappedGateInst& g : mapped.mapped.gates) {
    std::printf("  %-8s ->", g.gate->name.c_str());
    for (NodeId s : g.pin_nodes)
      std::printf(" %s", nd.network.node(s).name.c_str());
    std::printf("  (drives %s)\n", nd.network.node(g.root).name.c_str());
  }
  return 0;
}
