// Sequential circuits: the ISCAS-89 treatment done right. The paper maps
// sequential benchmarks through their combinational cores, with latch
// outputs as pseudo-PIs. Assuming probability 0.5 on state lines can be far
// from the truth (a one-hot ring counter's lines are 1 only 1/N of the
// time); the fixpoint iteration of prob/sequential.hpp recovers the real
// state-line probabilities, and feeding them to the decomposition + mapper
// changes what gets hidden inside gates.

#include <cstdio>

#include "decomp/network_decompose.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"
#include "prob/sequential.hpp"

using namespace minpower;

namespace {

/// One-hot ring counter (4 stages) with enable, plus a few outputs of
/// combinational decode logic.
Network ring_counter() {
  Network net("ring4");
  const NodeId en = net.add_pi("en");
  std::vector<NodeId> q;
  for (int i = 0; i < 4; ++i) q.push_back(net.add_pi("q" + std::to_string(i)));

  // q_i' = en·q_{i-1} + !en·q_i
  for (int i = 0; i < 4; ++i) {
    const NodeId prev = q[static_cast<std::size_t>((i + 3) % 4)];
    Cover mux{{Cube::literal(0, true) & Cube::literal(1, true),
               Cube::literal(0, false) & Cube::literal(2, true)}};
    const NodeId nx = net.add_node({en, prev, q[static_cast<std::size_t>(i)]},
                                   mux, "nx" + std::to_string(i));
    net.add_po("q" + std::to_string(i) + "__next", nx);
  }
  // Decode outputs.
  net.add_po("phase01", net.add_or2(q[0], q[1], "d01"));
  net.add_po("phase23", net.add_or2(q[2], q[3], "d23"));
  return net;
}

}  // namespace

int main() {
  Network net = ring_counter();
  const auto latches = infer_latches(net);
  std::printf("ring counter: %zu PIs (%zu state lines), %zu POs\n",
              net.pis().size(), latches.size(), net.pos().size());

  SequentialProbOptions so;
  so.initial_state_prob1 = {1.0, 0.0, 0.0, 0.0};  // one-hot reset state
  const auto seq = sequential_pi_probabilities(net, latches, so);
  std::printf("state-line fixpoint (%s, %d iterations):",
              seq.converged ? "converged" : "not converged", seq.iterations);
  for (const LatchBinding& l : latches)
    std::printf(" %s=%.3f", net.node(net.pis()[l.pi_index]).name.c_str(),
                seq.pi_prob1[l.pi_index]);
  std::printf("\n\n");

  // Map twice: naive 0.5 state probabilities vs the fixpoint; score both
  // under the TRUE (fixpoint) distribution.
  auto run = [&](const std::vector<double>& decomp_probs) {
    NetworkDecompOptions d;
    d.pi_prob1 = decomp_probs;
    const Network subject = decompose_network(net, d).network;
    MapOptions m;
    m.objective = MapObjective::kPower;
    m.pi_prob1 = decomp_probs;
    const MapResult r = map_network(subject, standard_library(), m);
    PowerParams score = PowerParams::from(m);
    score.pi_prob1 = seq.pi_prob1;  // truth
    score.activities.clear();
    return evaluate_mapped(r.mapped, score);
  };

  const std::vector<double> naive(net.pis().size(), 0.5);
  const MappedReport r_naive = run(naive);
  const MappedReport r_seq = run(seq.pi_prob1);
  std::printf("%-26s %10s %10s %10s\n", "state-line model", "power uW",
              "area", "delay");
  std::printf("%-26s %10.2f %10.0f %10.2f\n", "naive 0.5", r_naive.power_uw,
              r_naive.area, r_naive.delay);
  std::printf("%-26s %10.2f %10.0f %10.2f\n", "sequential fixpoint",
              r_seq.power_uw, r_seq.area, r_seq.delay);
  std::printf("\n(both scored under the true state-line distribution)\n");
  return 0;
}
