// Walk through the paper's Section 2 machinery on a single node: show how
// the Huffman / Modified Huffman / bounded-height algorithms shape the
// decomposition tree of an 6-input AND under different circuit styles and
// input probabilities (the Figure 1 idea, generalized).

#include <cstdio>
#include <string>

#include "decomp/huffman.hpp"
#include "decomp/package_merge.hpp"

using namespace minpower;

namespace {

std::string shape(const DecompTree& t, int node) {
  const DecompTree::TNode& n = t.nodes[static_cast<std::size_t>(node)];
  if (n.is_leaf()) return std::string(1, static_cast<char>('a' + n.leaf));
  return "(" + shape(t, n.left) + "·" + shape(t, n.right) + ")";
}

void show(const char* label, const DecompTree& t, const DecompModel& m,
          const std::vector<double>& p) {
  std::printf("  %-22s %-34s cost %.4f  height %d\n", label,
              shape(t, t.root).c_str(), t.internal_cost(m, p), t.height());
}

}  // namespace

int main() {
  const std::vector<double> p{0.02, 0.10, 0.35, 0.50, 0.80, 0.95};
  std::printf("decomposing AND(a..f) with P(1) = ");
  for (double x : p) std::printf("%.2f ", x);
  std::printf("\n\n");

  {
    std::printf("p-type domino (Algorithm 2.1 is optimal — Theorem 2.2):\n");
    const DecompModel m(GateType::kAnd, CircuitStyle::kDynamicP);
    show("huffman", huffman_tree(p, m), m, p);
    show("exhaustive optimum", best_tree_exhaustive(p, m), m, p);
    for (int L = 5; L >= 3; --L) {
      const DecompTree t = bounded_height_minpower_tree(p, L, m);
      show(("bounded height L=" + std::to_string(L)).c_str(), t, m, p);
    }
  }
  std::printf("\n");
  {
    std::printf("static CMOS (Algorithm 2.2 — Modified Huffman):\n");
    const DecompModel m(GateType::kAnd, CircuitStyle::kStatic);
    show("modified huffman", modified_huffman_tree(p, m), m, p);
    show("exhaustive optimum", best_tree_exhaustive(p, m), m, p);
    show("plain huffman", huffman_tree(p, m), m, p);
    for (int L = 5; L >= 3; --L) {
      const DecompTree t = bounded_height_minpower_tree(p, L, m);
      show(("bounded height L=" + std::to_string(L)).c_str(), t, m, p);
    }
  }
  std::printf("\n");
  {
    std::printf("correlated inputs (Eqs. 7-9): a and b never high together\n");
    const DecompModel m(GateType::kAnd, CircuitStyle::kDynamicP);
    std::vector<double> q{0.5, 0.5, 0.2, 0.9};
    JointProbabilities joints = JointProbabilities::independent(q);
    joints.set(0, 1, 0.0);  // P(a ∧ b) = 0: the AND of the pair never fires
    const DecompTree t = modified_huffman_correlated(joints, m);
    std::printf("  correlation-aware tree %s  (pairs the anti-correlated "
                "signals first)\n",
                shape(t, t.root).c_str());
    const DecompTree ti = modified_huffman_tree(q, m);
    std::printf("  independence-assuming  %s\n", shape(ti, ti.root).c_str());
  }
  return 0;
}
