// Compare the conventional flow (balanced decomposition + area-delay
// mapping, Method I) against the paper's low-power flow (MINPOWER
// decomposition + power-delay mapping, Method V) on one circuit — the
// scenario the paper's introduction motivates: a designer willing to trade
// some area for battery life in an embedded system.
//
// Usage: low_power_flow [circuit-name]   (default: apex7; see DESIGN.md for
// the 17 available circuit names)

#include <cstdio>
#include <string>

#include "benchgen/benchgen.hpp"
#include "flow/flow.hpp"
#include "util/stats.hpp"

using namespace minpower;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "apex7";
  Network net = make_benchmark(name);
  prepare_network(net);
  std::printf("circuit %s: %zu PIs, %zu POs, %zu optimized nodes\n\n",
              name.c_str(), net.pis().size(), net.pos().size(),
              net.num_internal());

  const Library& lib = standard_library();
  const FlowResult conventional = run_method(net, Method::kI, lib);
  const FlowResult low_power = run_method(net, Method::kV, lib);

  std::printf("%-26s %10s %10s\n", "", "Method I", "Method V");
  std::printf("%-26s %10s %10s\n", "", "(ad-map)", "(pd-map+minpower)");
  std::printf("%-26s %10.0f %10.0f\n", "gate area", conventional.area,
              low_power.area);
  std::printf("%-26s %10.2f %10.2f\n", "delay (ns)", conventional.delay,
              low_power.delay);
  std::printf("%-26s %10.1f %10.1f\n", "average power (uW)",
              conventional.power_uw, low_power.power_uw);
  std::printf("%-26s %10zu %10zu\n", "gates", conventional.gates,
              low_power.gates);
  std::printf("%-26s %10.3f %10.3f\n", "decomposition activity",
              conventional.tree_activity, low_power.tree_activity);

  std::printf("\nlow-power flow: %+.1f%% power, %+.1f%% area, %+.1f%% delay\n",
              percent_change(conventional.power_uw, low_power.power_uw),
              percent_change(conventional.area, low_power.area),
              percent_change(conventional.delay, low_power.delay));
  return 0;
}
