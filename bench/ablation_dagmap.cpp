// Ablation C (Sec. 3.3): DAG-mapping heuristics. The paper discusses two:
// decomposing the DAG into trees (DAGON-style; shared logic is charged at
// every reader) and fanout-count division of the accumulated cost at
// multi-fanout inputs (MIS-style, adopted by the paper because it preserves
// multi-fanout points and avoids logic duplication).

#include "bench_util.hpp"
#include "power/report.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

namespace {

MappedReport run_with_dag(const Network& prepared, DagHeuristic dag,
                          const Library& lib) {
  NetworkDecompOptions d;
  d.algorithm = DecompAlgorithm::kMinPower;
  const NetworkDecompResult nd = decompose_network(prepared, d);
  MapOptions m;
  m.objective = MapObjective::kPower;
  m.dag = dag;
  const MapResult r = map_network(nd.network, lib, m);
  return evaluate_mapped(r.mapped, PowerParams::from(m));
}

}  // namespace

int main() {
  const Library& lib = standard_library();
  std::printf("Ablation — DAG-mapping heuristic (tree-partition charging vs "
              "fanout division)\n");
  print_rule();
  std::printf("%-8s | %9s %9s | %9s %9s\n", "circuit", "tree pwr", "fo pwr",
              "tree area", "fo area");
  print_rule();
  RunningStats pratio;
  for (const Network& net : prepared_suite()) {
    const MappedReport tree =
        run_with_dag(net, DagHeuristic::kTreePartition, lib);
    const MappedReport fo =
        run_with_dag(net, DagHeuristic::kFanoutDivision, lib);
    pratio.add(fo.power_uw / tree.power_uw);
    std::printf("%-8s | %9.1f %9.1f | %9.0f %9.0f\n", net.name().c_str(),
                tree.power_uw, fo.power_uw, tree.area, fo.area);
  }
  print_rule();
  std::printf("mean fanout-division / tree-partition power ratio: %.3f\n",
              pratio.mean());
  return 0;
}
