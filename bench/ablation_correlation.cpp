// Ablation D (Secs. 2.1.1 / 5): correlated-input decomposition. For each
// suite circuit we synthesize a correlated input distribution (a small set
// of weighted vectors, as an FSM/opcode profile would induce), decompose
// with (a) marginal probabilities + independence assumption and (b) the
// correlation-aware Modified Huffman (Eqs. 7–9 with exact pairwise joints),
// and score both NAND networks under the true distribution.

#include "bench_util.hpp"
#include "prob/pattern_model.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

namespace {

PatternModel random_profile(const Network& net, std::uint64_t seed) {
  Rng rng(seed * 77 + 13);
  std::vector<InputPattern> ps;
  const int k = 12;  // 12 reachable vectors: strong correlation
  for (int i = 0; i < k; ++i) {
    InputPattern p;
    p.weight = rng.uniform(0.2, 1.0);
    for (std::size_t b = 0; b < net.pis().size(); ++b)
      p.values.push_back(rng.coin());
    ps.push_back(std::move(p));
  }
  return PatternModel(net, std::move(ps));
}

double true_activity(const Network& nand_net, const PatternModel& src) {
  std::vector<InputPattern> ps;
  for (const InputPattern& p : src.patterns()) ps.push_back(p);
  const PatternModel m(nand_net, std::move(ps));
  const auto probs = m.all_probabilities();
  double total = 0.0;
  for (NodeId id = 0; id < static_cast<NodeId>(nand_net.capacity()); ++id)
    if (nand_net.node(id).is_internal())
      total += switching_activity(probs[static_cast<std::size_t>(id)],
                                  CircuitStyle::kStatic);
  return total;
}

}  // namespace

int main() {
  std::printf("Ablation — correlated-input decomposition (Eqs. 7-9) vs "
              "independence assumption\n");
  print_rule();
  std::printf("%-8s %14s %14s %8s\n", "circuit", "indep act.", "corr act.",
              "ratio");
  print_rule();
  GeoMean ratio;
  std::uint64_t seed = 1;
  for (const Network& net : prepared_suite()) {
    if (net.num_internal() == 0) continue;
    const PatternModel model = random_profile(net, seed++);

    NetworkDecompOptions ind;
    for (NodeId pi : net.pis()) ind.pi_prob1.push_back(model.probability(pi));
    const auto r_ind = decompose_network(net, ind);

    NetworkDecompOptions corr;
    corr.correlations = &model;
    const auto r_corr = decompose_network(net, corr);

    const double a_ind = true_activity(r_ind.network, model);
    const double a_corr = true_activity(r_corr.network, model);
    if (a_ind <= 0.0) continue;
    ratio.add(a_corr / a_ind);
    std::printf("%-8s %14.3f %14.3f %8.3f\n", net.name().c_str(), a_ind,
                a_corr, a_corr / a_ind);
  }
  print_rule();
  std::printf("geometric-mean correlated/independent activity ratio: %.3f\n",
              ratio.value());
  return 0;
}
