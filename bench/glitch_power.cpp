// Glitch-aware evaluation (the measurement model of the paper's Sec. 4):
// the paper's power numbers come from the Ghosh et al. estimator, whose
// general delay model includes spurious transitions. This harness re-scores
// Methods I and V with the event-driven transport-delay simulator and
// reports the zero-delay vs glitch-inclusive comparison.

#include "bench_util.hpp"
#include "decomp/network_decompose.hpp"
#include "power/simulate.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

namespace {

SimPowerReport score(const Network& prepared, DecompAlgorithm algo,
                     MapObjective obj, const Library& lib) {
  NetworkDecompOptions d;
  d.algorithm = algo;
  const NetworkDecompResult nd = decompose_network(prepared, d);
  MapOptions m;
  m.objective = obj;
  const MapResult r = map_network(nd.network, lib, m);
  SimPowerParams sp;
  sp.base = PowerParams::from(m);
  sp.num_vector_pairs = 192;
  return simulate_power(r.mapped, sp);
}

}  // namespace

int main() {
  const Library& lib = standard_library();
  std::printf("Glitch-aware power (event-driven simulation, 192 vector "
              "pairs) — Method I vs Method V\n");
  print_rule(86);
  std::printf("%-8s | %10s %10s %7s | %10s %10s %7s | %7s\n", "circuit",
              "I zd(uW)", "I sim(uW)", "glitch", "V zd(uW)", "V sim(uW)",
              "glitch", "V/I sim");
  print_rule(86);
  RunningStats sim_gain;
  RunningStats zd_gain;
  for (const Network& net : prepared_suite()) {
    const SimPowerReport i =
        score(net, DecompAlgorithm::kBalanced, MapObjective::kArea, lib);
    const SimPowerReport v =
        score(net, DecompAlgorithm::kMinPower, MapObjective::kPower, lib);
    sim_gain.add(v.power_uw / i.power_uw);
    zd_gain.add(v.zero_delay_uw / i.zero_delay_uw);
    std::printf("%-8s | %10.1f %10.1f %7.2f | %10.1f %10.1f %7.2f | %7.3f\n",
                net.name().c_str(), i.zero_delay_uw, i.power_uw,
                i.glitch_factor, v.zero_delay_uw, v.power_uw, v.glitch_factor,
                v.power_uw / i.power_uw);
  }
  print_rule(86);
  std::printf("mean V/I power ratio: zero-delay %.3f, glitch-aware %.3f\n",
              zd_gain.mean(), sim_gain.mean());
  std::printf("(the paper's ~22%% gap was measured with a glitch-aware "
              "estimator of this kind)\n");
  return 0;
}
