// Aggregate claims derived from Tables 2/3 (Sec. 4 of the paper):
//   * minpower_t_decomp vs conventional (I↔II, IV↔V):
//       paper: ~3.7% average power improvement, ~1.4% area cost
//   * bh_minpower_t_decomp vs minpower (II↔III, V↔VI):
//       paper: ~1.6% performance and ~1.6% power improvement
//   * pd-map vs ad-map (I↔IV, II↔V, III↔VI):
//       paper: ~22% average power improvement, ~12.4% area increase,
//       ~1.1% performance improvement

#include "bench_util.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

namespace {

struct Agg {
  RunningStats power;
  RunningStats area;
  RunningStats delay;
  void add(const FlowResult& base, const FlowResult& alt) {
    power.add(percent_change(base.power_uw, alt.power_uw));
    area.add(percent_change(base.area, alt.area));
    delay.add(percent_change(base.delay, alt.delay));
  }
  void print(const char* label) const {
    std::printf("%-34s power %+6.1f%%  area %+6.1f%%  delay %+6.1f%%\n",
                label, power.mean(), area.mean(), delay.mean());
  }
};

}  // namespace

int main() {
  const Library& lib = standard_library();
  Agg minpower_vs_conv;
  Agg bh_vs_minpower;
  Agg pd_vs_ad;

  for (const Network& net : prepared_suite()) {
    const auto rs = run_all_methods(net, lib);
    minpower_vs_conv.add(rs[0], rs[1]);  // I → II
    minpower_vs_conv.add(rs[3], rs[4]);  // IV → V
    bh_vs_minpower.add(rs[1], rs[2]);    // II → III
    bh_vs_minpower.add(rs[4], rs[5]);    // V → VI
    pd_vs_ad.add(rs[0], rs[3]);          // I → IV
    pd_vs_ad.add(rs[1], rs[4]);          // II → V
    pd_vs_ad.add(rs[2], rs[5]);          // III → VI
  }

  std::printf("Aggregate method comparisons over the 17-circuit suite "
              "(average %% change)\n");
  print_rule();
  minpower_vs_conv.print("minpower vs conventional decomp");
  bh_vs_minpower.print("bh-minpower vs minpower decomp");
  pd_vs_ad.print("pd-map vs ad-map");
  print_rule();
  std::printf("paper: minpower decomp ~-3.7%% power; bh ~-1.6%% power/delay; "
              "pd-map ~-22%% power, +12.4%% area, -1.1%% delay\n");
  return 0;
}
