// bench_flow — the instrumented six-method flow over the paper suite.
//
// Runs the FlowEngine (shared decompositions, worker pool) on every circuit
// of the 17-circuit suite and emits the machine-readable per-phase report
// BENCH_flow.json (schema minpower.flow.v1; see DESIGN.md), plus a
// human-readable summary table.
//
//   bench_flow [--append] [out.json] [max_circuits] [num_threads] [shards]
//
// Defaults: BENCH_flow.json, the full suite, hardware concurrency,
// in-process. max_circuits must be ≥ 1 (a prefix of the 17-circuit suite);
// num_threads must be a non-negative integer (0 = hardware concurrency).
// shards > 0 runs the crash-isolated multi-process supervisor instead of
// the in-process engine (DESIGN.md §14); the report is then rendered
// canonically (no metrics block, zeroed wall times).
// --append switches the output from the full report to one appended JSONL
// trajectory point (schema minpower.bench_trajectory.v1: suite size,
// threads, shards, wall ms, peak BDD nodes, degradations/failures), so
// repeated runs at different scales accumulate into a tracked scaling
// trajectory instead of overwriting each other.
// Set MINPOWER_TRACE=<file> to also record a Chrome trace of the run
// (chrome://tracing / ui.perfetto.dev); the JSON report always carries the
// metrics-registry snapshot in its `metrics` block (in-process runs only).

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_util.hpp"
#include "flow/flow_engine.hpp"
#include "shard/supervisor.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "trace/wire.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"

using namespace minpower;

namespace {

constexpr const char* kUsage =
    "usage: bench_flow [--append] [out.json] [max_circuits] [num_threads] "
    "[shards]\n"
    "  --append      append one JSONL trajectory point (schema\n"
    "                minpower.bench_trajectory.v1) to out.json instead of\n"
    "                writing the full minpower.flow.v1 report\n"
    "  out.json      report path (minpower.flow.v1; default BENCH_flow.json)\n"
    "  max_circuits  suite prefix to run, >= 1 (default: all 17)\n"
    "  num_threads   worker threads, 0 = hardware concurrency (default 0)\n"
    "  shards        fork N crash-isolated worker processes (default 0 =\n"
    "                in-process engine)\n"
    "env: MINPOWER_TRACE=<file> records a Chrome trace of the run\n";

/// Strict decimal parse: the whole argument must be digits (no sign, no
/// whitespace, no trailing garbage), unlike atoi which silently maps junk
/// to 0 and strtoull which accepts "-1" and " +5".
bool parse_u64(const char* arg, std::uint64_t* out) {
  if (arg[0] == '\0') return false;
  for (const char* p = arg; *p != '\0'; ++p)
    if (*p < '0' || *p > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (errno != 0 || end != arg + std::strlen(arg)) return false;
  *out = v;
  return true;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "bench_flow: %s\n%s", message.c_str(), kUsage);
  std::exit(1);
}

/// Count degraded/failed cells of a [circuit][method] result grid.
void count_states(const std::vector<std::vector<FlowResult>>& results,
                  std::uint64_t* degraded, std::uint64_t* failed) {
  for (const std::vector<FlowResult>& rs : results)
    for (const FlowResult& r : rs) {
      if (r.status.state == TaskState::kDegraded) ++*degraded;
      else if (r.status.state == TaskState::kFailed) ++*failed;
    }
}

/// Append one minpower.bench_trajectory.v1 JSONL point. Returns 0/1 as a
/// process exit code.
int append_trajectory(const std::string& path, std::size_t suite,
                      unsigned threads, unsigned shards, double wall_ms,
                      std::uint64_t peak_bdd_nodes, std::uint64_t degraded,
                      std::uint64_t failed) {
  std::ofstream out(path, std::ios::app);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  {
    JsonWriter w(out, /*pretty=*/false);
    w.begin_object();
    w.field("schema", "minpower.bench_trajectory.v1");
    w.field("suite", static_cast<unsigned long long>(suite));
    w.field("threads", threads);
    w.field("shards", shards);
    w.field("wall_ms", wall_ms);
    w.field("peak_bdd_nodes",
            static_cast<unsigned long long>(peak_bdd_nodes));
    w.field("degradations", static_cast<unsigned long long>(degraded));
    w.field("failures", static_cast<unsigned long long>(failed));
    w.end_object();
  }
  out << '\n';
  std::printf("appended trajectory point -> %s\n", path.c_str());
  return 0;
}

/// Largest bdd.unique_table_peak gauge in a snapshot (0 when absent).
std::uint64_t peak_nodes_of(const metrics::Snapshot& s) {
  for (const auto& [name, value] : s.gauges)
    if (name == "bdd.unique_table_peak") return value;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool append = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--append") == 0) {
      append = true;
      continue;
    }
    pos.push_back(argv[i]);
  }
  if (pos.size() > 4) usage_error("too many arguments");
  const std::string out_path = !pos.empty() ? pos[0] : "BENCH_flow.json";
  std::size_t max_circuits = SIZE_MAX;
  if (pos.size() > 1) {
    std::uint64_t v = 0;
    if (!parse_u64(pos[1], &v))
      usage_error(std::string("max_circuits must be a non-negative integer, "
                              "got '") +
                  pos[1] + "'");
    if (v == 0) usage_error("max_circuits must be >= 1");
    max_circuits = static_cast<std::size_t>(v);
  }
  unsigned threads = 0;
  if (pos.size() > 2) {
    std::uint64_t v = 0;
    if (!parse_u64(pos[2], &v) || v > 1u << 16)
      usage_error(std::string("num_threads must be an integer in [0, 65536], "
                              "got '") +
                  pos[2] + "'");
    threads = static_cast<unsigned>(v);
  }
  unsigned shards = 0;
  if (pos.size() > 3) {
    std::uint64_t v = 0;
    if (!parse_u64(pos[3], &v) || v > 1u << 10)
      usage_error(std::string("shards must be an integer in [0, 1024], "
                              "got '") +
                  pos[3] + "'");
    shards = static_cast<unsigned>(v);
  }

  std::vector<Network> suite = bench::prepared_suite();
  if (suite.size() > max_circuits) suite.resize(max_circuits);
  std::vector<const Network*> circuits;
  for (const Network& net : suite) circuits.push_back(&net);

  if (shards > 0) {
    shard::ShardOptions so;
    so.shards = shards;
    so.worker_threads = threads == 0 ? 1 : threads;
    shard::ShardRun run;
    std::string error;
    const auto s0 = std::chrono::steady_clock::now();
    if (!shard::run_sharded_suite(circuits, standard_library(), FlowOptions{}, so,
                           &run, &error)) {
      std::fprintf(stderr, "bench_flow: %s\n", error.c_str());
      return 1;
    }
    const double sharded_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - s0)
            .count();
    std::printf("shards: %u spawned, %u crashes, %u restarts; cells: %zu "
                "computed, %zu failed (%zu circuits × 6 methods), %.1f ms\n",
                run.stats.workers_spawned, run.stats.worker_crashes,
                run.stats.worker_restarts, run.stats.cells_computed,
                run.stats.cells_failed, circuits.size(), sharded_ms);
    if (append) {
      // Peak BDD nodes from the merged worker registries plus the
      // supervisor's own (prepare work runs pre-fork).
      std::vector<metrics::Snapshot> parts = run.worker_metrics;
      parts.push_back(metrics::Registry::global().snapshot());
      std::uint64_t degraded = 0;
      std::uint64_t failed = 0;
      count_states(run.per_circuit, &degraded, &failed);
      return append_trajectory(out_path, circuits.size(), so.worker_threads,
                               shards, sharded_ms,
                               peak_nodes_of(trace::merge_snapshots(parts)),
                               degraded, failed);
    }
    std::ofstream out(out_path);
    if (!out.good()) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    shard::write_sharded_flow_json(out, run, shards, standard_library().name());
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  EngineOptions eo;
  eo.num_threads = threads;
  FlowEngine engine(standard_library(), eo);

  const char* trace_path = std::getenv("MINPOWER_TRACE");
  if (trace_path != nullptr && trace_path[0] != '\0')
    trace::set_enabled(true);

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::vector<FlowResult>> results =
      engine.run_suite(circuits);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (trace::enabled()) {
    trace::set_enabled(false);
    std::ofstream tos(trace_path);
    if (!tos.good()) {
      std::fprintf(stderr, "cannot open %s\n", trace_path);
      return 1;
    }
    trace::write_chrome_trace(tos);
    std::printf("trace: %zu events -> %s\n", trace::num_events(), trace_path);
  }

  std::printf("%-8s %-6s %8s %8s %10s %7s %9s %9s %9s\n", "circuit", "method",
              "area", "delay", "power", "gates", "decomp_ms", "activ_ms",
              "map_ms");
  bench::print_rule(86);
  RunningStats map_ms;
  for (const std::vector<FlowResult>& rs : results)
    for (const FlowResult& r : rs) {
      std::printf("%-8s %-6s %8.0f %8.2f %10.1f %7zu %9.2f %9.2f %9.2f\n",
                  r.circuit.c_str(), method_name(r.method), r.area, r.delay,
                  r.power_uw, r.gates, r.phases.decomp_ms,
                  r.phases.activity_ms, r.phases.map_ms);
      map_ms.add(r.phases.map_ms);
    }
  bench::print_rule(86);
  std::printf("engine: %d decompositions, %d activity passes, %d mappings "
              "(%zu circuits × 6 methods), %u thread(s)\n",
              engine.counters().decomp_passes,
              engine.counters().activity_passes, engine.counters().map_passes,
              circuits.size(), engine.effective_threads());
  std::printf("map phase: mean %.2f ms, max %.2f ms; total wall %.1f ms\n",
              map_ms.mean(), map_ms.max(), elapsed_ms);

  if (append) {
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    count_states(results, &degraded, &failed);
    return append_trajectory(
        out_path, circuits.size(), engine.effective_threads(), /*shards=*/0,
        elapsed_ms, peak_nodes_of(metrics::Registry::global().snapshot()),
        degraded, failed);
  }

  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  write_flow_json(out, results, engine.counters(), engine.effective_threads(),
                  elapsed_ms, standard_library().name());
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
