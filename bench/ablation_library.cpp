// Ablation H: library richness. The paper's mapper saves power by hiding
// high-activity nodes *inside* complex gates where they drive only internal
// (unmodeled) capacitance. That only works if the library has complex gates
// to hide them in. This harness maps the suite against three nested
// libraries:
//   minimal  — {inv, nand2} (every subject net stays exposed)
//   simple   — + nand3/4, nor2/3/4 (small clusters can hide)
//   full     — the lib2-like library with AND/OR/AOI/OAI/XOR rows
// and reports power and area of Method V under each.

#include "bench_util.hpp"
#include "decomp/network_decompose.hpp"
#include "power/report.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

namespace {

const char kMinimalGenlib[] = R"(
GATE inv1   1.0  O=!a;        PIN a INV 1.0 999 0.40 0.45 0.40 0.45
GATE nand2  2.0  O=!(a*b);    PIN * INV 1.0 999 0.50 0.50 0.50 0.50
)";

const char kSimpleGenlib[] = R"(
GATE inv1   1.0  O=!a;        PIN a INV 1.0 999 0.40 0.45 0.40 0.45
GATE inv2   2.0  O=!a;        PIN a INV 2.0 999 0.32 0.22 0.32 0.22
GATE nand2  2.0  O=!(a*b);    PIN * INV 1.0 999 0.50 0.50 0.50 0.50
GATE nand3  3.0  O=!(a*b*c);  PIN * INV 1.1 999 0.72 0.58 0.72 0.58
GATE nand4  4.0  O=!(a*b*c*d); PIN * INV 1.2 999 0.94 0.66 0.94 0.66
GATE nor2   2.0  O=!(a+b);    PIN * INV 1.0 999 0.58 0.58 0.58 0.58
GATE nor3   3.0  O=!(a+b+c);  PIN * INV 1.1 999 0.86 0.70 0.86 0.70
GATE nor4   4.0  O=!(a+b+c+d); PIN * INV 1.2 999 1.14 0.82 1.14 0.82
)";

struct Row {
  double power = 0.0;
  double area = 0.0;
  std::size_t gates = 0;
};

Row score(const Network& subject, const Library& lib) {
  MapOptions m;
  m.objective = MapObjective::kPower;
  const MapResult r = map_network(subject, lib, m);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(m));
  return {rep.power_uw, rep.area, rep.num_gates};
}

}  // namespace

int main() {
  const Library minimal = Library::parse_genlib(kMinimalGenlib, "minimal");
  const Library simple = Library::parse_genlib(kSimpleGenlib, "simple");
  const Library& full = standard_library();

  std::printf("Ablation — library richness under pd-map (Method V "
              "decomposition)\n");
  print_rule(84);
  std::printf("%-8s | %9s %7s | %9s %7s | %9s %7s\n", "circuit", "min uW",
              "area", "simp uW", "area", "full uW", "area");
  print_rule(84);
  GeoMean simple_vs_min;
  GeoMean full_vs_min;
  for (const Network& net : prepared_suite()) {
    if (net.num_internal() == 0) continue;
    NetworkDecompOptions d;
    d.algorithm = DecompAlgorithm::kMinPower;
    const Network subject = decompose_network(net, d).network;
    const Row a = score(subject, minimal);
    const Row b = score(subject, simple);
    const Row c = score(subject, full);
    simple_vs_min.add(b.power / a.power);
    full_vs_min.add(c.power / a.power);
    std::printf("%-8s | %9.1f %7.0f | %9.1f %7.0f | %9.1f %7.0f\n",
                net.name().c_str(), a.power, a.area, b.power, b.area, c.power,
                c.area);
  }
  print_rule(84);
  std::printf("geometric-mean power vs minimal library: simple %.3f, "
              "full %.3f\n",
              simple_vs_min.value(), full_vs_min.value());
  std::printf("every step of gate variety hides more subject nets — the "
              "mechanism behind the paper's pd-map gains\n");
  return 0;
}
