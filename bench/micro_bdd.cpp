// Micro-benchmarks: the probability substrate — global BDD construction and
// the Eq. 2 linear probability traversal on suite circuits.

#include <benchmark/benchmark.h>

#include "benchgen/benchgen.hpp"
#include "flow/flow.hpp"
#include "prob/probability.hpp"

using namespace minpower;

namespace {

Network circuit(const std::string& name) {
  Network net = make_benchmark(name);
  prepare_network(net);
  return net;
}

void BM_NetworkBddBuild(benchmark::State& state) {
  const Network net = circuit(state.range(0) == 0 ? "x2" : "s510");
  for (auto _ : state) {
    BddManager mgr;
    benchmark::DoNotOptimize(NetworkBdds(mgr, net));
  }
}
BENCHMARK(BM_NetworkBddBuild)->Arg(0)->Arg(1);

void BM_SignalProbabilities(benchmark::State& state) {
  const Network net = circuit(state.range(0) == 0 ? "x2" : "s510");
  for (auto _ : state)
    benchmark::DoNotOptimize(signal_probabilities(net));
}
BENCHMARK(BM_SignalProbabilities)->Arg(0)->Arg(1);

void BM_EquivalenceCheck(benchmark::State& state) {
  const Network net = circuit("s344");
  const Network copy = net.duplicate();
  for (auto _ : state)
    benchmark::DoNotOptimize(networks_equivalent(net, copy));
}
BENCHMARK(BM_EquivalenceCheck);

void BM_FullMethodV(benchmark::State& state) {
  const Network net = circuit("x2");
  for (auto _ : state)
    benchmark::DoNotOptimize(run_method(net, Method::kV, standard_library()));
}
BENCHMARK(BM_FullMethodV);

}  // namespace

BENCHMARK_MAIN();
