// Reproduces Table 3: power-delay mapping (this paper's mapper) under the
// three decomposition schemes.
//   Method IV — conventional (balanced) decomposition
//   Method V  — MINPOWER decomposition
//   Method VI — BOUNDED-HEIGHT MINPOWER decomposition

#include "bench_util.hpp"

using namespace minpower;
using namespace minpower::bench;

int main() {
  const Library& lib = standard_library();
  print_method_header(
      "Table 3 — pd-map with {conventional | minpower | bh-minpower} "
      "decomposition",
      "IV", "V", "VI");
  for (const Network& net : prepared_suite()) {
    const FlowResult r4 = run_method(net, Method::kIV, lib);
    const FlowResult r5 = run_method(net, Method::kV, lib);
    const FlowResult r6 = run_method(net, Method::kVI, lib);
    print_method_row(r4, r5, r6);
  }
  print_rule();
  return 0;
}
