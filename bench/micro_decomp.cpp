// Micro-benchmarks: algorithmic scaling of the tree-construction kernels
// (Huffman O(n log n), Modified Huffman O(n² log n), bounded-height
// greedy family, exact package-merge O(nL)).

#include <benchmark/benchmark.h>

#include "decomp/huffman.hpp"
#include "decomp/package_merge.hpp"
#include "decomp/transition_model.hpp"
#include "util/rng.hpp"

using namespace minpower;

namespace {

std::vector<double> probs(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> p(static_cast<std::size_t>(n));
  for (double& x : p) x = rng.uniform(0.05, 0.95);
  return p;
}

void BM_Huffman(benchmark::State& state) {
  const auto p = probs(static_cast<int>(state.range(0)), 1);
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  for (auto _ : state)
    benchmark::DoNotOptimize(huffman_tree(p, model));
}
BENCHMARK(BM_Huffman)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ModifiedHuffman(benchmark::State& state) {
  const auto p = probs(static_cast<int>(state.range(0)), 2);
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  for (auto _ : state)
    benchmark::DoNotOptimize(modified_huffman_tree(p, model));
}
BENCHMARK(BM_ModifiedHuffman)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BoundedHeightMinpower(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto p = probs(n, 3);
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  const int bound = balanced_height(n) + 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(bounded_height_minpower_tree(p, bound, model));
}
BENCHMARK(BM_BoundedHeightMinpower)->Arg(8)->Arg(16)->Arg(24);

void BM_PackageMergeMinsum(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto p = probs(n, 4);
  const int bound = balanced_height(n) + 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(length_limited_levels(p, bound));
}
BENCHMARK(BM_PackageMergeMinsum)->Arg(8)->Arg(32)->Arg(64);

void BM_ExhaustiveOracle(benchmark::State& state) {
  const auto p = probs(static_cast<int>(state.range(0)), 5);
  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  for (auto _ : state)
    benchmark::DoNotOptimize(best_tree_exhaustive(p, model));
}
BENCHMARK(BM_ExhaustiveOracle)->Arg(4)->Arg(6)->Arg(7);

void BM_TransitionModifiedHuffman(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  std::vector<SignalTransition> s;
  for (int i = 0; i < n; ++i)
    s.push_back(SignalTransition::independent(rng.uniform(0.1, 0.9)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        modified_huffman_transitions(s, GateType::kAnd));
}
BENCHMARK(BM_TransitionModifiedHuffman)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
