// Reproduces Table 1: fraction of trials where the Modified Huffman
// algorithm (Algorithm 2.2) finds the optimal static AND decomposition,
// measured against exhaustive enumeration of all binary trees.
//
// Paper setup (Sec. 4): static AND-gate decomposition of a complex node,
// uncorrelated random input probabilities, 500 patterns per input count.
// Paper numbers: n=3:100%, 4:96%, 5:93%, 6:88% (avg ≈ 94%).

#include <cstdio>

#include "decomp/huffman.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace minpower;

int main() {
  std::printf("Table 1 — Modified Huffman optimality rate "
              "(static AND decomposition)\n");
  std::printf("%-18s %-28s\n", "numbers of input", "%% of getting optimal result");
  std::printf("------------------------------------------------\n");

  const DecompModel model(GateType::kAnd, CircuitStyle::kStatic);
  const int kPatterns = 500;
  RunningStats overall;
  for (int n = 3; n <= 6; ++n) {
    Rng rng(0x7ab1e1ULL * static_cast<std::uint64_t>(n));
    int optimal = 0;
    for (int trial = 0; trial < kPatterns; ++trial) {
      std::vector<double> p(static_cast<std::size_t>(n));
      for (double& x : p) x = rng.uniform(0.0, 1.0);
      const double cm =
          modified_huffman_tree(p, model).internal_cost(model, p);
      const double co = best_tree_exhaustive(p, model).internal_cost(model, p);
      if (cm <= co + 1e-9) ++optimal;
    }
    const double rate = 100.0 * optimal / kPatterns;
    overall.add(rate);
    std::printf("%-18d %.1f\n", n, rate);
  }
  std::printf("------------------------------------------------\n");
  std::printf("average: %.1f%%   (paper: 100 / 96 / 93 / 88, avg ~94%%)\n",
              overall.mean());
  return 0;
}
