// Ablation E (Sec. 5 future work): power-aware common-subexpression
// extraction in the technology-independent phase. Two-level PLA-style
// circuits share many literal pairs, so the extractor has real choices;
// we compare the count-greedy extractor against the activity-penalized one
// (score = occurrences − 2 − β·E(divisor)), both followed by Method V, and
// report the mapped power.

#include "bench_util.hpp"
#include "benchgen/benchgen.hpp"
#include "opt/optimize.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

int main() {
  const Library& lib = standard_library();
  std::printf("Ablation — power-aware extraction on PLA-style circuits, "
              "Method V end power\n");
  print_rule();
  std::printf("%-8s %6s %6s | %12s %12s %8s\n", "circuit", "std#", "pw#",
              "std (uW)", "pw (uW)", "ratio");
  print_rule();
  GeoMean ratio;
  for (int i = 0; i < 10; ++i) {
    PlaProfile p;
    p.name = "pla" + std::to_string(i);
    p.num_pi = 10 + (i % 3) * 2;
    p.num_outputs = 8;
    p.cubes_per_output = 6;
    p.literal_density = 0.45;
    p.seed = 1000 + static_cast<std::uint64_t>(i);

    Network std_net = generate_pla(p);
    Network pw_net = std_net.duplicate();
    const int std_div = extract_cube_divisors(std_net);
    PowerOptOptions po;
    const int pw_div = extract_cube_divisors_power(pw_net, po);
    std_net.sweep();
    pw_net.sweep();
    quick_decompose(std_net);
    quick_decompose(pw_net);
    if (std_net.num_internal() == 0 || pw_net.num_internal() == 0) continue;

    const FlowResult a = run_method(std_net, Method::kV, lib);
    const FlowResult b = run_method(pw_net, Method::kV, lib);
    ratio.add(b.power_uw / a.power_uw);
    std::printf("%-8s %6d %6d | %12.1f %12.1f %8.3f\n", p.name.c_str(),
                std_div, pw_div, a.power_uw, b.power_uw,
                b.power_uw / a.power_uw);
  }
  print_rule();
  std::printf("geometric-mean power ratio (power-aware / count-greedy): "
              "%.3f\n",
              ratio.value());
  return 0;
}
