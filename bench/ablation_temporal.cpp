// Ablation F (Sec. 1.4 / Sec. 2.1.2): the temporal-independence assumption.
// The paper's algorithms use Eq. 3 (present value independent of previous
// value ⇒ activity = 2p(1−p)); its Eqs. 10/11 are the general
// transition-probability merge. Real inputs are often slow (a bus that
// holds its value, an enable that rarely toggles): p = 0.5 but activity ≪
// 0.5. This harness decomposes AND nodes whose inputs have random
// probabilities AND random (feasible) activities, with
//   (a) the collapsed static model (marginals only), and
//   (b) the full transition-state Modified Huffman (Eqs. 10/11),
// scoring both trees under the true lag-one model.

#include <cstdio>

#include "decomp/huffman.hpp"
#include "decomp/transition_model.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace minpower;

int main() {
  std::printf("Ablation — temporal-independence collapse vs full Eq. 10/11 "
              "merge (static AND decomposition)\n");
  std::printf("%-8s %-14s %-14s %-10s\n", "inputs", "collapsed", "transition",
              "ratio");
  std::printf("--------------------------------------------------\n");
  Rng rng(0x7e4b0ULL);
  for (int n = 4; n <= 8; ++n) {
    RunningStats ratio;
    for (int trial = 0; trial < 300; ++trial) {
      std::vector<SignalTransition> states;
      std::vector<double> marginals;
      for (int i = 0; i < n; ++i) {
        const double p = rng.uniform(0.1, 0.9);
        // Mix of fast and slow signals: half the inputs get a small
        // fraction of their maximum feasible activity.
        const double amax = 2.0 * std::min(p, 1.0 - p);
        const double act =
            rng.coin() ? rng.uniform(0.8 * amax, amax)
                       : rng.uniform(0.01 * amax, 0.2 * amax);
        states.push_back(
            SignalTransition::from(PiTemporalModel::with_activity(p, act)));
        marginals.push_back(p);
      }
      const DecompModel collapsed(GateType::kAnd, CircuitStyle::kStatic);
      const DecompTree t_marg = modified_huffman_tree(marginals, collapsed);
      const DecompTree t_full =
          modified_huffman_transitions(states, GateType::kAnd);
      const double c_marg =
          tree_transition_activity(t_marg, states, GateType::kAnd);
      const double c_full =
          tree_transition_activity(t_full, states, GateType::kAnd);
      if (c_marg > 0.0) ratio.add(c_full / c_marg);
    }
    std::printf("%-8d %-14s %-14s %10.3f\n", n, "1.000", "(ratio)",
                ratio.mean());
  }
  std::printf("--------------------------------------------------\n");
  std::printf("ratio < 1: the full transition model finds lower-activity "
              "trees when input\nactivities decouple from their "
              "probabilities (slow control signals)\n");
  return 0;
}
