// Ablation G: post-mapping gate resizing. The mapper picks gate shapes;
// drive-strength selection within a cell family is a classic power-recovery
// post-pass. Map each circuit for minimum delay (maximum headroom for the
// resizer), then downsize with the starting arrival times frozen — every
// recovered µW is free: same function, same delay bound.

#include "bench_util.hpp"
#include "decomp/network_decompose.hpp"
#include "power/resize.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

int main() {
  const Library& lib = standard_library();
  std::printf("Ablation — slack-driven gate downsizing after min-delay "
              "mapping\n");
  print_rule();
  std::printf("%-8s %7s | %10s %10s %8s | %8s %8s\n", "circuit", "swaps",
              "before uW", "after uW", "ratio", "delay0", "delay1");
  print_rule();
  GeoMean ratio;
  for (const Network& net : prepared_suite()) {
    if (net.num_internal() == 0) continue;
    NetworkDecompOptions d;
    d.algorithm = DecompAlgorithm::kMinPower;
    const Network subject = decompose_network(net, d).network;
    MapOptions m;
    m.objective = MapObjective::kPower;
    m.policy = RequiredTimePolicy::kMinDelay;
    MapResult r = map_network(subject, lib, m);

    ResizeOptions o;
    o.power = PowerParams::from(m);
    const ResizeResult res = downsize_gates(r.mapped, o);
    if (res.power_before <= 0.0) continue;
    ratio.add(res.power_after / res.power_before);
    std::printf("%-8s %7d | %10.1f %10.1f %8.3f | %8.2f %8.2f\n",
                net.name().c_str(), res.swaps, res.power_before,
                res.power_after, res.power_after / res.power_before,
                res.delay_before, res.delay_after);
  }
  print_rule();
  std::printf("geometric-mean power after/before: %.3f (timing frozen at "
              "the pre-resize arrivals)\n",
              ratio.value());
  return 0;
}
