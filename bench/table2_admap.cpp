// Reproduces Table 2: area-delay mapping (the Chaudhary–Pedram baseline)
// under the three decomposition schemes.
//   Method I   — conventional (balanced) decomposition
//   Method II  — MINPOWER decomposition
//   Method III — BOUNDED-HEIGHT MINPOWER decomposition
// Columns per method: gate area, delay (ns), average power (µW) at 20 MHz,
// Vdd = 5 V, static CMOS, independent inputs with probability 0.5.

#include "bench_util.hpp"

using namespace minpower;
using namespace minpower::bench;

int main() {
  const Library& lib = standard_library();
  print_method_header(
      "Table 2 — ad-map with {conventional | minpower | bh-minpower} "
      "decomposition",
      "I", "II", "III");
  for (const Network& net : prepared_suite()) {
    const FlowResult r1 = run_method(net, Method::kI, lib);
    const FlowResult r2 = run_method(net, Method::kII, lib);
    const FlowResult r3 = run_method(net, Method::kIII, lib);
    print_method_row(r1, r2, r3);
  }
  print_rule();
  return 0;
}
