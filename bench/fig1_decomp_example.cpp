// Reproduces Figure 1 and its footnote: the 4-input AND decomposition
// example with P(a)=0.3, P(b)=0.4, P(c)=0.7, P(d)=0.5 under p-type domino
// logic.
//   * SR(A) = 2.146 for configuration A = ((a·b)·c)·d
//   * SR(B) = 2.412 for configuration B = (a·b)·(c·d)
//   * footnote 1: with a library of 2- and 3-input AND gates (no AND4), the
//     minimum-power mapping has value 2.026 and comes from configuration A.

#include <cstdio>

#include "decomp/huffman.hpp"
#include "decomp/network_decompose.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"

using namespace minpower;

namespace {

double config_cost(const std::vector<int>& merge_order,
                   const std::vector<double>& p) {
  // merge_order lists node pairs in creation order over ids 0..3 then 4...
  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  DecompTree t;
  t.num_leaves = 4;
  for (int i = 0; i < 4; ++i) {
    DecompTree::TNode leaf;
    leaf.leaf = i;
    t.nodes.push_back(leaf);
  }
  for (std::size_t i = 0; i + 1 < merge_order.size(); i += 2) {
    DecompTree::TNode n;
    n.left = merge_order[i];
    n.right = merge_order[i + 1];
    t.nodes.push_back(n);
  }
  t.root = static_cast<int>(t.nodes.size()) - 1;
  double leaves = 0.0;
  for (double x : p) leaves += x;  // leaf activity (dynamic p: E = p)
  return t.internal_cost(model, p) + leaves;
}

}  // namespace

int main() {
  const std::vector<double> p{0.3, 0.4, 0.7, 0.5};

  std::printf("Figure 1 — effect of decomposition on total switching "
              "activity (p-type domino)\n\n");
  const double sr_a = config_cost({0, 1, 4, 2, 5, 3}, p);
  const double sr_b = config_cost({0, 1, 2, 3, 4, 5}, p);
  std::printf("SR(A) = %.3f   (paper: 2.146)\n", sr_a);
  std::printf("SR(B) = %.3f   (paper: 2.412)\n", sr_b);

  const DecompModel model(GateType::kAnd, CircuitStyle::kDynamicP);
  const DecompTree h = huffman_tree(p, model);
  double leaves = 0.0;
  for (double x : p) leaves += x;
  std::printf("Huffman (Algorithm 2.1): SR = %.3f (<= SR(A): the figure "
              "compares two configurations;\n"
              "  the Huffman tree is the provable optimum, Theorem 2.2)\n\n",
              h.internal_cost(model, p) + leaves);

  // Footnote 1: map the AND4 over a {AND2, AND3} library and measure total
  // switching activity of all exposed nets (leaves + mapped gate outputs).
  // Unit caps and normalized voltage/clock make reported µW equal raw
  // activity sums.
  const std::string genlib =
      "GATE and2 1.0 O=a*b;   PIN * NONINV 1.0 999 1.0 0.0 1.0 0.0\n"
      "GATE and3 1.0 O=a*b*c; PIN * NONINV 1.0 999 1.0 0.0 1.0 0.0\n"
      "GATE inv  1.0 O=!a;    PIN * INV    1.0 999 1.0 0.0 1.0 0.0\n"
      "GATE nand2 1.0 O=!(a*b); PIN * INV  1.0 999 1.0 0.0 1.0 0.0\n";
  const Library lib = Library::parse_genlib(genlib, "fig1");

  // Subject graph: the AND4 as AND2/INV (via the generic NAND decomposition
  // of the single-cube cover with MINPOWER shapes).
  Network net("fig1");
  std::vector<NodeId> pis;
  for (const char* name : {"a", "b", "c", "d"}) pis.push_back(net.add_pi(name));
  Cover and4{{Cube::literal(0, true) & Cube::literal(1, true) &
              Cube::literal(2, true) & Cube::literal(3, true)}};
  const NodeDecomp plan =
      decompose_node(and4, p, CircuitStyle::kDynamicP, DecompAlgorithm::kMinPower);
  net.add_po("f", emit_node_decomp(net, pis, and4, plan));
  net.sweep();

  MapOptions o;
  o.objective = MapObjective::kPower;
  o.style = CircuitStyle::kDynamicP;
  o.policy = RequiredTimePolicy::kUnconstrained;
  o.vdd = 1.0;
  o.t_cycle = 5e-9;  // makes load_power_uw(1, E) == E exactly
  o.po_load = 1.0;
  o.pi_prob1 = p;
  const MapResult r = map_network(net, lib, o);
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(o));
  std::printf("Footnote 1 — min-power mapping with {AND2, AND3} library:\n");
  std::printf("  mapped gates: %zu, total switching value = %.3f "
              "(paper: 2.026)\n",
              rep.num_gates, rep.power_uw);
  for (const MappedGateInst& g : r.mapped.gates)
    std::printf("    %s\n", g.gate->name.c_str());

  // The paper's 2.026 is the best mapping of configuration A:
  // AND3(a,b,c) exposes P(abc)=0.084, then AND2(·,d) exposes the root
  // 0.042, plus the leaves (1.9). Our mapper starts from the Huffman tree
  // ((a·b)·d)·c and finds 1.9 + P(abd)=0.06 + 0.042 = 2.002 — strictly
  // better; the footnote's value is reproduced analytically:
  const double config_a_best = 1.9 + 0.3 * 0.4 * 0.7 + 0.3 * 0.4 * 0.7 * 0.5;
  std::printf("  configuration-A best mapping (paper's footnote): %.3f\n",
              config_a_best);
  return 0;
}
