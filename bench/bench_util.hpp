#pragma once
// Shared helpers for the table-reproduction harnesses.

#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "flow/flow.hpp"
#include "library/library.hpp"

namespace minpower::bench {

/// Prepared copies of the 17-circuit suite (rugged-lite applied once).
inline std::vector<Network> prepared_suite() {
  std::vector<Network> nets;
  for (const BenchProfile& p : paper_suite()) {
    Network net = generate_benchmark(p);
    prepare_network(net);
    nets.push_back(std::move(net));
  }
  return nets;
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_method_header(const char* title, const char* m1,
                                const char* m2, const char* m3) {
  std::printf("%s\n", title);
  print_rule();
  std::printf("%-8s", "circuit");
  for (const char* m : {m1, m2, m3})
    std::printf(" | %5s %6s %8s", "area", "delay", (std::string(m) + " pwr").c_str());
  std::printf("\n");
  print_rule();
}

inline void print_method_row(const FlowResult& a, const FlowResult& b,
                             const FlowResult& c) {
  std::printf("%-8s", a.circuit.c_str());
  for (const FlowResult* r : {&a, &b, &c})
    std::printf(" | %5.0f %6.2f %8.1f", r->area, r->delay, r->power_uw);
  std::printf("\n");
}

}  // namespace minpower::bench
