// Ablation A (Sec. 3.1): Method 1 vs Method 2 power accounting inside the
// power-delay mapper. The paper argues Method 1 is more accurate (the
// node's own load is unknown during postorder) and models multi-fanout
// correctly (the fanout-edge power must not be divided); it therefore
// adopts Method 1. This harness measures the end power of both on the
// suite.

#include "bench_util.hpp"
#include "power/report.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

namespace {

double run_with_accounting(const Network& prepared, PowerAccounting acc,
                           const Library& lib) {
  NetworkDecompOptions d;
  d.algorithm = DecompAlgorithm::kMinPower;
  const NetworkDecompResult nd = decompose_network(prepared, d);
  MapOptions m;
  m.objective = MapObjective::kPower;
  m.accounting = acc;
  const MapResult r = map_network(nd.network, lib, m);
  return evaluate_mapped(r.mapped, PowerParams::from(m)).power_uw;
}

}  // namespace

int main() {
  const Library& lib = standard_library();
  std::printf("Ablation — power accounting during pd-map curve "
              "construction\n");
  print_rule();
  std::printf("%-8s %12s %12s %10s\n", "circuit", "Method1(uW)", "Method2(uW)",
              "M2/M1");
  print_rule();
  RunningStats ratio;
  for (const Network& net : prepared_suite()) {
    const double m1 = run_with_accounting(net, PowerAccounting::kMethod1, lib);
    const double m2 = run_with_accounting(net, PowerAccounting::kMethod2, lib);
    ratio.add(m2 / m1);
    std::printf("%-8s %12.1f %12.1f %10.3f\n", net.name().c_str(), m1, m2,
                m2 / m1);
  }
  print_rule();
  std::printf("mean Method2/Method1 power ratio: %.3f "
              "(paper adopts Method 1 as the more accurate model)\n",
              ratio.mean());
  return 0;
}
