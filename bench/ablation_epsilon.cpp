// Ablation B (Sec. 3.2.1): ε-pruning of power-delay curves. Points closer
// than ε in arrival are merged "without any noticeable impact on the
// quality of the result". This harness sweeps ε and reports total curve
// points (memory/runtime proxy) and final power (quality).

#include <chrono>

#include "bench_util.hpp"
#include "power/report.hpp"
#include "util/stats.hpp"

using namespace minpower;
using namespace minpower::bench;

int main() {
  const Library& lib = standard_library();
  // ε = 0 keeps every non-inferior point: on the largest circuits the
  // curves (and the quadratic insert cost) explode, which is precisely the
  // paper's motivation for pruning — the sweep starts at a tiny ε instead.
  const double epsilons[] = {0.005, 0.01, 0.02, 0.05, 0.2, 1.0};

  std::printf("Ablation — curve ε-pruning (time axis, ns)\n");
  print_rule();
  std::printf("%-8s %12s %14s %12s\n", "epsilon", "curve pts", "power (uW sum)",
              "time (ms)");
  print_rule();

  const auto suite = prepared_suite();
  // Decompose once per circuit; ε only affects mapping.
  std::vector<Network> subjects;
  for (const Network& net : suite) {
    NetworkDecompOptions d;
    d.algorithm = DecompAlgorithm::kMinPower;
    subjects.push_back(decompose_network(net, d).network);
  }

  for (double eps : epsilons) {
    std::size_t points = 0;
    double power = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (const Network& s : subjects) {
      MapOptions m;
      m.objective = MapObjective::kPower;
      m.epsilon_t = eps;
      const MapResult r = map_network(s, lib, m);
      points += r.total_curve_points;
      power += evaluate_mapped(r.mapped, PowerParams::from(m)).power_uw;
    }
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::printf("%-8.3f %12zu %14.1f %12lld\n", eps, points, power,
                static_cast<long long>(ms));
  }
  print_rule();
  std::printf("expected shape: curve points (and runtime) shrink rapidly "
              "with eps while power stays nearly flat\n");
  return 0;
}
