// minpower — command-line driver for the low-power synthesis library.
//
//   minpower stats  <in.blif>                      network statistics
//   minpower opt    <in.blif> [-o out.blif] [--power]
//                                                  rugged-lite optimization
//   minpower decomp <in.blif> [-o out.blif] [-a balanced|minpower]
//                   [--bounded] [--style static|dynp|dynn]
//                                                  NAND decomposition
//   minpower map    <in.blif> [-o mapped.blif] [-O power|area]
//                   [--genlib lib.genlib] [--relax F] [--sim]
//                                                  full flow + mapping report
//   minpower flow   <in.blif>... [--genlib lib.genlib] [--threads N]
//                   [--json out.json] [--deadline-ms T] [--bdd-limit N]
//                   [--trace out.trace.json] [--metrics-out F] [--verbose]
//                   [--shards N] [--journal F] [--resume F]
//                   [--shard-retries N] [--backoff-ms T]
//                   [--heartbeat-ms T] [--heartbeat-timeout-ms T]
//                   [--mem-limit-mb N] [--map-curve-cap N]
//                                                  run Methods I–VI per circuit,
//                                                  print table (+ JSON, + Chrome
//                                                  trace for chrome://tracing).
//                                                  --shards forks crash-isolated
//                                                  worker processes (DESIGN.md
//                                                  §14); --journal logs each
//                                                  completed cell, --resume
//                                                  skips cells already in a
//                                                  journal. With --shards,
//                                                  --trace merges one pid lane
//                                                  per worker plus supervisor
//                                                  lifecycle instants, and
//                                                  --metrics-out writes the
//                                                  folded worker registries
//                                                  (DESIGN.md §15)
//   minpower verify [--seed N] [--count N] [--json out.json]
//                                                  differential verification
//                                                  harness (seeded oracles)
//   minpower verify <a.blif> <b.blif>              combinational equivalence
//   minpower bench  <name> [-o out.blif]           emit a suite circuit
//   minpower profile <trace.json> [--json out.json] [--top N]
//                                                  trace profiler: hotspots,
//                                                  thread utilization,
//                                                  critical path
//                                                  (minpower.profile.v1)
//   minpower compare <baseline.json> <candidate.json>
//                   [--json out.json] [--qor-rel-tol X] [--qor-abs-tol X]
//                   [--time-band F] [--require-all] [--qor-only]
//                                                  QoR/perf regression gate
//                                                  over two minpower.flow.v1
//                                                  reports
//                                                  (minpower.compare.v1)
//   minpower trend  <traj.jsonl>... [--baseline ref.jsonl] [--json out.json]
//                   [--time-band F] [--mem-band F] [--slope-band F]
//                                                  scale-trajectory gate:
//                                                  fits per-family log-log
//                                                  slopes of wall time /
//                                                  peak RSS / peak BDD bytes
//                                                  vs gates over
//                                                  minpower.bench_trajectory
//                                                  .v1 points (bench_flow
//                                                  --scale/--append), and
//                                                  with --baseline enforces
//                                                  per-point ratio bands and
//                                                  slope bands
//                                                  (minpower.trend.v1)
//   minpower serve  [--port N] [--host H] [--workers N] [--deadline-ms T]
//                   [--bdd-limit N] [--idle-timeout-ms T]
//                   [--genlib lib.genlib] [--verbose]
//                   [--access-log log.jsonl]
//                                                  persistent synthesis
//                                                  service with cross-request
//                                                  caching (port 0 =
//                                                  ephemeral; the bound port
//                                                  is printed on stdout).
//                                                  SIGTERM/SIGINT drain
//                                                  gracefully: in-flight
//                                                  requests finish, stats are
//                                                  flushed to stderr.
//                                                  --access-log appends one
//                                                  JSONL object per request;
//                                                  the METRICS verb answers
//                                                  Prometheus exposition
//   minpower client --port N [--host H] <in.blif>... [--json out.json]
//                   [--deadline-ms T] [--bdd-limit N] [--stats] [--shutdown]
//                   [--retries N] [--retry-ms T] [--timeout-ms T]
//                                                  submit circuits to a
//                                                  running server; responses
//                                                  are merged into one
//                                                  minpower.flow.v1 document.
//                                                  --retries adds capped
//                                                  jittered backoff on refused
//                                                  connections and retryable
//                                                  (busy/draining) errors
//
// Every subcommand reads plain BLIF; `map -o` writes the SIS .gate dialect.
//
// Exit codes: 0 = success; 2 = completed with partial/degraded results
// (some flow tasks degraded or failed, or verification found failures);
// 3 = `compare` or `trend` found a regression; 1 = fatal error (bad usage,
// unreadable input, internal error).

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "decomp/network_decompose.hpp"
#include "flow/flow.hpp"
#include "flow/flow_engine.hpp"
#include "io/blif.hpp"
#include "io/mapped_blif.hpp"
#include "map/mapper.hpp"
#include "opt/optimize.hpp"
#include "power/report.hpp"
#include "power/resize.hpp"
#include "power/simulate.hpp"
#include "prob/sequential.hpp"
#include "report/baseline.hpp"
#include "report/trend.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "shard/supervisor.hpp"
#include "sop/factor.hpp"
#include "util/budget.hpp"
#include "trace/analysis.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/json_reader.hpp"
#include "util/json_writer.hpp"
#include "util/strings.hpp"
#include "verify/verify.hpp"

using namespace minpower;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::optional<std::string> out;
  std::optional<std::string> genlib;
  std::string algorithm = "minpower";
  std::string objective = "power";
  std::string style = "static";
  bool bounded = false;
  bool power_opt = false;
  bool simulate = false;
  bool resize = false;
  bool sequential = false;
  double relax = 1.15;
  unsigned threads = 1;
  std::optional<std::string> json;
  std::uint64_t seed = 1;
  int count = 200;
  double deadline_ms = 0.0;
  std::size_t bdd_limit = 0;  // 0 → library default
  std::optional<std::string> trace;
  std::optional<std::string> metrics_out;  // flow: metrics sidecar file
  std::optional<std::string> access_log;   // serve: JSONL access log
  bool verbose = false;
  int top = 10;               // profile hotspot rows
  double qor_rel_tol = 0.0;   // compare: exact QoR lock by default
  double qor_abs_tol = 0.0;
  double time_band = 0.20;    // compare/trend: allowed slowdown (+20%)
  bool require_all = false;   // compare: missing cells are regressions
  bool qor_only = false;      // compare: skip the metrics-registry block
  std::optional<std::string> baseline;  // trend: reference trajectory
  double mem_band = 0.25;     // trend: allowed per-point memory growth
  double slope_band = 0.15;   // trend: allowed fitted-slope increase
  std::size_t mem_limit_mb = 0;  // flow --shards: per-worker RSS watermark
  std::size_t map_curve_cap = 0;  // flow: per-node mapper curve width cap
  int port = -1;              // serve/client: -1 = unset (serve → ephemeral)
  std::string host = "127.0.0.1";
  unsigned workers = 4;       // serve: request worker threads
  bool client_stats = false;     // client: print server stats after requests
  bool client_shutdown = false;  // client: ask the server to exit at the end
  unsigned shards = 0;           // flow: >0 forks worker processes
  std::optional<std::string> journal;  // flow: write shard journal here
  std::optional<std::string> resume;   // flow: skip cells already journaled
  int shard_retries = 2;         // flow: worker restarts per circuit
  int backoff_ms = 100;          // flow: restart backoff base
  int heartbeat_ms = 250;        // flow: worker heartbeat period
  int heartbeat_timeout_ms = 10'000;  // flow: silence before SIGKILL
  int idle_timeout_ms = 60'000;  // serve: idle-connection reaper (0 = off)
  int client_retries = 0;        // client: retry budget per connect/request
  int retry_ms = 100;            // client: retry backoff base
  int timeout_ms = 0;            // client: per-response timeout (0 = none)
};

/// Fatal usage / input problems throw; main() turns them into exit code 1.
[[noreturn]] void fatal(const std::string& message) {
  throw std::runtime_error(message);
}

Args parse_args(int argc, char** argv, int first) {
  Args a;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) {
      if (i + 1 >= argc) fatal(std::string(flag) + " needs a value");
      return std::string(argv[++i]);
    };
    if (arg == "-o") a.out = value("-o");
    else if (arg == "--genlib") a.genlib = value("--genlib");
    else if (arg == "-a") a.algorithm = value("-a");
    else if (arg == "-O") a.objective = value("-O");
    else if (arg == "--style") a.style = value("--style");
    else if (arg == "--relax") a.relax = std::stod(value("--relax"));
    else if (arg == "--threads")
      a.threads = static_cast<unsigned>(std::stoul(value("--threads")));
    else if (arg == "--json") a.json = value("--json");
    else if (arg == "--seed") a.seed = std::stoull(value("--seed"));
    else if (arg == "--count") a.count = std::stoi(value("--count"));
    else if (arg == "--deadline-ms")
      a.deadline_ms = std::stod(value("--deadline-ms"));
    else if (arg == "--bdd-limit")
      a.bdd_limit = std::stoull(value("--bdd-limit"));
    else if (arg == "--trace") a.trace = value("--trace");
    else if (arg == "--metrics-out") a.metrics_out = value("--metrics-out");
    else if (arg == "--access-log") a.access_log = value("--access-log");
    else if (arg == "--verbose") a.verbose = true;
    else if (arg == "--top") a.top = std::stoi(value("--top"));
    else if (arg == "--qor-rel-tol")
      a.qor_rel_tol = std::stod(value("--qor-rel-tol"));
    else if (arg == "--qor-abs-tol")
      a.qor_abs_tol = std::stod(value("--qor-abs-tol"));
    else if (arg == "--time-band")
      a.time_band = std::stod(value("--time-band"));
    else if (arg == "--require-all") a.require_all = true;
    else if (arg == "--qor-only") a.qor_only = true;
    else if (arg == "--baseline") a.baseline = value("--baseline");
    else if (arg == "--mem-band") a.mem_band = std::stod(value("--mem-band"));
    else if (arg == "--slope-band")
      a.slope_band = std::stod(value("--slope-band"));
    else if (arg == "--mem-limit-mb")
      a.mem_limit_mb = std::stoull(value("--mem-limit-mb"));
    else if (arg == "--map-curve-cap")
      a.map_curve_cap = std::stoull(value("--map-curve-cap"));
    else if (arg == "--port") a.port = std::stoi(value("--port"));
    else if (arg == "--host") a.host = value("--host");
    else if (arg == "--workers")
      a.workers = static_cast<unsigned>(std::stoul(value("--workers")));
    else if (arg == "--stats") a.client_stats = true;
    else if (arg == "--shutdown") a.client_shutdown = true;
    else if (arg == "--shards")
      a.shards = static_cast<unsigned>(std::stoul(value("--shards")));
    else if (arg == "--journal") a.journal = value("--journal");
    else if (arg == "--resume") a.resume = value("--resume");
    else if (arg == "--shard-retries")
      a.shard_retries = std::stoi(value("--shard-retries"));
    else if (arg == "--backoff-ms")
      a.backoff_ms = std::stoi(value("--backoff-ms"));
    else if (arg == "--heartbeat-ms")
      a.heartbeat_ms = std::stoi(value("--heartbeat-ms"));
    else if (arg == "--heartbeat-timeout-ms")
      a.heartbeat_timeout_ms = std::stoi(value("--heartbeat-timeout-ms"));
    else if (arg == "--idle-timeout-ms")
      a.idle_timeout_ms = std::stoi(value("--idle-timeout-ms"));
    else if (arg == "--retries")
      a.client_retries = std::stoi(value("--retries"));
    else if (arg == "--retry-ms") a.retry_ms = std::stoi(value("--retry-ms"));
    else if (arg == "--timeout-ms")
      a.timeout_ms = std::stoi(value("--timeout-ms"));
    else if (arg == "--bounded") a.bounded = true;
    else if (arg == "--power") a.power_opt = true;
    else if (arg == "--sim") a.simulate = true;
    else if (arg == "--resize") a.resize = true;
    else if (arg == "--seq") a.sequential = true;
    else a.positional.push_back(arg);
  }
  return a;
}

CircuitStyle style_of(const std::string& s) {
  if (s == "static") return CircuitStyle::kStatic;
  if (s == "dynp") return CircuitStyle::kDynamicP;
  if (s == "dynn") return CircuitStyle::kDynamicN;
  fatal("style must be static|dynp|dynn");
}

Library load_library(const Args& a) {
  if (!a.genlib) return Library::parse_genlib(standard_library_genlib(), "mp-lib2");
  std::ifstream in(*a.genlib);
  if (!in.good()) fatal("cannot open genlib file " + *a.genlib);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Library::parse_genlib(text, *a.genlib);
}

/// Read one BLIF input; malformed or missing files are fatal (exit 1), with
/// the parser's structured diagnostic instead of an abort.
Network load_blif(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) fatal("cannot open BLIF file " + path);
  BlifError err;
  std::optional<Network> net = try_read_blif(in, &err);
  if (!net) fatal(path + ": " + err.to_string());
  return std::move(*net);
}

void emit_blif(const Network& net, const std::optional<std::string>& path) {
  if (path) {
    std::ofstream out(*path);
    MP_CHECK_MSG(out.good(), "cannot open output file");
    write_blif(net, out);
  } else {
    write_blif(net, std::cout);
  }
}

int cmd_stats(const Args& a) {
  if (a.positional.empty()) fatal("stats needs a BLIF file");
  const Network net = load_blif(a.positional.at(0));
  int fact_lits = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id)
    if (net.node(id).is_internal())
      fact_lits += factored_literals(net.node(id).cover);
  const auto latches = infer_latches(net);
  std::printf("%-10s pis=%zu pos=%zu nodes=%zu literals=%d (factored %d) "
              "depth=%d latches=%zu\n",
              net.name().c_str(), net.pis().size(), net.pos().size(),
              net.num_internal(), net.num_literals(), fact_lits, net.depth(),
              latches.size());
  if (!latches.empty()) {
    const auto seq = sequential_pi_probabilities(net, latches);
    std::printf("state-line fixpoint (%s after %d iterations):",
                seq.converged ? "converged" : "NOT converged",
                seq.iterations);
    for (const LatchBinding& l : latches)
      std::printf(" %s=%.3f",
                  net.node(net.pis()[l.pi_index]).name.c_str(),
                  seq.pi_prob1[l.pi_index]);
    std::printf("\n");
  }
  return 0;
}

int cmd_opt(const Args& a) {
  if (a.positional.empty()) fatal("opt needs a BLIF file");
  Network net = load_blif(a.positional.at(0));
  const OptStats stats =
      a.power_opt ? rugged_lite_power(net) : rugged_lite(net);
  std::fprintf(stderr,
               "eliminated=%d cube_divisors=%d kernel_divisors=%d "
               "split=%d swept=%d → %zu nodes, %d literals\n",
               stats.eliminated, stats.cube_divisors, stats.kernel_divisors,
               stats.split_nodes, stats.swept, net.num_internal(),
               net.num_literals());
  emit_blif(net, a.out);
  return 0;
}

int cmd_decomp(const Args& a) {
  if (a.positional.empty()) fatal("decomp needs a BLIF file");
  Network net = load_blif(a.positional.at(0));
  prepare_network(net);
  NetworkDecompOptions o;
  o.style = style_of(a.style);
  o.algorithm = a.algorithm == "balanced" ? DecompAlgorithm::kBalanced
                                          : DecompAlgorithm::kMinPower;
  o.bounded_height = a.bounded;
  const NetworkDecompResult r = decompose_network(net, o);
  std::fprintf(stderr,
               "nand_nodes=%zu depth=%d tree_activity=%.4f redecomposed=%d\n",
               r.network.num_internal(), r.unit_depth, r.tree_activity,
               r.redecomposed_nodes);
  emit_blif(r.network, a.out);
  return 0;
}

int cmd_map(const Args& a) {
  if (a.positional.empty()) fatal("map needs a BLIF file");
  Network net = load_blif(a.positional.at(0));
  std::vector<double> pi_prob;
  if (a.sequential) {
    const auto latches = infer_latches(net);
    const auto seq = sequential_pi_probabilities(net, latches);
    pi_prob = seq.pi_prob1;
    std::fprintf(stderr, "sequential fixpoint: %zu latches, %s\n",
                 latches.size(), seq.converged ? "converged" : "NOT converged");
  }
  prepare_network(net);
  const Library lib = load_library(a);

  NetworkDecompOptions d;
  d.style = style_of(a.style);
  d.algorithm = DecompAlgorithm::kMinPower;
  // PI sets may shrink during optimization only by death of unused PIs; the
  // PI list order is stable, so sequential probabilities still line up.
  if (!pi_prob.empty()) d.pi_prob1 = pi_prob;
  const NetworkDecompResult nd = decompose_network(net, d);

  MapOptions m;
  if (!pi_prob.empty()) m.pi_prob1 = pi_prob;
  m.objective =
      a.objective == "area" ? MapObjective::kArea : MapObjective::kPower;
  m.style = style_of(a.style);
  m.relax_factor = a.relax;
  MapResult r = map_network(nd.network, lib, m);
  if (a.resize) {
    ResizeOptions ro;
    ro.power = PowerParams::from(m);
    const ResizeResult rr = downsize_gates(r.mapped, ro);
    std::fprintf(stderr, "resize: %d swaps, %.1f -> %.1f uW\n", rr.swaps,
                 rr.power_before, rr.power_after);
  }
  const MappedReport rep = evaluate_mapped(r.mapped, PowerParams::from(m));
  std::fprintf(stderr,
               "gates=%zu area=%.0f delay=%.2fns power=%.1fuW (zero-delay)\n",
               rep.num_gates, rep.area, rep.delay, rep.power_uw);
  if (a.simulate) {
    SimPowerParams sp;
    sp.base = PowerParams::from(m);
    const SimPowerReport sim = simulate_power(r.mapped, sp);
    std::fprintf(stderr, "glitch-aware power=%.1fuW (factor %.2f)\n",
                 sim.power_uw, sim.glitch_factor);
  }
  if (a.out) {
    std::ofstream out(*a.out);
    MP_CHECK_MSG(out.good(), "cannot open output file");
    write_mapped_blif(r.mapped, out);
  } else {
    write_mapped_blif(r.mapped, std::cout);
  }
  return 0;
}

struct TaskTally {
  int ok = 0;
  int degraded = 0;
  int failed = 0;
};

/// Print the per-cell result table (stdout) and non-ok task diagnostics
/// (stderr); shared by the in-process and sharded flow paths.
TaskTally print_flow_table(
    const std::vector<std::vector<FlowResult>>& per_circuit) {
  std::printf("%-10s %-8s %8s %8s %10s %7s %-9s\n", "circuit", "method",
              "area", "delay", "power", "gates", "status");
  TaskTally t;
  for (const std::vector<FlowResult>& rs : per_circuit)
    for (const FlowResult& r : rs) {
      std::printf("%-10s %-8s %8.0f %8.2f %10.1f %7zu %-9s\n",
                  r.circuit.c_str(), method_name(r.method), r.area, r.delay,
                  r.power_uw, r.gates, task_state_name(r.status.state));
      switch (r.status.state) {
        case TaskState::kOk: ++t.ok; break;
        case TaskState::kDegraded: ++t.degraded; break;
        case TaskState::kFailed: ++t.failed; break;
      }
      if (r.status.state != TaskState::kOk)
        std::fprintf(stderr, "task %s/%s: %s (%s%s; retries=%d)\n",
                     r.circuit.c_str(), method_name(r.method),
                     task_state_name(r.status.state), r.status.reason.c_str(),
                     r.status.fallbacks.empty()
                         ? ""
                         : ("; fallback " + r.status.fallbacks.back()).c_str(),
                     r.status.retries);
    }
  return t;
}

/// `flow --shards N` / `--resume F`: the crash-isolated multi-process path
/// (DESIGN.md §14). Process-fault injection sites come from the environment
/// so the supervisor — not the in-process engine — arms them.
int cmd_flow_sharded(const Args& a,
                     const std::vector<const Network*>& circuits,
                     const Library& lib) {
  // Enable tracing before the supervisor forks: workers inherit the flag
  // (and the tracer origin) and ship their spans back over the pipe.
  if (a.trace) trace::set_enabled(true);
  shard::ShardOptions so;
  so.shards = a.shards > 0 ? a.shards : 2;
  so.worker_threads = a.threads;
  so.heartbeat_ms = a.heartbeat_ms;
  so.heartbeat_timeout_ms = a.heartbeat_timeout_ms;
  so.max_circuit_retries = a.shard_retries;
  so.backoff_ms = a.backoff_ms;
  so.mem_limit_mb = a.mem_limit_mb;
  if (a.journal) so.journal_path = *a.journal;
  if (a.resume) {
    so.resume_path = *a.resume;
    // Resuming without an explicit --journal keeps extending the same file.
    if (!a.journal) so.journal_path = *a.resume;
  }
  so.injections = fault_injections_from_env();
  so.verbose = a.verbose;

  FlowOptions flow;
  flow.task_deadline_ms = a.deadline_ms;
  flow.max_curve_points = a.map_curve_cap;
  if (a.bdd_limit != 0) flow.bdd_node_limit = a.bdd_limit;

  shard::ShardRun run;
  std::string error;
  if (!shard::run_sharded_suite(circuits, lib, flow, so, &run, &error)) fatal(error);

  const TaskTally t = print_flow_table(run.per_circuit);
  std::fprintf(stderr,
               "shards: %u spawned, %u crashes, %u restarts, %u heartbeat "
               "kills; cells: %zu resumed, %zu computed, %zu failed; "
               "tasks: %d ok, %d degraded, %d failed\n",
               run.stats.workers_spawned, run.stats.worker_crashes,
               run.stats.worker_restarts, run.stats.heartbeat_kills,
               run.stats.cells_resumed, run.stats.cells_computed,
               run.stats.cells_failed, t.ok, t.degraded, t.failed);
  if (a.json) {
    std::ofstream out(*a.json);
    if (!out.good()) fatal("cannot open JSON output file " + *a.json);
    shard::write_sharded_flow_json(out, run, so.shards, lib.name());
  }
  if (a.trace) {
    trace::set_enabled(false);
    std::ofstream tos(*a.trace);
    if (!tos.good()) fatal("cannot open trace output file " + *a.trace);
    shard::write_shard_trace(tos, run);
    std::fprintf(stderr,
                 "trace: supervisor + %zu worker lane(s) -> %s (open in "
                 "chrome://tracing or ui.perfetto.dev)\n",
                 run.worker_lanes.size(), a.trace->c_str());
  }
  if (a.metrics_out) {
    std::ofstream mos(*a.metrics_out);
    if (!mos.good())
      fatal("cannot open metrics output file " + *a.metrics_out);
    shard::write_shard_metrics_json(mos, run, so.shards);
  }
  return t.degraded + t.failed > 0 ? 2 : 0;
}

int cmd_flow(const Args& a) {
  if (a.positional.empty()) fatal("flow needs at least one BLIF file");
  std::vector<Network> nets;
  nets.reserve(a.positional.size());
  for (const std::string& path : a.positional) {
    nets.push_back(load_blif(path));
    prepare_network(nets.back());
  }
  std::vector<const Network*> circuits;
  for (const Network& n : nets) circuits.push_back(&n);
  const Library lib = load_library(a);

  if (a.shards > 0 || a.resume) return cmd_flow_sharded(a, circuits, lib);

  EngineOptions eo;
  eo.num_threads = a.threads;
  eo.flow.task_deadline_ms = a.deadline_ms;
  eo.flow.max_curve_points = a.map_curve_cap;
  eo.verbose = a.verbose;
  if (a.bdd_limit != 0) eo.flow.bdd_node_limit = a.bdd_limit;
  FlowEngine engine(lib, eo);
  if (a.trace) trace::set_enabled(true);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<FlowResult>> per_circuit;
  {
    trace::Span flow_span("flow", "cli");
    flow_span.arg("circuits", static_cast<unsigned long long>(nets.size()));
    flow_span.arg("threads", engine.effective_threads());
    per_circuit = engine.run_suite(circuits);
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (a.trace) {
    // All spans are closed and the pool is joined; export is safe now.
    trace::set_enabled(false);
    std::ofstream tos(*a.trace);
    if (!tos.good()) fatal("cannot open trace output file " + *a.trace);
    trace::write_chrome_trace(tos);
    std::fprintf(stderr,
                 "trace: %zu events -> %s (open in chrome://tracing or "
                 "ui.perfetto.dev)\n",
                 trace::num_events(), a.trace->c_str());
  }

  const TaskTally t = print_flow_table(per_circuit);
  std::fprintf(stderr,
               "engine: %d decompositions, %d activity passes, %d mappings, "
               "%u thread(s), %.1f ms; tasks: %d ok, %d degraded, %d failed\n",
               engine.counters().decomp_passes,
               engine.counters().activity_passes, engine.counters().map_passes,
               engine.effective_threads(), elapsed_ms, t.ok, t.degraded,
               t.failed);
  if (a.json) {
    std::ofstream out(*a.json);
    if (!out.good()) fatal("cannot open JSON output file " + *a.json);
    write_flow_json(out, per_circuit, engine.counters(),
                    engine.effective_threads(), elapsed_ms, lib.name());
  }
  if (a.metrics_out) {
    // Standalone registry snapshot, schema-compatible with the sharded
    // sidecar's `metrics` block (minus the shard lifecycle stats).
    std::ofstream mos(*a.metrics_out);
    if (!mos.good())
      fatal("cannot open metrics output file " + *a.metrics_out);
    JsonWriter w(mos, /*pretty=*/false);
    w.begin_object();
    w.field("schema", "minpower.metrics.v1");
    w.key("metrics");
    metrics::write_metrics_json(w, metrics::Registry::global().snapshot());
    w.end_object();
    mos << '\n';
  }
  return t.degraded + t.failed > 0 ? 2 : 0;
}

int cmd_verify(const Args& a) {
  // Two positional files: classic pairwise combinational equivalence.
  if (a.positional.size() == 2) {
    const Network x = load_blif(a.positional.at(0));
    const Network y = load_blif(a.positional.at(1));
    const bool eq = networks_equivalent(x, y);
    std::printf("%s\n", eq ? "EQUIVALENT" : "NOT EQUIVALENT");
    return eq ? 0 : 2;
  }
  if (!a.positional.empty())
    fatal("verify takes either two BLIF files or no positional args");

  // No files: the seeded differential harness (DESIGN.md §8).
  verify::VerifyOptions o;
  o.seed = a.seed;
  o.count = a.count;
  const verify::VerifyReport r = verify::run_verification(o);
  std::printf(
      "verified %d circuits: %d equivalence, %d activity, %d monte-carlo, "
      "%d tree, %d curve checks\n",
      r.circuits, r.equivalence_checks, r.activity_checks,
      r.monte_carlo_checks, r.tree_checks, r.curve_checks);
  if (r.modified_huffman_total > 0)
    std::printf("modified-huffman hit the brute-force optimum in %d/%d "
                "static instances\n",
                r.modified_huffman_optimal, r.modified_huffman_total);
  for (const verify::VerifyFailure& f : r.failures)
    std::fprintf(stderr,
                 "FAIL [%s] %s\n  reproduce: minpower verify --seed %llu "
                 "--count 1\n",
                 f.check.c_str(), f.detail.c_str(),
                 static_cast<unsigned long long>(f.seed));
  if (a.json) {
    std::ofstream out(*a.json);
    if (!out.good()) fatal("cannot open JSON output file " + *a.json);
    verify::write_verify_json(out, o, r);
  }
  if (!r.ok())
    std::fprintf(stderr, "verify: %d checks failed\n",
                 static_cast<int>(r.failures.size()));
  std::printf("%s\n", r.ok() ? "OK" : "FAILED");
  return r.ok() ? 0 : 2;
}

int cmd_bench(const Args& a) {
  if (a.positional.empty()) fatal("bench needs a circuit name");
  const Network net = make_benchmark(a.positional.at(0));
  emit_blif(net, a.out);
  return 0;
}

std::string slurp(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in.good()) fatal(std::string("cannot open ") + what + " " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int cmd_profile(const Args& a) {
  if (a.positional.size() != 1) fatal("profile needs exactly one trace file");
  const std::string& path = a.positional.front();
  trace::TraceProfile profile;
  std::string error;
  if (!trace::analyze_chrome_trace(slurp(path, "trace file"), &profile,
                                   &error))
    fatal(path + ": " + error);
  const int top = a.top > 0 ? a.top : 1;
  trace::print_profile(std::cout, profile, top);
  if (a.json) {
    std::ofstream out(*a.json);
    if (!out.good()) fatal("cannot open JSON output file " + *a.json);
    trace::write_profile_json(out, profile, path, top);
  }
  return 0;
}

int cmd_compare(const Args& a) {
  if (a.positional.size() != 2)
    fatal("compare needs <baseline.json> <candidate.json>");
  report::FlowReportDoc base;
  report::FlowReportDoc cand;
  std::string error;
  if (!report::load_flow_report_file(a.positional.at(0), &base, &error))
    fatal(error);
  if (!report::load_flow_report_file(a.positional.at(1), &cand, &error))
    fatal(error);
  report::CompareOptions o;
  o.qor_rel_tol = a.qor_rel_tol;
  o.qor_abs_tol = a.qor_abs_tol;
  o.time_band = a.time_band;
  o.require_all = a.require_all;
  o.check_metrics = !a.qor_only;
  const report::CompareReport r = report::compare_flow_reports(base, cand, o);
  report::print_compare(std::cout, r);
  if (a.json) {
    std::ofstream out(*a.json);
    if (!out.good()) fatal("cannot open JSON output file " + *a.json);
    report::write_compare_json(out, r);
  }
  return r.regression() ? 3 : 0;
}

int cmd_trend(const Args& a) {
  if (a.positional.empty())
    fatal("trend needs at least one trajectory file (JSONL, schema "
          "minpower.bench_trajectory.v1)");
  report::TrajectoryDoc cand;
  std::string error;
  for (const std::string& path : a.positional)
    if (!report::load_trajectory_file(path, &cand, &error)) fatal(error);
  if (a.positional.size() > 1) {
    cand.path = a.positional.front();
    for (std::size_t i = 1; i < a.positional.size(); ++i)
      cand.path += "+" + a.positional.at(i);
  }
  report::TrajectoryDoc base;
  if (a.baseline &&
      !report::load_trajectory_file(*a.baseline, &base, &error))
    fatal(error);
  report::TrendOptions o;
  o.time_band = a.time_band;
  o.mem_band = a.mem_band;
  o.slope_band = a.slope_band;
  const report::TrendReport r =
      report::analyze_trend(cand, a.baseline ? &base : nullptr, o);
  report::print_trend(std::cout, r);
  if (a.json) {
    std::ofstream out(*a.json);
    if (!out.good()) fatal("cannot open JSON output file " + *a.json);
    report::write_trend_json(out, r);
  }
  return r.regression() ? 3 : 0;
}

// SIGTERM/SIGINT → graceful drain. std::signal handlers may only touch
// lock-free state; Server::signal_drain is async-signal-safe (one write to a
// self-pipe), so the handler just forwards to the live server.
serve::Server* g_drain_server = nullptr;

void handle_drain_signal(int) {
  if (g_drain_server != nullptr) g_drain_server->signal_drain();
}

int cmd_serve(const Args& a) {
  const Library lib = load_library(a);
  serve::ServerOptions o;
  o.host = a.host;
  if (a.port > 0) o.port = static_cast<std::uint16_t>(a.port);
  o.workers = a.workers;
  o.flow.task_deadline_ms = a.deadline_ms;
  if (a.bdd_limit != 0) o.flow.bdd_node_limit = a.bdd_limit;
  o.idle_timeout_ms = a.idle_timeout_ms;
  o.verbose = a.verbose;
  if (a.access_log) o.access_log = *a.access_log;
  serve::Server server(lib, o);
  std::string error;
  if (!server.start(&error)) fatal(error);
  g_drain_server = &server;
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  // Scripts parse this line for the (possibly ephemeral) port.
  std::printf("minpower serve: listening on %s:%u (%u workers)\n",
              o.host.c_str(), server.port(), o.workers);
  std::fflush(stdout);
  server.wait();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_drain_server = nullptr;
  const serve::ServeStats s = server.stats();
  const SessionStats ss = server.session().stats();
  std::fprintf(stderr,
               "serve: %llu requests (%llu flow ok, %llu errors, %llu busy); "
               "cache hits=%llu misses=%llu evictions=%llu\n",
               static_cast<unsigned long long>(s.requests),
               static_cast<unsigned long long>(s.flow_ok),
               static_cast<unsigned long long>(s.errors),
               static_cast<unsigned long long>(s.busy_rejections),
               static_cast<unsigned long long>(ss.group_hits + ss.result_hits),
               static_cast<unsigned long long>(ss.group_misses +
                                               ss.result_misses),
               static_cast<unsigned long long>(ss.evictions));
  return 0;
}

/// Re-emit a parsed JSON value (used to splice per-request response
/// documents into one merged report).
void emit_json_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: w.null(); break;
    case JsonValue::Kind::kBool: w.value(v.boolean); break;
    case JsonValue::Kind::kNumber: w.value(v.number); break;
    case JsonValue::Kind::kString: w.value(v.string); break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items) emit_json_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [key, member] : v.members) {
        w.key(key);
        emit_json_value(w, member);
      }
      w.end_object();
      break;
  }
}

int cmd_client(const Args& a) {
  if (a.port <= 0) fatal("client needs --port (a running `minpower serve`)");
  serve::RetryPolicy policy;
  policy.retries = a.client_retries;
  if (a.retry_ms > 0) policy.base_ms = a.retry_ms;

  serve::Client client;
  client.set_response_timeout_ms(a.timeout_ms);
  std::string error;
  int total_retries = 0;
  // Reconnect from scratch (used on first connect and whenever a request
  // fails retryably): a refused/broken/busy connection is cheapest to
  // abandon, and connect_with_retry supplies the capped jittered backoff.
  auto reconnect = [&](std::string* err) {
    client = serve::Client();
    client.set_response_timeout_ms(a.timeout_ms);
    unsigned attempts = 0;
    const bool ok = client.connect_with_retry(
        a.host, static_cast<std::uint16_t>(a.port), policy, &attempts, err);
    total_retries += static_cast<int>(attempts);
    return ok;
  };
  if (!reconnect(&error)) fatal(error);

  std::vector<std::string> tokens;
  if (a.deadline_ms > 0.0)
    tokens.push_back("deadline_ms=" + std::to_string(a.deadline_ms));
  if (a.bdd_limit != 0)
    tokens.push_back("bdd_limit=" + std::to_string(a.bdd_limit));

  // One FLOW request per file; each OK body is a single-circuit
  // minpower.flow.v1 document. Transport failures and retryable server
  // errors (busy admission queue, graceful drain, idle reap) re-connect and
  // re-send up to --retries times with capped jittered backoff.
  std::vector<JsonValue> docs;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const std::string& path : a.positional) {
    const std::string blif = slurp(path, "BLIF file");
    serve::Response r;
    for (int attempt = 0;; ++attempt) {
      std::string req_error;
      if (client.flow(blif, tokens, &r, &req_error)) {
        if (r.ok || !serve::response_retryable(r)) break;
        req_error = "server answered a retryable error";
      }
      if (attempt >= policy.retries)
        fatal(path + ": " + req_error + " (after " + std::to_string(attempt) +
              " retries)");
      ++total_retries;
      const int shift = attempt < 16 ? attempt : 16;
      const long long backoff =
          std::min<long long>(static_cast<long long>(policy.base_ms) << shift,
                              policy.max_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      if (!reconnect(&req_error)) fatal(path + ": " + req_error);
    }
    hits += r.hits;
    misses += r.misses;
    std::string parse_error;
    auto doc = parse_json(r.body, &parse_error);
    if (!doc) fatal(path + ": unparsable server response: " + parse_error);
    if (!r.ok) {
      std::string message = "request failed";
      if (const JsonValue* e = doc->find("error"))
        if (const JsonValue* m = e->find("message");
            m != nullptr && m->kind == JsonValue::Kind::kString)
          message = m->string;
      fatal(path + ": server error: " + message);
    }
    docs.push_back(std::move(*doc));
  }

  auto num_field = [](const JsonValue& obj, const char* section,
                      const char* key) -> double {
    const JsonValue* s = obj.find(section);
    if (s == nullptr) return 0.0;
    const JsonValue* v = s->find(key);
    return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                               : 0.0;
  };
  int ok = 0;
  int degraded = 0;
  int failed = 0;
  EngineCounters counters;
  for (const JsonValue& d : docs) {
    ok += static_cast<int>(num_field(d, "tasks", "ok"));
    degraded += static_cast<int>(num_field(d, "tasks", "degraded"));
    failed += static_cast<int>(num_field(d, "tasks", "failed"));
    counters.decomp_passes +=
        static_cast<int>(num_field(d, "engine", "decomp_passes"));
    counters.activity_passes +=
        static_cast<int>(num_field(d, "engine", "activity_passes"));
    counters.map_passes +=
        static_cast<int>(num_field(d, "engine", "map_passes"));
  }

  if (!docs.empty()) {
    std::string library = "?";
    if (const JsonValue* l = docs.front().find("library");
        l != nullptr && l->kind == JsonValue::Kind::kString)
      library = l->string;
    std::ostringstream merged;
    {
      JsonWriter w(merged);
      w.begin_object();
      w.field("schema", "minpower.flow.v1");
      w.field("library", library);
      w.field("num_threads", 1);
      w.field("elapsed_ms", 0.0);
      w.key("engine");
      w.begin_object();
      w.field("decomp_passes", counters.decomp_passes);
      w.field("activity_passes", counters.activity_passes);
      w.field("map_passes", counters.map_passes);
      w.end_object();
      w.key("tasks");
      w.begin_object();
      w.field("ok", ok);
      w.field("degraded", degraded);
      w.field("failed", failed);
      w.end_object();
      w.key("client");
      w.begin_object();
      w.field("retries", total_retries);
      w.end_object();
      w.key("circuits");
      w.begin_array();
      for (const JsonValue& d : docs)
        if (const JsonValue* circuits = d.find("circuits");
            circuits != nullptr && circuits->kind == JsonValue::Kind::kArray)
          for (const JsonValue& c : circuits->items) emit_json_value(w, c);
      w.end_array();
      w.end_object();
    }
    merged << '\n';
    if (a.json) {
      std::ofstream out(*a.json);
      if (!out.good()) fatal("cannot open JSON output file " + *a.json);
      out << merged.str();
    } else {
      std::cout << merged.str();
    }
  }

  if (a.client_stats) {
    serve::Response r;
    if (!client.stats(&r, &error)) fatal(error);
    std::fputs(r.body.c_str(), stderr);
  }
  if (a.client_shutdown && !client.shutdown_server(&error)) fatal(error);
  std::fprintf(stderr,
               "client: %zu circuits via %s:%d; cache hits=%llu misses=%llu; "
               "retries=%d; tasks: %d ok, %d degraded, %d failed\n",
               docs.size(), a.host.c_str(), a.port,
               static_cast<unsigned long long>(hits),
               static_cast<unsigned long long>(misses), total_retries, ok,
               degraded, failed);
  return degraded + failed > 0 ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: minpower <stats|opt|decomp|map|flow|verify|bench|"
                 "profile|compare|trend|serve|client> ...\n");
    return 1;
  }
  try {
    const std::string cmd = argv[1];
    const Args a = parse_args(argc, argv, 2);
    if (cmd == "stats") return cmd_stats(a);
    if (cmd == "opt") return cmd_opt(a);
    if (cmd == "decomp") return cmd_decomp(a);
    if (cmd == "map") return cmd_map(a);
    if (cmd == "flow") return cmd_flow(a);
    if (cmd == "verify") return cmd_verify(a);
    if (cmd == "bench") return cmd_bench(a);
    if (cmd == "profile") return cmd_profile(a);
    if (cmd == "compare") return cmd_compare(a);
    if (cmd == "trend") return cmd_trend(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "client") return cmd_client(a);
    std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "minpower: fatal: %s\n", e.what());
    return 1;
  }
}
