#include <gtest/gtest.h>

#include "sop/cover.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

TEST(Cube, LiteralBasics) {
  const Cube a = Cube::literal(3, true);
  EXPECT_TRUE(a.has_pos(3));
  EXPECT_FALSE(a.has_neg(3));
  EXPECT_EQ(a.size(), 1);
  const Cube b = Cube::literal(3, false);
  EXPECT_TRUE(b.has_neg(3));
  EXPECT_TRUE((a & b).is_contradictory());
}

TEST(Cube, OneCube) {
  EXPECT_TRUE(Cube::one().is_one());
  EXPECT_EQ(Cube::one().size(), 0);
  EXPECT_TRUE(Cube::one().eval(0));
  EXPECT_TRUE(Cube::one().eval(~std::uint64_t{0}));
}

TEST(Cube, Eval) {
  const Cube c = Cube::literal(0, true) & Cube::literal(2, false);
  EXPECT_TRUE(c.eval(0b001));
  EXPECT_FALSE(c.eval(0b101));  // v2 = 1 violates !v2
  EXPECT_FALSE(c.eval(0b000));  // v0 = 0 violates v0
}

TEST(Cube, Implies) {
  const Cube ab = Cube::literal(0, true) & Cube::literal(1, true);
  const Cube a = Cube::literal(0, true);
  EXPECT_TRUE(ab.implies(a));
  EXPECT_FALSE(a.implies(ab));
  EXPECT_TRUE(a.implies(a));
}

TEST(Cube, DropAndWithout) {
  const Cube ab = Cube::literal(0, true) & Cube::literal(1, false);
  EXPECT_EQ(ab.drop(1), Cube::literal(0, true));
  EXPECT_EQ(ab.without(Cube::literal(0, true)), Cube::literal(1, false));
}

TEST(Cover, NormalizeAbsorption) {
  Cover c;
  c.add(Cube::literal(0, true));
  c.add(Cube::literal(0, true) & Cube::literal(1, true));  // absorbed
  c.normalize();
  EXPECT_EQ(c.num_cubes(), 1u);
  EXPECT_EQ(c.cubes()[0], Cube::literal(0, true));
}

TEST(Cover, NormalizeDropsContradiction) {
  Cover c;
  c.add(Cube::literal(0, true) & Cube::literal(0, false));
  c.normalize();
  EXPECT_TRUE(c.is_zero());
}

TEST(Cover, NormalizeConstantOne) {
  Cover c;
  c.add(Cube::literal(0, true));
  c.add(Cube::one());
  c.normalize();
  EXPECT_TRUE(c.is_one());
}

TEST(Cover, EvalOrSemantics) {
  // f = v0·!v1 + v2
  Cover f{{Cube::literal(0, true) & Cube::literal(1, false),
           Cube::literal(2, true)}};
  EXPECT_TRUE(f.eval(0b001));
  EXPECT_TRUE(f.eval(0b100));
  EXPECT_FALSE(f.eval(0b010));
  EXPECT_FALSE(f.eval(0b000));
}

TEST(Cover, CofactorShannon) {
  // f = v0·v1 + !v0·v2
  Cover f{{Cube::literal(0, true) & Cube::literal(1, true),
           Cube::literal(0, false) & Cube::literal(2, true)}};
  const Cover f1 = f.cofactor(0, true);
  const Cover f0 = f.cofactor(0, false);
  EXPECT_TRUE(Cover::equivalent(f1, Cover::literal(1, true)));
  EXPECT_TRUE(Cover::equivalent(f0, Cover::literal(2, true)));
}

TEST(Cover, ComplementConstants) {
  EXPECT_TRUE(Cover::zero().complement().is_one());
  EXPECT_TRUE(Cover::one().complement().is_zero());
}

TEST(Cover, ComplementDeMorgan) {
  // !(a·b) = !a + !b
  Cover ab{{Cube::literal(0, true) & Cube::literal(1, true)}};
  Cover want{{Cube::literal(0, false), Cube::literal(1, false)}};
  EXPECT_TRUE(Cover::equivalent(ab.complement(), want));
}

TEST(Cover, ConjunctionDistributes) {
  Cover a{{Cube::literal(0, true), Cube::literal(1, true)}};  // v0 + v1
  Cover b{{Cube::literal(2, true)}};                          // v2
  const Cover c = Cover::conjunction(a, b);
  Cover want{{Cube::literal(0, true) & Cube::literal(2, true),
              Cube::literal(1, true) & Cube::literal(2, true)}};
  EXPECT_TRUE(Cover::equivalent(c, want));
}

TEST(Cover, Remap) {
  Cover f{{Cube::literal(0, true) & Cube::literal(2, false)}};
  std::vector<int> m(kMaxCubeVars, -1);
  m[0] = 5;
  m[2] = 1;
  const Cover g = f.remap(m);
  EXPECT_TRUE(g.cubes()[0].has_pos(5));
  EXPECT_TRUE(g.cubes()[0].has_neg(1));
}

// Property: complement really is the Boolean complement, and double
// complement is the identity — over random covers.
class CoverComplementProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoverComplementProperty, ComplementIsExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const int vars = 5;
  Cover f;
  const int cubes = static_cast<int>(rng.range(1, 4));
  for (int c = 0; c < cubes; ++c) {
    Cube cube;
    for (int v = 0; v < vars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube = cube & Cube::literal(v, true);
      if (r == 1) cube = cube & Cube::literal(v, false);
    }
    f.add(cube);
  }
  f.normalize();
  const Cover nf = f.complement();
  for (std::uint64_t m = 0; m < (1u << vars); ++m)
    EXPECT_NE(f.eval(m), nf.eval(m)) << "minterm " << m;
  EXPECT_TRUE(Cover::equivalent(nf.complement(), f));
}

INSTANTIATE_TEST_SUITE_P(Random, CoverComplementProperty,
                         ::testing::Range(0, 40));

// Property: normalize() preserves the function.
class CoverNormalizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoverNormalizeProperty, NormalizePreservesFunction) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const int vars = 6;
  Cover f;
  const int cubes = static_cast<int>(rng.range(1, 6));
  for (int c = 0; c < cubes; ++c) {
    Cube cube;
    for (int v = 0; v < vars; ++v) {
      const auto r = rng.below(4);
      if (r == 0) cube = cube & Cube::literal(v, true);
      if (r == 1) cube = cube & Cube::literal(v, false);
    }
    f.add(cube);
  }
  Cover g = f;
  g.normalize();
  for (std::uint64_t m = 0; m < (1u << vars); ++m)
    EXPECT_EQ(f.eval(m), g.eval(m)) << "minterm " << m;
}

INSTANTIATE_TEST_SUITE_P(Random, CoverNormalizeProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace minpower
