#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "io/blif.hpp"
#include "io/mapped_blif.hpp"
#include "map/mapper.hpp"
#include "power/report.hpp"
#include "prob/probability.hpp"

namespace minpower {
namespace {

TEST(Blif, ParseSimpleModel) {
  const std::string text = R"(
# a comment
.model test
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
)";
  Network net = read_blif_string(text);
  EXPECT_EQ(net.name(), "test");
  EXPECT_EQ(net.pis().size(), 3u);
  EXPECT_EQ(net.pos().size(), 1u);
  EXPECT_EQ(net.num_internal(), 2u);
  // f = (a·b) + c
  EXPECT_TRUE(net.eval({true, true, false})[0]);
  EXPECT_TRUE(net.eval({false, false, true})[0]);
  EXPECT_FALSE(net.eval({true, false, false})[0]);
}

TEST(Blif, OffsetCover) {
  // Output column 0: rows specify the OFF-set; f = !(a·b) here.
  const std::string text = R"(
.model offset
.inputs a b
.outputs f
.names a b f
11 0
.end
)";
  Network net = read_blif_string(text);
  EXPECT_FALSE(net.eval({true, true})[0]);
  EXPECT_TRUE(net.eval({true, false})[0]);
  EXPECT_TRUE(net.eval({false, false})[0]);
}

TEST(Blif, ConstantNodes) {
  const std::string text = R"(
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)";
  Network net = read_blif_string(text);
  EXPECT_TRUE(net.eval({false})[0]);
  EXPECT_FALSE(net.eval({false})[1]);
}

TEST(Blif, LineContinuation) {
  const std::string text =
      ".model cont\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
  Network net = read_blif_string(text);
  EXPECT_EQ(net.pis().size(), 2u);
  EXPECT_TRUE(net.eval({true, true})[0]);
}

TEST(Blif, OutOfOrderDefinitions) {
  // t2 is used before its .names block appears.
  const std::string text = R"(
.model ooo
.inputs a b
.outputs f
.names t2 a f
11 1
.names a b t2
-1 1
.end
)";
  Network net = read_blif_string(text);
  EXPECT_TRUE(net.eval({true, true})[0]);
  EXPECT_FALSE(net.eval({true, false})[0]);
}

TEST(Blif, LatchBecomesPseudoPiAndPo) {
  const std::string text = R"(
.model seq
.inputs a
.outputs f
.latch nf q 0
.names a q f
11 1
.names f nf
0 1
.end
)";
  Network net = read_blif_string(text);
  // PIs: a + latch output q; POs: f + the latch's next-state "q__next".
  EXPECT_EQ(net.pis().size(), 2u);
  EXPECT_EQ(net.pos().size(), 2u);
  EXPECT_EQ(net.pos()[1].name, "q__next");
}

TEST(Blif, RoundTripPreservesFunction) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    Network net = testing::random_network(seed, 6, 14, 4);
    Network back = read_blif_string(write_blif_string(net));
    EXPECT_TRUE(networks_equivalent(net, back)) << "seed " << seed;
  }
}

TEST(Blif, RoundTripPreservesInterface) {
  Network net = testing::random_network(3, 5, 8, 2);
  Network back = read_blif_string(write_blif_string(net));
  ASSERT_EQ(back.pis().size(), net.pis().size());
  for (std::size_t i = 0; i < net.pis().size(); ++i)
    EXPECT_EQ(back.node(back.pis()[i]).name, net.node(net.pis()[i]).name);
  ASSERT_EQ(back.pos().size(), net.pos().size());
  for (std::size_t i = 0; i < net.pos().size(); ++i)
    EXPECT_EQ(back.pos()[i].name, net.pos()[i].name);
}

TEST(Blif, PoAliasGetsBuffer) {
  // PO name differs from its driver's name → writer must emit a buffer.
  Network net("alias");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n = net.add_and2(a, b, "inner");
  net.add_po("outname", n);
  Network back = read_blif_string(write_blif_string(net));
  EXPECT_EQ(back.pos()[0].name, "outname");
  EXPECT_TRUE(back.eval({true, true})[0]);
  EXPECT_FALSE(back.eval({true, false})[0]);
}

TEST(Blif, DontCareColumnWidths) {
  const std::string text = R"(
.model dc
.inputs a b c d
.outputs f
.names a b c d f
1--- 1
-11- 1
---1 1
.end
)";
  Network net = read_blif_string(text);
  EXPECT_TRUE(net.eval({true, false, false, false})[0]);
  EXPECT_TRUE(net.eval({false, true, true, false})[0]);
  EXPECT_FALSE(net.eval({false, true, false, false})[0]);
}

MappedNetwork map_random(std::uint64_t seed, Network& subject_out) {
  Network raw = testing::random_network(seed, 6, 12, 3);
  NetworkDecompOptions d;
  subject_out = decompose_network(raw, d).network;
  MapOptions o;
  return map_network(subject_out, standard_library(), o).mapped;
}

TEST(MappedBlif, WriteContainsGateLines) {
  Network subject;
  const MappedNetwork mn = map_random(50, subject);
  const std::string text = write_mapped_blif_string(mn);
  EXPECT_NE(text.find(".gate"), std::string::npos);
  EXPECT_NE(text.find(".model"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(MappedBlif, RoundTripPreservesFunction) {
  for (std::uint64_t seed = 51; seed < 55; ++seed) {
    Network subject;
    const MappedNetwork mn = map_random(seed, subject);
    if (mn.gates.empty()) continue;
    const ParsedMappedNetwork back = read_mapped_blif_string(
        write_mapped_blif_string(mn), standard_library());
    // Compare gate-level simulation of both mapped netlists.
    Rng rng(seed);
    for (int t = 0; t < 60; ++t) {
      std::vector<bool> pi(subject.pis().size());
      for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = rng.coin();
      EXPECT_EQ(back.mapped.eval(pi), mn.eval(pi)) << seed;
    }
  }
}

TEST(MappedBlif, RoundTripPreservesScoring) {
  Network subject;
  const MappedNetwork mn = map_random(56, subject);
  const ParsedMappedNetwork back = read_mapped_blif_string(
      write_mapped_blif_string(mn), standard_library());
  PowerParams p;
  const MappedReport a = evaluate_mapped(mn, p);
  const MappedReport b = evaluate_mapped(back.mapped, p);
  EXPECT_EQ(a.num_gates, b.num_gates);
  EXPECT_DOUBLE_EQ(a.area, b.area);
  EXPECT_NEAR(a.delay, b.delay, 1e-9);
  EXPECT_NEAR(a.power_uw, b.power_uw, 1e-6);
}

TEST(MappedBlif, RoundTripPreservesStructure) {
  // Beyond function/scoring equality: the re-read netlist must have the
  // identical gate list, pin bindings, and topology. Node ids differ between
  // the original subject and the reader's rebuilt one, so signals are
  // compared by name (the writer names every signal after its subject node).
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    Network subject;
    const MappedNetwork mn = map_random(seed, subject);
    if (mn.gates.empty()) continue;
    const ParsedMappedNetwork back = read_mapped_blif_string(
        write_mapped_blif_string(mn), standard_library());

    ASSERT_EQ(back.mapped.gates.size(), mn.gates.size()) << seed;
    for (std::size_t g = 0; g < mn.gates.size(); ++g) {
      const MappedGateInst& a = mn.gates[g];
      const MappedGateInst& b = back.mapped.gates[g];
      EXPECT_EQ(a.gate->name, b.gate->name) << "gate " << g << " seed " << seed;
      ASSERT_EQ(a.pin_nodes.size(), b.pin_nodes.size()) << "gate " << g;
      for (std::size_t p = 0; p < a.pin_nodes.size(); ++p)
        EXPECT_EQ(subject.node(a.pin_nodes[p]).name,
                  back.subject->node(b.pin_nodes[p]).name)
            << "gate " << g << " pin " << p << " seed " << seed;
      EXPECT_EQ(subject.node(a.root).name,
                back.subject->node(b.root).name)
          << "gate " << g << " seed " << seed;
      // Topology: every pin signal must already be driven (PI, constant, or
      // an earlier gate's root) in both netlists — same driver index.
      for (std::size_t p = 0; p < a.pin_nodes.size(); ++p)
        EXPECT_EQ(mn.driver_of(a.pin_nodes[p]),
                  back.mapped.driver_of(b.pin_nodes[p]))
            << "gate " << g << " pin " << p;
    }

    ASSERT_EQ(back.mapped.po_signal.size(), mn.po_signal.size());
    for (std::size_t j = 0; j < mn.po_signal.size(); ++j)
      EXPECT_EQ(subject.node(mn.po_signal[j]).name,
                back.subject->node(back.mapped.po_signal[j]).name)
          << "po " << j << " seed " << seed;
    ASSERT_EQ(back.subject->pis().size(), subject.pis().size());
    for (std::size_t i = 0; i < subject.pis().size(); ++i)
      EXPECT_EQ(subject.node(subject.pis()[i]).name,
                back.subject->node(back.subject->pis()[i]).name);
  }
}

TEST(MappedBlif, ReadRejectsUnknownCell) {
  const std::string text =
      ".model m\n.inputs a\n.outputs f\n.gate nosuchcell a=a O=f\n.end\n";
  EXPECT_DEATH(read_mapped_blif_string(text, standard_library()),
               "unknown cell");
}

TEST(MappedBlif, ReadHandlesPoAlias) {
  const std::string text =
      ".model m\n.inputs a b\n.outputs out\n"
      ".gate nand2 a=a b=b O=x\n"
      ".names x out\n1 1\n.end\n";
  const ParsedMappedNetwork p =
      read_mapped_blif_string(text, standard_library());
  EXPECT_EQ(p.mapped.gates.size(), 1u);
  EXPECT_FALSE(p.mapped.eval({true, true})[0]);
  EXPECT_TRUE(p.mapped.eval({true, false})[0]);
}

}  // namespace
}  // namespace minpower
