#pragma once
// Shared test utilities: exhaustive evaluation, random small networks, and
// brute-force probability computation used as oracles.

#include <cmath>
#include <vector>

#include "benchgen/benchgen.hpp"
#include "netlist/network.hpp"
#include "util/rng.hpp"

namespace minpower::testing {

/// Evaluate every PI assignment (requires few PIs) and return the PO truth
/// tables, one vector<bool> of length 2^n per PO.
inline std::vector<std::vector<bool>> truth_tables(const Network& net) {
  const std::size_t n = net.pis().size();
  const std::size_t count = std::size_t{1} << n;
  std::vector<std::vector<bool>> tables(net.pos().size(),
                                        std::vector<bool>(count));
  for (std::size_t m = 0; m < count; ++m) {
    std::vector<bool> pi(n);
    for (std::size_t i = 0; i < n; ++i) pi[i] = (m >> i) & 1;
    const std::vector<bool> po = net.eval(pi);
    for (std::size_t j = 0; j < po.size(); ++j) tables[j][m] = po[j];
  }
  return tables;
}

/// Exhaustive signal probability of every node under independent PI
/// 1-probabilities (oracle for the BDD-based computation).
inline std::vector<double> brute_force_probabilities(
    const Network& net, const std::vector<double>& pi_p1) {
  const std::size_t n = net.pis().size();
  const std::size_t count = std::size_t{1} << n;
  std::vector<double> p(net.capacity(), 0.0);
  for (std::size_t m = 0; m < count; ++m) {
    std::vector<bool> pi(n);
    double weight = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      pi[i] = (m >> i) & 1;
      weight *= pi[i] ? pi_p1[i] : 1.0 - pi_p1[i];
    }
    // Evaluate all nodes, not just POs.
    std::vector<char> value(net.capacity(), 0);
    for (std::size_t i = 0; i < n; ++i)
      value[static_cast<std::size_t>(net.pis()[i])] = pi[i];
    for (NodeId id : net.topo_order()) {
      const Node& node = net.node(id);
      if (node.kind == NodeKind::kConstant1)
        value[static_cast<std::size_t>(id)] = 1;
      if (!node.is_internal()) continue;
      std::uint64_t assignment = 0;
      for (std::size_t i = 0; i < node.fanins.size(); ++i)
        if (value[static_cast<std::size_t>(node.fanins[i])])
          assignment |= std::uint64_t{1} << i;
      value[static_cast<std::size_t>(id)] = node.cover.eval(assignment);
    }
    for (NodeId id = 0; id < static_cast<NodeId>(net.capacity()); ++id)
      if (value[static_cast<std::size_t>(id)])
        p[static_cast<std::size_t>(id)] += weight;
  }
  return p;
}

/// Small random network for property tests.
inline Network random_network(std::uint64_t seed, int num_pi = 6,
                              int num_nodes = 12, int num_po = 3) {
  BenchProfile p;
  p.name = "rnd" + std::to_string(seed);
  p.num_pi = num_pi;
  p.num_po = num_po;
  p.num_nodes = num_nodes;
  p.max_fanin = 4;
  p.max_cubes = 3;
  p.seed = seed;
  return generate_benchmark(p);
}

/// Random probability vector in (lo, hi).
inline std::vector<double> random_probs(Rng& rng, int n, double lo = 0.05,
                                        double hi = 0.95) {
  std::vector<double> p(static_cast<std::size_t>(n));
  for (double& x : p) x = rng.uniform(lo, hi);
  return p;
}

}  // namespace minpower::testing
