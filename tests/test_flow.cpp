#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "helpers.hpp"
#include "util/stats.hpp"

namespace minpower {
namespace {

TEST(Flow, MethodNames) {
  EXPECT_STREQ(method_name(Method::kI), "I");
  EXPECT_STREQ(method_name(Method::kVI), "VI");
}

TEST(Flow, AllMethodsProduceValidResults) {
  Network net = testing::random_network(44, 7, 16, 3);
  prepare_network(net);
  ASSERT_GT(net.num_internal(), 0u)
      << "degenerate random circuit; pick another seed";
  const auto rs = run_all_methods(net, standard_library());
  ASSERT_EQ(rs.size(), 6u);
  for (const auto& r : rs) {
    EXPECT_GT(r.area, 0.0) << method_name(r.method);
    EXPECT_GT(r.delay, 0.0) << method_name(r.method);
    EXPECT_GT(r.power_uw, 0.0) << method_name(r.method);
    EXPECT_GT(r.gates, 0u) << method_name(r.method);
    EXPECT_GT(r.nand_nodes, 0u) << method_name(r.method);
  }
}

TEST(Flow, DecompositionPhaseIsSharedAcrossObjectives) {
  // Methods I and IV (same decomposition, different mapping) must report the
  // same decomposition diagnostics.
  Network net = testing::random_network(43, 7, 16, 3);
  prepare_network(net);
  const auto rs = run_all_methods(net, standard_library());
  EXPECT_DOUBLE_EQ(rs[0].tree_activity, rs[3].tree_activity);
  EXPECT_DOUBLE_EQ(rs[1].tree_activity, rs[4].tree_activity);
  EXPECT_EQ(rs[0].nand_depth, rs[3].nand_depth);
}

TEST(Flow, MinpowerDecompositionLowersTreeActivity) {
  GeoMean ratio;
  for (std::uint64_t seed = 200; seed < 208; ++seed) {
    Network net = testing::random_network(seed, 7, 18, 3);
    prepare_network(net);
    const auto rI = run_method(net, Method::kI, standard_library());
    const auto rII = run_method(net, Method::kII, standard_library());
    EXPECT_LE(rII.tree_activity, rI.tree_activity + 1e-9) << seed;
    if (rI.tree_activity > 0) ratio.add(rII.tree_activity / rI.tree_activity);
  }
  EXPECT_LT(ratio.value(), 1.0);
}

TEST(Flow, PdMapReducesPowerOnAverage) {
  // The paper's headline: power-delay mapping beats area-delay mapping on
  // power across the suite (22% there; we require a strict average win).
  GeoMean ratio;
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    Network net = testing::random_network(seed, 7, 18, 3);
    prepare_network(net);
    const auto rI = run_method(net, Method::kI, standard_library());
    const auto rIV = run_method(net, Method::kIV, standard_library());
    ratio.add(rIV.power_uw / rI.power_uw);
  }
  EXPECT_LT(ratio.value(), 1.0)
      << "pd-map must reduce average power vs ad-map";
}

TEST(Flow, BoundedHeightNoDeeperThanMinpowerOnAverage) {
  // Per-node flattening does not guarantee per-circuit depth reduction (the
  // per-fanin depth profile inside a node can shift), so the claim — like
  // the paper's 1.6% performance figure — is aggregate.
  int total_ii = 0;
  int total_iii = 0;
  for (std::uint64_t seed = 400; seed < 408; ++seed) {
    Network net = testing::random_network(seed, 7, 18, 3);
    prepare_network(net);
    const auto rII = run_method(net, Method::kII, standard_library());
    const auto rIII = run_method(net, Method::kIII, standard_library());
    total_ii += rII.nand_depth;
    total_iii += rIII.nand_depth;
  }
  EXPECT_LE(total_iii, total_ii);
}

TEST(Flow, ResultsAreDeterministic) {
  Network net = testing::random_network(77, 7, 16, 3);
  prepare_network(net);
  const auto a = run_method(net, Method::kV, standard_library());
  const auto b = run_method(net, Method::kV, standard_library());
  EXPECT_DOUBLE_EQ(a.area, b.area);
  EXPECT_DOUBLE_EQ(a.delay, b.delay);
  EXPECT_DOUBLE_EQ(a.power_uw, b.power_uw);
}

TEST(Flow, OptionsArePlumbedThrough) {
  Network net = testing::random_network(88, 6, 14, 3);
  prepare_network(net);
  FlowOptions fast;
  fast.t_cycle = 25e-9;  // 40 MHz doubles power
  const auto slow_r = run_method(net, Method::kIV, standard_library());
  const auto fast_r = run_method(net, Method::kIV, standard_library(), fast);
  EXPECT_NEAR(fast_r.power_uw, 2.0 * slow_r.power_uw, slow_r.power_uw * 0.01);
}

}  // namespace
}  // namespace minpower
