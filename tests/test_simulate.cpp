#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "power/simulate.hpp"

namespace minpower {
namespace {

MapResult map_small(const Network& subject) {
  MapOptions o;
  return map_network(subject, standard_library(), o);
}

TEST(Simulate, InverterChainHasNoGlitches) {
  // A chain cannot glitch: simulated activity equals zero-delay activity up
  // to Monte-Carlo noise (each net toggles exactly when the PI toggles).
  Network net("chain");
  NodeId x = net.add_pi("a");
  for (int i = 0; i < 4; ++i) x = net.add_inv(x);
  net.add_po("f", x);
  const MapResult r = map_small(net);
  SimPowerParams sp;
  sp.num_vector_pairs = 2000;
  const SimPowerReport rep = simulate_power(r.mapped, sp);
  EXPECT_NEAR(rep.glitch_factor, 1.0, 0.1);
}

TEST(Simulate, DeterministicInSeed) {
  Network raw = testing::random_network(5, 6, 12, 3);
  NetworkDecompOptions d;
  const Network subject = decompose_network(raw, d).network;
  const MapResult r = map_small(subject);
  SimPowerParams sp;
  const SimPowerReport a = simulate_power(r.mapped, sp);
  const SimPowerReport b = simulate_power(r.mapped, sp);
  EXPECT_DOUBLE_EQ(a.power_uw, b.power_uw);
  sp.seed += 1;
  const SimPowerReport c = simulate_power(r.mapped, sp);
  EXPECT_NE(a.power_uw, c.power_uw);
}

TEST(Simulate, GlitchFactorAtLeastNearOne) {
  // Glitches only add transitions; sampling noise aside, simulated power
  // must not fall far below the zero-delay value.
  for (std::uint64_t seed = 11; seed < 15; ++seed) {
    Network raw = testing::random_network(seed, 6, 14, 3);
    NetworkDecompOptions d;
    const Network subject = decompose_network(raw, d).network;
    const MapResult r = map_small(subject);
    SimPowerParams sp;
    sp.num_vector_pairs = 600;
    const SimPowerReport rep = simulate_power(r.mapped, sp);
    EXPECT_GT(rep.glitch_factor, 0.75) << seed;
    EXPECT_GT(rep.power_uw, 0.0);
  }
}

TEST(Simulate, ReconvergentXorGlitches) {
  // Classic glitch generator: f = a XOR a-delayed. Build a ⊕ (chain of a):
  // under transport delay, a toggle on `a` reaches the XOR at two different
  // times, producing a pulse on every input change — activity well above
  // the zero-delay prediction (which sees a constant function!).
  Network net("xorglitch");
  const NodeId a = net.add_pi("a");
  NodeId delayed = a;
  for (int i = 0; i < 4; ++i) delayed = net.add_inv(delayed);
  // XOR as NAND2/INV structure.
  const NodeId ia = net.add_inv(a);
  const NodeId id = net.add_inv(delayed);
  const NodeId u = net.add_nand2(a, id);
  const NodeId v = net.add_nand2(ia, delayed);
  const NodeId f = net.add_nand2(u, v);
  net.add_po("f", f);

  const MapResult r = map_small(net);
  SimPowerParams sp;
  sp.num_vector_pairs = 500;
  const SimPowerReport rep = simulate_power(r.mapped, sp);
  // f ≡ a ⊕ a = 0 statically: zero-delay power of the f net is 0, so all
  // simulated activity there is glitch power.
  EXPECT_GT(rep.glitch_factor, 1.02);
}

TEST(Simulate, OutOfOrderGateListMatchesTopologicalOrder) {
  // The settle pass must not depend on the stored gate order: hand-build
  // f = INV(NAND(a, b)) with the INV listed *before* its producer NAND and
  // check the simulation matches the topologically-listed netlist. (Before
  // gate evaluation was topologically ordered, the out-of-order list
  // silently settled the INV on a stale input value.)
  Network net("ooo");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId n1 = net.add_nand2(a, b);
  const NodeId n2 = net.add_inv(n1);
  net.add_po("f", n2);

  const Library& lib = standard_library();
  MappedNetwork sorted;
  sorted.subject = &net;
  sorted.lib = &lib;
  sorted.gates.push_back(MappedGateInst{&lib.nand2(), n1, {a, b}});
  sorted.gates.push_back(MappedGateInst{&lib.inverter(), n2, {n1}});
  sorted.po_signal = {n2};

  MappedNetwork shuffled = sorted;
  std::swap(shuffled.gates[0], shuffled.gates[1]);

  SimPowerParams sp;
  sp.num_vector_pairs = 500;
  const SimPowerReport x = simulate_power(sorted, sp);
  const SimPowerReport y = simulate_power(shuffled, sp);
  EXPECT_DOUBLE_EQ(x.power_uw, y.power_uw);
  EXPECT_DOUBLE_EQ(x.avg_transitions, y.avg_transitions);
  EXPECT_GT(x.power_uw, 0.0);
}

TEST(Simulate, MoreSamplesConverge) {
  Network raw = testing::random_network(21, 6, 12, 3);
  NetworkDecompOptions d;
  const Network subject = decompose_network(raw, d).network;
  const MapResult r = map_small(subject);
  SimPowerParams a;
  a.num_vector_pairs = 400;
  SimPowerParams b;
  b.num_vector_pairs = 1600;
  const double pa = simulate_power(r.mapped, a).power_uw;
  const double pb = simulate_power(r.mapped, b).power_uw;
  EXPECT_NEAR(pa, pb, 0.25 * pb);  // same estimate within generous noise
}

}  // namespace
}  // namespace minpower
