#include <gtest/gtest.h>

#include "map/curve.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

CurvePoint pt(double t, double c, double drive = 0.0) {
  CurvePoint p;
  p.arrival = t;
  p.cost = c;
  p.drive = drive;
  return p;
}

TEST(Curve, InsertKeepsNonInferior) {
  Curve c;
  c.insert(pt(1.0, 10.0));
  c.insert(pt(2.0, 5.0));
  c.insert(pt(3.0, 1.0));
  EXPECT_EQ(c.size(), 3u);
  // Sorted by arrival, cost decreasing (Lemma 3.1).
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i - 1].arrival, c[i].arrival);
    EXPECT_GT(c[i - 1].cost, c[i].cost);
  }
}

TEST(Curve, InsertDropsInferior) {
  Curve c;
  c.insert(pt(1.0, 10.0));
  c.insert(pt(2.0, 12.0));  // slower AND costlier → dropped
  EXPECT_EQ(c.size(), 1u);
  c.insert(pt(0.5, 20.0));  // faster but costlier → kept
  EXPECT_EQ(c.size(), 2u);
}

TEST(Curve, InsertDominatesExisting) {
  Curve c;
  c.insert(pt(2.0, 10.0));
  c.insert(pt(3.0, 8.0));
  c.insert(pt(1.0, 7.0));  // dominates both
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].arrival, 1.0);
}

TEST(Curve, EqualArrivalKeepsCheaper) {
  Curve c;
  c.insert(pt(1.0, 10.0));
  c.insert(pt(1.0, 5.0));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].cost, 5.0);
  c.insert(pt(1.0, 8.0));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_DOUBLE_EQ(c[0].cost, 5.0);
}

TEST(Curve, PruneKeepsEndpoints) {
  Curve c;
  for (int i = 0; i < 10; ++i)
    c.insert(pt(1.0 + 0.001 * i, 10.0 - i));
  // All interior points are within 0.5 in time AND save less than 20 in
  // cost relative to the fastest point — everything in between is pruned.
  c.prune(0.5, 20.0);
  EXPECT_EQ(c.size(), 2u);  // only the fastest and the cheapest survive
  EXPECT_DOUBLE_EQ(c[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(c[c.size() - 1].cost, 1.0);
}

TEST(Curve, PruneEpsilonZeroKeepsAll) {
  Curve c;
  for (int i = 0; i < 6; ++i) c.insert(pt(i, 10.0 - i));
  const std::size_t before = c.size();
  c.prune(0.0, 0.0);
  EXPECT_EQ(c.size(), before);
}

TEST(Curve, PruneKeepsLargeCostSavingPoint) {
  // A point that is barely slower but MUCH cheaper must survive: both
  // epsilon conditions are required before dropping (dropping on the time
  // condition alone would forfeit a 90-unit cost saving).
  Curve c;
  c.insert(pt(1.0, 100.0));
  c.insert(pt(1.001, 10.0));  // barely slower, saves 90
  c.insert(pt(1.002, 9.5));   // barely slower, saves only 0.5
  c.insert(pt(2.0, 9.0));
  c.insert(pt(3.0, 1.0));
  c.prune(0.5, 5.0);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[0].cost, 100.0);
  EXPECT_DOUBLE_EQ(c[1].cost, 10.0);  // the big saver survived
  EXPECT_DOUBLE_EQ(c[2].cost, 9.0);   // the 0.5-saver was pruned
  EXPECT_DOUBLE_EQ(c[3].cost, 1.0);
}

TEST(Curve, BestWithin) {
  Curve c;
  c.insert(pt(1.0, 10.0));
  c.insert(pt(2.0, 5.0));
  c.insert(pt(3.0, 1.0));
  EXPECT_EQ(c.best_within(10.0), 2);  // cheapest overall
  EXPECT_EQ(c.best_within(2.5), 1);
  EXPECT_EQ(c.best_within(1.0), 0);
  EXPECT_EQ(c.best_within(0.5), -1);  // infeasible
}

TEST(Curve, DownsampleKeepsEndpointsAndBound) {
  Curve c;
  for (int i = 0; i < 100; ++i)
    c.insert(pt(static_cast<double>(i), 100.0 - i));
  ASSERT_EQ(c.size(), 100u);

  c.downsample(8);
  ASSERT_LE(c.size(), 8u);
  ASSERT_GE(c.size(), 2u);
  // Endpoints survive: the fastest and the cheapest solutions must remain
  // reachable after thinning.
  EXPECT_DOUBLE_EQ(c[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(c[c.size() - 1].arrival, 99.0);
  // Still a strictly monotone staircase.
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i - 1].arrival, c[i].arrival);
    EXPECT_GT(c[i - 1].cost, c[i].cost);
  }
}

TEST(Curve, DownsampleIsIdempotentAndNoOpWhenSmall) {
  Curve c;
  for (int i = 0; i < 5; ++i) c.insert(pt(static_cast<double>(i), 10.0 - i));
  c.downsample(8);  // already under the cap
  EXPECT_EQ(c.size(), 5u);
  c.downsample(0);  // 0/1 = no cap (a 1-point "curve" is meaningless)
  c.downsample(1);
  EXPECT_EQ(c.size(), 5u);
  c.downsample(3);
  const std::size_t once = c.size();
  EXPECT_LE(once, 3u);
  c.downsample(3);  // applying the same cap again changes nothing
  EXPECT_EQ(c.size(), once);
}

TEST(Curve, BestWithinAppliesLoadShift) {
  Curve c;
  c.insert(pt(1.0, 10.0, /*drive=*/2.0));
  c.insert(pt(2.0, 5.0, /*drive=*/0.1));
  // With +1 load unit, the first point shifts to 3.0 and the second to 2.1.
  EXPECT_EQ(c.best_within(2.5, 1.0), 1);
  EXPECT_EQ(c.best_within(2.05, 1.0), -1);
  // Negative shift (lighter than default) speeds points up.
  EXPECT_EQ(c.best_within(0.9, -0.2), 0);
}

TEST(Curve, FastestAndCheapest) {
  Curve c;
  c.insert(pt(1.0, 10.0));
  c.insert(pt(4.0, 2.0));
  EXPECT_EQ(c.fastest(), 0);
  EXPECT_EQ(c.cheapest(), 1);
  Curve empty;
  EXPECT_EQ(empty.fastest(), -1);
  EXPECT_EQ(empty.cheapest(), -1);
}

// Property: after arbitrary random inserts the curve is a strictly
// monotone staircase (Lemma 3.1) and contains the true minimum cost.
class CurveProperty : public ::testing::TestWithParam<int> {};

TEST_P(CurveProperty, StaircaseInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  Curve c;
  double min_cost = 1e9;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 10.0);
    const double cost = rng.uniform(0.0, 100.0);
    min_cost = std::min(min_cost, cost);
    c.insert(pt(t, cost));
  }
  ASSERT_FALSE(c.empty());
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_LT(c[i - 1].arrival, c[i].arrival);
    EXPECT_GT(c[i - 1].cost, c[i].cost);
  }
  EXPECT_DOUBLE_EQ(c[c.size() - 1].cost, min_cost);
}

INSTANTIATE_TEST_SUITE_P(Random, CurveProperty, ::testing::Range(0, 20));

// admissible() is the mapper's pre-check that skips building a CurvePoint's
// realization bookkeeping for points insert would drop. The two must agree
// on every input, including ties and equal-arrival replacements.
TEST_P(CurveProperty, AdmissibleAgreesWithInsert) {
  Rng rng(0xadd1e + static_cast<std::uint64_t>(GetParam()));
  Curve c;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 10.0);
    const double cost = rng.uniform(0.0, 10.0);
    const bool predicted = c.admissible(t, cost);
    const std::size_t before = c.size();
    c.insert(pt(t, cost));
    // insert either kept the point (size change or an equal-arrival
    // replacement) or dropped it as inferior; admissible must have said so.
    bool kept = c.size() != before;
    if (!kept) {
      // Same size: either replaced an equal-arrival point (kept) or
      // dropped. A kept point is findable by exact (arrival, cost).
      for (std::size_t k = 0; k < c.size(); ++k)
        if (c[k].arrival == t && c[k].cost == cost) kept = true;
    }
    EXPECT_EQ(predicted, kept) << "t=" << t << " cost=" << cost;
  }
}


}  // namespace
}  // namespace minpower
