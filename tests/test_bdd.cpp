#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

TEST(Bdd, Terminals) {
  BddManager mgr;
  EXPECT_TRUE(mgr.is_const(BddManager::kFalse));
  EXPECT_TRUE(mgr.is_const(BddManager::kTrue));
  EXPECT_EQ(mgr.not_(BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(mgr.not_(BddManager::kTrue), BddManager::kFalse);
}

TEST(Bdd, VarIsCanonical) {
  BddManager mgr;
  EXPECT_EQ(mgr.var(2), mgr.var(2));
  EXPECT_NE(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.num_vars(), 3);
}

TEST(Bdd, BasicIdentities) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  EXPECT_EQ(mgr.and_(a, a), a);
  EXPECT_EQ(mgr.or_(a, a), a);
  EXPECT_EQ(mgr.and_(a, BddManager::kTrue), a);
  EXPECT_EQ(mgr.or_(a, BddManager::kFalse), a);
  EXPECT_EQ(mgr.and_(a, mgr.not_(a)), BddManager::kFalse);
  EXPECT_EQ(mgr.or_(a, mgr.not_(a)), BddManager::kTrue);
  EXPECT_EQ(mgr.xor_(a, b), mgr.xor_(b, a));
  EXPECT_EQ(mgr.not_(mgr.not_(a)), a);
}

TEST(Bdd, DeMorganCanonicity) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  EXPECT_EQ(mgr.not_(mgr.and_(a, b)),
            mgr.or_(mgr.not_(a), mgr.not_(b)));
}

TEST(Bdd, EvalMatchesSemantics) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef c = mgr.var(2);
  const BddRef f = mgr.or_(mgr.and_(a, b), mgr.not_(c));
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> assignment{(m & 1) != 0, (m & 2) != 0,
                                       (m & 4) != 0};
    const bool want =
        (assignment[0] && assignment[1]) || !assignment[2];
    EXPECT_EQ(mgr.eval(f, assignment), want) << m;
  }
}

TEST(Bdd, CofactorShannon) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef f = mgr.xor_(a, b);
  EXPECT_EQ(mgr.cofactor(f, 0, true), mgr.not_(b));
  EXPECT_EQ(mgr.cofactor(f, 0, false), b);
  // Cofactor on a variable not in support is the identity.
  EXPECT_EQ(mgr.cofactor(f, 5, true), f);
}

TEST(Bdd, Support) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef c = mgr.var(2);
  const BddRef f = mgr.and_(a, c);
  const auto s = mgr.support(f);
  EXPECT_EQ(s, (std::vector<int>{0, 2}));
}

TEST(Bdd, ProbabilityOfPrimitives) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const std::vector<double> p{0.3, 0.7};
  EXPECT_NEAR(mgr.probability(a, p), 0.3, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.not_(a), p), 0.7, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.and_(a, b), p), 0.21, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.or_(a, b), p), 0.3 + 0.7 - 0.21, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.xor_(a, b), p),
              0.3 * 0.3 + 0.7 * 0.7, 1e-12);
  EXPECT_EQ(mgr.probability(BddManager::kTrue, p), 1.0);
  EXPECT_EQ(mgr.probability(BddManager::kFalse, p), 0.0);
}

TEST(Bdd, ProbabilityHandlesReconvergence) {
  // f = (a·b) + (a·c): P = P(a)·P(b+c); naive independent-gate analysis
  // would get this wrong; the BDD traversal must be exact.
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef c = mgr.var(2);
  const BddRef f = mgr.or_(mgr.and_(a, b), mgr.and_(a, c));
  const std::vector<double> p{0.5, 0.5, 0.5};
  EXPECT_NEAR(mgr.probability(f, p), 0.5 * 0.75, 1e-12);
}

TEST(Bdd, DagSizeGrowsWithFunction) {
  BddManager mgr;
  BddRef f = BddManager::kFalse;
  for (int i = 0; i < 6; ++i) f = mgr.xor_(f, mgr.var(i));
  // Parity of n variables without complement edges: 2n−1 nodes (two nodes
  // per level below the top).
  EXPECT_EQ(mgr.dag_size(f), 11u);
  EXPECT_EQ(mgr.dag_size(BddManager::kTrue), 0u);
}

// Property test: random 3-level expressions vs truth-table oracle, and
// probability vs weighted-minterm oracle.
class BddRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomProperty, MatchesTruthTableAndProbability) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  BddManager mgr;
  const int nvars = 5;
  std::vector<BddRef> pool;
  for (int i = 0; i < nvars; ++i) pool.push_back(mgr.var(i));
  for (int step = 0; step < 12; ++step) {
    const BddRef x = pool[rng.below(pool.size())];
    const BddRef y = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(mgr.and_(x, y)); break;
      case 1: pool.push_back(mgr.or_(x, y)); break;
      case 2: pool.push_back(mgr.xor_(x, y)); break;
      default: pool.push_back(mgr.not_(x)); break;
    }
  }
  const BddRef f = pool.back();

  std::vector<double> p(nvars);
  for (double& x : p) x = rng.uniform(0.05, 0.95);

  double prob = 0.0;
  for (int m = 0; m < (1 << nvars); ++m) {
    std::vector<bool> assignment(nvars);
    double w = 1.0;
    for (int i = 0; i < nvars; ++i) {
      assignment[static_cast<std::size_t>(i)] = (m >> i) & 1;
      w *= assignment[static_cast<std::size_t>(i)] ? p[static_cast<std::size_t>(i)]
                                                   : 1.0 - p[static_cast<std::size_t>(i)];
    }
    if (mgr.eval(f, assignment)) prob += w;
  }
  EXPECT_NEAR(mgr.probability(f, p), prob, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Random, BddRandomProperty, ::testing::Range(0, 50));

// --- ITE normalization rules, locked via the engine's own counters. Each
// rule must (a) produce the same canonical node as the unnormalized form and
// (b) funnel equivalent triples into one computed-table entry, observable as
// a cache hit instead of a fresh recursion.

TEST(BddNormalization, OrArgumentOrderSharesCacheEntry) {
  BddManager mgr;
  const BddRef f = mgr.and_(mgr.var(0), mgr.var(2));
  const BddRef h = mgr.or_(mgr.var(1), mgr.var(3));
  const BddRef r1 = mgr.or_(f, h);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t hits = mgr.ite_cache_hits();
  // The swapped OR is the same triple after commutative reordering: one
  // probe, one hit, no new recursion.
  const BddRef r2 = mgr.or_(h, f);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(mgr.ite_calls(), calls + 1);
  EXPECT_EQ(mgr.ite_cache_hits(), hits + 1);
}

TEST(BddNormalization, AndArgumentOrderSharesCacheEntry) {
  BddManager mgr;
  const BddRef f = mgr.or_(mgr.var(0), mgr.var(2));
  const BddRef g = mgr.or_(mgr.var(1), mgr.var(3));
  const BddRef r1 = mgr.and_(f, g);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t hits = mgr.ite_cache_hits();
  const BddRef r2 = mgr.and_(g, f);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(mgr.ite_calls(), calls + 1);
  EXPECT_EQ(mgr.ite_cache_hits(), hits + 1);
}

TEST(BddNormalization, IteWithRepeatedThenReducesToOr) {
  BddManager mgr;
  const BddRef f = mgr.and_(mgr.var(0), mgr.var(1));
  const BddRef h = mgr.var(2);
  const BddRef r1 = mgr.or_(f, h);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t hits = mgr.ite_cache_hits();
  // ite(f,f,h) → ite(f,1,h): same triple as or_(f,h), served from cache.
  const BddRef r2 = mgr.ite(f, f, h);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(mgr.ite_calls(), calls + 1);
  EXPECT_EQ(mgr.ite_cache_hits(), hits + 1);
}

TEST(BddNormalization, IteWithRepeatedElseReducesToAnd) {
  BddManager mgr;
  const BddRef f = mgr.or_(mgr.var(0), mgr.var(1));
  const BddRef g = mgr.var(2);
  const BddRef r1 = mgr.and_(f, g);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t hits = mgr.ite_cache_hits();
  // ite(f,g,f) → ite(f,g,0): same triple as and_(f,g), served from cache.
  const BddRef r2 = mgr.ite(f, g, f);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(mgr.ite_calls(), calls + 1);
  EXPECT_EQ(mgr.ite_cache_hits(), hits + 1);
}

TEST(BddNormalization, IteComplementFormIsCachedNot) {
  BddManager mgr;
  const BddRef f = mgr.or_(mgr.and_(mgr.var(0), mgr.var(1)), mgr.var(2));
  const BddRef nf = mgr.not_(f);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t not_hits = mgr.not_cache_hits();
  // ite(f,0,1) routes to the dense NOT memo and never probes the ITE
  // cache; the repeat is a memo hit in both directions.
  EXPECT_EQ(mgr.ite(f, BddManager::kFalse, BddManager::kTrue), nf);
  EXPECT_EQ(mgr.ite(nf, BddManager::kFalse, BddManager::kTrue), f);
  EXPECT_EQ(mgr.ite_calls(), calls);
  EXPECT_EQ(mgr.not_cache_hits(), not_hits + 2);
}

TEST(BddNormalization, XnorTripleRoutesToXor) {
  BddManager mgr;
  const BddRef a = mgr.or_(mgr.var(0), mgr.var(2));
  const BddRef b = mgr.and_(mgr.var(1), mgr.var(3));
  const BddRef nb = mgr.not_(b);
  const BddRef x = mgr.xor_(a, nb);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t hits = mgr.ite_cache_hits();
  // ite(f,g,¬g) = f ⊕ ¬g: recognized via the NOT memo and served from the
  // tagged XOR entry.
  EXPECT_EQ(mgr.ite(a, b, nb), x);
  EXPECT_EQ(mgr.ite_calls(), calls + 1);
  EXPECT_EQ(mgr.ite_cache_hits(), hits + 1);
}

TEST(BddNormalization, XorCommutes) {
  BddManager mgr;
  const BddRef a = mgr.and_(mgr.var(0), mgr.var(2));
  const BddRef b = mgr.or_(mgr.var(1), mgr.var(3));
  const BddRef r1 = mgr.xor_(a, b);
  const std::size_t calls = mgr.ite_calls();
  const std::size_t hits = mgr.ite_cache_hits();
  const BddRef r2 = mgr.xor_(b, a);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(mgr.ite_calls(), calls + 1);
  EXPECT_EQ(mgr.ite_cache_hits(), hits + 1);
}

// --- Cofactor memoization regression (the bugfix this PR locks in).
//
// Parity of n variables is the canonical shared-ladder DAG: 2n−1 nodes with
// two cross-linked nodes per level. Without a per-call memo the cofactor
// recursion re-expands both branches at every level — 2^(n−1) calls — so at
// 44 variables this test only finishes if memoization is real.
TEST(Bdd, CofactorMemoizesSharedLadders) {
  constexpr int kVars = 44;
  BddManager mgr;
  BddRef parity = BddManager::kFalse;
  for (int i = 0; i < kVars; ++i) parity = mgr.xor_(parity, mgr.var(i));
  ASSERT_EQ(mgr.dag_size(parity), 2 * kVars - 1);

  BddRef rest = BddManager::kFalse;
  for (int i = 0; i < kVars - 1; ++i) rest = mgr.xor_(rest, mgr.var(i));
  // Fixing the last variable to 1 complements the parity of the rest.
  EXPECT_EQ(mgr.cofactor(parity, kVars - 1, true), mgr.not_(rest));
  EXPECT_EQ(mgr.cofactor(parity, kVars - 1, false), rest);
}

// --- Probability memo: the dense epoch-stamped memo must reproduce a
// plain hash-map reference implementation bit for bit (0 ULP), and the
// batch entry point must match per-root calls exactly.

namespace {

double reference_probability(const BddManager& mgr, BddRef f,
                             const std::vector<double>& p1,
                             std::unordered_map<BddRef, double>& memo) {
  if (f == BddManager::kFalse) return 0.0;
  if (f == BddManager::kTrue) return 1.0;
  const auto it = memo.find(f);
  if (it != memo.end()) return it->second;
  const double pv = p1[static_cast<std::size_t>(mgr.top_var(f))];
  const double plo = reference_probability(mgr, mgr.low(f), p1, memo);
  const double phi = reference_probability(mgr, mgr.high(f), p1, memo);
  const double r = pv * phi + (1.0 - pv) * plo;
  memo.emplace(f, r);
  return r;
}

}  // namespace

TEST(BddProbability, DenseMemoMatchesReferenceExactly) {
  Rng rng(20260809);
  const int nvars = 10;
  BddManager mgr;
  std::vector<BddRef> pool;
  for (int i = 0; i < nvars; ++i) pool.push_back(mgr.var(i));
  for (int step = 0; step < 300; ++step) {
    const BddRef x = pool[rng.below(pool.size())];
    const BddRef y = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(mgr.and_(x, y)); break;
      case 1: pool.push_back(mgr.or_(x, y)); break;
      case 2: pool.push_back(mgr.xor_(x, y)); break;
      default: pool.push_back(mgr.not_(x)); break;
    }
  }
  std::vector<double> p(nvars);
  for (double& x : p) x = rng.uniform(0.05, 0.95);

  for (const BddRef f : pool) {
    std::unordered_map<BddRef, double> memo;
    const double want = reference_probability(mgr, f, p, memo);
    // Exact equality on purpose: the recurrence and its evaluation order
    // are identical, so the results must agree to the last bit.
    EXPECT_EQ(mgr.probability(f, p), want);
  }
}

TEST(BddProbability, BatchMatchesPerRootCallsExactly) {
  Rng rng(424242);
  const int nvars = 8;
  BddManager mgr;
  std::vector<BddRef> pool;
  for (int i = 0; i < nvars; ++i) pool.push_back(mgr.var(i));
  for (int step = 0; step < 200; ++step) {
    const BddRef x = pool[rng.below(pool.size())];
    const BddRef y = pool[rng.below(pool.size())];
    switch (rng.below(3)) {
      case 0: pool.push_back(mgr.and_(x, y)); break;
      case 1: pool.push_back(mgr.or_(x, y)); break;
      default: pool.push_back(mgr.not_(y)); break;
    }
  }
  std::vector<double> p(nvars);
  for (double& x : p) x = rng.uniform(0.05, 0.95);

  const std::vector<double> batch = mgr.probabilities(pool, p);
  ASSERT_EQ(batch.size(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i)
    EXPECT_EQ(batch[i], mgr.probability(pool[i], p)) << i;
}

TEST(Bdd, SupportAndDagSizeAreConstAndRepeatable) {
  BddManager mgr;
  const BddRef f =
      mgr.or_(mgr.and_(mgr.var(0), mgr.var(2)), mgr.xor_(mgr.var(1), mgr.var(3)));
  const std::vector<int> s1 = mgr.support(f);
  const std::size_t d1 = mgr.dag_size(f);
  // Epoch-stamped scratch: repeated traversals must not be contaminated by
  // earlier ones.
  EXPECT_EQ(mgr.support(f), s1);
  EXPECT_EQ(mgr.dag_size(f), d1);
  EXPECT_EQ(s1, (std::vector<int>{0, 1, 2, 3}));
}


}  // namespace
}  // namespace minpower
