#include <gtest/gtest.h>

#include <cmath>

#include "bdd/bdd.hpp"
#include "util/rng.hpp"

namespace minpower {
namespace {

TEST(Bdd, Terminals) {
  BddManager mgr;
  EXPECT_TRUE(mgr.is_const(BddManager::kFalse));
  EXPECT_TRUE(mgr.is_const(BddManager::kTrue));
  EXPECT_EQ(mgr.not_(BddManager::kFalse), BddManager::kTrue);
  EXPECT_EQ(mgr.not_(BddManager::kTrue), BddManager::kFalse);
}

TEST(Bdd, VarIsCanonical) {
  BddManager mgr;
  EXPECT_EQ(mgr.var(2), mgr.var(2));
  EXPECT_NE(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.num_vars(), 3);
}

TEST(Bdd, BasicIdentities) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  EXPECT_EQ(mgr.and_(a, a), a);
  EXPECT_EQ(mgr.or_(a, a), a);
  EXPECT_EQ(mgr.and_(a, BddManager::kTrue), a);
  EXPECT_EQ(mgr.or_(a, BddManager::kFalse), a);
  EXPECT_EQ(mgr.and_(a, mgr.not_(a)), BddManager::kFalse);
  EXPECT_EQ(mgr.or_(a, mgr.not_(a)), BddManager::kTrue);
  EXPECT_EQ(mgr.xor_(a, b), mgr.xor_(b, a));
  EXPECT_EQ(mgr.not_(mgr.not_(a)), a);
}

TEST(Bdd, DeMorganCanonicity) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  EXPECT_EQ(mgr.not_(mgr.and_(a, b)),
            mgr.or_(mgr.not_(a), mgr.not_(b)));
}

TEST(Bdd, EvalMatchesSemantics) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef c = mgr.var(2);
  const BddRef f = mgr.or_(mgr.and_(a, b), mgr.not_(c));
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> assignment{(m & 1) != 0, (m & 2) != 0,
                                       (m & 4) != 0};
    const bool want =
        (assignment[0] && assignment[1]) || !assignment[2];
    EXPECT_EQ(mgr.eval(f, assignment), want) << m;
  }
}

TEST(Bdd, CofactorShannon) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef f = mgr.xor_(a, b);
  EXPECT_EQ(mgr.cofactor(f, 0, true), mgr.not_(b));
  EXPECT_EQ(mgr.cofactor(f, 0, false), b);
  // Cofactor on a variable not in support is the identity.
  EXPECT_EQ(mgr.cofactor(f, 5, true), f);
}

TEST(Bdd, Support) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef c = mgr.var(2);
  const BddRef f = mgr.and_(a, c);
  const auto s = mgr.support(f);
  EXPECT_EQ(s, (std::vector<int>{0, 2}));
}

TEST(Bdd, ProbabilityOfPrimitives) {
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const std::vector<double> p{0.3, 0.7};
  EXPECT_NEAR(mgr.probability(a, p), 0.3, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.not_(a), p), 0.7, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.and_(a, b), p), 0.21, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.or_(a, b), p), 0.3 + 0.7 - 0.21, 1e-12);
  EXPECT_NEAR(mgr.probability(mgr.xor_(a, b), p),
              0.3 * 0.3 + 0.7 * 0.7, 1e-12);
  EXPECT_EQ(mgr.probability(BddManager::kTrue, p), 1.0);
  EXPECT_EQ(mgr.probability(BddManager::kFalse, p), 0.0);
}

TEST(Bdd, ProbabilityHandlesReconvergence) {
  // f = (a·b) + (a·c): P = P(a)·P(b+c); naive independent-gate analysis
  // would get this wrong; the BDD traversal must be exact.
  BddManager mgr;
  const BddRef a = mgr.var(0);
  const BddRef b = mgr.var(1);
  const BddRef c = mgr.var(2);
  const BddRef f = mgr.or_(mgr.and_(a, b), mgr.and_(a, c));
  const std::vector<double> p{0.5, 0.5, 0.5};
  EXPECT_NEAR(mgr.probability(f, p), 0.5 * 0.75, 1e-12);
}

TEST(Bdd, DagSizeGrowsWithFunction) {
  BddManager mgr;
  BddRef f = BddManager::kFalse;
  for (int i = 0; i < 6; ++i) f = mgr.xor_(f, mgr.var(i));
  // Parity of n variables without complement edges: 2n−1 nodes (two nodes
  // per level below the top).
  EXPECT_EQ(mgr.dag_size(f), 11u);
  EXPECT_EQ(mgr.dag_size(BddManager::kTrue), 0u);
}

// Property test: random 3-level expressions vs truth-table oracle, and
// probability vs weighted-minterm oracle.
class BddRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomProperty, MatchesTruthTableAndProbability) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  BddManager mgr;
  const int nvars = 5;
  std::vector<BddRef> pool;
  for (int i = 0; i < nvars; ++i) pool.push_back(mgr.var(i));
  for (int step = 0; step < 12; ++step) {
    const BddRef x = pool[rng.below(pool.size())];
    const BddRef y = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(mgr.and_(x, y)); break;
      case 1: pool.push_back(mgr.or_(x, y)); break;
      case 2: pool.push_back(mgr.xor_(x, y)); break;
      default: pool.push_back(mgr.not_(x)); break;
    }
  }
  const BddRef f = pool.back();

  std::vector<double> p(nvars);
  for (double& x : p) x = rng.uniform(0.05, 0.95);

  double prob = 0.0;
  for (int m = 0; m < (1 << nvars); ++m) {
    std::vector<bool> assignment(nvars);
    double w = 1.0;
    for (int i = 0; i < nvars; ++i) {
      assignment[static_cast<std::size_t>(i)] = (m >> i) & 1;
      w *= assignment[static_cast<std::size_t>(i)] ? p[static_cast<std::size_t>(i)]
                                                   : 1.0 - p[static_cast<std::size_t>(i)];
    }
    if (mgr.eval(f, assignment)) prob += w;
  }
  EXPECT_NEAR(mgr.probability(f, p), prob, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Random, BddRandomProperty, ::testing::Range(0, 50));

}  // namespace
}  // namespace minpower
