#include <gtest/gtest.h>

#include "decomp/network_decompose.hpp"
#include "helpers.hpp"
#include "opt/optimize.hpp"
#include "prob/probability.hpp"

namespace minpower {
namespace {

NetworkDecompOptions options_for(DecompAlgorithm algo, bool bounded = false,
                                 CircuitStyle style = CircuitStyle::kStatic) {
  NetworkDecompOptions o;
  o.algorithm = algo;
  o.bounded_height = bounded;
  o.style = style;
  return o;
}

TEST(NetworkDecomp, ProducesNandNetwork) {
  Network net = testing::random_network(1, 6, 12, 3);
  const auto r = decompose_network(net, options_for(DecompAlgorithm::kMinPower));
  EXPECT_TRUE(r.network.is_nand_network());
  for (NodeId id = 0; id < static_cast<NodeId>(r.network.capacity()); ++id) {
    const Node& n = r.network.node(id);
    if (n.is_internal())
      EXPECT_TRUE(r.network.is_nand2(id) || r.network.is_inv(id));
  }
}

TEST(NetworkDecomp, PreservesFunction) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Network net = testing::random_network(seed, 6, 14, 3);
    for (const auto algo :
         {DecompAlgorithm::kBalanced, DecompAlgorithm::kMinPower}) {
      const auto r = decompose_network(net, options_for(algo));
      EXPECT_TRUE(networks_equivalent(net, r.network))
          << "seed " << seed << " algo " << static_cast<int>(algo);
    }
  }
}

TEST(NetworkDecomp, BoundedHeightPreservesFunction) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    Network net = testing::random_network(seed, 6, 14, 3);
    const auto r = decompose_network(
        net, options_for(DecompAlgorithm::kMinPower, /*bounded=*/true));
    EXPECT_TRUE(networks_equivalent(net, r.network)) << "seed " << seed;
  }
}

TEST(NetworkDecomp, MinpowerActivityNoWorseThanBalanced) {
  // The decomposition objective (sum of tree switching activities) must not
  // be worse under MINPOWER than under the conventional balanced scheme.
  for (std::uint64_t seed = 30; seed <= 40; ++seed) {
    Network net = testing::random_network(seed, 7, 16, 3);
    const auto bal =
        decompose_network(net, options_for(DecompAlgorithm::kBalanced));
    const auto mp =
        decompose_network(net, options_for(DecompAlgorithm::kMinPower));
    EXPECT_LE(mp.tree_activity, bal.tree_activity + 1e-9) << "seed " << seed;
  }
}

TEST(NetworkDecomp, MeasuredNetworkActivityTracksObjective) {
  // The realized NAND network's total switching activity (decomposition
  // objective + inverter overhead) should correlate with the tree
  // objective: MINPOWER must not be significantly worse than balanced when
  // measured on the actual network.
  double bal_total = 0.0;
  double mp_total = 0.0;
  for (std::uint64_t seed = 50; seed <= 58; ++seed) {
    Network net = testing::random_network(seed, 7, 16, 3);
    const auto bal =
        decompose_network(net, options_for(DecompAlgorithm::kBalanced));
    const auto mp =
        decompose_network(net, options_for(DecompAlgorithm::kMinPower));
    bal_total += total_internal_activity(bal.network, CircuitStyle::kStatic);
    mp_total += total_internal_activity(mp.network, CircuitStyle::kStatic);
  }
  EXPECT_LE(mp_total, bal_total * 1.02);
}

TEST(NetworkDecomp, BoundedHeightReducesDepthTowardBalanced) {
  for (std::uint64_t seed = 60; seed <= 68; ++seed) {
    Network net = testing::random_network(seed, 7, 18, 3);
    const auto bal =
        decompose_network(net, options_for(DecompAlgorithm::kBalanced));
    const auto mp =
        decompose_network(net, options_for(DecompAlgorithm::kMinPower));
    const auto bh = decompose_network(
        net, options_for(DecompAlgorithm::kMinPower, /*bounded=*/true));
    EXPECT_LE(bh.unit_depth, mp.unit_depth) << "seed " << seed;
    // (bh may even beat the canonical balanced depth: with negative
    // literals a greedy shape can realize one level flatter, so no lower
    // bound is asserted.)
    (void)bal;
    // Activity trades back toward balanced when nodes get flattened.
    EXPECT_GE(bh.tree_activity, mp.tree_activity - 1e-9);
  }
}

TEST(NetworkDecomp, ExplicitRequiredTimesAreRespectedWhenLoose) {
  Network net = testing::random_network(70, 6, 12, 3);
  const auto mp =
      decompose_network(net, options_for(DecompAlgorithm::kMinPower));
  NetworkDecompOptions o = options_for(DecompAlgorithm::kMinPower, true);
  // Required = unrestricted depth → nothing to redecompose.
  o.po_required.assign(net.pos().size(),
                       static_cast<double>(mp.unit_depth));
  const auto bh = decompose_network(net, o);
  EXPECT_EQ(bh.redecomposed_nodes, 0);
  EXPECT_NEAR(bh.tree_activity, mp.tree_activity, 1e-9);
}

TEST(NetworkDecomp, TightRequiredTimesTriggerRedecomposition) {
  // Find a network where minpower is deeper than balanced, then require the
  // balanced depth.
  for (std::uint64_t seed = 80; seed < 120; ++seed) {
    Network net = testing::random_network(seed, 7, 18, 3);
    rugged_lite(net);
    if (net.num_internal() < 4) continue;
    const auto bal =
        decompose_network(net, options_for(DecompAlgorithm::kBalanced));
    const auto mp =
        decompose_network(net, options_for(DecompAlgorithm::kMinPower));
    if (mp.unit_depth <= bal.unit_depth) continue;
    const auto bh = decompose_network(
        net, options_for(DecompAlgorithm::kMinPower, /*bounded=*/true));
    // The slack model is node-granular (the paper's "rough timing model"),
    // so not every realized-depth gap is visible to it; look for an
    // instance where the refinement actually fires.
    if (bh.redecomposed_nodes == 0) continue;
    EXPECT_LE(bh.unit_depth, mp.unit_depth) << "seed " << seed;
    EXPECT_GE(bh.tree_activity, mp.tree_activity - 1e-9) << "seed " << seed;
    return;  // one demonstrative instance suffices
  }
  GTEST_SKIP() << "no instance where the bounded-height loop fires";
}

TEST(NetworkDecomp, DynamicStyleWorks) {
  Network net = testing::random_network(90, 6, 12, 3);
  const auto r = decompose_network(
      net, options_for(DecompAlgorithm::kMinPower, false,
                       CircuitStyle::kDynamicP));
  EXPECT_TRUE(networks_equivalent(net, r.network));
  EXPECT_GT(r.tree_activity, 0.0);
}

TEST(NetworkDecomp, PiProbabilitiesFlowThrough) {
  Network net("bias");
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  Cover f{{Cube::literal(0, true) & Cube::literal(1, true) &
           Cube::literal(2, true)}};
  net.add_po("f", net.add_node({a, b, c}, f, "n"));

  NetworkDecompOptions o = options_for(DecompAlgorithm::kMinPower, false,
                                       CircuitStyle::kDynamicP);
  o.pi_prob1 = {0.9, 0.9, 0.01};
  const auto r = decompose_network(net, o);
  // With one near-zero input, MINPOWER pairs it early; total tree activity
  // must be below the balanced alternative.
  const auto bal = decompose_network(
      net, [&] {
        NetworkDecompOptions ob = options_for(DecompAlgorithm::kBalanced,
                                              false, CircuitStyle::kDynamicP);
        ob.pi_prob1 = o.pi_prob1;
        return ob;
      }());
  EXPECT_LE(r.tree_activity, bal.tree_activity + 1e-12);
}

}  // namespace
}  // namespace minpower
